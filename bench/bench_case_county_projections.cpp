// Case study 2 reproduction (paper Appendix F): county-level projections
// with the metapopulation SEIR model. Five scenarios — a worst case with
// limited social distancing, plus intense distancing from March 15
// differentiated by end date (April 30 vs June 10) and transmissibility
// reduction (25% vs 50%). Transmissibility and infectious duration are
// first calibrated to county-level confirmed cases with the Eq (6)
// Bayesian approach (direct simulation inside the MCMC loop).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "calibration/calibrate.hpp"
#include "metapop/metapop.hpp"
#include "surveillance/ground_truth.hpp"
#include "synthpop/locations.hpp"
#include "util/stats.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Case study: county-level projections (metapopulation model, VA)");

  // County geography shared with the surveillance substrate.
  const StateInfo& state = state_by_abbrev("VA");
  Rng layout_rng = Rng(20200315).derive({0x5359'4e50ULL, state.fips});
  const CountyLayout layout = make_county_layout(state, layout_rng);
  std::vector<double> county_pops;
  for (double share : layout.population_share) {
    county_pops.push_back(share * static_cast<double>(state.population));
  }
  const MetapopModel model = MetapopModel::with_gravity_coupling(county_pops);
  note("counties: " + fmt_int(county_pops.size()) + ", population " +
       fmt_int(state.population));

  // --- Calibration against observed county-level confirmed cases ---------
  // Hidden truth: beta 0.42, infectious 6 days (unknown to the
  // calibration); observations carry the Eq (6) 20% noise assumption.
  MetapopParams truth;
  truth.beta = 0.42;
  truth.infectious_days = 6.0;
  std::vector<MetapopSeed> seeds = {MetapopSeed{0, 10.0}, MetapopSeed{1, 5.0},
                                    MetapopSeed{2, 3.0}};
  Rng truth_rng(20200315);
  const MetapopOutput observed_run =
      model.run_stochastic(truth, 54, seeds, truth_rng);  // through Mar 15

  const MetapopCalibrator calibrator(model, observed_run.new_confirmed, seeds,
                                     MetapopParams{});
  McmcConfig mcmc;
  mcmc.samples = 600;
  mcmc.burn_in = 600;
  Rng mcmc_rng(77);
  const auto calibrated = calibrator.calibrate(
      ParamRange{"beta", 0.2, 0.7}, ParamRange{"infectious", 3.0, 9.0}, mcmc,
      mcmc_rng);
  compare("calibrated beta", "hidden truth 0.42",
          fmt(calibrated.map_params.beta, 3));
  compare("calibrated infectious days", "hidden truth 6.0",
          fmt(calibrated.map_params.infectious_days, 2));
  // beta and D are individually weakly identified from growth-phase data
  // (the classic SEIR ridge); the identified quantity is the epidemic
  // growth rate r solving (r + sigma)(r + 1/D) = sigma * beta.
  auto growth_rate = [](double beta, double infectious_days) {
    const double sigma = 1.0 / 4.0;
    const double gamma = 1.0 / infectious_days;
    const double b = sigma + gamma;
    const double c = sigma * gamma - sigma * beta;
    return (-b + std::sqrt(b * b - 4.0 * c)) / 2.0;
  };
  compare("implied epidemic growth rate r/day",
          fmt(growth_rate(0.42, 6.0), 3) + " (truth)",
          fmt(growth_rate(calibrated.map_params.beta,
                          calibrated.map_params.infectious_days),
              3));

  // --- Five scenarios ------------------------------------------------------
  struct Scenario {
    const char* name;
    int end_day;        // distancing end (-1 = no distancing)
    double reduction;   // transmissibility reduction while distancing
  };
  const Scenario scenarios[] = {
      {"worst case (limited distancing)", -1, 0.0},
      {"distancing to Apr 30, 25% reduction", 100, 0.25},
      {"distancing to Apr 30, 50% reduction", 100, 0.50},
      {"distancing to Jun 10, 25% reduction", 141, 0.25},
      {"distancing to Jun 10, 50% reduction", 141, 0.50},
  };

  subheading("projections (200 days from Jan 21; counts statewide)");
  row({"scenario", "peak infectious", "peak day", "total confirmed"}, 24);
  std::vector<double> totals;
  for (const Scenario& scenario : scenarios) {
    MetapopParams params = calibrated.map_params;
    if (scenario.end_day > 0) {
      params.intervention_start_day = 54;  // March 15
      params.intervention_end_day = scenario.end_day;
      params.intervention_effect = 1.0 - scenario.reduction;
    }
    const MetapopOutput projection =
        model.run_deterministic(params, 200, seeds);
    const auto& infectious = projection.infectious;
    const auto peak_it =
        std::max_element(infectious.begin(), infectious.end());
    const auto cumulative = projection.cumulative_confirmed_total();
    totals.push_back(cumulative.back());
    row({scenario.name, fmt(*peak_it, 0),
         fmt_int(static_cast<std::uint64_t>(peak_it - infectious.begin())),
         fmt(cumulative.back(), 0)},
        24);
  }

  subheading("shape checks");
  note("- every distancing scenario beats the worst case; 50% reduction");
  note("  beats 25%; the longer (Jun 10) window beats Apr 30 at equal");
  note("  reduction — the orderings the case study reported to the state");
  const bool ordered = totals[0] > totals[1] && totals[1] > totals[2] &&
                       totals[3] < totals[1] && totals[4] < totals[2];
  compare("scenario ordering", "as above", ordered ? "holds" : "VIOLATED");
  return 0;
}
