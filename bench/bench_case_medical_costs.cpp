// Case study 1 reproduction (paper section VII): medical costs of
// COVID-19 under the economic workflow's NPI factorial — 2 VHI compliances
// x 3 lockdown durations x 2 lockdown compliances = 12 cells, disease
// model calibrated toward R0 = 2.5, county-level seeding; per-cell medical
// costs from attended cases, hospital days, ventilator days and deaths.

#include <cstdio>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/costs.hpp"
#include "analytics/dendrogram.hpp"
#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "workflow/designs.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Case study: medical costs of COVID-19 (economic workflow)");

  SynthPopConfig pop_config;
  pop_config.region = "VT";
  pop_config.scale = 1.0 / 150.0;  // ~4.2k persons
  pop_config.seed = 20200325;
  const SyntheticRegion region = generate_region(pop_config);
  note("region: VT at 1/150 scale, " +
       fmt_int(region.population.person_count()) + " persons; 3 replicates");
  note("per cell; costs in 2020 USD at the simulated population scale");

  // Check the base model's reproduction number against the calibration
  // target (R0 = 2.5) via the transmission-forest offspring estimate.
  {
    CovidParams params;
    const DiseaseModel model = covid_model(params);
    SimulationConfig config;
    config.num_ticks = 60;
    config.seed = 17;
    config.seeds = {SeedSpec{0, 10, 0}};
    const SimOutput out =
        run_simulation(region.network, region.population, model, config);
    const TransmissionForest forest(out.transitions);
    compare("early mean offspring (R estimate, no NPIs)",
            "calibrated towards R0 = 2.5", fmt(forest.mean_offspring(), 2));
  }

  const auto cells = make_cell_configs(economic_design(), "VT", 20200325);
  row({"cell", "VHI", "SH days", "SH compl", "infections", "hosp days",
       "deaths", "med cost ($)"},
      12);
  const double vhi_levels[] = {0.5, 0.8};
  const Tick durations[] = {30, 60, 90};
  const double sh_levels[] = {0.5, 0.8};
  std::vector<double> costs_by_duration(3, 0.0);
  std::size_t index = 0;
  for (double vhi : vhi_levels) {
    for (std::size_t duration_index = 0; duration_index < 3; ++duration_index) {
      for (double sh : sh_levels) {
        const CellConfig& cell = cells[index];
        MedicalCostBreakdown total;
        std::uint64_t infections = 0;
        const int replicates = 3;
        for (int rep = 0; rep < replicates; ++rep) {
          SimulationConfig sim_config =
              cell.make_sim_config(static_cast<std::uint32_t>(rep));
          sim_config.num_ticks = 150;
          const DiseaseModel model = covid_model(cell.disease);
          const SimOutput out = run_simulation(
              region.network, region.population, model, sim_config,
              [&] { return cell.make_interventions(); });
          const SummaryCube cube = build_summary_cube(
              out, region.population, model, sim_config.num_ticks);
          const MedicalCostBreakdown costs = medical_costs(cube, model);
          total.outpatient += costs.outpatient / replicates;
          total.hospital += costs.hospital / replicates;
          total.ventilator += costs.ventilator / replicates;
          total.death += costs.death / replicates;
          total.hospital_days += costs.hospital_days / replicates;
          infections += out.total_infections / replicates;
        }
        costs_by_duration[duration_index] += total.total();
        row({fmt_int(index), fmt(vhi, 1),
             fmt_int(static_cast<std::uint64_t>(durations[duration_index])),
             fmt(sh, 1), fmt_int(infections), fmt_int(total.hospital_days),
             fmt(total.death / 10000.0, 0), fmt(total.total(), 0)},
            12);
        ++index;
      }
    }
  }

  subheading("aggregate effects");
  compare("medical cost: 30-day vs 90-day lockdown",
          "longer NPIs suppress medical costs",
          fmt(costs_by_duration[0], 0) + " vs " + fmt(costs_by_duration[2], 0));

  subheading("shape checks");
  note("- higher compliance / longer lockdowns -> fewer infections and");
  note("  lower medical costs within each factorial slice");
  note("- hospital days dominate the cost breakdown, as in [9]");
  return 0;
}
