// Exchange-mode A/B/C/D on the same network and partitioning: legacy
// broadcast allgatherv, ghost-delta halo exchange, the event-driven core
// (ghost exchange + timed-event progressions + quiescence tick-skipping),
// and the adaptive broadcast/ghost switch.
//
// The legacy transmission step allgatherv'd every rank's full infectious
// set to every rank, every tick — O(global infectious x ranks) bytes on
// the wire regardless of how many of those records a rank could ever use.
// The ghost-delta protocol sends each rank only the *changes* to the
// boundary records it subscribed to at construction; the event mode
// additionally skips globally quiescent ticks outright (the seeds land at
// tick 8, so the dormant prefix is provably skippable). This bench runs
// all four kernels to the same epidemic and reports wall time, wire
// bytes, events processed, and skipped ticks; it exits non-zero if any
// mode's epidemic diverges from broadcast, if the ghost kernel fails to
// move strictly fewer bytes than broadcast, or if the event mode is not
// strictly faster per tick than both legacy modes (the CI perf-smoke
// gates).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/timer.hpp"

namespace {

struct KernelRun {
  epi::SimOutput out;
  double wall_seconds = 0.0;
};

KernelRun run_kernel(const epi::SyntheticRegion& region,
                     const epi::DiseaseModel& model,
                     epi::SimulationConfig config,
                     const epi::Partitioning& parts, int ranks,
                     epi::ExchangeMode mode) {
  config.exchange = mode;
  epi::Timer timer;
  KernelRun result;
  result.out = epi::run_simulation_parallel(region.network, region.population,
                                            model, config, parts, ranks);
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

std::uint64_t peak(const std::vector<std::uint64_t>& series) {
  return series.empty() ? 0 : *std::max_element(series.begin(), series.end());
}

double mean(const std::vector<double>& series) {
  if (series.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : series) sum += v;
  return sum / static_cast<double>(series.size());
}

std::uint64_t sum_edges(const epi::SimOutput& out) {
  std::uint64_t edges = 0;
  for (const auto v : out.frontier_edges_per_tick) edges += v;
  return edges;
}

}  // namespace

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Communication volume + exchange-mode matrix");
  note("same network, partitioning, seeds, and RNG streams for all kernels;");
  note("the epidemic outputs must be identical, only wire traffic, touched");
  note("edges, and per-tick cost differ");

  SynthPopConfig pop_config;
  pop_config.region = "DC";
  pop_config.scale = 1.0 / 50.0;
  pop_config.seed = 7;
  const SyntheticRegion region = generate_region(pop_config);
  const DiseaseModel model = covid_model();

  constexpr int kRanks = 8;
  constexpr Tick kTicks = 60;
  SimulationConfig config;
  config.num_ticks = kTicks;
  config.seed = 11;
  // Seeds land at tick 8: the dormant prefix gives the event mode a
  // deterministic skip window, so "strictly faster per tick" is a property
  // of the algorithm, not of scheduler noise.
  config.seeds = {SeedSpec{0, 10, 8}};

  const Partitioning parts =
      partition_network(region.network, static_cast<std::size_t>(kRanks));

  subheading("DC — " + fmt_int(region.population.person_count()) +
             " persons, " + fmt_int(region.network.contact_count()) +
             " contacts, " + fmt_int(kRanks) + " ranks, " + fmt_int(kTicks) +
             " ticks");

  const ExchangeMode modes[] = {ExchangeMode::kBroadcast,
                                ExchangeMode::kGhostDelta, ExchangeMode::kEvent,
                                ExchangeMode::kAdaptive};
  KernelRun runs[4];
  for (int i = 0; i < 4; ++i) {
    runs[i] = run_kernel(region, model, config, parts, kRanks, modes[i]);
  }
  const KernelRun& bcast = runs[0];
  const KernelRun& ghost = runs[1];
  const KernelRun& event = runs[2];

  bool ok = true;
  for (int i = 1; i < 4; ++i) {
    if (runs[i].out.final_states != bcast.out.final_states ||
        runs[i].out.new_infections_per_tick !=
            bcast.out.new_infections_per_tick ||
        runs[i].out.total_infections != bcast.out.total_infections) {
      note(std::string("FAIL: ") + exchange_mode_name(modes[i]) +
           " disagrees with broadcast on the epidemic — the A/B is invalid");
      ok = false;
    }
  }

  row({"kernel", "comm MB", "s/tick", "wall s", "events", "skipped"}, 12);
  for (int i = 0; i < 4; ++i) {
    const SimOutput& out = runs[i].out;
    row({exchange_mode_name(modes[i]),
         fmt(static_cast<double>(out.communication_bytes) / 1e6, 3),
         fmt(mean(out.seconds_per_tick), 4), fmt(runs[i].wall_seconds, 3),
         fmt_int(out.events_fired), fmt_int(out.ticks_skipped)},
        12);
  }

  const std::uint64_t bcast_bytes = bcast.out.communication_bytes;
  const std::uint64_t ghost_bytes = ghost.out.communication_bytes;
  note("edges evaluated (all ticks, all ranks): broadcast " +
       fmt_int(sum_edges(bcast.out)) + ", ghost " +
       fmt_int(sum_edges(ghost.out)) + ", event " +
       fmt_int(sum_edges(event.out)));
  if (ghost_bytes > 0) {
    note("comm reduction: " +
         fmt(static_cast<double>(bcast_bytes) /
                 static_cast<double>(ghost_bytes),
             2) +
         "x fewer bytes than broadcast");
  }
  note("adaptive split: " + fmt_int(runs[3].out.broadcast_ticks) +
       " broadcast ticks, " + fmt_int(runs[3].out.ghost_ticks) +
       " ghost ticks");

  JsonReport report("comm_volume");
  report.metric("ranks", static_cast<std::uint64_t>(kRanks));
  report.metric("ticks", static_cast<std::uint64_t>(kTicks));
  report.metric("persons",
                static_cast<std::uint64_t>(region.population.person_count()));
  report.metric("contacts", region.network.contact_count());
  report.metric("total_infections", ghost.out.total_infections);
  for (int i = 0; i < 4; ++i) {
    const std::string prefix = exchange_mode_name(modes[i]);
    const SimOutput& out = runs[i].out;
    report.metric(prefix + ".communication_bytes", out.communication_bytes);
    report.metric(prefix + ".peak_memory_bytes",
                  peak(out.memory_bytes_per_tick));
    report.metric(prefix + ".seconds_per_tick_mean",
                  mean(out.seconds_per_tick));
    report.metric(prefix + ".edges_evaluated", sum_edges(out));
    report.metric(prefix + ".events_scheduled", out.events_scheduled);
    report.metric(prefix + ".events_fired", out.events_fired);
    report.metric(prefix + ".ticks_skipped", out.ticks_skipped);
    report.metric(prefix + ".ticks_executed", out.ticks_executed);
  }
  report.metric("ghost.ghost_exchange_bytes", ghost.out.ghost_exchange_bytes);
  report.metric("adaptive.broadcast_ticks", runs[3].out.broadcast_ticks);
  report.metric("adaptive.ghost_ticks", runs[3].out.ghost_ticks);
  report.metric("outputs_identical", ok ? std::uint64_t{1} : std::uint64_t{0});
  report.write();

  // Perf-smoke gates. First, the halo exchange's whole point: strictly
  // less wire traffic than the broadcast baseline measured in this run.
  if (ghost_bytes >= bcast_bytes) {
    note("FAIL: ghost kernel moved " + fmt_int(ghost_bytes) +
         " bytes, baseline " + fmt_int(bcast_bytes));
    ok = false;
  } else {
    note("PASS: ghost bytes strictly below broadcast baseline");
  }
  // Second, the event-driven core's whole point: strictly cheaper ticks
  // than both legacy modes (skipped ticks cost zero and executed ticks do
  // no per-person rescans).
  const double event_spt = mean(event.out.seconds_per_tick);
  const double bcast_spt = mean(bcast.out.seconds_per_tick);
  const double ghost_spt = mean(ghost.out.seconds_per_tick);
  if (event_spt >= bcast_spt || event_spt >= ghost_spt) {
    note("FAIL: event mode s/tick " + fmt(event_spt, 5) +
         " not strictly below broadcast " + fmt(bcast_spt, 5) + " and ghost " +
         fmt(ghost_spt, 5));
    ok = false;
  } else {
    note("PASS: event mode s/tick strictly below both legacy modes");
  }
  if (event.out.ticks_skipped == 0) {
    note("FAIL: event mode skipped no ticks despite the dormant seed prefix");
    ok = false;
  }
  return ok ? 0 : 1;
}
