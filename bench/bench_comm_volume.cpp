// Communication-volume A/B: ghost-delta halo exchange vs the legacy
// broadcast-everything kernel, on the same network and partitioning.
//
// The legacy transmission step allgatherv'd every rank's full infectious
// set to every rank, every tick — O(global infectious x ranks) bytes on
// the wire regardless of how many of those records a rank could ever use.
// The ghost-delta protocol sends each rank only the *changes* to the
// boundary records it subscribed to at construction. This bench runs both
// kernels to the same epidemic and reports wall time, wire bytes, and
// peak memory; it exits non-zero if the ghost kernel fails to move
// strictly fewer bytes than the broadcast baseline measured in the same
// run (the CI perf-smoke gate), or if the two kernels' outputs diverge.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/timer.hpp"

namespace {

struct KernelRun {
  epi::SimOutput out;
  double wall_seconds = 0.0;
};

KernelRun run_kernel(const epi::SyntheticRegion& region,
                     const epi::DiseaseModel& model,
                     epi::SimulationConfig config,
                     const epi::Partitioning& parts, int ranks,
                     epi::ExchangeMode mode) {
  config.exchange = mode;
  epi::Timer timer;
  KernelRun result;
  result.out = epi::run_simulation_parallel(region.network, region.population,
                                            model, config, parts, ranks);
  result.wall_seconds = timer.elapsed_seconds();
  return result;
}

std::uint64_t peak(const std::vector<std::uint64_t>& series) {
  return series.empty() ? 0 : *std::max_element(series.begin(), series.end());
}

double mean(const std::vector<double>& series) {
  if (series.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : series) sum += v;
  return sum / static_cast<double>(series.size());
}

}  // namespace

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Communication volume — ghost-delta halo vs broadcast allgatherv");
  note("same network, partitioning, seeds, and RNG streams for both kernels;");
  note("the epidemic outputs must be identical, only the wire traffic and");
  note("touched-edge counts differ");

  SynthPopConfig pop_config;
  pop_config.region = "DC";
  pop_config.scale = 1.0 / 50.0;
  pop_config.seed = 7;
  const SyntheticRegion region = generate_region(pop_config);
  const DiseaseModel model = covid_model();

  constexpr int kRanks = 8;
  constexpr Tick kTicks = 60;
  SimulationConfig config;
  config.num_ticks = kTicks;
  config.seed = 11;
  config.seeds = {SeedSpec{0, 10, 0}};

  const Partitioning parts =
      partition_network(region.network, static_cast<std::size_t>(kRanks));

  subheading("DC — " + fmt_int(region.population.person_count()) +
             " persons, " + fmt_int(region.network.contact_count()) +
             " contacts, " + fmt_int(kRanks) + " ranks, " + fmt_int(kTicks) +
             " ticks");

  const KernelRun bcast = run_kernel(region, model, config, parts, kRanks,
                                     ExchangeMode::kBroadcast);
  const KernelRun ghost = run_kernel(region, model, config, parts, kRanks,
                                     ExchangeMode::kGhostDelta);

  bool ok = true;
  if (ghost.out.final_states != bcast.out.final_states ||
      ghost.out.new_infections_per_tick != bcast.out.new_infections_per_tick ||
      ghost.out.total_infections != bcast.out.total_infections) {
    note("FAIL: kernels disagree on the epidemic — the A/B is invalid");
    ok = false;
  }

  const std::uint64_t bcast_bytes = bcast.out.communication_bytes;
  const std::uint64_t ghost_bytes = ghost.out.communication_bytes;
  const std::uint64_t bcast_peak = peak(bcast.out.memory_bytes_per_tick);
  const std::uint64_t ghost_peak = peak(ghost.out.memory_bytes_per_tick);

  row({"kernel", "comm MB", "halo MB", "peak mem MB", "s/tick", "wall s"}, 14);
  row({"broadcast", fmt(static_cast<double>(bcast_bytes) / 1e6, 3), "0.000",
       fmt(static_cast<double>(bcast_peak) / 1e6, 2),
       fmt(mean(bcast.out.seconds_per_tick), 4), fmt(bcast.wall_seconds, 3)},
      14);
  row({"ghost-delta", fmt(static_cast<double>(ghost_bytes) / 1e6, 3),
       fmt(static_cast<double>(ghost.out.ghost_exchange_bytes) / 1e6, 3),
       fmt(static_cast<double>(ghost_peak) / 1e6, 2),
       fmt(mean(ghost.out.seconds_per_tick), 4), fmt(ghost.wall_seconds, 3)},
      14);

  std::uint64_t bcast_edges = 0, ghost_edges = 0;
  for (const auto v : bcast.out.frontier_edges_per_tick) bcast_edges += v;
  for (const auto v : ghost.out.frontier_edges_per_tick) ghost_edges += v;
  note("edges evaluated (all ticks, all ranks): broadcast " +
       fmt_int(bcast_edges) + ", ghost " + fmt_int(ghost_edges));
  if (ghost_bytes > 0) {
    note("comm reduction: " +
         fmt(static_cast<double>(bcast_bytes) /
                 static_cast<double>(ghost_bytes),
             2) +
         "x fewer bytes than broadcast");
  }

  JsonReport report("comm_volume");
  report.metric("ranks", static_cast<std::uint64_t>(kRanks));
  report.metric("ticks", static_cast<std::uint64_t>(kTicks));
  report.metric("persons",
                static_cast<std::uint64_t>(region.population.person_count()));
  report.metric("contacts", region.network.contact_count());
  report.metric("total_infections", ghost.out.total_infections);
  report.metric("broadcast.communication_bytes", bcast_bytes);
  report.metric("broadcast.peak_memory_bytes", bcast_peak);
  report.metric("broadcast.seconds_per_tick_mean",
                mean(bcast.out.seconds_per_tick));
  report.metric("broadcast.edges_evaluated", bcast_edges);
  report.metric("ghost.communication_bytes", ghost_bytes);
  report.metric("ghost.ghost_exchange_bytes", ghost.out.ghost_exchange_bytes);
  report.metric("ghost.peak_memory_bytes", ghost_peak);
  report.metric("ghost.seconds_per_tick_mean",
                mean(ghost.out.seconds_per_tick));
  report.metric("ghost.edges_evaluated", ghost_edges);
  report.metric("outputs_identical", ok ? std::uint64_t{1} : std::uint64_t{0});
  report.write();

  // The perf-smoke gate: the whole point of the halo exchange is strictly
  // less wire traffic than the baseline measured in this very run.
  if (ghost_bytes >= bcast_bytes) {
    note("FAIL: ghost kernel moved " + fmt_int(ghost_bytes) +
         " bytes, baseline " + fmt_int(bcast_bytes));
    ok = false;
  } else {
    note("PASS: ghost bytes strictly below broadcast baseline");
  }
  return ok ? 0 : 1;
}
