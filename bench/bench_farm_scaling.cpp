// Simulation-farm scaling: the deterministic task-pool executor under an
// EPI_JOBS sweep.
//
// The paper's production cycle farmed hundreds of EpiHiper runs per night
// across cluster nodes; this repo's laptop-scale farm does the same with
// worker threads (src/exec/). The executor's contract is that parallelism
// is free of observable effects: the same CalibrationCycleResult, byte
// for byte, at any worker count. This bench runs the prior-design +
// forecast farm of one calibration cycle at jobs = 1, 2, 4, 8 and
// reports:
//   * wall seconds and speedup vs the serial seed path,
//   * byte-identity of serialize(result) against the jobs=1 run.
// Identity is enforced unconditionally (exit 1 on any divergence). The
// speedup gate (>= 2x at jobs=4) only applies where the hardware can
// physically deliver it — on fewer than 4 cores the sweep still runs and
// reports, but timing is informational.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "exec/executor.hpp"
#include "util/timer.hpp"
#include "workflow/calibration_cycle.hpp"

namespace {

using namespace epi;

CalibrationCycleConfig farm_config() {
  CalibrationCycleConfig config;
  config.region = "VT";
  config.scale = 1.0 / 400.0;
  config.seed = 20200411;
  config.prior_configs = 100;
  config.posterior_configs = 40;
  config.calibration_days = 50;
  config.horizon_days = 21;
  config.prediction_runs = 8;
  config.mcmc.samples = 400;
  config.mcmc.burn_in = 300;
  return config;
}

}  // namespace

int main() {
  bench::heading(
      "Simulation-farm scaling: calibration cycle vs EPI_JOBS "
      "(deterministic executor, src/exec/)");

  const std::size_t hw = exec::hardware_limit();
  bench::note("hardware concurrency: " + std::to_string(hw));

  bench::JsonReport json("farm_scaling");
  json.metric("hardware_concurrency", static_cast<std::uint64_t>(hw));

  bench::subheading("jobs sweep (108 farm tasks: 100 prior + 8 forecast)");
  bench::row({"jobs", "seconds", "speedup", "identical"});

  std::string baseline;
  double serial_s = 0.0;
  double speedup_at_4 = 0.0;
  bool all_identical = true;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    CalibrationCycleConfig config = farm_config();
    config.jobs = jobs;
    Timer timer;
    const CalibrationCycleResult result = run_calibration_cycle(config);
    const double seconds = timer.elapsed_seconds();
    const std::string dump = serialize(result);

    bool identical = true;
    if (jobs == 1) {
      baseline = dump;
      serial_s = seconds;
    } else {
      identical = dump == baseline;
      all_identical = all_identical && identical;
    }
    const double speedup = seconds > 0.0 ? serial_s / seconds : 0.0;
    if (jobs == 4) speedup_at_4 = speedup;
    bench::row({std::to_string(jobs), bench::fmt(seconds, 2),
                bench::fmt(speedup, 2), identical ? "yes" : "NO"});
    json.metric("seconds_jobs" + std::to_string(jobs), seconds);
    json.metric("speedup_jobs" + std::to_string(jobs), speedup);
    json.metric("identical_jobs" + std::to_string(jobs),
                std::string(identical ? "yes" : "no"));
  }

  json.metric("byte_identical", std::string(all_identical ? "yes" : "no"));
  json.write();

  bench::compare("parallel result vs serial", "byte-identical",
                 all_identical ? "byte-identical" : "DIVERGED");

  if (!all_identical) {
    std::printf("\nFAIL: parallel farm output diverged from serial\n");
    return 1;
  }
  if (hw >= 4 && speedup_at_4 < 2.0) {
    std::printf("\nFAIL: speedup at jobs=4 is %.2fx (< 2x) on %zu cores\n",
                speedup_at_4, hw);
    return 1;
  }
  if (hw < 4) {
    bench::note("speedup gate skipped: fewer than 4 hardware threads");
  }
  return 0;
}
