// Fig 10 reproduction: memory required at each simulation step.
// Left panel: different cells (intervention compliances) of one state —
// higher compliance schedules more system-state changes and needs more
// memory. Right panel: different states — final memory strongly
// correlated with initial (network-size-dominated) memory.

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace epi;

SimOutput run_with_compliance(const SyntheticRegion& region, double compliance,
                              Tick ticks) {
  CovidParams params;
  params.transmissibility = 0.25;
  const DiseaseModel model = covid_model(params);
  SimulationConfig config;
  config.num_ticks = ticks;
  config.seed = 3;
  config.seeds = {SeedSpec{0, 10, 0}};
  return run_simulation(
      region.network, region.population, model, config, [compliance] {
        return std::vector<std::shared_ptr<Intervention>>{
            std::make_shared<VoluntaryHomeIsolation>(
                VoluntaryHomeIsolation::Config{compliance, 14, 0}),
            std::make_shared<SchoolClosure>(SchoolClosure::Config{10}),
            std::make_shared<StayAtHome>(
                StayAtHome::Config{20, 80, compliance}),
            std::make_shared<ContactTracing>(
                ContactTracing::Config{1, 15, compliance, compliance, 14})};
      });
}

}  // namespace

int main() {
  using namespace epi::bench;

  heading("Fig 10 — memory required per simulation step");

  const Tick ticks = 100;

  subheading("left panel: VA cells (varying intervention compliance)");
  SynthPopConfig va_config;
  va_config.region = "VA";
  va_config.scale = 1.0 / 4000.0;
  const SyntheticRegion va = generate_region(va_config);
  row({"compliance", "mem@t0 (KB)", "mem@t50 (KB)", "mem@t99 (KB)",
       "growth"},
      14);
  std::vector<double> final_by_compliance;
  for (const double compliance : {0.2, 0.4, 0.6, 0.8}) {
    const SimOutput out = run_with_compliance(va, compliance, ticks);
    const double t0 = static_cast<double>(out.memory_bytes_per_tick.front());
    const double t50 = static_cast<double>(out.memory_bytes_per_tick[50]);
    const double t99 = static_cast<double>(out.memory_bytes_per_tick.back());
    final_by_compliance.push_back(t99);
    row({fmt(compliance, 1), fmt(t0 / 1e3, 0), fmt(t50 / 1e3, 0),
         fmt(t99 / 1e3, 0), fmt(t99 / t0, 2) + "x"},
        14);
  }
  bool monotone = true;
  for (std::size_t i = 1; i < final_by_compliance.size(); ++i) {
    monotone &= final_by_compliance[i] >= final_by_compliance[i - 1] * 0.98;
  }
  compare("higher compliance -> more scheduled changes -> more memory",
          "yes", monotone ? "yes" : "no");

  subheading("right panel: different states (fixed cell)");
  row({"state", "persons", "mem@t0 (KB)", "mem@t99 (KB)"}, 14);
  std::vector<double> initial_memory, final_memory;
  for (const char* abbrev : {"WY", "VT", "DE", "NH", "ME", "RI", "MT"}) {
    SynthPopConfig pop_config;
    pop_config.region = abbrev;
    pop_config.scale = 1.0 / 1000.0;
    const SyntheticRegion region = generate_region(pop_config);
    const SimOutput out = run_with_compliance(region, 0.6, ticks);
    const double t0 = static_cast<double>(out.memory_bytes_per_tick.front());
    const double t99 = static_cast<double>(out.memory_bytes_per_tick.back());
    initial_memory.push_back(t0);
    final_memory.push_back(t99);
    row({abbrev, fmt_int(region.population.person_count()), fmt(t0 / 1e3, 0),
         fmt(t99 / 1e3, 0)},
        14);
  }
  compare("corr(final memory, initial memory)", "strongly correlated",
          fmt(correlation(initial_memory, final_memory), 3));

  subheading("shape checks");
  note("- memory grows during the run (event logs + scheduled interventions)");
  note("- growth is compliance-sensitive (left) and size-dominated (right)");
  return 0;
}
