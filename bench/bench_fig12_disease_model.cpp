// Fig 12 / Tables III-IV reproduction: the COVID-19 PTTS disease model.
// Monte-Carlo-validates the implemented progression probabilities and
// dwell-time means against the CDC planning-parameter table, and prints
// the per-age-group severity ladder.

#include <cstdio>
#include <map>

#include "bench_report.hpp"
#include "epihiper/disease_model.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;
  using namespace covid_states;

  heading("Fig 12 / Tables III-IV — COVID-19 disease model (PTTS)");

  const DiseaseModel model = covid_model();
  compare("health states (x 5 age groups)", "~90 stratified states",
          fmt_int(model.state_count()) + " x 5 = " +
              fmt_int(model.state_count() * kAgeGroupCount));
  compare("transmissibility tau", "0.18", fmt(model.transmissibility(), 2));
  compare("presymptomatic infectivity", "0.8",
          fmt(model.state(model.state_id(kPresymptomatic)).infectivity, 1));

  subheading("Monte-Carlo branch probabilities out of Symptomatic");
  Rng rng(12);
  const HealthStateId symptomatic = model.state_id(kSymptomatic);
  row({"age group", "->Attended", "->Attd(H)", "->Attd(D)", "paper(H)",
       "paper(D)"},
      12);
  const double paper_h[] = {0.04, 0.01, 0.04, 0.085, 0.195};
  const double paper_d[] = {0.0006, 0.0006, 0.0006, 0.003, 0.017};
  for (int g = 0; g < kAgeGroupCount; ++g) {
    std::map<HealthStateId, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      HealthStateId next;
      Tick dwell;
      model.sample_progression(symptomatic, static_cast<AgeGroup>(g), rng,
                               &next, &dwell);
      ++counts[next];
    }
    row({age_group_name(static_cast<AgeGroup>(g)),
         fmt(counts[model.state_id(kAttended)] / double(n), 4),
         fmt(counts[model.state_id(kAttendedHosp)] / double(n), 4),
         fmt(counts[model.state_id(kAttendedDeath)] / double(n), 4),
         fmt(paper_h[g], 4), fmt(paper_d[g], 4)},
        12);
  }

  subheading("dwell-time means (days)");
  auto mean_dwell = [&](const char* from, const char* to, AgeGroup g) {
    for (const auto& edge : model.progressions_from(model.state_id(from))) {
      if (edge.to == model.state_id(to)) {
        return edge.dwell[static_cast<std::size_t>(g)].mean();
      }
    }
    return -1.0;
  };
  compare("Exposed -> Asymptomatic", "5.0 (dt-mean)",
          fmt(mean_dwell(kExposed, kAsymptomatic, AgeGroup::kAdult), 1));
  compare("Presymptomatic -> Symptomatic", "2.0 (dt-fixed)",
          fmt(mean_dwell(kPresymptomatic, kSymptomatic, AgeGroup::kAdult), 1));
  compare("Symptomatic -> Attended (discrete mean)", "~4.0",
          fmt(mean_dwell(kSymptomatic, kAttended, AgeGroup::kAdult), 2));
  compare("Ventilated -> Recovered (65+)", "5.5",
          fmt(mean_dwell(kVentilated, kRecovered, AgeGroup::kSenior), 1));

  subheading("infection fatality by age (full-chain Monte Carlo)");
  row({"age group", "IFR among symptomatic", "expectation"}, 24);
  for (int g = 0; g < kAgeGroupCount; ++g) {
    int deaths = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      HealthStateId state = symptomatic;
      for (int hop = 0; hop < 32; ++hop) {
        HealthStateId next;
        Tick dwell;
        if (!model.sample_progression(state, static_cast<AgeGroup>(g), rng,
                                      &next, &dwell)) {
          break;
        }
        state = next;
      }
      deaths += model.state(state).counts_as_death ? 1 : 0;
    }
    row({age_group_name(static_cast<AgeGroup>(g)), fmt(deaths / double(n), 4),
         g == 4 ? "highest (65+)" : ""},
        24);
  }

  subheading("shape checks");
  note("- severity (hospitalization, death) increases with age group");
  note("- branch probabilities match Table III within Monte-Carlo noise");
  return 0;
}
