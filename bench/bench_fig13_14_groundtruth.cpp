// Figs 13-14 reproduction: the surveillance ground-truth curves the
// calibration consumes. Fig 13: county-level cumulative confirmed cases
// for California (state curve = sum of county curves). Fig 14: state-level
// cumulative curves, noisy and time-staggered.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_report.hpp"
#include "surveillance/ground_truth.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Figs 13-14 — synthetic county/state surveillance curves");
  GroundTruthConfig config;
  config.days = 200;  // Jan 21 - early Aug 2020

  subheading("Fig 13: California county-level cumulative confirmed cases");
  const StateGroundTruth ca = generate_state_ground_truth("CA", config);
  note("top 6 counties by final count, weekly samples:");
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t c = 0; c < ca.county_fips.size(); ++c) {
    ranked.emplace_back(ca.cumulative_county(c).back(), c);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("  %-8s", "day:");
  for (int d = 0; d < 200; d += 28) std::printf("%10d", d);
  std::printf("\n");
  for (std::size_t i = 0; i < 6 && i < ranked.size(); ++i) {
    const auto county = ranked[i].second;
    const auto curve = ca.cumulative_county(county);
    std::printf("  c%-7u", ca.county_fips[county]);
    for (int d = 0; d < 200; d += 28) {
      std::printf("%10.0f", curve[static_cast<std::size_t>(d)]);
    }
    std::printf("\n");
  }
  const auto ca_total = ca.cumulative_state();
  compare("CA state curve = sum of county curves", "by construction",
          "final " + fmt(ca_total.back(), 0) + " cases");

  subheading("Fig 14: state-level cumulative curves (weekly samples)");
  std::printf("  %-8s", "day:");
  for (int d = 0; d < 200; d += 28) std::printf("%12d", d);
  std::printf("\n");
  for (const char* abbrev : {"NY", "CA", "TX", "FL", "VA", "WY"}) {
    const StateGroundTruth truth = generate_state_ground_truth(abbrev, config);
    const auto curve = truth.cumulative_state();
    std::printf("  %-8s", abbrev);
    for (int d = 0; d < 200; d += 28) {
      std::printf("%12.0f", curve[static_cast<std::size_t>(d)]);
    }
    std::printf("\n");
  }

  subheading("national coverage");
  const auto truths = generate_national_ground_truth(config);
  std::size_t total_counties = 0;
  for (const auto& t : truths) total_counties += t.county_fips.size();
  compare("counties in the feed", "over 3000 (3140 total)",
          fmt_int(total_counties));
  compare("counties with nonzero counts", "2772 (as of Apr 22, 2020)",
          fmt_int(counties_with_cases(truths)) + " (day 200 horizon)");

  subheading("shape checks");
  note("- curves are monotone, noisy day-to-day (weekend dips), and bend");
  note("  after the mid-March distancing start (day 54)");
  note("- large states dominate; curve onset staggers with state size");
  return 0;
}
