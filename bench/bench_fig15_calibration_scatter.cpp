// Fig 15 reproduction: prior vs posterior calibration designs.
// Paper observations after calibration: transmissibility (TAU) and
// symptomatic fraction (SYMP) become negatively correlated and both
// distributions tighten; SH compliance concentrates toward lower values;
// VHI compliance is essentially unchanged.

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "util/stats.hpp"
#include "workflow/calibration_cycle.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 15 — prior vs posterior parameter designs (VA calibration)");

  CalibrationCycleConfig config;
  config.region = "VA";
  config.scale = 1.0 / 2000.0;
  config.seed = 20200411;
  config.prior_configs = 60;
  config.posterior_configs = 100;
  config.calibration_days = 80;
  config.horizon_days = 56;
  config.prediction_runs = 0;  // Fig 15 needs the designs only
  config.mcmc.samples = 2500;
  config.mcmc.burn_in = 1500;
  const CalibrationCycleResult result = run_calibration_cycle(config);

  const auto& ranges = result.prior_design.ranges;
  auto column = [](const std::vector<ParamPoint>& points, std::size_t d) {
    std::vector<double> out;
    for (const auto& p : points) out.push_back(p[d]);
    return out;
  };

  row({"parameter", "prior mean", "prior sd", "post mean", "post sd",
       "tightening"},
      13);
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    const auto prior = column(result.prior_design.points, d);
    const auto posterior = column(result.posterior_configs, d);
    const double prior_sd = stddev(prior);
    const double post_sd = stddev(posterior);
    row({ranges[d].name, fmt(mean(prior), 3), fmt(prior_sd, 3),
         fmt(mean(posterior), 3), fmt(post_sd, 3),
         fmt(post_sd / prior_sd, 2) + "x"},
        13);
  }

  subheading("posterior correlations");
  const auto tau = column(result.posterior_configs, 0);
  const auto symp = column(result.posterior_configs, 1);
  compare("corr(TAU, SYMP) in the posterior", "negative (their VA data)",
          fmt(correlation(tau, symp), 3));
  note("  (the sign of the local TAU-SYMP correlation depends on where the");
  note("  observed data places the posterior mode; the trade-off ridge");
  note("  exists in our likelihood surface but our synthetic ground truth");
  note("  need not land on it — see EXPERIMENTS.md)");

  const auto sh = column(result.posterior_configs, 2);
  const auto prior_sh = column(result.prior_design.points, 2);
  compare("SH compliance shift (data-dependent)",
          "toward lower values (their VA data)",
          fmt(mean(prior_sh), 3) + " -> " + fmt(mean(sh), 3));

  const auto vhi = column(result.posterior_configs, 3);
  const auto prior_vhi = column(result.prior_design.points, 3);
  compare("VHI compliance distribution", "seems unchanged",
          "sd " + fmt(stddev(prior_vhi), 3) + " -> " + fmt(stddev(vhi), 3));

  subheading("shape checks");
  note("- TAU/SYMP posterior sds < prior sds (the Fig 15 tightening)");
  note("- weakly identified parameters (VHI) stay close to their prior");
  return 0;
}
