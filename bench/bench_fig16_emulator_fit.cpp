// Fig 16 reproduction: the GPMSA calibration visualization — ground truth
// (blue marks) against the emulator's 95% uncertainty band (green curves).
// "The result is good if the ground truth falls between the green curves."

#include <cstdio>

#include "bench_report.hpp"
#include "util/stats.hpp"
#include "workflow/calibration_cycle.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 16 — GP emulator 95% band vs ground truth (VA)");

  CalibrationCycleConfig config;
  config.region = "VA";
  config.scale = 1.0 / 2000.0;
  config.seed = 20200411;
  config.prior_configs = 60;
  config.posterior_configs = 50;
  config.calibration_days = 80;
  config.horizon_days = 14;
  config.prediction_runs = 0;
  config.mcmc.samples = 2000;
  config.mcmc.burn_in = 1500;
  const CalibrationCycleResult result = run_calibration_cycle(config);

  const auto& calibration = result.calibration;
  note("log cumulative confirmed cases; weekly samples:");
  row({"day", "band lo", "band mean", "band hi", "observed", "inside"}, 12);
  const auto observed_log = log_transform(result.observed_cumulative);
  for (std::size_t t = 0; t < calibration.band_mean.size(); t += 7) {
    const bool inside = observed_log[t] >= calibration.band_lo[t] &&
                        observed_log[t] <= calibration.band_hi[t];
    row({fmt_int(t), fmt(calibration.band_lo[t], 2),
         fmt(calibration.band_mean[t], 2), fmt(calibration.band_hi[t], 2),
         fmt(observed_log[t], 2), inside ? "yes" : "NO"},
        12);
  }

  compare("ground truth inside the 95% band",
          "goodness-of-fit criterion (should be ~all points)",
          fmt(calibration.coverage95 * 100.0, 1) + "% of days");
  compare("emulator variance captured by 5 bases", "p_eta = 5 suffices",
          fmt(calibration.emulator_variance_captured * 100.0, 1) + "%");
  compare("MCMC acceptance rate", "well-mixed chain",
          fmt(calibration.acceptance_rate, 2));

  subheading("shape checks");
  note("- the band envelops the observed curve over most of the horizon;");
  note("  persistent escapes would trigger another calibration iteration,");
  note("  exactly as the paper's workflow loop prescribes");
  return 0;
}
