// Fig 17 reproduction: the Virginia forecast — cumulative confirmed cases
// for the eight weeks after the calibration cutoff (April 11, 2020 in the
// case study), as the median of the posterior-ensemble simulations with a
// 95% uncertainty band, plotted against the reported counts.

#include <cstdio>

#include "bench_report.hpp"
#include "workflow/calibration_cycle.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 17 — VA cumulative-case forecast, 8 weeks past cutoff");

  CalibrationCycleConfig config;
  config.region = "VA";
  config.scale = 1.0 / 2000.0;
  config.seed = 20200411;
  config.prior_configs = 60;
  config.posterior_configs = 100;
  config.calibration_days = 80;   // observed through "April 11"
  config.horizon_days = 56;       // 8-week forecast
  config.prediction_runs = 25;
  config.mcmc.samples = 2000;
  config.mcmc.burn_in = 1500;
  const CalibrationCycleResult result = run_calibration_cycle(config);

  note("cumulative confirmed cases (simulated-population units); cutoff at");
  note("day 80; rows beyond it are forecast:");
  row({"day", "p2.5", "median", "p97.5", "reported", "phase"}, 12);
  for (std::size_t t = 0; t < result.forecast.median.size(); t += 7) {
    row({fmt_int(t), fmt(result.forecast.lo[t], 0),
         fmt(result.forecast.median[t], 0), fmt(result.forecast.hi[t], 0),
         fmt(result.truth_extension[t], 0),
         t < 80 ? "observed" : "FORECAST"},
        12);
  }

  compare("reported curve inside the 95% band", "(not quoted in the paper)",
          fmt(result.forecast_coverage * 100.0, 1) + "% of days");
  note("  the paper's own Fig 17 band did not contain the later reported");
  note("  curve either (their forecast ran high; ours runs low at the far");
  note("  horizon because the small simulated network saturates earlier)");
  const std::size_t last = result.forecast.median.size() - 1;
  compare("8-week-ahead relative band width", "uncertainty grows with horizon",
          fmt((result.forecast.hi[last] - result.forecast.lo[last]) /
                  std::max(1.0, result.forecast.median[last]),
              2));

  subheading("shape checks");
  note("- median tracks the reported curve through the observed window");
  note("- the band widens with forecast horizon (ensemble spread)");
  note("- forecast stays within the right order of magnitude 8 weeks out");
  return 0;
}
