// Fig 6 reproduction: node and edge counts of the contact network for each
// of the 50 US states + DC, ordered by size. Generated at a configurable
// scale; the full-scale columns extrapolate linearly (generation is
// population-proportional by construction).

#include <cstdio>

#include "bench_report.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 6 — number of nodes and edges in the US network, by state");
  const double scale = 1.0 / 1000.0;
  note("generation scale: 1/1000 of the real population per state;");
  note("week-long networks (the Fig 6 convention — simulations use the");
  note("Wednesday projection)");

  Timer timer;
  const auto rows = national_network_sizes(scale, 20200325, /*week_long=*/true);
  note("generated all 51 regions in " + fmt(timer.elapsed_seconds(), 1) + "s");

  row({"state", "nodes", "contacts", "nodes@1 (x10M)", "edges@1 (x100M)",
       "contacts/node"},
      17);
  std::uint64_t total_nodes = 0, total_contacts = 0;
  for (const auto& r : rows) {
    total_nodes += r.persons;
    total_contacts += r.contacts;
    const double full_nodes = static_cast<double>(r.persons) / scale;
    const double full_contacts = static_cast<double>(r.contacts) / scale;
    row({r.region, fmt_int(r.persons), fmt_int(r.contacts),
         fmt(full_nodes / 1e7, 2), fmt(full_contacts / 1e8, 2),
         fmt(static_cast<double>(r.contacts) / static_cast<double>(r.persons),
             2)},
        17);
  }

  subheading("national totals at scale 1");
  compare("total nodes", "~300 million",
          fmt(static_cast<double>(total_nodes) / scale / 1e6, 0) + " million");
  compare("total contacts", "7.9 billion edges",
          fmt(static_cast<double>(total_contacts) / scale / 1e9, 2) +
              " billion");
  compare("smallest/largest state", "WY ... CA",
          rows.front().region + " ... " + rows.back().region);
  const double ratio_span =
      (static_cast<double>(rows.back().contacts) /
       static_cast<double>(rows.back().persons)) /
      (static_cast<double>(rows.front().contacts) /
       static_cast<double>(rows.front().persons));
  compare("contacts/node stability (CA vs WY)", "~constant ratio",
          fmt(ratio_span, 2) + "x");

  subheading("shape checks");
  note("- ordering by nodes follows state population (Fig 6's x-axis)");
  note("- edges scale linearly with nodes: the two series track each other");
  return 0;
}
