// Fig 7 (bottom) reproduction: EpiHiper running time under different
// intervention stacks. Paper ordering: base (VHI+SC+SH) < +RO, +TA
// (marginal increase) < +PS, +D1CT (significant) < +D2CT (almost +300%).
// Each stack runs the real engine on the same network; median of repeated
// wall-clock measurements.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 7 (bottom) — running time by intervention stack");

  SynthPopConfig pop_config;
  pop_config.region = "VT";
  pop_config.scale = 1.0 / 150.0;  // ~4.2k persons
  pop_config.seed = 20200325;
  const SyntheticRegion region = generate_region(pop_config);
  note("network: " + fmt_int(region.population.person_count()) + " persons, " +
       fmt_int(region.network.contact_count()) + " contacts, 90 ticks");

  CovidParams params;
  params.transmissibility = 0.25;  // sizeable epidemic drives tracing load
  const DiseaseModel model = covid_model(params);
  SimulationConfig config;
  config.num_ticks = 90;
  config.seed = 5;
  // Continuous importation: at national production scale the epidemic is
  // never locally extinct during a run; tiny networks need reseeding so
  // every stack simulates a live epidemic for all 90 ticks (otherwise a
  // strongly suppressive stack ends early and looks spuriously cheap).
  for (Tick t = 0; t < 90; t += 10) {
    config.seeds.push_back(SeedSpec{0, 5, t});
    config.seeds.push_back(SeedSpec{1, 3, t});
  }

  const int repeats = 5;
  double base_seconds = 0.0;
  row({"stack", "median time", "vs base", "infections"}, 16);
  for (const std::string& stack_name : intervention_stack_names()) {
    std::vector<double> times;
    std::uint64_t infections = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      Timer timer;
      const SimOutput out = run_simulation(
          region.network, region.population, model, config,
          [&] { return make_intervention_stack(stack_name); });
      times.push_back(timer.elapsed_seconds());
      infections = out.total_infections;
    }
    const double med = median(times);
    if (stack_name == "base") base_seconds = med;
    row({stack_name, fmt(med * 1000.0, 1) + "ms",
         fmt(med / base_seconds, 2) + "x", fmt_int(infections)},
        16);
  }

  subheading("paper reference");
  note("base(VHI,SC,SH) = 1.0x; +RO and +TA marginal; +PS and +D1CT");
  note("significant; +D2CT almost 4.0x (a ~300% increase)");

  subheading("shape checks");
  note("- contact-tracing stacks cost the most; D2CT > D1CT > base");
  note("- RO and TA stay within a small factor of base");
  return 0;
}
