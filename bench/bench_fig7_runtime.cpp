// Fig 7 (top) reproduction: EpiHiper running time vs network size.
// The paper shows running time increasing linearly with input size at a
// fixed processing-unit count. We time real serial simulations over
// networks of increasing size and report the measured time plus the
// size-normalized rate (flat rate = linear scaling), and a linear fit R^2.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace epi;

SyntheticRegion make_scaled_region(double scale) {
  SynthPopConfig config;
  config.region = "VA";
  config.scale = scale;
  config.seed = 20200325;
  return generate_region(config);
}

void BM_EpiHiperRuntimeVsSize(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1e6;
  const SyntheticRegion region = make_scaled_region(scale);
  const DiseaseModel model = covid_model();
  SimulationConfig config;
  config.num_ticks = 60;
  config.seed = 7;
  config.seeds = {SeedSpec{0, 5, 0}, SeedSpec{1, 5, 0}};
  for (auto _ : state) {
    const SimOutput out =
        run_simulation(region.network, region.population, model, config);
    benchmark::DoNotOptimize(out.total_infections);
  }
  state.counters["persons"] =
      static_cast<double>(region.population.person_count());
  state.counters["contacts"] =
      static_cast<double>(region.network.contact_count());
  state.counters["ns_per_person_tick"] = benchmark::Counter(
      static_cast<double>(region.population.person_count()) * 60.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_EpiHiperRuntimeVsSize)
    ->Arg(125)   // scale 1/8000 of VA ~ 1.1k persons
    ->Arg(250)   // ~2.1k
    ->Arg(500)   // ~4.3k
    ->Arg(1000)  // ~8.5k
    ->Arg(2000)  // ~17k
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace epi::bench;
  heading("Fig 7 (top) — EpiHiper running time vs network size");
  note("paper: running time increases linearly with input size");
  note("check: Time column grows ~2x per row; ns_per_person_tick stays flat");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Explicit linearity check outside the google-benchmark loop.
  subheading("linearity fit (single runs)");
  std::vector<double> sizes, times;
  for (const double scale : {1.0 / 8000, 1.0 / 4000, 1.0 / 2000, 1.0 / 1000}) {
    const epi::SyntheticRegion region = make_scaled_region(scale);
    const epi::DiseaseModel model = epi::covid_model();
    epi::SimulationConfig config;
    config.num_ticks = 60;
    config.seed = 7;
    config.seeds = {epi::SeedSpec{0, 5, 0}, epi::SeedSpec{1, 5, 0}};
    epi::Timer timer;
    epi::run_simulation(region.network, region.population, model, config);
    sizes.push_back(static_cast<double>(region.population.person_count()));
    times.push_back(timer.elapsed_seconds());
    std::printf("  %8.0f persons  %8.3f s\n", sizes.back(), times.back());
  }
  compare("runtime-size correlation", "linear (r ~ 1)",
          fmt(epi::correlation(sizes, times), 4));

  // Exchange-mode matrix over the same size ladder: seconds-per-tick and
  // events-processed per mode at each size. The workload seeds at tick
  // 200/201 with a 240-tick horizon, so five sixths of the run is a
  // globally dormant prefix — the regime the event-driven core exists
  // for. Legacy modes pay the O(persons) progression rescan on every
  // dormant tick; the event core skips those ticks outright, so its
  // advantage here is structural, not timer noise. The event mode must
  // be strictly faster per tick than both legacy modes across the sweep
  // (the ROADMAP hard gate); the timing compared is the summed per-tick
  // loop time, best of three runs per mode, which filters scheduler
  // noise that a single wall-clock sample of these ~ms runs cannot.
  // Counts are deterministic and land in the baseline; timing is
  // reported but not gated by epitrace diff.
  subheading("exchange-mode matrix (s/tick per mode, best of 3)");
  constexpr int kMatrixTicks = 240;
  constexpr int kRepeats = 3;
  const epi::ExchangeMode modes[] = {
      epi::ExchangeMode::kBroadcast, epi::ExchangeMode::kGhostDelta,
      epi::ExchangeMode::kEvent, epi::ExchangeMode::kAdaptive};
  epi::bench::JsonReport report("fig7_runtime");
  bool ok = true;
  double sweep_seconds[4] = {0.0, 0.0, 0.0, 0.0};
  row({"persons", "broadcast", "ghost", "event", "adaptive", "events",
       "skipped"},
      11);
  int sweep_index = 0;
  for (const double scale : {1.0 / 8000, 1.0 / 4000, 1.0 / 2000, 1.0 / 1000}) {
    const epi::SyntheticRegion region = make_scaled_region(scale);
    const epi::DiseaseModel model = epi::covid_model();
    epi::SimulationConfig base;
    base.num_ticks = kMatrixTicks;
    base.seed = 7;
    base.seeds = {epi::SeedSpec{0, 5, 200}, epi::SeedSpec{1, 5, 201}};
    epi::SimOutput outs[4];
    double best[4];
    for (int m = 0; m < 4; ++m) {
      epi::SimulationConfig config = base;
      config.exchange = modes[m];
      best[m] = 1e30;
      for (int r = 0; r < kRepeats; ++r) {
        outs[m] = epi::run_simulation(region.network, region.population,
                                      model, config);
        double total = 0.0;
        for (const double v : outs[m].seconds_per_tick) total += v;
        best[m] = std::min(best[m], total);
      }
      sweep_seconds[m] += best[m];
      if (outs[m].final_states != outs[0].final_states ||
          outs[m].new_infections_per_tick !=
              outs[0].new_infections_per_tick) {
        note(std::string("FAIL: ") + epi::exchange_mode_name(modes[m]) +
             " diverges from broadcast at " +
             fmt_int(region.population.person_count()) + " persons");
        ok = false;
      }
    }
    row({fmt_int(region.population.person_count()),
         fmt(best[0] / kMatrixTicks, 6), fmt(best[1] / kMatrixTicks, 6),
         fmt(best[2] / kMatrixTicks, 6), fmt(best[3] / kMatrixTicks, 6),
         fmt_int(outs[2].events_fired), fmt_int(outs[2].ticks_skipped)},
        11);
    const std::string prefix = "sweep" + std::to_string(sweep_index);
    report.metric(prefix + ".persons",
                  static_cast<std::uint64_t>(
                      region.population.person_count()));
    report.metric(prefix + ".total_infections", outs[2].total_infections);
    report.metric(prefix + ".events_scheduled", outs[2].events_scheduled);
    report.metric(prefix + ".events_fired", outs[2].events_fired);
    report.metric(prefix + ".events_stale", outs[2].events_stale);
    report.metric(prefix + ".ticks_skipped", outs[2].ticks_skipped);
    for (int m = 0; m < 4; ++m) {
      report.metric(prefix + "." + epi::exchange_mode_name(modes[m]) +
                        ".seconds_per_tick_mean",
                    best[m] / kMatrixTicks);
    }
    ++sweep_index;
  }
  for (int m = 0; m < 4; ++m) {
    report.metric(std::string(epi::exchange_mode_name(modes[m])) +
                      ".sweep_seconds",
                  sweep_seconds[m]);
  }
  report.write();
  // Gate on the sweep aggregate of per-mode bests: event total strictly
  // below both legacy totals.
  if (sweep_seconds[2] >= sweep_seconds[0] ||
      sweep_seconds[2] >= sweep_seconds[1]) {
    note("FAIL: event sweep " + fmt(sweep_seconds[2], 3) +
         " s not strictly below broadcast " + fmt(sweep_seconds[0], 3) +
         " s and ghost " + fmt(sweep_seconds[1], 3) + " s");
    ok = false;
  } else {
    note("PASS: event mode sweep time strictly below both legacy modes");
  }
  return ok ? 0 : 1;
}
