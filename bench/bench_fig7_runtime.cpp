// Fig 7 (top) reproduction: EpiHiper running time vs network size.
// The paper shows running time increasing linearly with input size at a
// fixed processing-unit count. We time real serial simulations over
// networks of increasing size and report the measured time plus the
// size-normalized rate (flat rate = linear scaling), and a linear fit R^2.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace epi;

SyntheticRegion make_scaled_region(double scale) {
  SynthPopConfig config;
  config.region = "VA";
  config.scale = scale;
  config.seed = 20200325;
  return generate_region(config);
}

void BM_EpiHiperRuntimeVsSize(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1e6;
  const SyntheticRegion region = make_scaled_region(scale);
  const DiseaseModel model = covid_model();
  SimulationConfig config;
  config.num_ticks = 60;
  config.seed = 7;
  config.seeds = {SeedSpec{0, 5, 0}, SeedSpec{1, 5, 0}};
  for (auto _ : state) {
    const SimOutput out =
        run_simulation(region.network, region.population, model, config);
    benchmark::DoNotOptimize(out.total_infections);
  }
  state.counters["persons"] =
      static_cast<double>(region.population.person_count());
  state.counters["contacts"] =
      static_cast<double>(region.network.contact_count());
  state.counters["ns_per_person_tick"] = benchmark::Counter(
      static_cast<double>(region.population.person_count()) * 60.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_EpiHiperRuntimeVsSize)
    ->Arg(125)   // scale 1/8000 of VA ~ 1.1k persons
    ->Arg(250)   // ~2.1k
    ->Arg(500)   // ~4.3k
    ->Arg(1000)  // ~8.5k
    ->Arg(2000)  // ~17k
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using namespace epi::bench;
  heading("Fig 7 (top) — EpiHiper running time vs network size");
  note("paper: running time increases linearly with input size");
  note("check: Time column grows ~2x per row; ns_per_person_tick stays flat");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Explicit linearity check outside the google-benchmark loop.
  subheading("linearity fit (single runs)");
  std::vector<double> sizes, times;
  for (const double scale : {1.0 / 8000, 1.0 / 4000, 1.0 / 2000, 1.0 / 1000}) {
    const epi::SyntheticRegion region = make_scaled_region(scale);
    const epi::DiseaseModel model = epi::covid_model();
    epi::SimulationConfig config;
    config.num_ticks = 60;
    config.seed = 7;
    config.seeds = {epi::SeedSpec{0, 5, 0}, epi::SeedSpec{1, 5, 0}};
    epi::Timer timer;
    epi::run_simulation(region.network, region.population, model, config);
    sizes.push_back(static_cast<double>(region.population.person_count()));
    times.push_back(timer.elapsed_seconds());
    std::printf("  %8.0f persons  %8.3f s\n", sizes.back(), times.back());
  }
  compare("runtime-size correlation", "linear (r ~ 1)",
          fmt(epi::correlation(sizes, times), 4));
  return 0;
}
