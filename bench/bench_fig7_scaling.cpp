// Fig 7 (middle) reproduction: strong scaling of EpiHiper — performance
// improves as processing units are added, with diminishing returns (and
// eventual slowdown) from communication costs, the knee depending on
// problem size.
//
// This machine exposes a single core, so wall-clock speedup cannot
// materialize here; instead the bench runs the REAL partitioned engine at
// each rank count and reports the dedicated-core time model:
//     T(p) = max_rank(work) / throughput + comm_bytes(p) * wire_cost
// where work is the engine's instrumented per-rank operation count,
// throughput is measured from the serial run, and the wire cost is an
// Omnipath-class constant. Communication volume is the engine's actual
// mpilite traffic, not an estimate.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 7 (middle) — strong scaling of EpiHiper");
  note("modeled dedicated-core time: max-rank work / throughput + comm cost");
  note("(single-core host; work and comm volumes are measured, see header)");

  const DiseaseModel model = covid_model();
  // Three medium-to-large networks, as in the paper's three curves.
  const struct {
    const char* region;
    double scale;
  } networks[] = {{"VT", 1.0 / 100.0}, {"WV", 1.0 / 100.0}, {"KY", 1.0 / 150.0}};

  // Omnipath-class wire model: ~1.5 GB/s effective per-rank bandwidth
  // plus ~20 us software latency per message round (one infectious-set
  // exchange per tick per rank).
  const double wire_seconds_per_byte = 6.7e-10;
  const double latency_seconds_per_message = 2e-5;

  JsonReport report("fig7_scaling");
  for (const auto& net : networks) {
    SynthPopConfig pop_config;
    pop_config.region = net.region;
    pop_config.scale = net.scale;
    const SyntheticRegion region = generate_region(pop_config);
    SimulationConfig config;
    config.num_ticks = 60;
    config.seed = 11;
    config.seeds = {SeedSpec{0, 8, 0}};

    subheading(std::string(net.region) + " — " +
               fmt_int(region.population.person_count()) + " persons, " +
               fmt_int(region.network.contact_count()) + " contacts");

    // Serial baseline: measure throughput (work units per second).
    Timer timer;
    const SimOutput serial =
        run_simulation(region.network, region.population, model, config);
    const double serial_seconds = timer.elapsed_seconds();
    const double throughput =
        static_cast<double>(serial.work_units) / serial_seconds;
    const std::string prefix = std::string(net.region);
    report.metric(prefix + ".serial.seconds", serial_seconds);
    report.metric(prefix + ".serial.seconds_per_tick", serial_seconds / 60.0);
    report.metric(prefix + ".serial.work_units", serial.work_units);

    row({"ranks", "max-rank work", "comm MB", "modeled time", "speedup"}, 16);
    row({"1", fmt_int(serial.work_units), "0.0", fmt(serial_seconds, 3) + "s",
         "1.00"},
        16);
    for (const int ranks : {2, 4, 8, 16, 32, 64}) {
      const Partitioning parts =
          partition_network(region.network, static_cast<std::size_t>(ranks));
      if (parts.size() != static_cast<std::size_t>(ranks)) break;
      const SimOutput out = run_simulation_parallel(
          region.network, region.population, model, config, parts, ranks);
      const double compute_seconds =
          static_cast<double>(out.max_rank_work_units) / throughput;
      const double comm_seconds =
          static_cast<double>(out.communication_bytes) * wire_seconds_per_byte +
          latency_seconds_per_message * static_cast<double>(ranks) * 60.0;
      const double modeled = compute_seconds + comm_seconds;
      row({fmt_int(static_cast<std::uint64_t>(ranks)),
           fmt_int(out.max_rank_work_units),
           fmt(static_cast<double>(out.communication_bytes) / 1e6, 2),
           fmt(modeled, 3) + "s", fmt(serial_seconds / modeled, 2)},
          16);
      // Zero-padded rank keys keep the sorted-JSON series in rank order.
      char rank_key[8];
      std::snprintf(rank_key, sizeof(rank_key), "p%03d", ranks);
      const std::string rp = prefix + "." + rank_key;
      report.metric(rp + ".max_rank_work_units", out.max_rank_work_units);
      report.metric(rp + ".communication_bytes", out.communication_bytes);
      report.metric(rp + ".ghost_exchange_bytes", out.ghost_exchange_bytes);
      report.metric(rp + ".modeled_seconds", modeled);
      report.metric(rp + ".modeled_seconds_per_tick", modeled / 60.0);
      report.metric(rp + ".speedup", serial_seconds / modeled);
      std::uint64_t peak_memory = 0;
      for (const auto m : out.memory_bytes_per_tick) {
        peak_memory = std::max(peak_memory, m);
      }
      report.metric(rp + ".peak_memory_bytes", peak_memory);
    }
  }
  report.write();

  subheading("shape checks");
  note("- speedup grows with ranks, then flattens/reverses as communication");
  note("  dominates (the paper's diminishing-returns knee)");
  note("- larger networks sustain scaling to higher rank counts");
  return 0;
}
