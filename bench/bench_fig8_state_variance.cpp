// Fig 8 reproduction: variance in EpiHiper runtimes for the 50 US states
// + DC across cells/configurations on a representative day. The paper's
// observations: runtimes strongly correlate with network (state) size, and
// intervention scenarios spread the per-state distribution.
//
// Per-state distributions come from the cluster substrate's task model +
// the Slurm DES's runtime realization (the same machinery the Fig 9
// utilization study runs on); a sample of small states is cross-checked
// against real engine timings.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_report.hpp"
#include "cluster/slurm_sim.hpp"
#include "cluster/task_model.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Fig 8 — per-state runtime variance across cells");

  // One representative day: 12 cells x 3 replicates per state through the
  // DES (runtime noise models machine + intervention variation).
  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  const auto tasks = make_workflow_tasks(regions, 12, 3, 1.3);
  Rng rng(20200610);
  DesConfig des_config;
  des_config.runtime_sigma = 0.25;  // Fig 8 shows wide per-state spreads
  const DesResult result =
      simulate_cluster(bridges_cluster(), tasks, des_config, rng);

  std::map<std::string, std::vector<double>> per_state;
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const auto& task : tasks) by_id[task.id] = &task;
  for (const auto& job : result.jobs) {
    per_state[by_id[job.task_id]->region].push_back(
        (job.end_hours - job.start_hours) * 3600.0);
  }

  row({"state", "mean (s)", "min (s)", "max (s)", "sd (s)"}, 12);
  std::vector<double> mean_runtime, population;
  for (const StateInfo& state : us_states()) {
    const Summary s = summarize(per_state[state.abbrev]);
    row({state.abbrev, fmt(s.mean, 0), fmt(s.min, 0), fmt(s.max, 0),
         fmt(s.stddev, 0)},
        12);
    mean_runtime.push_back(s.mean);
    population.push_back(static_cast<double>(state.population));
  }

  subheading("correlation with network size");
  compare("corr(mean runtime, state population)",
          "strongly correlated to network size",
          fmt(correlation(mean_runtime, population), 3));

  subheading("real-engine cross-check (small states, 3 cells each)");
  row({"state", "persons", "cell runtimes (ms)"}, 14);
  const DiseaseModel model = covid_model();
  for (const char* abbrev : {"WY", "VT", "DC"}) {
    SynthPopConfig pop_config;
    pop_config.region = abbrev;
    pop_config.scale = 1.0 / 1000.0;
    const SyntheticRegion region = generate_region(pop_config);
    std::string cells_text;
    for (std::uint32_t cell = 0; cell < 3; ++cell) {
      SimulationConfig config;
      config.num_ticks = 60;
      config.seed = 100 + cell;
      config.seeds = {SeedSpec{0, 5, 0}};
      Timer timer;
      run_simulation(region.network, region.population, model, config);
      cells_text += fmt(timer.elapsed_seconds() * 1000.0, 1) + " ";
    }
    row({abbrev, fmt_int(region.population.person_count()), cells_text}, 14);
  }

  subheading("shape checks");
  note("- CA/TX/FL/NY sit at the top of the runtime range, WY/VT/DC at the");
  note("  bottom (the paper's ~1400s-to-minutes spread)");
  note("- per-state min/max spreads are substantial (intervention variance)");
  return 0;
}
