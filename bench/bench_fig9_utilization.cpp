// Fig 9 reproduction: CDFs of remote-cluster CPU utilization across
// workflow days. Paper: 9 all-state days with median 96.698% under
// FFDT-DC; 24 Virginia-only days with median 95.534%; the initial
// unordered (next-fit) runs achieved only 44.237%-55.579%.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_report.hpp"
#include "cluster/packing.hpp"
#include "cluster/slurm_sim.hpp"
#include "util/stats.hpp"

namespace {

using namespace epi;

// Simulates one workflow day: pack with `policy`, replay through the DES
// (backfill disabled for the arrival policy, as in the untuned runs).
// `allocated_nodes` models the Slurm allocation requested for the day:
// all-state days take the full 720 nodes, single-state days request a
// right-sized partition (utilization is measured against the allocation,
// as the paper's CPU-hours metric does).
double one_day_utilization(const std::vector<SimTask>& tasks,
                           PackingPolicy policy, Rng& rng,
                           std::uint32_t allocated_nodes = 720) {
  ClusterSpec cluster = bridges_cluster();
  cluster.nodes = allocated_nodes;
  const PackingPlan plan = pack_tasks(tasks, cluster.nodes, policy);
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const auto& task : tasks) by_id.emplace(task.id, &task);
  std::vector<SimTask> ordered;
  ordered.reserve(tasks.size());
  for (const PackingLevel& level : plan.levels) {
    for (std::uint64_t id : level.task_ids) ordered.push_back(*by_id.at(id));
  }
  DesConfig config;
  config.runtime_sigma = 0.15;
  config.backfill = policy != PackingPolicy::kNextFitArrival;
  return simulate_cluster(cluster, ordered, config, rng).utilization;
}

// The untuned production runs submitted each packing level as one Slurm
// job array and waited for the whole array before submitting the next —
// with unsorted tasks, each level's duration is set by its slowest job
// while short jobs idle their nodes. This level-synchronous execution is
// what produced the 44-56% utilization of the initial runs.
double level_synchronous_utilization(const std::vector<SimTask>& tasks,
                                     PackingPolicy policy, Rng& rng) {
  const PackingPlan plan = pack_tasks(tasks, bridges_cluster().nodes, policy);
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const auto& task : tasks) by_id.emplace(task.id, &task);
  double busy_node_hours = 0.0;
  double makespan = 0.0;
  for (const PackingLevel& level : plan.levels) {
    double level_duration = 0.0;
    for (std::uint64_t id : level.task_ids) {
      const SimTask& task = *by_id.at(id);
      const double runtime = task.est_hours * std::exp(rng.normal(0.0, 0.15));
      busy_node_hours += task.nodes_required * runtime;
      level_duration = std::max(level_duration, runtime);
    }
    makespan += level_duration;
  }
  return busy_node_hours / (720.0 * makespan);
}

void print_cdf(const std::vector<double>& utilizations) {
  const Ecdf cdf = ecdf(utilizations);
  for (std::size_t i = 0; i < cdf.values.size(); ++i) {
    std::printf("    %6.2f%%  ->  CDF %.3f\n", cdf.values[i] * 100.0,
                cdf.probs[i]);
  }
}

}  // namespace

int main() {
  using namespace epi::bench;

  heading("Fig 9 — CPU utilization CDFs across workflow days (FFDT-DC)");
  JsonReport json("fig9_utilization");

  std::vector<std::string> all_states;
  for (const StateInfo& s : us_states()) all_states.push_back(s.abbrev);

  // 9 all-state workflow days (alternating design shapes, like production).
  Rng rng(20200915);
  std::vector<double> all_state_days;
  for (int day = 0; day < 9; ++day) {
    const auto tasks = make_workflow_tasks(all_states, 12, 15,
                                           day % 2 == 0 ? 1.1 : 1.4);
    Rng day_rng = rng.derive({1, static_cast<std::uint64_t>(day)});
    all_state_days.push_back(
        one_day_utilization(tasks, PackingPolicy::kFirstFitDecreasing, day_rng));
  }
  subheading("all 50 states + DC, 9 workflow days");
  print_cdf(all_state_days);
  compare("median utilization", "96.698%",
          fmt(median(all_state_days) * 100.0, 3) + "%");
  json.metric("all_state_days", static_cast<std::uint64_t>(all_state_days.size()));
  json.metric("all_state_median_utilization", median(all_state_days));
  json.metric("all_state_min_utilization", min_value(all_state_days));
  json.metric("all_state_max_utilization", max_value(all_state_days));

  // 24 Virginia-only days: many cells for one region.
  std::vector<double> va_days;
  for (int day = 0; day < 24; ++day) {
    const auto tasks =
        make_workflow_tasks({"VA"}, 40 + (day % 5) * 15, 15, 1.2);
    Rng day_rng = rng.derive({2, static_cast<std::uint64_t>(day)});
    // Right-sized allocation: VA's DB bound admits 36 concurrent 4-node
    // jobs, so the nightly request is a 144-node partition.
    va_days.push_back(one_day_utilization(
        tasks, PackingPolicy::kFirstFitDecreasing, day_rng, 144));
  }
  subheading("Virginia-only, 24 workflow days");
  print_cdf(va_days);
  compare("median utilization", "95.534%",
          fmt(median(va_days) * 100.0, 3) + "%");
  json.metric("va_days", static_cast<std::uint64_t>(va_days.size()));
  json.metric("va_median_utilization", median(va_days));

  // The untuned baseline: unsorted next-fit submission, no backfill.
  std::vector<double> untuned_days;
  for (int day = 0; day < 9; ++day) {
    auto tasks = make_workflow_tasks(all_states, 12, 15, 1.1);
    Rng shuffle_rng = rng.derive({3, static_cast<std::uint64_t>(day)});
    shuffle_rng.shuffle(tasks.begin(), tasks.end());
    Rng day_rng = rng.derive({4, static_cast<std::uint64_t>(day)});
    untuned_days.push_back(level_synchronous_utilization(
        tasks, PackingPolicy::kNextFitArrival, day_rng));
  }
  subheading("initial unordered runs (next-fit job arrays, level-synchronous)");
  print_cdf(untuned_days);
  compare("utilization range", "44.237% - 55.579%",
          fmt(min_value(untuned_days) * 100.0, 1) + "% - " +
              fmt(max_value(untuned_days) * 100.0, 1) + "%");

  json.metric("untuned_min_utilization", min_value(untuned_days));
  json.metric("untuned_max_utilization", max_value(untuned_days));

  subheading("shape checks");
  note("- FFDT-DC sits far right of the untuned CDF (the Fig 9 gap)");
  note("- all-state and VA-only medians land within a few points of each");
  note("  other, both >> the untuned runs");
  json.write();
  return 0;
}
