// Partitioner study (paper section III): even the simple threshold
// algorithm costs real time at scale ("partitioning the network to binary
// chunks for California alone would take over one hour"), which is why
// partitions are computed once and cached on disk. This bench measures
// partition cost vs cache-load cost, balance quality, and the epsilon
// tolerance ablation.

#include <cstdio>
#include <filesystem>

#include "bench_report.hpp"
#include "network/partition.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Partitioner: cost, caching, and balance (paper section III)");

  SynthPopConfig config;
  config.region = "VA";
  config.scale = 1.0 / 500.0;  // ~17k persons, ~200k directed edges
  config.seed = 20200325;
  Timer generation_timer;
  const SyntheticRegion region = generate_region(config);
  note("network: " + fmt_int(region.population.person_count()) + " persons, " +
       fmt_int(region.network.edge_count()) + " directed edges (generated in " +
       fmt(generation_timer.elapsed_seconds(), 1) + "s)");

  subheading("partition + binary chunk materialization vs cached (P = 64)");
  // The production cost is dominated by splitting the network into the
  // per-rank binary chunk files ("partitioning the network to binary
  // chunks for California alone would take over one hour"); the cached
  // nightly path only has to check that the chunks exist.
  const std::string cache_dir = "/tmp/episcale_bench_partition_cache";
  std::filesystem::remove_all(cache_dir);
  bool hit = false;
  Timer cold_timer;
  const Partitioning partitioning =
      partition_with_cache(region.network, 64, 0, cache_dir, &hit);
  write_partition_chunks(region.network, partitioning, cache_dir);
  const double cold = cold_timer.elapsed_seconds();
  Timer warm_timer;
  const Partitioning reloaded =
      partition_with_cache(region.network, 64, 0, cache_dir, &hit);
  const bool chunks_ready =
      partition_chunks_cached(region.network, reloaded, cache_dir);
  const double warm = warm_timer.elapsed_seconds();
  compare("cold: partition + write 64 binary chunks",
          "CA at full scale: over an hour", fmt(cold * 1000.0, 1) + "ms");
  compare("warm: cache hit + chunk existence check",
          "static partitions reused nightly",
          fmt(warm * 1000.0, 2) + "ms (chunks=" +
              (chunks_ready ? "ready" : "missing") + ")");
  compare("cache speedup", ">> 1", fmt(cold / std::max(warm, 1e-9), 1) + "x");
  // Extrapolate the cold cost to the production CA network (~1 billion
  // directed edges at 26 contacts/person): linear in edges.
  const double edges_ratio =
      (39.5e6 * 26.0) / static_cast<double>(region.network.edge_count());
  compare("cold cost extrapolated to full-scale CA", "over an hour",
          fmt(cold * edges_ratio / 60.0, 0) + " minutes");
  note("  remaining gap vs 'over an hour': production re-parsed the CSV-text");
  note("  source (~3x the bytes) through a shared Lustre filesystem; this");
  note("  bench writes binary chunks to the local page cache");
  std::filesystem::remove_all(cache_dir);

  subheading("balance vs partition count (epsilon = 0)");
  row({"P", "imbalance (max/mean edges)", "largest part edges"}, 28);
  for (const std::size_t p : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const Partitioning parts = partition_network(region.network, p);
    std::uint64_t largest = 0;
    for (const auto& part : parts.parts()) {
      largest = std::max(largest, part.edge_count());
    }
    row({fmt_int(p), fmt(parts.edge_imbalance(), 3), fmt_int(largest)}, 28);
  }

  subheading("epsilon tolerance ablation (P = 32)");
  row({"epsilon (edges)", "parts", "imbalance"}, 20);
  const std::uint64_t per_part = region.network.edge_count() / 32;
  for (const std::uint64_t eps :
       {std::uint64_t{0}, per_part / 20, per_part / 5, per_part}) {
    const Partitioning parts = partition_network(region.network, 32, eps);
    row({fmt_int(eps), fmt_int(parts.size()), fmt(parts.edge_imbalance(), 3)},
        20);
  }
  note("larger epsilon lets early partitions absorb more edges, trading");
  note("balance for fewer partition splits (the paper's tolerance factor)");

  subheading("shape checks");
  note("- in-edge locality holds at every P (verified by the test suite)");
  note("- cache turns a repartition into a file read, as in production");
  return 0;
}
