// Shared console reporting for the reproduction benches.
//
// Every bench prints (a) the rows/series the paper reports, measured from
// this implementation, and (b) the paper's published reference values next
// to them, so EXPERIMENTS.md can record paper-vs-measured per figure.
// Absolute numbers are not expected to match (laptop-scale substrate);
// the *shape* — orderings, factors, crossovers — is the reproduction
// target.
// Besides the console output, a bench can fill a JsonReport to emit the
// same numbers machine-readably as BENCH_<name>.json (into the directory
// named by EPI_BENCH_JSON, or the working directory), so CI and
// regression tooling can diff measured values without scraping stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace epi::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Prints a row of fixed-width columns.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::uint64_t value) { return std::to_string(value); }

/// Paper-vs-measured one-liner.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

/// Machine-readable bench results. Collect named metrics (numbers or
/// strings) and call write(): the report lands as BENCH_<name>.json with
/// sorted keys, so repeated runs of a deterministic bench are
/// byte-identical and diffable.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void metric(const std::string& key, double value) { metrics_[key] = value; }
  void metric(const std::string& key, std::uint64_t value) {
    metrics_[key] = value;
  }
  void metric(const std::string& key, const std::string& value) {
    metrics_[key] = value;
  }

  /// EPI_BENCH_JSON directory override, else the working directory.
  std::string path() const {
    const char* dir = std::getenv("EPI_BENCH_JSON");
    const std::string prefix =
        (dir != nullptr && dir[0] != '\0') ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + name_ + ".json";
  }

  void write() const {
    JsonObject doc;
    doc["bench"] = name_;
    doc["metrics"] = metrics_;
    const std::string out_path = path();
    std::ofstream out(out_path);
    if (!out) {
      std::printf("  (could not write %s)\n", out_path.c_str());
      return;
    }
    out << Json(doc).dump(2) << "\n";
    std::printf("  wrote %s\n", out_path.c_str());
  }

 private:
  std::string name_;
  JsonObject metrics_;
};

}  // namespace epi::bench
