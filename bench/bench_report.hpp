// Shared console reporting for the reproduction benches.
//
// Every bench prints (a) the rows/series the paper reports, measured from
// this implementation, and (b) the paper's published reference values next
// to them, so EXPERIMENTS.md can record paper-vs-measured per figure.
// Absolute numbers are not expected to match (laptop-scale substrate);
// the *shape* — orderings, factors, crossovers — is the reproduction
// target.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace epi::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Prints a row of fixed-width columns.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double value, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_int(std::uint64_t value) { return std::to_string(value); }

/// Paper-vs-measured one-liner.
inline void compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

}  // namespace epi::bench
