// Resilience sweep: node MTBF x checkpoint interval over the nightly
// all-state job array.
//
// The paper's production system had to make an 8am deadline every night;
// this bench asks what that deadline guarantee costs when hardware
// fails. For each (node MTBF, checkpoint interval) cell it replays the
// FFDT-DC schedule through the Slurm DES under seeded fault injection
// across several fault seeds and reports:
//   * deadline-miss probability (any job unfinished at window end),
//   * mean wasted node-hours (execution lost to kills),
//   * mean checkpoint overhead node-hours (write + restore I/O),
//   * mean kill/requeue count and makespan.
// Fully deterministic under the fixed seed set: rerunning this binary
// reproduces every number bit for bit.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_report.hpp"
#include "cluster/packing.hpp"
#include "cluster/slurm_sim.hpp"
#include "util/stats.hpp"

namespace {

using namespace epi;

struct CellStats {
  double miss_prob = 0.0;
  double mean_wasted = 0.0;
  double mean_ckpt = 0.0;
  double mean_requeues = 0.0;
  double mean_makespan = 0.0;
};

std::vector<SimTask> ordered_national_tasks(std::uint32_t nodes) {
  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  const std::vector<SimTask> tasks = make_workflow_tasks(regions, 12, 15, 1.2);
  const PackingPlan plan =
      pack_tasks(tasks, nodes, PackingPolicy::kFirstFitDecreasing);
  std::map<std::uint64_t, const SimTask*> by_id;
  for (const SimTask& task : tasks) by_id.emplace(task.id, &task);
  std::vector<SimTask> ordered;
  ordered.reserve(tasks.size());
  for (const PackingLevel& level : plan.levels) {
    for (std::uint64_t id : level.task_ids) ordered.push_back(*by_id.at(id));
  }
  return ordered;
}

CellStats sweep_cell(const ClusterSpec& cluster,
                     const std::vector<SimTask>& ordered, double mtbf_days,
                     std::uint32_t ckpt_interval_ticks, int fault_seeds) {
  CellStats stats;
  int misses = 0;
  for (int s = 0; s < fault_seeds; ++s) {
    FaultSpec spec;
    spec.enabled = mtbf_days > 0.0;
    spec.seed = 0xC0FFEEULL + static_cast<std::uint64_t>(s);
    spec.node_mtbf_hours = mtbf_days * 24.0;
    spec.node_repair_hours = cluster.node_repair_hours;
    const FaultInjector injector(spec);

    DesConfig config;
    config.window_hours = cluster.window_hours;
    config.faults = &injector;
    config.checkpoint.interval_ticks = ckpt_interval_ticks;
    config.checkpoint.job_ticks = 365;  // the nightly designs' horizon
    Rng rng(20200325);  // schedule noise fixed: only faults vary per seed
    const DesResult result = simulate_cluster(cluster, ordered, config, rng);

    if (result.unfinished > 0) ++misses;
    stats.mean_wasted += result.wasted_node_hours / fault_seeds;
    stats.mean_ckpt += result.checkpoint_node_hours / fault_seeds;
    stats.mean_requeues +=
        static_cast<double>(result.jobs_requeued) / fault_seeds;
    stats.mean_makespan += result.makespan_hours / fault_seeds;
  }
  stats.miss_prob = static_cast<double>(misses) / fault_seeds;
  return stats;
}

}  // namespace

int main() {
  using namespace epi::bench;

  heading(
      "Resilience sweep — node MTBF x checkpoint interval, nightly job array");
  note("all-state economic-shape design (9180 jobs) on Bridges, FFDT-DC");
  note("order, 10h window; 5 fault seeds per cell, deterministic");

  const ClusterSpec cluster = bridges_cluster();
  const std::vector<SimTask> ordered = ordered_national_tasks(cluster.nodes);
  const int kFaultSeeds = 5;

  const double mtbf_days_sweep[] = {0.0, 120.0, 60.0, 30.0, 10.0};
  const std::uint32_t ckpt_sweep[] = {0, 120, 60, 30};

  row({"MTBF", "ckpt-ticks", "miss-prob", "wasted-nh", "ckpt-nh", "requeues",
       "makespan"});
  for (const double mtbf : mtbf_days_sweep) {
    for (const std::uint32_t interval : ckpt_sweep) {
      if (mtbf <= 0.0 && interval != 0) continue;  // no faults: one row
      const CellStats stats =
          sweep_cell(cluster, ordered, mtbf, interval, kFaultSeeds);
      row({mtbf <= 0.0 ? "inf" : fmt(mtbf, 0) + "d",
           interval == 0 ? "none" : fmt_int(interval),
           fmt(stats.miss_prob, 2), fmt(stats.mean_wasted, 1),
           fmt(stats.mean_ckpt, 1), fmt(stats.mean_requeues, 1),
           fmt(stats.mean_makespan, 2) + "h"});
    }
  }

  subheading("shape checks");
  note("- perfect hardware (inf MTBF): zero waste, zero requeues — the");
  note("  seed schedule");
  note("- wasted node-hours grow as MTBF shrinks; checkpointing trades");
  note("  wasted work for checkpoint I/O overhead");
  note("- nightly jobs are short, so aggressive checkpointing is pure");
  note("  loss: at 30-tick intervals the I/O inflates the makespan past");
  note("  the 10h window and the night misses its deadline outright");
  note("- at paper-plausible rates (MTBF >= 30d) the night completes via");
  note("  requeues: miss-prob stays at the no-fault level");
  return 0;
}
