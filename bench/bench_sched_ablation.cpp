// Scheduling ablations for the design choices DESIGN.md calls out:
//   1. packing policy (FFDT-DC vs NFDT-DC vs arrival order);
//   2. DB-access architecture: one database per region (the paper's Step 1
//      decomposition, a union-of-cliques coloring problem) vs a single
//      shared database (a dense conflict graph needing r-relaxed coloring);
//   3. whole-node allocation (the paper's choice) vs per-core packing;
//   4. the DB connection bound itself.

#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "cluster/coloring.hpp"
#include "cluster/packing.hpp"
#include "cluster/slurm_sim.hpp"
#include "util/stats.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Scheduling ablations (WMP / DB-WMP, paper section V)");

  std::vector<std::string> regions;
  for (const StateInfo& s : us_states()) regions.push_back(s.abbrev);
  const auto tasks = make_workflow_tasks(regions, 12, 15, 1.2);

  subheading("1. packing policy (planned level schedule, 720 nodes)");
  row({"policy", "levels", "makespan", "planned util"}, 16);
  for (const auto policy :
       {PackingPolicy::kNextFitArrival, PackingPolicy::kNextFitDecreasing,
        PackingPolicy::kFirstFitDecreasing}) {
    const PackingPlan plan = pack_tasks(tasks, 720, policy);
    row({packing_policy_name(policy), fmt_int(plan.levels.size()),
         fmt(plan.makespan_hours, 2) + "h",
         fmt(plan.planned_utilization * 100.0, 1) + "%"},
        16);
  }
  note("paper: FFDT-DC 17/10 worst case beats NFDT-DC's 2; in production");
  note("the ordered schedule reached ~96.7% vs 44-56% untuned");

  subheading("2. DB architecture as a coloring problem (5 regions x 36 tasks)");
  // Per-region DBs: conflicts only within a region -> union of cliques.
  const std::size_t tasks_per_region = 36, num_regions = 5;
  const std::size_t n = tasks_per_region * num_regions;
  std::vector<std::vector<std::size_t>> groups(num_regions);
  for (std::size_t i = 0; i < n; ++i) groups[i / tasks_per_region].push_back(i);
  const ConflictGraph per_region = ConflictGraph::union_of_cliques(n, groups);
  // Shared DB: every pair of tasks conflicts -> one big clique.
  std::vector<std::size_t> everyone(n);
  for (std::size_t i = 0; i < n; ++i) everyone[i] = i;
  const ConflictGraph shared = ConflictGraph::union_of_cliques(n, {everyone});
  row({"architecture", "r", "colors (batches)", "lower bound"}, 20);
  for (const std::size_t r : {6u, 12u, 24u}) {
    const auto c1 = relaxed_coloring(per_region, r);
    row({"per-region DBs", fmt_int(r), fmt_int(c1.colors_used),
         fmt_int(clique_color_lower_bound(tasks_per_region, r))},
        20);
    const auto c2 = relaxed_coloring(shared, r);
    row({"shared DB", fmt_int(r), fmt_int(c2.colors_used),
         fmt_int(clique_color_lower_bound(n, r))},
        20);
  }
  note("per-region decomposition needs ~num_regions-x fewer batches: the");
  note("paper's Step 1 makes the coloring problem easy");

  subheading("3. whole-node vs per-core allocation (DES, economic design)");
  // Whole-node: tasks sized in nodes on a 720-node machine. Per-core:
  // the same work expressed in 28-core slices on a 20160-core machine,
  // with +15% runtime from memory contention between co-located jobs
  // (the exact failure mode the paper avoided by not sharing nodes).
  Rng rng1(31415), rng2(31415);
  DesConfig des_config;
  const DesResult whole =
      simulate_cluster(bridges_cluster(), tasks, des_config, rng1);
  ClusterSpec per_core = bridges_cluster();
  per_core.nodes = 720 * 28;  // core-granular "nodes"
  per_core.cpus_per_node = 1;
  per_core.cores_per_cpu = 1;
  std::vector<SimTask> core_tasks = tasks;
  for (auto& task : core_tasks) {
    task.nodes_required *= 28;
    task.est_hours *= 1.15;  // contention penalty
  }
  const DesResult cores =
      simulate_cluster(per_core, core_tasks, des_config, rng2);
  row({"allocation", "makespan", "utilization"}, 18);
  row({"whole nodes", fmt(whole.makespan_hours, 2) + "h",
       fmt(whole.utilization * 100.0, 1) + "%"},
      18);
  row({"per-core (+15% contention)", fmt(cores.makespan_hours, 2) + "h",
       fmt(cores.utilization * 100.0, 1) + "%"},
      18);
  note("finer allocation buys little once contention is priced in; the");
  note("paper 'intentionally avoided using partial nodes'");

  subheading("4. DB connection bound sweep (FFDT order through the DES)");
  row({"bound (conns)", "concurrent/region", "makespan", "utilization"}, 18);
  for (const std::uint32_t bound : {112u, 280u, 560u, 1008u, 100000u}) {
    Rng rng(2718);
    const DesResult result =
        simulate_cluster(bridges_cluster(), tasks, des_config, rng, bound);
    row({fmt_int(bound), fmt_int(bound / 28), fmt(result.makespan_hours, 2) + "h",
         fmt(result.utilization * 100.0, 1) + "%"},
        18);
  }
  note("tight bounds serialize each region's cells and stretch the night;");
  note("the constraint stops binding near the tuned production value");
  return 0;
}
