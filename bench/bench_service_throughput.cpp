// Scenario-service throughput: content-addressed caching + campaign
// batching vs naively running every request cold (DESIGN.md §11).
//
// The workload is a realistic planning-cell burst: one region's
// calibration gets re-requested with different tails (posterior sizes,
// forecast lengths), several analysts submit exact duplicates, and a
// couple of nightly design runs ride along. The naive baseline executes
// every request alone against a fresh service (no cache, no dedup, no
// stage sharing) — what the engines cost before this layer existed.
//
// Gate (CI): the served wave must beat naive sequential by >= 2x wall
// time, with a nonzero cache-hit rate; the bench exits nonzero otherwise.
// Emits BENCH_service_throughput.json (EPI_BENCH_JSON directory or cwd).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "service/service.hpp"
#include "util/timer.hpp"

using namespace epi;
using namespace epi::service;

namespace {

std::vector<ScenarioRequest> burst_workload() {
  ScenarioRequest base;
  base.kind = RequestKind::kCalibration;
  base.region = "VT";
  base.scale_denominator = 400.0;
  base.seed = 20200411;
  base.prior_configs = 8;
  base.posterior_configs = 6;
  base.calibration_days = 30;
  base.horizon_days = 10;
  base.prediction_runs = 2;
  base.mcmc_samples = 40;
  base.mcmc_burn_in = 20;

  std::vector<ScenarioRequest> requests;
  const auto push = [&requests](ScenarioRequest request, std::string id,
                                std::string requester, std::int64_t priority) {
    request.id = std::move(id);
    request.requester = std::move(requester);
    request.priority = priority;
    requests.push_back(std::move(request));
  };

  // The campaign: one prior stage, five different tails.
  push(base, "cal-base", "epi-team", 5);
  for (std::size_t i = 0; i < 4; ++i) {
    ScenarioRequest tail = base;
    tail.posterior_configs = 8 + 2 * i;
    tail.prediction_runs = 2 + i;
    push(tail, "cal-tail-" + std::to_string(i), "epi-team", 0);
  }
  // Analysts resubmitting the identical scenario (dedup).
  push(base, "cal-dup-1", "press-office", -1);
  push(base, "cal-dup-2", "governor-briefing", 3);
  push(base, "cal-dup-3", "county-liaison", -2);
  // A second calibration window: its own stage, shared region build.
  ScenarioRequest window = base;
  window.calibration_days = 35;
  push(window, "cal-window", "epi-team", 0);
  // Nightly design runs, one duplicated.
  ScenarioRequest nightly;
  nightly.kind = RequestKind::kNightly;
  nightly.design = "economic";
  nightly.regions = {"WY", "VT"};
  nightly.scale_denominator = 8000.0;
  nightly.seed = 20200325;
  nightly.sample_executions = 2;
  nightly.executed_days = 20;
  push(nightly, "nightly-1", "ops", 2);
  push(nightly, "nightly-dup", "ops", 1);
  return requests;
}

}  // namespace

int main() {
  bench::heading(
      "Scenario-service throughput: cached/batched wave vs naive sequential");
  const std::vector<ScenarioRequest> requests = burst_workload();
  std::printf("  workload: %zu requests\n", requests.size());

  // Naive baseline: every request cold and alone — a fresh service per
  // request so nothing is shared (jobs=1 on both sides; this measures
  // the service layer, not thread scaling).
  Timer naive_timer;
  for (const ScenarioRequest& request : requests) {
    ServiceConfig config;
    config.jobs = 1;
    config.logical_workers = 1;
    ScenarioService lone(config);
    (void)lone.serve({request});
  }
  const double naive_seconds = naive_timer.elapsed_seconds();

  // The service wave: one shared cache, dedup, campaign batching.
  ServiceConfig config;
  config.jobs = 1;
  config.logical_workers = 4;
  ScenarioService svc(config);
  Timer wave_timer;
  const ServiceOutcome outcome = svc.serve(requests);
  const double wave_seconds = wave_timer.elapsed_seconds();

  const ServiceReport& report = outcome.report;
  const double speedup =
      wave_seconds > 0.0 ? naive_seconds / wave_seconds : 0.0;
  const std::uint64_t hits = report.cache.total_hits();
  const std::uint64_t lookups = report.cache.total_lookups();
  const double hit_rate =
      lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                  : 0.0;
  const double wave_hours = wave_seconds / 3600.0;
  const double requests_per_hour =
      wave_hours > 0.0 ? static_cast<double>(report.requests) / wave_hours
                       : 0.0;
  const double virtual_savings =
      report.actual_cost_hours > 0.0
          ? report.naive_cost_hours / report.actual_cost_hours
          : 0.0;

  bench::subheading("measured");
  bench::row({"", "naive s", "wave s", "speedup", "hit rate", "req/hour"});
  bench::row({"sequential vs service", bench::fmt(naive_seconds),
              bench::fmt(wave_seconds), bench::fmt(speedup, 2),
              bench::fmt(hit_rate, 3), bench::fmt(requests_per_hour, 0)});
  bench::note("computed units: " + bench::fmt_int(report.computed_units) +
              " of " + bench::fmt_int(report.requests) + " requests (" +
              bench::fmt_int(report.deduped_requests) + " deduped, " +
              bench::fmt_int(report.stage_shares) + " stage shares)");
  bench::note("virtual cost: naive " + bench::fmt(report.naive_cost_hours, 2) +
              " h vs actual " + bench::fmt(report.actual_cost_hours, 2) +
              " h (" + bench::fmt(virtual_savings, 2) + "x)");

  bench::JsonReport json("service_throughput");
  json.metric("requests", report.requests);
  json.metric("computed_units", report.computed_units);
  json.metric("deduped_requests", report.deduped_requests);
  json.metric("stage_shares", report.stage_shares);
  json.metric("campaigns", report.campaigns);
  json.metric("cache_hits", hits);
  json.metric("cache_lookups", lookups);
  json.metric("cache_hit_rate", hit_rate);
  json.metric("naive_seconds", naive_seconds);
  json.metric("wave_seconds", wave_seconds);
  json.metric("speedup_vs_naive", speedup);
  json.metric("requests_per_hour", requests_per_hour);
  json.metric("virtual_naive_cost_hours", report.naive_cost_hours);
  json.metric("virtual_actual_cost_hours", report.actual_cost_hours);
  json.metric("virtual_savings_factor", virtual_savings);
  json.write();

  bool pass = true;
  if (speedup < 2.0) {
    std::printf("\nGATE FAILED: speedup %.2fx < 2x over naive sequential\n",
                speedup);
    pass = false;
  }
  if (hits == 0) {
    std::printf("\nGATE FAILED: cache-hit rate is zero\n");
    pass = false;
  }
  if (pass) {
    std::printf("\ngate passed: %.2fx >= 2x, hit rate %.3f > 0\n", speedup,
                hit_rate);
  }
  return pass ? 0 : 1;
}
