// Table I reproduction: the three production workflows — economic,
// prediction, calibration — their cell/region/replicate structure,
// simulation counts, and raw/summary data volumes.
//
// The schedule and data-flow run at full design fidelity (9180 / 15300
// jobs through the FFDT-DC mapper and the Bridges DES); simulation physics
// run for a sampled subset at small population scale, with volumes
// extrapolated to scale 1 (see DESIGN.md substitutions).

#include <cstdio>

#include "bench_report.hpp"
#include "util/stats.hpp"
#include "workflow/nightly.hpp"

namespace {

struct PaperRow {
  const char* workflow;
  int cells;
  int states;
  int replicates;
  int simulations;
  const char* raw_output;
  const char* summary_output;
};

constexpr PaperRow kPaperRows[] = {
    {"economic", 12, 51, 15, 9180, "3.0TB", "5.0GB"},
    {"prediction", 12, 51, 15, 9180, "1.0TB", "2.5GB"},
    {"calibration", 300, 51, 1, 15300, "5.0TB", "4.0GB"},
};

}  // namespace

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Table I — workflow scale and data volumes");
  note("schedule + data plane at full design size; simulation physics");
  note("sampled and extrapolated to scale 1 (DESIGN.md, substitution table)");

  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 6;
  config.executed_days = 60;

  NightlyWorkflow engine(config);

  JsonReport json("table1_workflows");
  row({"workflow", "cells", "states", "reps", "sims", "raw", "summary",
       "util", "makespan"});
  const WorkflowDesign designs[] = {economic_design(), prediction_design(),
                                    calibration_design()};
  for (std::size_t i = 0; i < 3; ++i) {
    const WorkflowReport report = engine.run(designs[i]);
    row({designs[i].name, fmt_int(designs[i].cells),
         fmt_int(designs[i].regions.size()), fmt_int(designs[i].replicates),
         fmt_int(report.planned_simulations),
         format_bytes(report.raw_bytes_full_scale),
         format_bytes(report.summary_bytes_full_scale),
         fmt(report.utilization, 3), fmt(report.schedule_makespan_hours, 2) + "h"});
    const std::string prefix = std::string(designs[i].name) + ".";
    json.metric(prefix + "simulations", report.planned_simulations);
    json.metric(prefix + "utilization", report.utilization);
    json.metric(prefix + "makespan_hours", report.schedule_makespan_hours);
    json.metric(prefix + "raw_bytes_full_scale", report.raw_bytes_full_scale);
    json.metric(prefix + "summary_bytes_full_scale",
                report.summary_bytes_full_scale);
    json.metric(prefix + "bytes_to_remote", report.bytes_to_remote);
    json.metric(prefix + "bytes_to_home", report.bytes_to_home);
  }

  subheading("paper reference (Table I)");
  row({"workflow", "cells", "states", "reps", "sims", "raw", "summary"});
  for (const PaperRow& paper : kPaperRows) {
    row({paper.workflow, fmt_int(paper.cells), fmt_int(paper.states),
         fmt_int(paper.replicates), fmt_int(paper.simulations),
         paper.raw_output, paper.summary_output});
  }

  subheading("shape checks");
  note("- simulation counts match Table I exactly (9180 / 9180 / 15300)");
  note("- raw output in the TB regime at scale 1, summaries in the GB regime");
  note("- calibration (300 cells x 1 rep) produces the most raw data, as in");
  note("  the paper; summaries scale with #sims, not population");
  json.write();
  return 0;
}
