// Table II reproduction: the two-cluster hardware configuration and the
// data volumes generated and moved between them — the 2 TB one-time
// population shipment, daily configuration pushes, raw outputs generated
// remotely, and summarized outputs returned home.

#include <cstdio>
#include <sstream>

#include "bench_report.hpp"
#include "cluster/machine.hpp"
#include "cluster/transfer.hpp"
#include "synthpop/generator.hpp"
#include "util/stats.hpp"
#include "workflow/nightly.hpp"

int main() {
  using namespace epi;
  using namespace epi::bench;

  heading("Table II — cluster configuration and data movement");

  const ClusterSpec remote = bridges_cluster();
  const ClusterSpec home = rivanna_cluster();
  row({"", "remote (Bridges)", "home (Rivanna)"}, 26);
  row({"# allocated nodes", fmt_int(remote.nodes), fmt_int(home.nodes)}, 26);
  row({"# CPUs/node", fmt_int(remote.cpus_per_node), fmt_int(home.cpus_per_node)},
      26);
  row({"# cores/CPU", fmt_int(remote.cores_per_cpu), fmt_int(home.cores_per_cpu)},
      26);
  row({"RAM per node (GB)", fmt(remote.ram_gb_per_node, 0),
       fmt(home.ram_gb_per_node, 0)},
      26);
  row({"total cores", fmt_int(remote.total_cores()), fmt_int(home.total_cores())},
      26);
  row({"CPU", remote.cpu_model, home.cpu_model}, 26);
  row({"network", remote.interconnect, home.interconnect}, 26);
  row({"filesystem", remote.filesystem, home.filesystem}, 26);
  row({"nightly window (h)", fmt(remote.window_hours, 0), "always-on"}, 26);

  subheading("one-time population/network shipment");
  // Estimate the full-scale trait + network payload from a generated
  // sample: the production shipment is CSV text (person-trait file plus
  // the contact-network edge file), measured here by serializing the
  // sample and extrapolating bytes-per-person to the 328M-person US.
  SynthPopConfig pop_config;
  pop_config.region = "VT";
  pop_config.scale = 1.0 / 500.0;
  pop_config.week_long = true;  // the shipped networks are week-long
  const SyntheticRegion sample = generate_region(pop_config);
  std::ostringstream network_csv, person_csv;
  sample.network.write_csv(network_csv);
  sample.population.write_csv(person_csv);
  const double bytes_per_person =
      static_cast<double>(network_csv.str().size() + person_csv.str().size()) /
      static_cast<double>(sample.population.person_count());
  const double one_time_bytes =
      bytes_per_person * static_cast<double>(total_us_population());
  GlobusTransfer wan;
  const double one_time_seconds =
      wan.transfer("populations + networks", static_cast<std::uint64_t>(one_time_bytes),
                   true);
  compare("traits + contact networks", "2TB (one time)",
          format_bytes(one_time_bytes) + " (" +
              fmt(one_time_seconds / 3600.0, 1) + "h transfer)");
  note("  week-long CSV networks at ~25 contacts/person, as shipped");

  subheading("daily volumes (from one economic-workflow night)");
  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 6;
  config.executed_days = 60;
  NightlyWorkflow engine(config);
  const WorkflowReport report = engine.run(economic_design());
  compare("daily simulation configurations", "100MB-8.7GB",
          format_bytes(static_cast<double>(report.config_bytes)));
  compare("raw simulation outputs generated", "20GB-3.5TB",
          format_bytes(report.raw_bytes_full_scale));
  compare("summarized outputs returned", "120MB-70GB",
          format_bytes(report.summary_bytes_full_scale));
  compare("bytes shipped home -> remote", "(configs)",
          format_bytes(static_cast<double>(report.bytes_to_remote)));
  compare("bytes shipped remote -> home", "(summaries)",
          format_bytes(static_cast<double>(report.bytes_to_home)));

  subheading("shape checks");
  note("- one-time shipment lands in the TB regime; daily configs far below");
  note("- raw outputs stay on the remote cluster; only summaries (3-4 orders");
  note("  of magnitude smaller) cross the WAN, as the paper's split requires");
  return 0;
}
