file(REMOVE_RECURSE
  "CMakeFiles/bench_case_county_projections.dir/bench_case_county_projections.cpp.o"
  "CMakeFiles/bench_case_county_projections.dir/bench_case_county_projections.cpp.o.d"
  "bench_case_county_projections"
  "bench_case_county_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_county_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
