# Empty compiler generated dependencies file for bench_case_county_projections.
# This may be replaced when dependencies are built.
