file(REMOVE_RECURSE
  "CMakeFiles/bench_case_medical_costs.dir/bench_case_medical_costs.cpp.o"
  "CMakeFiles/bench_case_medical_costs.dir/bench_case_medical_costs.cpp.o.d"
  "bench_case_medical_costs"
  "bench_case_medical_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_medical_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
