# Empty dependencies file for bench_case_medical_costs.
# This may be replaced when dependencies are built.
