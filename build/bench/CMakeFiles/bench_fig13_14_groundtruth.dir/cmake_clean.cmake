file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_groundtruth.dir/bench_fig13_14_groundtruth.cpp.o"
  "CMakeFiles/bench_fig13_14_groundtruth.dir/bench_fig13_14_groundtruth.cpp.o.d"
  "bench_fig13_14_groundtruth"
  "bench_fig13_14_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
