# Empty dependencies file for bench_fig13_14_groundtruth.
# This may be replaced when dependencies are built.
