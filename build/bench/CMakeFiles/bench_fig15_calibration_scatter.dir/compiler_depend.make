# Empty compiler generated dependencies file for bench_fig15_calibration_scatter.
# This may be replaced when dependencies are built.
