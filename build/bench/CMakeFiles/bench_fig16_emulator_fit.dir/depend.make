# Empty dependencies file for bench_fig16_emulator_fit.
# This may be replaced when dependencies are built.
