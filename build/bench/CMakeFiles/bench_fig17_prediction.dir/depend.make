# Empty dependencies file for bench_fig17_prediction.
# This may be replaced when dependencies are built.
