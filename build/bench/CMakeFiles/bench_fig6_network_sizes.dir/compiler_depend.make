# Empty compiler generated dependencies file for bench_fig6_network_sizes.
# This may be replaced when dependencies are built.
