file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_interventions.dir/bench_fig7_interventions.cpp.o"
  "CMakeFiles/bench_fig7_interventions.dir/bench_fig7_interventions.cpp.o.d"
  "bench_fig7_interventions"
  "bench_fig7_interventions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_interventions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
