
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_runtime.cpp" "bench/CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/epihiper/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synthpop/CMakeFiles/epi_synthpop.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  "/root/repo/build/src/mpilite/CMakeFiles/epi_mpilite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
