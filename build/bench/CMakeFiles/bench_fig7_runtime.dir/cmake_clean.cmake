file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cpp.o"
  "CMakeFiles/bench_fig7_runtime.dir/bench_fig7_runtime.cpp.o.d"
  "bench_fig7_runtime"
  "bench_fig7_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
