# Empty compiler generated dependencies file for bench_fig8_state_variance.
# This may be replaced when dependencies are built.
