file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioner.dir/bench_partitioner.cpp.o"
  "CMakeFiles/bench_partitioner.dir/bench_partitioner.cpp.o.d"
  "bench_partitioner"
  "bench_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
