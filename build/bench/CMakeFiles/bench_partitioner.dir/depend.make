# Empty dependencies file for bench_partitioner.
# This may be replaced when dependencies are built.
