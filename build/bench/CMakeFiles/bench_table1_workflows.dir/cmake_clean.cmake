file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_workflows.dir/bench_table1_workflows.cpp.o"
  "CMakeFiles/bench_table1_workflows.dir/bench_table1_workflows.cpp.o.d"
  "bench_table1_workflows"
  "bench_table1_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
