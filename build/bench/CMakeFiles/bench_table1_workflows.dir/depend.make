# Empty dependencies file for bench_table1_workflows.
# This may be replaced when dependencies are built.
