
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/calibrate_and_forecast.cpp" "examples/CMakeFiles/calibrate_and_forecast.dir/calibrate_and_forecast.cpp.o" "gcc" "examples/CMakeFiles/calibrate_and_forecast.dir/calibrate_and_forecast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mpilite/CMakeFiles/epi_mpilite.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  "/root/repo/build/src/synthpop/CMakeFiles/epi_synthpop.dir/DependInfo.cmake"
  "/root/repo/build/src/persondb/CMakeFiles/epi_persondb.dir/DependInfo.cmake"
  "/root/repo/build/src/epihiper/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metapop/CMakeFiles/epi_metapop.dir/DependInfo.cmake"
  "/root/repo/build/src/emulator/CMakeFiles/epi_emulator.dir/DependInfo.cmake"
  "/root/repo/build/src/calibration/CMakeFiles/epi_calibration.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/epi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/epi_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/surveillance/CMakeFiles/epi_surveillance.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/epi_workflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
