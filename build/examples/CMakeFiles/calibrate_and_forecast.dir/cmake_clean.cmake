file(REMOVE_RECURSE
  "CMakeFiles/calibrate_and_forecast.dir/calibrate_and_forecast.cpp.o"
  "CMakeFiles/calibrate_and_forecast.dir/calibrate_and_forecast.cpp.o.d"
  "calibrate_and_forecast"
  "calibrate_and_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_and_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
