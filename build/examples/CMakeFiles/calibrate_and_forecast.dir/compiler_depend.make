# Empty compiler generated dependencies file for calibrate_and_forecast.
# This may be replaced when dependencies are built.
