# Empty dependencies file for counterfactual_study.
# This may be replaced when dependencies are built.
