file(REMOVE_RECURSE
  "CMakeFiles/nightly_national_run.dir/nightly_national_run.cpp.o"
  "CMakeFiles/nightly_national_run.dir/nightly_national_run.cpp.o.d"
  "nightly_national_run"
  "nightly_national_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nightly_national_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
