# Empty dependencies file for nightly_national_run.
# This may be replaced when dependencies are built.
