# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("mpilite")
subdirs("synthpop")
subdirs("network")
subdirs("persondb")
subdirs("epihiper")
subdirs("metapop")
subdirs("emulator")
subdirs("calibration")
subdirs("cluster")
subdirs("workflow")
subdirs("analytics")
subdirs("surveillance")
