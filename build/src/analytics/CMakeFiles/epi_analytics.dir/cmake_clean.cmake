file(REMOVE_RECURSE
  "CMakeFiles/epi_analytics.dir/aggregate.cpp.o"
  "CMakeFiles/epi_analytics.dir/aggregate.cpp.o.d"
  "CMakeFiles/epi_analytics.dir/costs.cpp.o"
  "CMakeFiles/epi_analytics.dir/costs.cpp.o.d"
  "CMakeFiles/epi_analytics.dir/dendrogram.cpp.o"
  "CMakeFiles/epi_analytics.dir/dendrogram.cpp.o.d"
  "CMakeFiles/epi_analytics.dir/ensemble.cpp.o"
  "CMakeFiles/epi_analytics.dir/ensemble.cpp.o.d"
  "CMakeFiles/epi_analytics.dir/forecast.cpp.o"
  "CMakeFiles/epi_analytics.dir/forecast.cpp.o.d"
  "CMakeFiles/epi_analytics.dir/output_io.cpp.o"
  "CMakeFiles/epi_analytics.dir/output_io.cpp.o.d"
  "libepi_analytics.a"
  "libepi_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
