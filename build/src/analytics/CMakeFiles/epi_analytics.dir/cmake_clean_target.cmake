file(REMOVE_RECURSE
  "libepi_analytics.a"
)
