# Empty dependencies file for epi_analytics.
# This may be replaced when dependencies are built.
