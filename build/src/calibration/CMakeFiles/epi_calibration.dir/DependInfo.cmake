
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calibration/calibrate.cpp" "src/calibration/CMakeFiles/epi_calibration.dir/calibrate.cpp.o" "gcc" "src/calibration/CMakeFiles/epi_calibration.dir/calibrate.cpp.o.d"
  "/root/repo/src/calibration/mcmc.cpp" "src/calibration/CMakeFiles/epi_calibration.dir/mcmc.cpp.o" "gcc" "src/calibration/CMakeFiles/epi_calibration.dir/mcmc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/emulator/CMakeFiles/epi_emulator.dir/DependInfo.cmake"
  "/root/repo/build/src/metapop/CMakeFiles/epi_metapop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
