file(REMOVE_RECURSE
  "CMakeFiles/epi_calibration.dir/calibrate.cpp.o"
  "CMakeFiles/epi_calibration.dir/calibrate.cpp.o.d"
  "CMakeFiles/epi_calibration.dir/mcmc.cpp.o"
  "CMakeFiles/epi_calibration.dir/mcmc.cpp.o.d"
  "libepi_calibration.a"
  "libepi_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
