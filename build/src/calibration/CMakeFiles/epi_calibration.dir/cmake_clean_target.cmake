file(REMOVE_RECURSE
  "libepi_calibration.a"
)
