# Empty compiler generated dependencies file for epi_calibration.
# This may be replaced when dependencies are built.
