
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/coloring.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/coloring.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/coloring.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/machine.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/machine.cpp.o.d"
  "/root/repo/src/cluster/packing.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/packing.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/packing.cpp.o.d"
  "/root/repo/src/cluster/slurm_sim.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/slurm_sim.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/slurm_sim.cpp.o.d"
  "/root/repo/src/cluster/task_model.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/task_model.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/task_model.cpp.o.d"
  "/root/repo/src/cluster/transfer.cpp" "src/cluster/CMakeFiles/epi_cluster.dir/transfer.cpp.o" "gcc" "src/cluster/CMakeFiles/epi_cluster.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synthpop/CMakeFiles/epi_synthpop.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
