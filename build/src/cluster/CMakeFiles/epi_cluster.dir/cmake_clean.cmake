file(REMOVE_RECURSE
  "CMakeFiles/epi_cluster.dir/coloring.cpp.o"
  "CMakeFiles/epi_cluster.dir/coloring.cpp.o.d"
  "CMakeFiles/epi_cluster.dir/machine.cpp.o"
  "CMakeFiles/epi_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/epi_cluster.dir/packing.cpp.o"
  "CMakeFiles/epi_cluster.dir/packing.cpp.o.d"
  "CMakeFiles/epi_cluster.dir/slurm_sim.cpp.o"
  "CMakeFiles/epi_cluster.dir/slurm_sim.cpp.o.d"
  "CMakeFiles/epi_cluster.dir/task_model.cpp.o"
  "CMakeFiles/epi_cluster.dir/task_model.cpp.o.d"
  "CMakeFiles/epi_cluster.dir/transfer.cpp.o"
  "CMakeFiles/epi_cluster.dir/transfer.cpp.o.d"
  "libepi_cluster.a"
  "libepi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
