file(REMOVE_RECURSE
  "libepi_cluster.a"
)
