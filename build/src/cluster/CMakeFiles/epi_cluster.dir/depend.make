# Empty dependencies file for epi_cluster.
# This may be replaced when dependencies are built.
