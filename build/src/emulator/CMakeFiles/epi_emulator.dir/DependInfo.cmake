
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emulator/gp.cpp" "src/emulator/CMakeFiles/epi_emulator.dir/gp.cpp.o" "gcc" "src/emulator/CMakeFiles/epi_emulator.dir/gp.cpp.o.d"
  "/root/repo/src/emulator/gpmsa.cpp" "src/emulator/CMakeFiles/epi_emulator.dir/gpmsa.cpp.o" "gcc" "src/emulator/CMakeFiles/epi_emulator.dir/gpmsa.cpp.o.d"
  "/root/repo/src/emulator/linalg.cpp" "src/emulator/CMakeFiles/epi_emulator.dir/linalg.cpp.o" "gcc" "src/emulator/CMakeFiles/epi_emulator.dir/linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
