file(REMOVE_RECURSE
  "CMakeFiles/epi_emulator.dir/gp.cpp.o"
  "CMakeFiles/epi_emulator.dir/gp.cpp.o.d"
  "CMakeFiles/epi_emulator.dir/gpmsa.cpp.o"
  "CMakeFiles/epi_emulator.dir/gpmsa.cpp.o.d"
  "CMakeFiles/epi_emulator.dir/linalg.cpp.o"
  "CMakeFiles/epi_emulator.dir/linalg.cpp.o.d"
  "libepi_emulator.a"
  "libepi_emulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
