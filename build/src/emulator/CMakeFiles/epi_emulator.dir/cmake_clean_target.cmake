file(REMOVE_RECURSE
  "libepi_emulator.a"
)
