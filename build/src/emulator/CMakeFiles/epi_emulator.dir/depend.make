# Empty dependencies file for epi_emulator.
# This may be replaced when dependencies are built.
