file(REMOVE_RECURSE
  "CMakeFiles/epi_core.dir/disease_model.cpp.o"
  "CMakeFiles/epi_core.dir/disease_model.cpp.o.d"
  "CMakeFiles/epi_core.dir/interventions.cpp.o"
  "CMakeFiles/epi_core.dir/interventions.cpp.o.d"
  "CMakeFiles/epi_core.dir/parallel.cpp.o"
  "CMakeFiles/epi_core.dir/parallel.cpp.o.d"
  "CMakeFiles/epi_core.dir/scripted.cpp.o"
  "CMakeFiles/epi_core.dir/scripted.cpp.o.d"
  "CMakeFiles/epi_core.dir/simulation.cpp.o"
  "CMakeFiles/epi_core.dir/simulation.cpp.o.d"
  "libepi_core.a"
  "libepi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
