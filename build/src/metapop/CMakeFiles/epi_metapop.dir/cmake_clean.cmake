file(REMOVE_RECURSE
  "CMakeFiles/epi_metapop.dir/metapop.cpp.o"
  "CMakeFiles/epi_metapop.dir/metapop.cpp.o.d"
  "libepi_metapop.a"
  "libepi_metapop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_metapop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
