file(REMOVE_RECURSE
  "libepi_metapop.a"
)
