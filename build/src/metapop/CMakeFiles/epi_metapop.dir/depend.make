# Empty dependencies file for epi_metapop.
# This may be replaced when dependencies are built.
