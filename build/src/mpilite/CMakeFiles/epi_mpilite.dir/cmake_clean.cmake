file(REMOVE_RECURSE
  "CMakeFiles/epi_mpilite.dir/comm.cpp.o"
  "CMakeFiles/epi_mpilite.dir/comm.cpp.o.d"
  "libepi_mpilite.a"
  "libepi_mpilite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_mpilite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
