file(REMOVE_RECURSE
  "libepi_mpilite.a"
)
