# Empty compiler generated dependencies file for epi_mpilite.
# This may be replaced when dependencies are built.
