file(REMOVE_RECURSE
  "CMakeFiles/epi_network.dir/contact_network.cpp.o"
  "CMakeFiles/epi_network.dir/contact_network.cpp.o.d"
  "CMakeFiles/epi_network.dir/partition.cpp.o"
  "CMakeFiles/epi_network.dir/partition.cpp.o.d"
  "libepi_network.a"
  "libepi_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
