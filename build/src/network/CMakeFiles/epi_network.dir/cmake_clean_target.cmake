file(REMOVE_RECURSE
  "libepi_network.a"
)
