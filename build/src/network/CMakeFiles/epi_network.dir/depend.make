# Empty dependencies file for epi_network.
# This may be replaced when dependencies are built.
