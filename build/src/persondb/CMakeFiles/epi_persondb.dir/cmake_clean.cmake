file(REMOVE_RECURSE
  "CMakeFiles/epi_persondb.dir/person_db.cpp.o"
  "CMakeFiles/epi_persondb.dir/person_db.cpp.o.d"
  "libepi_persondb.a"
  "libepi_persondb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_persondb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
