file(REMOVE_RECURSE
  "libepi_persondb.a"
)
