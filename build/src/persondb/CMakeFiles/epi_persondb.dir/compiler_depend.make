# Empty compiler generated dependencies file for epi_persondb.
# This may be replaced when dependencies are built.
