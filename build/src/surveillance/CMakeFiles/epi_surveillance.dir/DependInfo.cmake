
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surveillance/ground_truth.cpp" "src/surveillance/CMakeFiles/epi_surveillance.dir/ground_truth.cpp.o" "gcc" "src/surveillance/CMakeFiles/epi_surveillance.dir/ground_truth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metapop/CMakeFiles/epi_metapop.dir/DependInfo.cmake"
  "/root/repo/build/src/synthpop/CMakeFiles/epi_synthpop.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
