file(REMOVE_RECURSE
  "CMakeFiles/epi_surveillance.dir/ground_truth.cpp.o"
  "CMakeFiles/epi_surveillance.dir/ground_truth.cpp.o.d"
  "libepi_surveillance.a"
  "libepi_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
