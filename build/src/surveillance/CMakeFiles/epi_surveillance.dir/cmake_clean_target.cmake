file(REMOVE_RECURSE
  "libepi_surveillance.a"
)
