# Empty dependencies file for epi_surveillance.
# This may be replaced when dependencies are built.
