
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synthpop/activity.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/activity.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/activity.cpp.o.d"
  "/root/repo/src/synthpop/generator.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/generator.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/generator.cpp.o.d"
  "/root/repo/src/synthpop/ipf.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/ipf.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/ipf.cpp.o.d"
  "/root/repo/src/synthpop/locations.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/locations.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/locations.cpp.o.d"
  "/root/repo/src/synthpop/population.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/population.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/population.cpp.o.d"
  "/root/repo/src/synthpop/us_states.cpp" "src/synthpop/CMakeFiles/epi_synthpop.dir/us_states.cpp.o" "gcc" "src/synthpop/CMakeFiles/epi_synthpop.dir/us_states.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
