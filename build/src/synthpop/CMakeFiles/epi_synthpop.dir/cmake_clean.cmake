file(REMOVE_RECURSE
  "CMakeFiles/epi_synthpop.dir/activity.cpp.o"
  "CMakeFiles/epi_synthpop.dir/activity.cpp.o.d"
  "CMakeFiles/epi_synthpop.dir/generator.cpp.o"
  "CMakeFiles/epi_synthpop.dir/generator.cpp.o.d"
  "CMakeFiles/epi_synthpop.dir/ipf.cpp.o"
  "CMakeFiles/epi_synthpop.dir/ipf.cpp.o.d"
  "CMakeFiles/epi_synthpop.dir/locations.cpp.o"
  "CMakeFiles/epi_synthpop.dir/locations.cpp.o.d"
  "CMakeFiles/epi_synthpop.dir/population.cpp.o"
  "CMakeFiles/epi_synthpop.dir/population.cpp.o.d"
  "CMakeFiles/epi_synthpop.dir/us_states.cpp.o"
  "CMakeFiles/epi_synthpop.dir/us_states.cpp.o.d"
  "libepi_synthpop.a"
  "libepi_synthpop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_synthpop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
