file(REMOVE_RECURSE
  "libepi_synthpop.a"
)
