# Empty dependencies file for epi_synthpop.
# This may be replaced when dependencies are built.
