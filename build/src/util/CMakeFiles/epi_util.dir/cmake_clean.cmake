file(REMOVE_RECURSE
  "CMakeFiles/epi_util.dir/csv.cpp.o"
  "CMakeFiles/epi_util.dir/csv.cpp.o.d"
  "CMakeFiles/epi_util.dir/error.cpp.o"
  "CMakeFiles/epi_util.dir/error.cpp.o.d"
  "CMakeFiles/epi_util.dir/json.cpp.o"
  "CMakeFiles/epi_util.dir/json.cpp.o.d"
  "CMakeFiles/epi_util.dir/lhs.cpp.o"
  "CMakeFiles/epi_util.dir/lhs.cpp.o.d"
  "CMakeFiles/epi_util.dir/log.cpp.o"
  "CMakeFiles/epi_util.dir/log.cpp.o.d"
  "CMakeFiles/epi_util.dir/rng.cpp.o"
  "CMakeFiles/epi_util.dir/rng.cpp.o.d"
  "CMakeFiles/epi_util.dir/stats.cpp.o"
  "CMakeFiles/epi_util.dir/stats.cpp.o.d"
  "libepi_util.a"
  "libepi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
