file(REMOVE_RECURSE
  "libepi_util.a"
)
