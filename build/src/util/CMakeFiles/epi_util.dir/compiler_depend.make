# Empty compiler generated dependencies file for epi_util.
# This may be replaced when dependencies are built.
