file(REMOVE_RECURSE
  "CMakeFiles/epi_workflow.dir/calibration_cycle.cpp.o"
  "CMakeFiles/epi_workflow.dir/calibration_cycle.cpp.o.d"
  "CMakeFiles/epi_workflow.dir/cell_config.cpp.o"
  "CMakeFiles/epi_workflow.dir/cell_config.cpp.o.d"
  "CMakeFiles/epi_workflow.dir/designs.cpp.o"
  "CMakeFiles/epi_workflow.dir/designs.cpp.o.d"
  "CMakeFiles/epi_workflow.dir/nightly.cpp.o"
  "CMakeFiles/epi_workflow.dir/nightly.cpp.o.d"
  "libepi_workflow.a"
  "libepi_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
