file(REMOVE_RECURSE
  "libepi_workflow.a"
)
