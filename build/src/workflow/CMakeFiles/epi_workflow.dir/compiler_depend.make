# Empty compiler generated dependencies file for epi_workflow.
# This may be replaced when dependencies are built.
