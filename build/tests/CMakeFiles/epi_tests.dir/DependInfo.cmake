
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytics.cpp" "tests/CMakeFiles/epi_tests.dir/test_analytics.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_analytics.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/epi_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_calibration_cycle.cpp" "tests/CMakeFiles/epi_tests.dir/test_calibration_cycle.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_calibration_cycle.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/epi_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_csv_json.cpp" "tests/CMakeFiles/epi_tests.dir/test_csv_json.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_csv_json.cpp.o.d"
  "/root/repo/tests/test_disease_model.cpp" "tests/CMakeFiles/epi_tests.dir/test_disease_model.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_disease_model.cpp.o.d"
  "/root/repo/tests/test_emulator.cpp" "tests/CMakeFiles/epi_tests.dir/test_emulator.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_emulator.cpp.o.d"
  "/root/repo/tests/test_interventions.cpp" "tests/CMakeFiles/epi_tests.dir/test_interventions.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_interventions.cpp.o.d"
  "/root/repo/tests/test_mpilite.cpp" "tests/CMakeFiles/epi_tests.dir/test_mpilite.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_mpilite.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/epi_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_output_forecast.cpp" "tests/CMakeFiles/epi_tests.dir/test_output_forecast.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_output_forecast.cpp.o.d"
  "/root/repo/tests/test_persondb.cpp" "tests/CMakeFiles/epi_tests.dir/test_persondb.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_persondb.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/epi_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runtime_extensions.cpp" "tests/CMakeFiles/epi_tests.dir/test_runtime_extensions.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_runtime_extensions.cpp.o.d"
  "/root/repo/tests/test_scripted.cpp" "tests/CMakeFiles/epi_tests.dir/test_scripted.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_scripted.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/epi_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_stats_lhs.cpp" "tests/CMakeFiles/epi_tests.dir/test_stats_lhs.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_stats_lhs.cpp.o.d"
  "/root/repo/tests/test_surveillance_metapop.cpp" "tests/CMakeFiles/epi_tests.dir/test_surveillance_metapop.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_surveillance_metapop.cpp.o.d"
  "/root/repo/tests/test_synthpop.cpp" "tests/CMakeFiles/epi_tests.dir/test_synthpop.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_synthpop.cpp.o.d"
  "/root/repo/tests/test_workflow.cpp" "tests/CMakeFiles/epi_tests.dir/test_workflow.cpp.o" "gcc" "tests/CMakeFiles/epi_tests.dir/test_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/epi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mpilite/CMakeFiles/epi_mpilite.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/epi_network.dir/DependInfo.cmake"
  "/root/repo/build/src/synthpop/CMakeFiles/epi_synthpop.dir/DependInfo.cmake"
  "/root/repo/build/src/persondb/CMakeFiles/epi_persondb.dir/DependInfo.cmake"
  "/root/repo/build/src/epihiper/CMakeFiles/epi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metapop/CMakeFiles/epi_metapop.dir/DependInfo.cmake"
  "/root/repo/build/src/emulator/CMakeFiles/epi_emulator.dir/DependInfo.cmake"
  "/root/repo/build/src/calibration/CMakeFiles/epi_calibration.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/epi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/epi_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/surveillance/CMakeFiles/epi_surveillance.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/epi_workflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
