# Empty dependencies file for epi_tests.
# This may be replaced when dependencies are built.
