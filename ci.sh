#!/usr/bin/env bash
# CI entry point with selectable lanes:
#
#   ./ci.sh            # all lanes: lint, plain, proc, service, obs, asan, tsan
#   ./ci.sh lint       # epilint static analysis + optional clang-tidy
#                      # (builds only the analyzer, not the libraries)
#   ./ci.sh plain      # RelWithDebInfo build + tests + CommChecker pass
#   ./ci.sh proc       # shared-memory backend pass (EPI_MPILITE_BACKEND=shm,
#                      # ranks as forked processes): mpilite + event-core +
#                      # parallel-equivalence suites (all four exchange
#                      # modes at 1/2/4/8 ranks vs the serial oracle), the
#                      # CommChecker re-run, the comm-volume bench, and a
#                      # deterministic nightly byte-diffed thread vs shm
#                      # per exchange mode
#   ./ci.sh service    # scenario-service replay determinism: the canned
#                      # request log twice, and EPI_JOBS=1 vs 4, with
#                      # byte-diffs of responses + report; throughput gate
#   ./ci.sh obs        # epitrace pass: traced nightly run -> trace_check
#                      # -> epitrace self-checks; traced-vs-untraced
#                      # byte-identity; fig9/table1/comm-volume/fig7 bench
#                      # reports diffed against bench/baselines/ (clean
#                      # must pass, an injected 10%+ regression must be
#                      # flagged)
#   ./ci.sh asan       # AddressSanitizer + UBSan + LeakSanitizer build
#   ./ci.sh tsan       # ThreadSanitizer build (mpilite runs ranks as
#                      # threads, so this sees every data race real-MPI
#                      # codebases cannot; the exec worker-pool tests
#                      # run under it too)
#
# Any lint finding, test failure, checker report, or sanitizer report
# fails the script.
set -euo pipefail
cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_lint() {
  echo "== static analysis (epilint) =="
  # tools/lint.sh builds tools/epilint and runs it over all of src/ with
  # the checked-in (empty) baseline; any non-baselined finding fails the
  # lane. The analyzer prints a per-rule finding-count summary.
  tools/lint.sh
}

run_plain() {
  echo "== plain build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"

  echo "== CommChecker pass (EPI_MPILITE_CHECK=1) =="
  # Re-run the mpilite-backed suites under the communication checker: a
  # correct program must produce zero reports, so any report fails the
  # test. InvalidRankOrTagThrows seeds deliberate misuse inside
  # EXPECT_THROW and is excluded — the checker reporting it is the
  # expected behaviour, exercised by tests/test_mpilite_check.cpp.
  # UnreceivedMessagesLeaveNoDanglingEdges intentionally leaves a send
  # unmatched to prove flow export emits no dangling edges, which the
  # checker rightly flags as a message leak.
  EPI_MPILITE_CHECK=1 ctest --test-dir build --output-on-failure -j "$JOBS" \
    -R 'Mpilite|Parallel' -E 'InvalidRankOrTag|UnreceivedMessages'

  echo "== trace pass (EPI_TRACE) =="
  # Run the nightly example twice with tracing on and deterministic
  # timing, validate both trace/metrics pairs with trace_check, and
  # require the two runs to be byte-identical — the reproducibility
  # guarantee the obs layer promises.
  rm -rf build/trace-ci build/trace-ci-2
  EPI_TRACE=build/trace-ci EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic >/dev/null
  EPI_TRACE=build/trace-ci-2 EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic >/dev/null
  ./build/tools/trace_check build/trace-ci/trace.json build/trace-ci/metrics.json
  ./build/tools/trace_check build/trace-ci-2/trace.json build/trace-ci-2/metrics.json
  cmp build/trace-ci/trace.json build/trace-ci-2/trace.json
  cmp build/trace-ci/metrics.json build/trace-ci-2/metrics.json
  echo "trace pass OK (valid + byte-identical across runs)"

  echo "== perf smoke (exchange-mode matrix) =="
  # A/B/C/D the four exchange modes in the same run; the bench exits
  # non-zero if the ghost kernel does not move strictly fewer bytes than
  # broadcast, if the event-driven core is not strictly faster per tick
  # than BOTH legacy modes (the ROADMAP hard gate), or if any mode's
  # epidemic output diverges. The fig7 sweep applies the same event-faster
  # gate across its size ladder. JSON reports land in build/ for
  # regression diffs.
  rm -rf build/perf-smoke && mkdir -p build/perf-smoke
  EPI_BENCH_JSON=build/perf-smoke ./build/bench/bench_comm_volume
  EPI_BENCH_JSON=build/perf-smoke \
    ./build/bench/bench_fig7_runtime --benchmark_filter=none >/dev/null
  echo "perf smoke OK (see build/perf-smoke/BENCH_*.json)"

  echo "== exchange-mode byte-diff (EPI_EXCHANGE on the nightly) =="
  # The determinism contract end to end: the deterministic nightly must
  # produce byte-identical reports under every exchange mode — the env
  # override is the only thing that changes between runs.
  for mode in broadcast ghost event adaptive; do
    EPI_EXCHANGE="$mode" EPI_DETERMINISTIC_TIMING=1 \
      ./build/examples/nightly_national_run economic \
      > "build/perf-smoke/nightly-$mode.txt"
  done
  for mode in ghost event adaptive; do
    cmp "build/perf-smoke/nightly-broadcast.txt" \
      "build/perf-smoke/nightly-$mode.txt"
  done
  echo "exchange-mode byte-diff OK (broadcast == ghost == event == adaptive)"

  echo "== farm pass (EPI_JOBS) =="
  # The deterministic executor's contract, end to end: the calibration
  # cycle must produce a byte-identical result under EPI_JOBS=1 (the
  # serial seed path) and EPI_JOBS=4. The scaling bench enforces the
  # same identity across its own sweep (and gates >= 2x speedup at
  # jobs=4 when the hardware has >= 4 threads).
  EPI_JOBS=1 EPI_CYCLE_REPORT=build/cycle-j1.txt \
    ./build/examples/calibrate_and_forecast VT 400 24 8 >/dev/null
  EPI_JOBS=4 EPI_CYCLE_REPORT=build/cycle-j4.txt \
    ./build/examples/calibrate_and_forecast VT 400 24 8 >/dev/null
  cmp build/cycle-j1.txt build/cycle-j4.txt
  EPI_BENCH_JSON=build/perf-smoke ./build/bench/bench_farm_scaling
  echo "farm pass OK (serial and parallel reports byte-identical)"
}

run_proc() {
  echo "== process-backend pass (EPI_MPILITE_BACKEND=shm) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"

  # The mpilite, event-core, and parallel-equivalence suites with every
  # rank above 0 a forked process over the shared-memory segment. The
  # equivalence suites compare each exchange mode's parallel output
  # byte-for-byte against the backend-independent serial oracle at
  # 1/2/4/8 ranks, so a pass here IS the thread-vs-shm identity for all
  # four EPI_EXCHANGE modes.
  #
  # No EPI_JOBS farm runs here: the shm launcher forks, and forking a
  # process that holds live farm worker threads is undefined enough to be
  # banned outright (DESIGN.md §15).
  EPI_MPILITE_BACKEND=shm ctest --test-dir build --output-on-failure -j "$JOBS" \
    -R 'Mpilite|EventCore|Parallel|Ghost|ExchangeMode'

  echo "== CommChecker pass under forked ranks =="
  # Same exclusions as the plain lane's checker pass (deliberate misuse
  # and deliberate leaks), now with the watchdog reading cross-process
  # state from the segment's checker slots.
  EPI_MPILITE_BACKEND=shm EPI_MPILITE_CHECK=1 \
    ctest --test-dir build --output-on-failure -j "$JOBS" \
    -R 'Mpilite|Parallel' -E 'InvalidRankOrTag|UnreceivedMessages'

  echo "== exchange-mode kernels under forked ranks =="
  # bench_comm_volume A/B/C/Ds the exchange modes over
  # run_simulation_parallel and exits nonzero if any mode's epidemic
  # output diverges — here with ranks as forked processes.
  rm -rf build/proc-ci && mkdir -p build/proc-ci/bench
  EPI_BENCH_JSON=build/proc-ci/bench EPI_MPILITE_BACKEND=shm \
    ./build/bench/bench_comm_volume

  echo "== deterministic nightly byte-diff (thread vs shm) =="
  # The nightly under both backends, per exchange mode: the reports must
  # be byte-identical — the backend env var may never perturb workflow
  # output.
  for mode in broadcast ghost event adaptive; do
    for backend in thread shm; do
      EPI_EXCHANGE="$mode" EPI_MPILITE_BACKEND="$backend" \
        EPI_DETERMINISTIC_TIMING=1 \
        ./build/examples/nightly_national_run economic \
        > "build/proc-ci/nightly-$mode-$backend.txt"
    done
    cmp "build/proc-ci/nightly-$mode-thread.txt" \
      "build/proc-ci/nightly-$mode-shm.txt"
  done
  echo "nightly byte-diff OK (thread == shm for all four exchange modes)"

  # A traced shm run must still emit a valid trace/metrics pair.
  EPI_TRACE=build/proc-ci/trace-shm EPI_MPILITE_BACKEND=shm \
    EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic >/dev/null
  ./build/tools/trace_check build/proc-ci/trace-shm/trace.json \
    build/proc-ci/trace-shm/metrics.json
  echo "proc pass OK (forked ranks byte-identical to threads)"
}

run_service() {
  echo "== scenario-service replay pass =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target scenario_service bench_service_throughput

  # Replay the canned request log twice serial and once at EPI_JOBS=4;
  # every response and the whole ServiceReport must be byte-identical
  # across runs and worker counts. The example itself also replays its
  # log warm and exits nonzero if a cached response drifts.
  rm -rf build/service-ci && mkdir -p build/service-ci/{j1,j1-again,j4}
  EPI_JOBS=1 EPI_SERVICE_OUT=build/service-ci/j1 \
    ./build/examples/scenario_service examples/service_requests.jsonl >/dev/null
  EPI_JOBS=1 EPI_SERVICE_OUT=build/service-ci/j1-again \
    ./build/examples/scenario_service examples/service_requests.jsonl >/dev/null
  EPI_JOBS=4 EPI_SERVICE_OUT=build/service-ci/j4 \
    ./build/examples/scenario_service examples/service_requests.jsonl >/dev/null
  cmp build/service-ci/j1/responses.txt build/service-ci/j1-again/responses.txt
  cmp build/service-ci/j1/service_report.txt build/service-ci/j1-again/service_report.txt
  cmp build/service-ci/j1/responses.txt build/service-ci/j4/responses.txt
  cmp build/service-ci/j1/service_report.txt build/service-ci/j4/service_report.txt
  echo "replay OK (byte-identical across repeats and EPI_JOBS=1 vs 4)"

  # Throughput gate: the cached/batched wave must beat naive sequential
  # by >= 2x with a nonzero cache-hit rate (the bench exits nonzero).
  EPI_BENCH_JSON=build/service-ci ./build/bench/bench_service_throughput
  echo "service pass OK (see build/service-ci/BENCH_service_throughput.json)"
}

run_obs() {
  echo "== observability pass (epitrace) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target nightly_national_run trace_check \
    epitrace bench_fig9_utilization bench_table1_workflows \
    bench_comm_volume bench_fig7_runtime

  # A traced deterministic nightly run (the fig9 workload): validate the
  # emitted files, then run the profiler with its self-checks on — every
  # phase's critical path must fit inside the phase window, and the job
  # spans' busy node-hours must reproduce the recorded utilization gauge.
  rm -rf build/obs-ci && mkdir -p build/obs-ci
  EPI_TRACE=build/obs-ci/run EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic > build/obs-ci/report-traced.txt
  ./build/tools/trace_check build/obs-ci/run/trace.json build/obs-ci/run/metrics.json
  ./build/tools/epitrace report build/obs-ci/run --check > build/obs-ci/epitrace-report.txt
  echo "epitrace report OK (critical path + busy-vs-utilization self-checks)"

  # Observer effect check: the same run untraced (and traced with flow
  # edges off) must produce a byte-identical workflow report.
  EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic > build/obs-ci/report-untraced.txt
  EPI_TRACE=build/obs-ci/run-noflow EPI_TRACE_FLOW=0 EPI_DETERMINISTIC_TIMING=1 \
    ./build/examples/nightly_national_run economic > build/obs-ci/report-noflow.txt
  cmp build/obs-ci/report-traced.txt build/obs-ci/report-untraced.txt
  cmp build/obs-ci/report-traced.txt build/obs-ci/report-noflow.txt
  echo "observer-effect OK (traced == untraced == flow-off, byte-identical)"

  # Perf-regression gate: fresh fig9/table1 reports must diff clean
  # against the committed baselines...
  mkdir -p build/obs-ci/bench
  EPI_BENCH_JSON=build/obs-ci/bench ./build/bench/bench_fig9_utilization >/dev/null
  EPI_BENCH_JSON=build/obs-ci/bench ./build/bench/bench_table1_workflows >/dev/null
  # The exchange-mode benches contribute their deterministic count metrics
  # (edges, events, skipped ticks, wire bytes); their timing metrics are
  # reported in the JSON but deliberately absent from the baselines.
  EPI_BENCH_JSON=build/obs-ci/bench ./build/bench/bench_comm_volume >/dev/null
  EPI_BENCH_JSON=build/obs-ci/bench \
    ./build/bench/bench_fig7_runtime --benchmark_filter=none >/dev/null
  ./build/tools/epitrace diff bench/baselines build/obs-ci/bench
  # ...and an injected >= 10% regression in a copy must be flagged.
  rm -rf build/obs-ci/bench-bad && cp -r build/obs-ci/bench build/obs-ci/bench-bad
  sed -e 's/"calibration.makespan_hours": /"calibration.makespan_hours": 1/' \
    build/obs-ci/bench/BENCH_table1_workflows.json \
    > build/obs-ci/bench-bad/BENCH_table1_workflows.json
  if ./build/tools/epitrace diff bench/baselines build/obs-ci/bench-bad >/dev/null; then
    echo "bench-diff gate FAILED to flag an injected regression" >&2
    exit 1
  fi
  echo "bench gate OK (clean run passes, injected regression flagged)"
}

run_asan() {
  echo "== sanitized build (ASan + UBSan + LSan) =="
  cmake -B build-asan -S . -DEPI_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  # halt_on_error makes UBSan findings fail the run instead of just
  # logging; detect_leaks=1 turns LeakSanitizer on at exit.
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "== sanitized build (ThreadSanitizer) =="
  cmake -B build-tsan -S . -DEPI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
}

lane="${1:-all}"
case "$lane" in
  lint)    run_lint ;;
  plain)   run_plain ;;
  proc)    run_proc ;;
  service) run_service ;;
  obs)     run_obs ;;
  asan)    run_asan ;;
  tsan)    run_tsan ;;
  all)     run_lint; run_plain; run_proc; run_service; run_obs; run_asan; run_tsan ;;
  *)
    echo "usage: $0 [lint|plain|proc|service|obs|asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "CI OK ($lane)"
