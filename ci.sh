#!/usr/bin/env bash
# CI entry point: build and run the tier-1 test suite twice —
#   1. the plain RelWithDebInfo build,
#   2. an AddressSanitizer + UBSan build (EPI_SANITIZE=ON).
# Any test failure or sanitizer report fails the script.
set -euo pipefail

cd "$(dirname "$0")"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitized build (ASan + UBSan) =="
cmake -B build-asan -S . -DEPI_SANITIZE=ON >/dev/null
cmake --build build-asan -j "$JOBS"
# halt_on_error makes UBSan findings fail the run instead of just logging.
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=0 \
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "CI OK"
