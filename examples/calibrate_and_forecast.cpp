// Case study 3 (paper Appendix F): calibrate the agent-based model for one
// state against county-level surveillance, then forecast the next eight
// weeks with uncertainty — the full Fig 4 -> Fig 5 cycle in one program.
//
//   $ ./calibrate_and_forecast [state=VA] [scale_denominator=2000] \
//                              [prior_configs=60] [prediction_runs=20]
//
// The simulation farm honors EPI_JOBS (worker threads; parallel output is
// byte-identical to serial), and EPI_CYCLE_REPORT=<path> writes the full
// serialized CalibrationCycleResult for byte-level comparison across runs.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "util/stats.hpp"
#include "workflow/calibration_cycle.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  CalibrationCycleConfig config;
  config.region = argc > 1 ? argv[1] : "VA";
  config.scale = 1.0 / (argc > 2 ? std::atof(argv[2]) : 2000.0);
  config.seed = 20200411;  // data through April 11, 2020
  config.prior_configs =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 60;
  config.posterior_configs = 100;
  config.calibration_days = 80;
  config.horizon_days = 56;
  config.prediction_runs =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 20;
  config.mcmc.samples = 2000;
  config.mcmc.burn_in = 1500;

  std::printf("calibration-prediction cycle for %s\n", config.region.c_str());
  std::printf("  prior design: %zu LHS configurations over (TAU, SYMP, SH, VHI)\n",
              config.prior_configs);
  std::printf("  observed: %d days of county-level confirmed cases\n\n",
              config.calibration_days);

  const CalibrationCycleResult result = run_calibration_cycle(config);

  std::printf("calibration (GPMSA emulator + MCMC):\n");
  std::printf("  MCMC acceptance rate        %.2f\n",
              result.calibration.acceptance_rate);
  std::printf("  emulator variance captured  %.1f%% (p_eta = 5 bases)\n",
              result.calibration.emulator_variance_captured * 100.0);
  std::printf("  95%% band covers observed    %.1f%% of days\n\n",
              result.calibration.coverage95 * 100.0);

  std::printf("posterior parameter estimates (100 resampled configs):\n");
  const auto& ranges = result.prior_design.ranges;
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    std::vector<double> values;
    for (const auto& point : result.posterior_configs) {
      values.push_back(point[d]);
    }
    std::printf("  %-16s %.3f +- %.3f   (prior: U[%.2f, %.2f])\n",
                ranges[d].name.c_str(), mean(values), stddev(values),
                ranges[d].lo, ranges[d].hi);
  }

  std::printf("\n8-week forecast of cumulative confirmed cases "
              "(median [95%% band], weekly):\n");
  for (std::size_t t = 0; t < result.forecast.median.size(); t += 7) {
    const char* phase =
        t < static_cast<std::size_t>(config.calibration_days) ? "observed"
                                                              : "FORECAST";
    std::printf("  day %3zu: %7.0f [%6.0f, %7.0f]   reported %7.0f  %s\n", t,
                result.forecast.median[t], result.forecast.lo[t],
                result.forecast.hi[t], result.truth_extension[t], phase);
  }
  std::printf("\nforecast band covered %.0f%% of later reported days\n",
              result.forecast_coverage * 100.0);

  if (const char* report_path = std::getenv("EPI_CYCLE_REPORT");
      report_path != nullptr && report_path[0] != '\0') {
    std::ofstream out(report_path);
    out << serialize(result);
    std::printf("wrote full result to %s\n", report_path);
  }
  return 0;
}
