// Counter-factual analysis (paper Fig 3 / case study 1): run an NPI
// factorial over one region, compare epidemic outcomes and medical costs
// across scenarios, and answer the policy question "what does each extra
// month of lockdown buy?".
//
//   $ ./counterfactual_study [state=VT] [scale_denominator=200]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/costs.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"
#include "workflow/designs.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const std::string state = argc > 1 ? argv[1] : "VT";
  const double denominator = argc > 2 ? std::atof(argv[2]) : 200.0;

  SynthPopConfig pop_config;
  pop_config.region = state;
  pop_config.scale = 1.0 / denominator;
  pop_config.seed = 20200325;
  const SyntheticRegion region = generate_region(pop_config);
  std::printf("counter-factual factorial on %s (%u persons)\n", state.c_str(),
              region.population.person_count());
  std::printf("design: 2 VHI compliances x 3 lockdown durations x 2 lockdown "
              "compliances = 12 cells\n\n");

  // The economic design's 12 factorial cells for this region.
  const auto cells = make_cell_configs(economic_design(), state, 20200325);
  const Tick horizon = 150;
  const int replicates = 3;

  std::printf("%-5s %-5s %-8s %-8s %-12s %-10s %-8s %-14s\n", "cell", "VHI",
              "SHdays", "SHcompl", "infections", "hospdays", "deaths",
              "medical cost");
  struct ScenarioResult {
    double infections;
    double cost;
  };
  std::vector<ScenarioResult> results;
  std::size_t index = 0;
  for (const CellConfig& cell : cells) {
    double infections = 0.0, hosp_days = 0.0, deaths = 0.0, cost = 0.0;
    for (int rep = 0; rep < replicates; ++rep) {
      SimulationConfig sim_config =
          cell.make_sim_config(static_cast<std::uint32_t>(rep));
      sim_config.num_ticks = horizon;
      const DiseaseModel model = covid_model(cell.disease);
      const SimOutput out = run_simulation(
          region.network, region.population, model, sim_config,
          [&] { return cell.make_interventions(); });
      const SummaryCube cube =
          build_summary_cube(out, region.population, model, horizon);
      const MedicalCostBreakdown costs = medical_costs(cube, model);
      infections += static_cast<double>(out.total_infections) / replicates;
      hosp_days += static_cast<double>(costs.hospital_days) / replicates;
      deaths += static_cast<double>(costs.deaths) / replicates;
      cost += costs.total() / replicates;
    }
    // Recover the factor levels from the cell's intervention specs.
    double vhi = 0, sh_compliance = 0;
    Tick sh_days = 0;
    for (const Json& spec : cell.interventions) {
      const std::string type = spec.at("type").as_string();
      if (type == "VHI") vhi = spec.at("compliance").as_double();
      if (type == "SH") {
        sh_compliance = spec.at("compliance").as_double();
        sh_days = static_cast<Tick>(spec.at("end").as_int() -
                                    spec.at("start").as_int());
      }
    }
    std::printf("%-5zu %-5.1f %-8d %-8.1f %-12.0f %-10.0f %-8.1f $%-14.0f\n",
                index, vhi, sh_days, sh_compliance, infections, hosp_days,
                deaths, cost);
    results.push_back({infections, cost});
    ++index;
  }

  // Policy readout: average over the other factors per lockdown duration.
  std::printf("\nwhat an extra month of lockdown buys (averaged over other "
              "factors):\n");
  const Tick durations[] = {30, 60, 90};
  for (int d = 0; d < 3; ++d) {
    double infections = 0.0, cost = 0.0;
    // Cells are ordered (vhi, duration, sh): duration index is the middle
    // factor -> cells {d*2, d*2+1, 6+d*2, 6+d*2+1}.
    for (const std::size_t cell :
         {static_cast<std::size_t>(d * 2), static_cast<std::size_t>(d * 2 + 1),
          static_cast<std::size_t>(6 + d * 2),
          static_cast<std::size_t>(6 + d * 2 + 1)}) {
      infections += results[cell].infections / 4.0;
      cost += results[cell].cost / 4.0;
    }
    std::printf("  %2d-day lockdown: %7.0f infections, $%.0f medical cost\n",
                durations[d], infections, cost);
  }
  return 0;
}
