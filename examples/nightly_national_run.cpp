// The nightly national run (paper Figs 1-2): orchestrate a full workflow
// across the two-cluster infrastructure — configuration generation at the
// home cluster, Globus-modeled transfers, per-region database startup,
// FFDT-DC job mapping, the 10-hour Bridges window, aggregation, and the
// trip home — and print the Fig 2 timeline.
//
//   $ ./nightly_national_run [economic|prediction|calibration]
//
// Set EPI_TRACE=<dir> to also write a Chrome-format trace.json and a
// metrics.json there (load the trace at https://ui.perfetto.dev);
// EPI_DETERMINISTIC_TIMING=1 zeroes wall-clock fields so two runs
// produce byte-identical outputs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "util/stats.hpp"
#include "workflow/nightly.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const std::string which = argc > 1 ? argv[1] : "economic";
  WorkflowDesign design;
  if (which == "economic") {
    design = economic_design();
  } else if (which == "prediction") {
    design = prediction_design();
  } else if (which == "calibration") {
    design = calibration_design();
  } else {
    std::fprintf(stderr,
                 "usage: %s [economic|prediction|calibration]\n", argv[0]);
    return 1;
  }

  NightlyConfig config;
  config.scale = 1.0 / 8000.0;
  config.sample_executions = 8;
  config.executed_days = 90;

  const char* det_env = std::getenv("EPI_DETERMINISTIC_TIMING");
  if (det_env != nullptr && det_env[0] != '\0' &&
      std::strcmp(det_env, "0") != 0) {
    config.deterministic_timing = true;
  }
  const std::unique_ptr<obs::Session> session =
      obs::Session::from_env(config.deterministic_timing);
  config.trace = session.get();

  std::printf("nightly %s workflow: %u cells x %zu regions x %u replicates = "
              "%lu simulations\n\n",
              design.name.c_str(), design.cells, design.regions.size(),
              design.replicates,
              static_cast<unsigned long>(design.simulations()));

  NightlyWorkflow engine(config);
  const WorkflowReport report = engine.run(design);

  std::printf("timeline (Fig 2):\n");
  std::printf("  %-32s %-8s %10s %12s\n", "phase", "site", "start", "duration");
  for (const PhaseRecord& phase : report.timeline) {
    std::printf("  %-32s %-8s %9.2fh %11.2fh\n", phase.phase.c_str(),
                phase.site.c_str(), phase.start_hours, phase.duration_hours);
  }

  std::printf("\nremote schedule (Bridges, 720 nodes, FFDT-DC):\n");
  std::printf("  makespan            %.2f h (window: 10 h, 10pm-8am)\n",
              report.schedule_makespan_hours);
  std::printf("  CPU utilization     %.1f%%\n", report.utilization * 100.0);
  std::printf("  unfinished jobs     %zu\n", report.unfinished_jobs);

  std::printf("\ndata plane:\n");
  std::printf("  cell configurations          %s shipped to remote\n",
              format_bytes(static_cast<double>(report.config_bytes)).c_str());
  std::printf("  raw output (extrapolated)    %s stays on remote disk\n",
              format_bytes(report.raw_bytes_full_scale).c_str());
  std::printf("  summaries (extrapolated)     %s shipped home\n",
              format_bytes(report.summary_bytes_full_scale).c_str());
  std::printf("  real sample executions       %lu sims at 1/%.0f scale\n",
              static_cast<unsigned long>(report.executed_simulations),
              1.0 / config.scale);
  std::printf("\nend-to-end elapsed: %.1f h\n", report.total_elapsed_hours);

  if (session != nullptr) {
    session->write();
    // stderr, so stdout stays byte-identical with an untraced run (the
    // observer-effect check in `ci.sh obs` compares them with cmp).
    std::fprintf(stderr, "trace:   %s\nmetrics: %s\n",
                 session->trace_path().c_str(),
                 session->metrics_path().c_str());
  }
  return 0;
}
