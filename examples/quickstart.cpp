// Quickstart: generate a synthetic region, run one EpiHiper replicate with
// the base intervention stack, and print the epicurve plus headline
// outcomes.
//
//   $ ./quickstart [state=VA] [scale_denominator=2000]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analytics/aggregate.hpp"
#include "analytics/dendrogram.hpp"
#include "epihiper/interventions.hpp"
#include "epihiper/parallel.hpp"
#include "synthpop/generator.hpp"

int main(int argc, char** argv) {
  using namespace epi;

  const std::string state = argc > 1 ? argv[1] : "VA";
  const double denominator = argc > 2 ? std::atof(argv[2]) : 2000.0;

  // 1. Synthesize the population and its Wednesday contact network.
  SynthPopConfig pop_config;
  pop_config.region = state;
  pop_config.scale = 1.0 / denominator;
  pop_config.seed = 20200325;
  const SyntheticRegion region = generate_region(pop_config);
  std::printf("region %s: %u persons, %zu households, %lu contacts\n",
              state.c_str(), region.population.person_count(),
              region.population.household_count(),
              static_cast<unsigned long>(region.network.contact_count()));

  // 2. Configure a 120-day replicate of the CDC COVID model, seeded in the
  //    three largest counties, under VHI + school closure + stay-at-home.
  const DiseaseModel model = covid_model();
  SimulationConfig sim_config;
  sim_config.num_ticks = 120;
  sim_config.seed = 42;
  sim_config.seeds = {SeedSpec{0, 5, 0}, SeedSpec{1, 5, 0}, SeedSpec{2, 5, 0}};

  // 3. Run.
  const SimOutput output = run_simulation(
      region.network, region.population, model, sim_config,
      [] { return make_intervention_stack("base"); });

  // 4. Report: weekly epicurve of daily new infections.
  std::printf("\nweek  new-infections/day (bar = 2 infections)\n");
  for (Tick week = 0; week * 7 < sim_config.num_ticks; ++week) {
    std::uint64_t weekly = 0;
    for (Tick d = week * 7;
         d < std::min<Tick>((week + 1) * 7, sim_config.num_ticks); ++d) {
      weekly += output.new_infections_per_tick[static_cast<std::size_t>(d)];
    }
    const auto daily = static_cast<int>(weekly / 7);
    std::printf("%4d  %5d ", week, daily);
    for (int i = 0; i < daily / 2 && i < 60; ++i) std::printf("#");
    std::printf("\n");
  }

  // 5. Headline outcomes from the analytics layer.
  const SummaryCube cube = build_summary_cube(output, region.population,
                                              model, sim_config.num_ticks);
  const TransmissionForest forest(output.transitions);
  const Tick last = sim_config.num_ticks - 1;
  std::printf("\ntotals after %d days:\n", sim_config.num_ticks);
  std::printf("  infections      %lu (%.1f%% of population)\n",
              static_cast<unsigned long>(output.total_infections),
              100.0 * static_cast<double>(output.total_infections) /
                  region.population.person_count());
  std::printf("  recovered       %lu\n",
              static_cast<unsigned long>(
                  cube.cumulative(last, model.state_id(covid_states::kRecovered))));
  std::printf("  deaths          %lu\n",
              static_cast<unsigned long>(
                  cube.cumulative(last, model.state_id(covid_states::kDeceased))));
  std::printf("  peak hospital   %lu beds\n",
              static_cast<unsigned long>([&] {
                std::uint64_t peak = 0;
                for (Tick t = 0; t < sim_config.num_ticks; ++t) {
                  peak = std::max(peak, cube.occupancy(
                      t, model.state_id(covid_states::kHospitalized)));
                }
                return peak;
              }()));
  std::printf("  R estimate      %.2f (mean offspring, early cases)\n",
              forest.mean_offspring());
  return 0;
}
