// The scenario-request service end to end (DESIGN.md §11): replay a
// JSONL request log through the deterministic service layer — priority
// scheduling, duplicate dedup, campaign batching, and the
// content-addressed artifact cache — then replay it again warm to show
// every response served from cache, byte-identical.
//
//   $ ./scenario_service [request-log.jsonl]
//
// The log defaults to examples/service_requests.jsonl. EPI_JOBS sets the
// engine-farm worker threads (wall time only — never a response byte);
// EPI_SERVICE_WORKERS sets the abstract workers of the virtual-latency
// schedule; EPI_SERVICE_CACHE_CAP bounds the artifact cache. Set
// EPI_SERVICE_OUT=<dir> to write responses.txt and service_report.txt
// there (the CI service lane byte-diffs them across worker counts).
// EPI_TRACE=<dir> additionally writes trace.json / metrics.json.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "service/service.hpp"
#include "util/error.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EPI_REQUIRE(in.good(), "cannot open request log '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  EPI_REQUIRE(out.good(), "cannot write '" << path << "'");
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace epi;
  using namespace epi::service;

  const std::string log_path =
      argc > 1 ? argv[1] : "examples/service_requests.jsonl";
  const std::string log_text = read_file(log_path);

  // Traces are virtual-time, so they replay byte-identically too.
  const std::unique_ptr<obs::Session> session =
      obs::Session::from_env(/*deterministic_timing=*/true);
  ServiceConfig config;
  config.trace = session.get();
  ScenarioService svc(config);

  std::printf("scenario service: replaying %s\n", log_path.c_str());
  const ServiceOutcome cold = svc.replay_log(log_text);
  std::printf("\n--- cold wave ---\n%s", serialize(cold.report).c_str());

  const ServiceOutcome warm = svc.replay_log(log_text);
  std::printf("\n--- warm wave (same log) ---\n%s",
              serialize(warm.report).c_str());

  bool identical = cold.responses == warm.responses;
  std::printf("\nwarm responses byte-identical to cold: %s\n",
              identical ? "yes" : "NO");
  const double naive = cold.report.naive_cost_hours;
  const double actual = cold.report.actual_cost_hours;
  std::printf("virtual cost: naive %.2f h, actual %.2f h (%.2fx saved)\n",
              naive, actual, actual > 0.0 ? naive / actual : 0.0);

  const char* out_dir = std::getenv("EPI_SERVICE_OUT");
  if (out_dir != nullptr && out_dir[0] != '\0') {
    std::string responses;
    for (std::size_t i = 0; i < cold.responses.size(); ++i) {
      responses += "=== response[" + std::to_string(i) + "] " +
                   cold.report.records[i].id + " ===\n";
      responses += cold.responses[i];
    }
    write_file(std::string(out_dir) + "/responses.txt", responses);
    write_file(std::string(out_dir) + "/service_report.txt",
               serialize(cold.report));
    std::printf("wrote %s/responses.txt and %s/service_report.txt\n", out_dir,
                out_dir);
  }
  if (session != nullptr) {
    session->write();
    std::printf("wrote %s and %s\n", session->trace_path().c_str(),
                session->metrics_path().c_str());
  }
  return identical ? 0 : 1;
}
