#include "analytics/aggregate.hpp"

#include "util/error.hpp"

namespace epi {

SummaryCube::SummaryCube(Tick ticks, std::size_t health_states)
    : ticks_(ticks), health_states_(health_states) {
  EPI_REQUIRE(ticks > 0 && health_states > 0, "empty summary cube");
  data_.assign(static_cast<std::size_t>(ticks) * health_states *
                   kAgeGroupCount,
               StateCounts{});
}

StateCounts& SummaryCube::at(Tick t, HealthStateId s, AgeGroup g) {
  EPI_REQUIRE(t >= 0 && t < ticks_ && s < health_states_, "cube index out of range");
  return data_[(static_cast<std::size_t>(t) * health_states_ + s) *
                   kAgeGroupCount +
               static_cast<std::size_t>(g)];
}

const StateCounts& SummaryCube::at(Tick t, HealthStateId s, AgeGroup g) const {
  return const_cast<SummaryCube*>(this)->at(t, s, g);
}

std::uint64_t SummaryCube::entered(Tick t, HealthStateId s) const {
  std::uint64_t total = 0;
  for (int g = 0; g < kAgeGroupCount; ++g) {
    total += at(t, s, static_cast<AgeGroup>(g)).entered;
  }
  return total;
}

std::uint64_t SummaryCube::occupancy(Tick t, HealthStateId s) const {
  std::uint64_t total = 0;
  for (int g = 0; g < kAgeGroupCount; ++g) {
    total += at(t, s, static_cast<AgeGroup>(g)).occupancy;
  }
  return total;
}

std::uint64_t SummaryCube::cumulative(Tick t, HealthStateId s) const {
  std::uint64_t total = 0;
  for (int g = 0; g < kAgeGroupCount; ++g) {
    total += at(t, s, static_cast<AgeGroup>(g)).cumulative;
  }
  return total;
}

std::uint64_t SummaryCube::byte_size() const {
  return data_.size() * 3 * sizeof(std::uint64_t);
}

SummaryCube build_summary_cube(const SimOutput& output,
                               const Population& population,
                               const DiseaseModel& model, Tick ticks) {
  SummaryCube cube(ticks, model.state_count());
  // Occupancy tracking: per (state, age group) current counts, advanced
  // tick by tick while consuming the (tick-ordered) transition log.
  std::vector<std::int64_t> occupancy(model.state_count() * kAgeGroupCount, 0);
  std::vector<std::uint64_t> cumulative(model.state_count() * kAgeGroupCount,
                                        0);
  std::vector<HealthStateId> current(population.person_count(),
                                     model.initial_state());
  // Initial occupancy: everyone susceptible.
  for (PersonId p = 0; p < population.person_count(); ++p) {
    const auto g = static_cast<std::size_t>(population.age_group(p));
    ++occupancy[model.initial_state() * kAgeGroupCount + g];
  }

  std::size_t cursor = 0;
  for (Tick t = 0; t < ticks; ++t) {
    while (cursor < output.transitions.size() &&
           output.transitions[cursor].tick == t) {
      const TransitionEvent& event = output.transitions[cursor];
      const auto g = static_cast<std::size_t>(
          population.age_group(event.person));
      const HealthStateId old_state = current[event.person];
      --occupancy[old_state * kAgeGroupCount + g];
      ++occupancy[event.exit_state * kAgeGroupCount + g];
      ++cumulative[event.exit_state * kAgeGroupCount + g];
      current[event.person] = event.exit_state;
      ++cube.at(t, event.exit_state, static_cast<AgeGroup>(g)).entered;
      ++cursor;
    }
    for (std::size_t s = 0; s < model.state_count(); ++s) {
      for (int g = 0; g < kAgeGroupCount; ++g) {
        auto& cell =
            cube.at(t, static_cast<HealthStateId>(s), static_cast<AgeGroup>(g));
        cell.occupancy = static_cast<std::uint64_t>(
            occupancy[s * kAgeGroupCount + static_cast<std::size_t>(g)]);
        cell.cumulative =
            cumulative[s * kAgeGroupCount + static_cast<std::size_t>(g)];
      }
    }
  }
  return cube;
}

const char* aggregation_target_name(AggregationTarget target) {
  switch (target) {
    case AggregationTarget::kNewConfirmed: return "new_confirmed";
    case AggregationTarget::kHospitalOccupancy: return "hospital_occupancy";
    case AggregationTarget::kVentilatorOccupancy: return "ventilator_occupancy";
    case AggregationTarget::kCumulativeDeaths: return "cumulative_deaths";
    case AggregationTarget::kCumulativeConfirmed: return "cumulative_confirmed";
  }
  return "?";
}

namespace {

// Classifies whether a transition event contributes to a target and
// whether occupancy semantics (enter +1 / leave -1) apply.
bool state_matches(const DiseaseModel& model, HealthStateId s,
                   AggregationTarget target) {
  const HealthState& state = model.state(s);
  switch (target) {
    case AggregationTarget::kNewConfirmed:
    case AggregationTarget::kCumulativeConfirmed:
      return state.counts_as_symptomatic;
    case AggregationTarget::kHospitalOccupancy:
      return state.counts_as_hospitalized;
    case AggregationTarget::kVentilatorOccupancy:
      return state.counts_as_ventilated;
    case AggregationTarget::kCumulativeDeaths:
      return state.counts_as_death;
  }
  return false;
}

bool target_is_occupancy(AggregationTarget target) {
  return target == AggregationTarget::kHospitalOccupancy ||
         target == AggregationTarget::kVentilatorOccupancy;
}

bool target_is_cumulative(AggregationTarget target) {
  return target == AggregationTarget::kCumulativeDeaths ||
         target == AggregationTarget::kCumulativeConfirmed;
}

}  // namespace

CountySeries aggregate_by_county(const SimOutput& output,
                                 const Population& population,
                                 const DiseaseModel& model, Tick ticks,
                                 AggregationTarget target) {
  CountySeries series;
  series.county_fips = population.county_fips_codes();
  series.values.assign(population.county_count(),
                       std::vector<double>(static_cast<std::size_t>(ticks), 0.0));

  // For "new confirmed" we count the FIRST entry of a person into a
  // symptomatic-class state, not internal moves between symptomatic
  // states (Symptomatic -> Attended must not double-count).
  std::vector<HealthStateId> current(population.person_count(),
                                     model.initial_state());
  for (const TransitionEvent& event : output.transitions) {
    if (event.tick >= ticks) break;
    const HealthStateId old_state = current[event.person];
    current[event.person] = event.exit_state;
    const bool was = state_matches(model, old_state, target);
    const bool is = state_matches(model, event.exit_state, target);
    const auto county = population.person(event.person).county;
    auto& row = series.values[county];
    const auto t = static_cast<std::size_t>(event.tick);
    if (target_is_occupancy(target)) {
      // Mark entry/exit deltas; converted to occupancy below.
      if (!was && is) row[t] += 1.0;
      if (was && !is) row[t] -= 1.0;
    } else {
      if (!was && is) row[t] += 1.0;
    }
  }
  if (target_is_occupancy(target) || target_is_cumulative(target)) {
    for (auto& row : series.values) {
      double running = 0.0;
      for (double& value : row) {
        running += value;
        value = running;
      }
    }
  }
  return series;
}

std::vector<double> aggregate_state_series(const SimOutput& output,
                                           const Population& population,
                                           const DiseaseModel& model,
                                           Tick ticks,
                                           AggregationTarget target) {
  const CountySeries series =
      aggregate_by_county(output, population, model, ticks, target);
  std::vector<double> total(static_cast<std::size_t>(ticks), 0.0);
  for (const auto& row : series.values) {
    for (std::size_t t = 0; t < row.size(); ++t) total[t] += row[t];
  }
  return total;
}

std::uint64_t raw_output_bytes(const SimOutput& output) {
  // Production line format: "tick,pid,exitState,contactPid\n" — around 40
  // bytes per transition at national-scale person-id widths.
  constexpr std::uint64_t kBytesPerLine = 40;
  return output.transitions.size() * kBytesPerLine;
}

}  // namespace epi
