// Post-simulation aggregation (paper §III "Output data" and Figs 3-5
// footnotes).
//
// EpiHiper emits individual state transitions; the workflow aggregates
// them into the summary cube the calibration and prediction steps consume:
// per day x (health state x age group) x 3 counts — newly entered,
// current occupancy, cumulative entered. The paper's "90 health states"
// is exactly this state-x-age-group stratification; with our 15-state
// COVID model and 5 age groups the cube carries 75 stratified states.
// County-level epicurves (daily counts of symptomatic cases,
// hospitalizations, ventilations, deaths) are derived the same way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "epihiper/simulation.hpp"
#include "synthpop/population.hpp"

namespace epi {

/// The three counts tracked per stratified state per day.
struct StateCounts {
  std::uint64_t entered = 0;     // transitions into the state this day
  std::uint64_t occupancy = 0;   // persons in the state at end of day
  std::uint64_t cumulative = 0;  // total transitions into the state so far
};

/// Summary cube: [tick][state * kAgeGroupCount + age_group] -> StateCounts.
class SummaryCube {
 public:
  SummaryCube(Tick ticks, std::size_t health_states);

  Tick ticks() const { return ticks_; }
  std::size_t stratified_states() const {
    return health_states_ * kAgeGroupCount;
  }
  std::size_t health_states() const { return health_states_; }

  StateCounts& at(Tick t, HealthStateId s, AgeGroup g);
  const StateCounts& at(Tick t, HealthStateId s, AgeGroup g) const;

  /// Sum of a count across age groups.
  std::uint64_t entered(Tick t, HealthStateId s) const;
  std::uint64_t occupancy(Tick t, HealthStateId s) const;
  std::uint64_t cumulative(Tick t, HealthStateId s) const;

  /// Serialized size in bytes (Table I summary-output accounting:
  /// ticks x stratified states x 3 counts x 8 bytes).
  std::uint64_t byte_size() const;

 private:
  Tick ticks_;
  std::size_t health_states_;
  std::vector<StateCounts> data_;
};

/// Builds the summary cube from a replicate's transition log. Initial
/// occupancy is everyone in the model's initial state.
SummaryCube build_summary_cube(const SimOutput& output,
                               const Population& population,
                               const DiseaseModel& model, Tick ticks);

/// County-level daily series of one aggregation target.
struct CountySeries {
  /// values[county][tick]
  std::vector<std::vector<double>> values;
  std::vector<std::uint32_t> county_fips;
};

enum class AggregationTarget {
  kNewConfirmed,     // new symptomatic-class entries per day
  kHospitalOccupancy,
  kVentilatorOccupancy,
  kCumulativeDeaths,
  kCumulativeConfirmed,
};

const char* aggregation_target_name(AggregationTarget target);

/// County-resolved aggregation of a replicate.
CountySeries aggregate_by_county(const SimOutput& output,
                                 const Population& population,
                                 const DiseaseModel& model, Tick ticks,
                                 AggregationTarget target);

/// State-level series (sum over counties).
std::vector<double> aggregate_state_series(const SimOutput& output,
                                           const Population& population,
                                           const DiseaseModel& model,
                                           Tick ticks,
                                           AggregationTarget target);

/// Raw-output size in bytes of a replicate's transition log, using the
/// production line format width (the Table I raw-output accounting).
std::uint64_t raw_output_bytes(const SimOutput& output);

}  // namespace epi
