#include "analytics/costs.hpp"

namespace epi {

MedicalCostBreakdown medical_costs(const SummaryCube& cube,
                                   const DiseaseModel& model,
                                   const MedicalCostParams& params) {
  MedicalCostBreakdown out;
  for (std::size_t s = 0; s < model.state_count(); ++s) {
    const HealthState& state = model.state(static_cast<HealthStateId>(s));
    for (Tick t = 0; t < cube.ticks(); ++t) {
      const std::uint64_t entered =
          cube.entered(t, static_cast<HealthStateId>(s));
      const std::uint64_t occupancy =
          cube.occupancy(t, static_cast<HealthStateId>(s));
      // Outpatient attention: every entry into a symptomatic-class state
      // that is neither hospital nor death is one attended case; to avoid
      // double counting along Symptomatic -> Attended chains we charge on
      // the Attended-type states only (symptomatic && !hospitalized).
      if (state.counts_as_symptomatic && !state.counts_as_hospitalized &&
          state.name != "Symptomatic") {
        out.attended_cases += entered;
      }
      if (state.counts_as_hospitalized && !state.counts_as_ventilated) {
        out.hospital_days += occupancy;
      }
      if (state.counts_as_ventilated) {
        out.ventilator_days += occupancy;
      }
      if (state.counts_as_death) {
        out.deaths += entered;
      }
    }
  }
  out.outpatient = params.outpatient_visit * static_cast<double>(out.attended_cases);
  out.hospital = params.hospital_day * static_cast<double>(out.hospital_days);
  out.ventilator =
      params.ventilator_day * static_cast<double>(out.ventilator_days);
  out.death = params.death_additional * static_cast<double>(out.deaths);
  return out;
}

}  // namespace epi
