// Medical-cost model (paper §VII, case study "Medical costs of COVID-19";
// companion reference [9], Chen et al., "Medical costs of keeping the US
// economy open during COVID-19").
//
// Per-patient costs depend on disease severity: outpatient medical
// attention is a per-case cost, hospitalization and ventilation are
// per-day costs. Applied to the aggregated simulation output of each
// scenario cell to produce the scenario's total medical cost.
#pragma once

#include <cstdint>
#include <string>

#include "analytics/aggregate.hpp"

namespace epi {

/// 2020-dollar cost parameters (FAIR Health / HCUP-style estimates used by
/// the companion paper's cost model).
struct MedicalCostParams {
  double outpatient_visit = 500.0;        // per medically attended case
  double hospital_day = 2500.0;           // per inpatient day (non-ICU)
  double ventilator_day = 5000.0;         // per ventilated ICU day
  double death_additional = 10000.0;      // end-of-life incremental cost
};

struct MedicalCostBreakdown {
  double outpatient = 0.0;
  double hospital = 0.0;
  double ventilator = 0.0;
  double death = 0.0;
  double total() const {
    return outpatient + hospital + ventilator + death;
  }
  std::uint64_t attended_cases = 0;
  std::uint64_t hospital_days = 0;
  std::uint64_t ventilator_days = 0;
  std::uint64_t deaths = 0;
};

/// Computes the scenario cost from a replicate's summary cube.
MedicalCostBreakdown medical_costs(const SummaryCube& cube,
                                   const DiseaseModel& model,
                                   const MedicalCostParams& params = {});

}  // namespace epi
