#include "analytics/dendrogram.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace epi {

TransmissionForest::TransmissionForest(
    const std::vector<TransitionEvent>& transitions) {
  for (const TransitionEvent& event : transitions) {
    last_tick_ = std::max(last_tick_, event.tick);
    // An infection event is the first transition of a person caused by a
    // contact, or a seeded exposure (no infector). Later transitions of
    // the same person are within-host progressions.
    if (infected_at_.count(event.person) != 0) continue;
    if (event.infector != kNoPerson) {
      infected_at_[event.person] = event.tick;
      infection_order_.emplace_back(event.person, event.tick);
      children_[event.infector].push_back(event.person);
      ++edges_;
    } else if (event.exit_state != kNoState) {
      // A seed: treat the first causeless transition as the root infection
      // if the person is never attributed to an infector.
      infected_at_[event.person] = event.tick;
      infection_order_.emplace_back(event.person, event.tick);
      roots_.push_back(event.person);
    }
  }
}

const std::vector<PersonId>& TransmissionForest::children(PersonId p) const {
  const auto it = children_.find(p);
  return it == children_.end() ? empty_ : it->second;
}

Tick TransmissionForest::infection_tick(PersonId p) const {
  const auto it = infected_at_.find(p);
  return it == infected_at_.end() ? -1 : it->second;
}

std::size_t TransmissionForest::tree_size(PersonId root) const {
  std::size_t size = 0;
  std::vector<PersonId> stack = {root};
  while (!stack.empty()) {
    const PersonId node = stack.back();
    stack.pop_back();
    ++size;
    for (PersonId child : children(node)) stack.push_back(child);
  }
  return size;
}

std::size_t TransmissionForest::tree_depth(PersonId root) const {
  std::size_t max_depth = 0;
  std::vector<std::pair<PersonId, std::size_t>> stack = {{root, 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (PersonId child : children(node)) stack.emplace_back(child, depth + 1);
  }
  return max_depth;
}

double TransmissionForest::mean_offspring(Tick horizon) const {
  // Only count persons infected early enough that their offspring are
  // fully observed; otherwise right-censoring biases the estimate down.
  // Iterates the log-ordered vector, not the unordered index, so the
  // traversal (and any future per-person output) is deterministic.
  std::size_t eligible = 0;
  std::size_t offspring = 0;
  for (const auto& [person, tick] : infection_order_) {
    if (tick + horizon > last_tick_) continue;
    ++eligible;
    offspring += children(person).size();
  }
  if (eligible == 0) return 0.0;
  return static_cast<double>(offspring) / static_cast<double>(eligible);
}

std::uint64_t TransmissionForest::byte_size() const {
  // "infectorPid,personPid,tick\n" ~ 24 bytes per transmission edge.
  return (edges_ + roots_.size()) * 24;
}

}  // namespace epi
