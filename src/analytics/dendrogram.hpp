// Transmission trees ("dendograms" in the paper's terminology): trees of
// who-infected-whom rooted at initial infections, extracted from the
// transition log. Prediction workflows ship ~1 TB of this data per night;
// here it also yields epidemiological diagnostics (offspring counts — an
// empirical R estimate — tree sizes and depths).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "epihiper/simulation.hpp"

namespace epi {

/// The who-infected-whom forest of one replicate.
class TransmissionForest {
 public:
  /// Builds the forest from a transition log: every event with an
  /// infector becomes an edge infector -> person; seeded exposures (no
  /// infector) become roots.
  explicit TransmissionForest(const std::vector<TransitionEvent>& transitions);

  std::size_t tree_count() const { return roots_.size(); }
  std::size_t infection_count() const { return edges_; }
  const std::vector<PersonId>& roots() const { return roots_; }
  const std::vector<PersonId>& children(PersonId p) const;
  /// Tick at which `p` was infected (or -1 if never infected).
  Tick infection_tick(PersonId p) const;

  /// Size (number of infections, root included) of the tree rooted at r.
  std::size_t tree_size(PersonId root) const;
  /// Depth (longest root-to-leaf chain, root = 0) of the tree at r.
  std::size_t tree_depth(PersonId root) const;

  /// Mean offspring count over all infected persons whose infectious
  /// period ended at least `horizon` ticks before the log ends — an
  /// empirical reproduction-number estimate.
  double mean_offspring(Tick horizon = 21) const;

  /// Serialized dendrogram size in bytes, production line format
  /// (the Fig 5 transmission-tree volume accounting).
  std::uint64_t byte_size() const;

 private:
  // The unordered maps are lookup indexes only and are never iterated:
  // hash order is nondeterministic across runs/platforms, so any output
  // derived from iterating them would break replicate reproducibility
  // (the determinism lint enforces this). Iteration happens over
  // infection_order_, which preserves the deterministic log order.
  std::unordered_map<PersonId, std::vector<PersonId>> children_;
  std::unordered_map<PersonId, Tick> infected_at_;
  std::vector<std::pair<PersonId, Tick>> infection_order_;
  std::vector<PersonId> roots_;
  std::size_t edges_ = 0;
  Tick last_tick_ = 0;
  std::vector<PersonId> empty_;
};

}  // namespace epi
