#include "analytics/ensemble.hpp"

#include "util/error.hpp"
#include "util/stats.hpp"

namespace epi {

EnsembleBand ensemble_band(const std::vector<std::vector<double>>& curves,
                           double level) {
  EPI_REQUIRE(!curves.empty(), "empty ensemble");
  EPI_REQUIRE(level > 0.0 && level < 1.0, "band level out of (0,1)");
  const std::size_t length = curves[0].size();
  for (const auto& curve : curves) {
    EPI_REQUIRE(curve.size() == length, "ensemble curves differ in length");
  }
  const double tail = (1.0 - level) / 2.0;
  EnsembleBand band;
  band.median.resize(length);
  band.lo.resize(length);
  band.hi.resize(length);
  band.mean.resize(length);
  std::vector<double> column(curves.size());
  for (std::size_t t = 0; t < length; ++t) {
    for (std::size_t i = 0; i < curves.size(); ++i) column[i] = curves[i][t];
    band.median[t] = quantile(column, 0.5);
    band.lo[t] = quantile(column, tail);
    band.hi[t] = quantile(column, 1.0 - tail);
    band.mean[t] = mean(column);
  }
  return band;
}

double band_coverage(const EnsembleBand& band,
                     const std::vector<double>& observed) {
  EPI_REQUIRE(observed.size() == band.lo.size(),
              "observed/band length mismatch");
  if (observed.empty()) return 0.0;
  std::size_t inside = 0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    if (observed[t] >= band.lo[t] && observed[t] <= band.hi[t]) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(observed.size());
}

}  // namespace epi
