// Ensemble summarization: the prediction workflow runs many replicates per
// cell and reports forecast targets with uncertainty ("the ensemble of the
// model configurations and the simulation output provides uncertainty
// quantification on the predictions", Fig 17's median + 95% band).
#pragma once

#include <vector>

namespace epi {

/// Quantile band of an ensemble of equal-length curves.
struct EnsembleBand {
  std::vector<double> median;
  std::vector<double> lo;   // lower quantile
  std::vector<double> hi;   // upper quantile
  std::vector<double> mean;
};

/// Computes the pointwise band. `level` = 0.95 gives the 2.5/97.5%
/// envelope.
EnsembleBand ensemble_band(const std::vector<std::vector<double>>& curves,
                           double level = 0.95);

/// Fraction of `observed` points falling inside [lo, hi].
double band_coverage(const EnsembleBand& band,
                     const std::vector<double>& observed);

}  // namespace epi
