#include "analytics/forecast.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace epi {

const std::vector<double>& forecast_quantile_levels() {
  // The CDC forecast-hub 23-quantile set.
  static const std::vector<double> levels = {
      0.01, 0.025, 0.05, 0.1,  0.15, 0.2,  0.25, 0.3,  0.35, 0.4,  0.45, 0.5,
      0.55, 0.6,   0.65, 0.7,  0.75, 0.8,  0.85, 0.9,  0.95, 0.975, 0.99};
  return levels;
}

const ForecastEntry& ForecastProduct::entry(AggregationTarget target,
                                            int horizon_weeks) const {
  for (const ForecastEntry& e : entries) {
    if (e.target == target && e.horizon_weeks == horizon_weeks) return e;
  }
  throw ConfigError("forecast entry not found: " +
                    std::string(aggregation_target_name(target)) + " week " +
                    std::to_string(horizon_weeks));
}

void ForecastProduct::write_csv(std::ostream& out) const {
  out << "region,target,horizon_weeks,quantile_level,value\n";
  const auto& levels = forecast_quantile_levels();
  for (const ForecastEntry& e : entries) {
    for (std::size_t q = 0; q < levels.size(); ++q) {
      out << region << ',' << aggregation_target_name(e.target) << ','
          << e.horizon_weeks << ',' << levels[q] << ',' << e.quantiles[q]
          << '\n';
    }
  }
}

namespace {

bool target_is_cumulative_style(AggregationTarget target) {
  return target == AggregationTarget::kCumulativeConfirmed ||
         target == AggregationTarget::kCumulativeDeaths ||
         target == AggregationTarget::kHospitalOccupancy ||
         target == AggregationTarget::kVentilatorOccupancy;
}

}  // namespace

ForecastProduct build_forecast(const std::vector<SimOutput>& ensemble,
                               const Population& population,
                               const DiseaseModel& model, Tick forecast_tick,
                               int max_horizon_weeks,
                               const std::string& region) {
  EPI_REQUIRE(!ensemble.empty(), "forecast needs at least one replicate");
  EPI_REQUIRE(max_horizon_weeks >= 1, "need at least one horizon week");
  const Tick needed = forecast_tick + 7 * max_horizon_weeks;
  ForecastProduct product;
  product.region = region;
  product.forecast_tick = forecast_tick;

  const AggregationTarget targets[] = {
      AggregationTarget::kNewConfirmed,
      AggregationTarget::kCumulativeConfirmed,
      AggregationTarget::kHospitalOccupancy,
      AggregationTarget::kCumulativeDeaths,
  };
  const auto& levels = forecast_quantile_levels();

  for (const AggregationTarget target : targets) {
    // Per-replicate full series for this target.
    std::vector<std::vector<double>> series;
    series.reserve(ensemble.size());
    for (const SimOutput& output : ensemble) {
      series.push_back(
          aggregate_state_series(output, population, model, needed, target));
    }
    for (int week = 1; week <= max_horizon_weeks; ++week) {
      const Tick week_end = forecast_tick + 7 * week - 1;
      std::vector<double> values;
      values.reserve(series.size());
      for (const auto& replicate : series) {
        if (target_is_cumulative_style(target)) {
          values.push_back(replicate[static_cast<std::size_t>(week_end)]);
        } else {
          // Weekly incidence: sum over the horizon week.
          double weekly = 0.0;
          for (Tick t = week_end - 6; t <= week_end; ++t) {
            weekly += replicate[static_cast<std::size_t>(t)];
          }
          values.push_back(weekly);
        }
      }
      ForecastEntry entry;
      entry.target = target;
      entry.horizon_weeks = week;
      entry.quantiles.reserve(levels.size());
      for (double level : levels) {
        entry.quantiles.push_back(quantile(values, level));
      }
      entry.point = quantile(values, 0.5);
      product.entries.push_back(std::move(entry));
    }
  }
  return product;
}

}  // namespace epi
