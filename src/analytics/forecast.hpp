// Forecast products (paper §II, Prediction workflow): "aggregate
// individual-level output to obtain future counts for various forecasting
// targets (e.g. confirmed cases, hospitalizations, deaths) at various
// spatial resolution (state or county level) with different temporal
// horizons". The group submitted weekly quantile forecasts to the CDC
// forecast hub; this module assembles exactly that product — per target,
// per horizon week, the standard quantile set — from an ensemble of
// simulation replicates.
#pragma once

#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "epihiper/simulation.hpp"

namespace epi {

/// The CDC forecast-hub quantile levels.
const std::vector<double>& forecast_quantile_levels();

struct ForecastEntry {
  AggregationTarget target = AggregationTarget::kNewConfirmed;
  int horizon_weeks = 1;        // weeks ahead of the forecast date
  std::vector<double> quantiles;  // aligned with forecast_quantile_levels()
  double point = 0.0;             // median point forecast
};

/// One submission: every (target, horizon) pair for a region.
struct ForecastProduct {
  std::string region;
  Tick forecast_tick = 0;  // the "as of" day within the simulations
  std::vector<ForecastEntry> entries;

  /// Entry lookup; throws if absent.
  const ForecastEntry& entry(AggregationTarget target, int horizon_weeks) const;

  /// Serializes in the forecast-hub CSV layout:
  /// region,target,horizon_weeks,quantile_level,value
  void write_csv(std::ostream& out) const;
};

/// Builds the product from ensemble replicate outputs. Each output must
/// cover at least forecast_tick + 7 * max_horizon_weeks ticks. Weekly
/// values are the target series at the end of each horizon week
/// (cumulative targets) or summed over the week (incidence targets).
ForecastProduct build_forecast(const std::vector<SimOutput>& ensemble,
                               const Population& population,
                               const DiseaseModel& model, Tick forecast_tick,
                               int max_horizon_weeks,
                               const std::string& region);

}  // namespace epi
