#include "analytics/output_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace epi {

std::uint64_t write_transitions_csv(std::ostream& out,
                                    const std::vector<TransitionEvent>& events,
                                    const DiseaseModel& model) {
  std::uint64_t bytes = 0;
  auto emit = [&](const std::string& line) {
    out << line << '\n';
    bytes += line.size() + 1;
  };
  emit("tick,pid,exitState,contactPid");
  std::string line;
  for (const TransitionEvent& event : events) {
    line.clear();
    line += std::to_string(event.tick);
    line += ',';
    line += std::to_string(event.person);
    line += ',';
    line += model.state(event.exit_state).name;
    line += ',';
    if (event.infector != kNoPerson) {
      line += std::to_string(event.infector);
    }
    emit(line);
  }
  EPI_REQUIRE(out.good(), "short write of transition log");
  return bytes;
}

std::vector<TransitionEvent> read_transitions_csv(std::istream& in,
                                                  const DiseaseModel& model) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const CsvTable table = parse_csv(buffer.str());
  std::vector<TransitionEvent> events;
  events.reserve(table.row_count());
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    TransitionEvent event;
    event.tick = static_cast<Tick>(table.cell_int(row, "tick"));
    event.person = static_cast<PersonId>(table.cell_int(row, "pid"));
    event.exit_state = model.state_id(table.cell(row, table.column("exitState")));
    const std::string& contact = table.cell(row, table.column("contactPid"));
    event.infector = contact.empty()
                         ? kNoPerson
                         : static_cast<PersonId>(std::stoul(contact));
    events.push_back(event);
  }
  return events;
}

std::uint64_t write_transitions_file(const std::string& path,
                                     const std::vector<TransitionEvent>& events,
                                     const DiseaseModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot write transition log: " + path);
  return write_transitions_csv(out, events, model);
}

std::vector<TransitionEvent> read_transitions_file(const std::string& path,
                                                   const DiseaseModel& model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read transition log: " + path);
  return read_transitions_csv(in, model);
}

}  // namespace epi
