// EpiHiper raw-output file I/O.
//
// Paper §III: "EpiHiper produces state transitions of all persons during
// the simulation. Each line of the output file written by EpiHiper
// includes the tick of the transition event, the identifier of the
// person, their exit state, and the identifier of the person causing the
// state transition in the case of disease transmission." This module
// writes and reads that CSV format — the 20 GB–3.5 TB/day payload that
// stays on the remote cluster's Lustre filesystem.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "epihiper/simulation.hpp"

namespace epi {

/// Writes the transition log in the production line format:
/// `tick,pid,exitState,contactPid` with state names resolved through the
/// model and an empty contactPid for progressions/seeds. Returns bytes
/// written.
std::uint64_t write_transitions_csv(std::ostream& out,
                                    const std::vector<TransitionEvent>& events,
                                    const DiseaseModel& model);

/// Reads the format back; state names are resolved against `model`.
/// Throws ConfigError on malformed rows or unknown states.
std::vector<TransitionEvent> read_transitions_csv(std::istream& in,
                                                  const DiseaseModel& model);

/// Convenience wrappers writing to / reading from a file path.
std::uint64_t write_transitions_file(const std::string& path,
                                     const std::vector<TransitionEvent>& events,
                                     const DiseaseModel& model);
std::vector<TransitionEvent> read_transitions_file(const std::string& path,
                                                   const DiseaseModel& model);

}  // namespace epi
