#include "calibration/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace epi {

CalibrationDesign make_prior_design(std::vector<ParamRange> ranges,
                                    std::size_t n, Rng& rng) {
  CalibrationDesign design;
  design.points = latin_hypercube(n, ranges, rng);
  design.ranges = std::move(ranges);
  return design;
}

namespace {

Mat design_to_unit_matrix(const CalibrationDesign& design) {
  EPI_REQUIRE(!design.points.empty(), "empty calibration design");
  Mat unit(design.points.size(), design.ranges.size());
  for (std::size_t i = 0; i < design.points.size(); ++i) {
    unit.set_row(i, scale_to_unit(design.points[i], design.ranges));
  }
  return unit;
}

}  // namespace

AgentCalibrator::AgentCalibrator(CalibrationDesign design, Mat sim_outputs,
                                 Vec observed, std::uint64_t seed,
                                 Mat replicate_covariance)
    : design_(std::move(design)),
      rng_(Rng(seed).derive({0x43414cULL})),  // "CAL"
      emulator_(design_to_unit_matrix(design_), std::move(sim_outputs),
                /*num_basis=*/5, rng_),
      model_(emulator_, std::move(observed), std::move(replicate_covariance)) {}

AgentCalibrationResult AgentCalibrator::calibrate(
    std::size_t num_posterior_configs, const McmcConfig& mcmc) {
  const std::size_t dims = design_.ranges.size();
  // Chain state: [theta_unit(0..d), log lambda_delta, log lambda_eps].
  auto log_density = [this](const std::vector<double>& x) {
    const Vec theta(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(
                                               design_.ranges.size()));
    const double lambda_delta = std::exp(x[design_.ranges.size()]);
    const double lambda_eps = std::exp(x[design_.ranges.size() + 1]);
    // + log-Jacobian of the log transform so the gamma priors apply on the
    // precision scale.
    return model_.log_posterior(theta, lambda_delta, lambda_eps) +
           x[design_.ranges.size()] + x[design_.ranges.size() + 1];
  };

  // The emulated posterior surface can be multi-modal; a random-walk chain
  // started blind can trap in a shallow mode. Pre-scan a Latin hypercube
  // of candidate starts (plus the prior-design points) and launch the
  // chain from the best one.
  std::vector<double> initial(dims + 2, 0.5);
  initial[dims] = std::log(10.0);    // lambda_delta
  initial[dims + 1] = std::log(50.0);  // lambda_eps
  {
    Rng scan_rng = rng_.derive({0x5343414eULL});  // "SCAN"
    std::vector<ParamRange> unit_ranges(dims, ParamRange{"u", 0.0, 1.0});
    auto candidates = latin_hypercube(300, unit_ranges, scan_rng);
    for (const auto& point : design_.points) {
      candidates.push_back(scale_to_unit(point, design_.ranges));
    }
    double best = log_density(initial);
    for (const auto& candidate : candidates) {
      std::vector<double> x(candidate.begin(), candidate.end());
      x.push_back(initial[dims]);
      x.push_back(initial[dims + 1]);
      const double lp = log_density(x);
      if (lp > best) {
        best = lp;
        initial = std::move(x);
      }
    }
  }
  Rng mcmc_rng = rng_.derive({0x4d434dULL});  // "MCM"
  McmcResult chain = metropolis(log_density, initial, mcmc, mcmc_rng);

  AgentCalibrationResult result;
  result.acceptance_rate = chain.acceptance_rate;
  result.emulator_variance_captured = emulator_.variance_captured();

  // Resample posterior configurations (evenly spaced draws through the
  // chain, mapped back to original units).
  EPI_REQUIRE(!chain.samples.empty(), "MCMC produced no samples");
  result.posterior_configs.reserve(num_posterior_configs);
  for (std::size_t i = 0; i < num_posterior_configs; ++i) {
    const std::size_t index =
        (i * chain.samples.size()) / num_posterior_configs;
    const auto& sample = chain.samples[index];
    Vec theta_unit(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(dims));
    for (double& x : theta_unit) x = std::clamp(x, 0.0, 1.0);
    result.posterior_configs.push_back(
        scale_to_ranges(theta_unit, design_.ranges));
  }

  // Fig 16 band: the posterior-predictive mixture over the chain (not the
  // MAP band, which understates uncertainty). Mixture mean/variance from
  // evenly spaced posterior draws.
  const std::size_t band_draws = std::min<std::size_t>(24, chain.samples.size());
  const std::size_t series_length = model_.observed().size();
  Vec mixture_mean(series_length, 0.0);
  Vec mixture_second(series_length, 0.0);
  for (std::size_t k = 0; k < band_draws; ++k) {
    const auto& sample =
        chain.samples[(k * chain.samples.size()) / band_draws];
    Vec theta(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(dims));
    for (double& x : theta) x = std::clamp(x, 0.0, 1.0);
    const auto band = model_.predictive_band(theta, std::exp(sample[dims]),
                                             std::exp(sample[dims + 1]));
    for (std::size_t i = 0; i < series_length; ++i) {
      mixture_mean[i] += band.mean[i] / static_cast<double>(band_draws);
      mixture_second[i] += (band.sd[i] * band.sd[i] +
                            band.mean[i] * band.mean[i]) /
                           static_cast<double>(band_draws);
    }
  }
  result.band_mean = mixture_mean;
  result.band_lo.resize(series_length);
  result.band_hi.resize(series_length);
  std::size_t inside = 0;
  const Vec& observed = model_.observed();
  for (std::size_t i = 0; i < series_length; ++i) {
    const double variance = std::max(
        1e-12, mixture_second[i] - mixture_mean[i] * mixture_mean[i]);
    const double sd = std::sqrt(variance);
    result.band_lo[i] = mixture_mean[i] - 1.96 * sd;
    result.band_hi[i] = mixture_mean[i] + 1.96 * sd;
    if (observed[i] >= result.band_lo[i] && observed[i] <= result.band_hi[i]) {
      ++inside;
    }
  }
  result.coverage95 =
      static_cast<double>(inside) / static_cast<double>(series_length);
  result.chain = std::move(chain);
  EPI_INFO("agent calibration: acceptance "
           << result.acceptance_rate << ", 95% band coverage "
           << result.coverage95);
  return result;
}

MetapopCalibrator::MetapopCalibrator(
    const MetapopModel& model, std::vector<std::vector<double>> observed_daily,
    std::vector<MetapopSeed> seeds, MetapopParams base_params)
    : model_(model),
      observed_(std::move(observed_daily)),
      seeds_(std::move(seeds)),
      base_params_(base_params) {
  EPI_REQUIRE(observed_.size() == model_.county_count(),
              "observed data must cover every county");
  EPI_REQUIRE(!observed_.empty() && !observed_[0].empty(),
              "observed data is empty");
  days_ = static_cast<int>(observed_[0].size());
  for (const auto& county : observed_) {
    EPI_REQUIRE(static_cast<int>(county.size()) == days_,
                "county series lengths differ");
  }
}

double MetapopCalibrator::log_likelihood(double beta,
                                         double infectious_days) const {
  if (beta <= 0.0 || infectious_days <= 0.5) return -1e300;
  MetapopParams params = base_params_;
  params.beta = beta;
  params.infectious_days = infectious_days;
  const MetapopOutput out = model_.run_deterministic(params, days_, seeds_);
  // Eq (6): independent counties, diagonal Gaussian noise with sd = 20% of
  // the daily case count (floored so zero-count days stay finite).
  double log_lik = 0.0;
  for (std::size_t c = 0; c < observed_.size(); ++c) {
    for (int d = 0; d < days_; ++d) {
      const double y = observed_[c][static_cast<std::size_t>(d)];
      const double eta = out.new_confirmed[c][static_cast<std::size_t>(d)];
      const double sd = std::max(1.0, 0.2 * y);
      const double z = (y - eta) / sd;
      log_lik += -0.5 * z * z - std::log(sd);
    }
  }
  return log_lik;
}

MetapopCalibrator::Result MetapopCalibrator::calibrate(
    const ParamRange& beta_range, const ParamRange& infectious_range,
    const McmcConfig& mcmc, Rng& rng) const {
  auto log_density = [&](const std::vector<double>& x) {
    // Uniform priors on the stated ranges.
    if (x[0] < beta_range.lo || x[0] > beta_range.hi ||
        x[1] < infectious_range.lo || x[1] > infectious_range.hi) {
      return -1e300;
    }
    return log_likelihood(x[0], x[1]);
  };
  std::vector<double> initial = {(beta_range.lo + beta_range.hi) / 2.0,
                                 (infectious_range.lo + infectious_range.hi) /
                                     2.0};
  McmcConfig config = mcmc;
  config.initial_step = 0.05 * (beta_range.hi - beta_range.lo);
  Result result;
  result.chain = metropolis(log_density, initial, config, rng);
  result.map_params = base_params_;
  result.map_params.beta = result.chain.best_point[0];
  result.map_params.infectious_days = result.chain.best_point[1];
  return result;
}

}  // namespace epi
