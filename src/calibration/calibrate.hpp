// Calibration workflows (paper Fig 4, Appendix E, case studies 2-3).
//
// Agent-based path: the simulator is expensive, so a prior design (Latin
// hypercube, typically 100 configurations) is simulated once; a GPMSA
// emulator is fit to the (log) output series; MCMC on the emulator-based
// posterior produces plausible parameter configurations; the posterior is
// resampled into a new set of configurations handed to the prediction
// workflow.
//
// Metapopulation path: the model is cheap, so calibration "is carried out
// by directly simulating from the model in the MCMC loop" with the Eq (6)
// likelihood (independent counties, Gaussian noise with sd = 20% of daily
// case counts).
#pragma once

#include <vector>

#include "calibration/mcmc.hpp"
#include "emulator/gpmsa.hpp"
#include "metapop/metapop.hpp"
#include "util/lhs.hpp"

namespace epi {

/// A calibration design: named parameter ranges plus the concrete
/// configurations (in original units) to simulate.
struct CalibrationDesign {
  std::vector<ParamRange> ranges;
  std::vector<ParamPoint> points;
};

/// LHS prior design over `ranges` (case study 3 uses n = 100).
CalibrationDesign make_prior_design(std::vector<ParamRange> ranges,
                                    std::size_t n, Rng& rng);

struct AgentCalibrationResult {
  /// Posterior samples over theta (original units), resampled from the
  /// MCMC chain — the configurations fed to the prediction workflow.
  std::vector<ParamPoint> posterior_configs;
  /// Full chain in unit-cube coordinates (diagnostics, Fig 15 scatter).
  McmcResult chain;
  /// Posterior-mean predictive band (Fig 16): emulated mean and the 95%
  /// envelope including discrepancy + observation noise.
  Vec band_mean;
  Vec band_lo;
  Vec band_hi;
  /// Fraction of observed points inside the 95% band (goodness-of-fit;
  /// "the result is good if the ground truth falls between the green
  /// curves").
  double coverage95 = 0.0;
  double acceptance_rate = 0.0;
  double emulator_variance_captured = 0.0;
};

/// Emulator-based Bayesian calibration of the agent model.
class AgentCalibrator {
 public:
  /// `design`: the simulated prior design. `sim_outputs`: one row per
  /// design point — the simulator's (log-transformed) output series.
  /// `observed`: the (log-transformed) ground-truth series, same length.
  /// `replicate_covariance` (optional): simulator replicate-noise
  /// covariance handed to the GPMSA likelihood.
  AgentCalibrator(CalibrationDesign design, Mat sim_outputs, Vec observed,
                  std::uint64_t seed, Mat replicate_covariance = {});

  /// Runs MCMC over (theta, lambda_delta, lambda_eps) and resamples
  /// `num_posterior_configs` configurations from the posterior.
  AgentCalibrationResult calibrate(std::size_t num_posterior_configs = 100,
                                   const McmcConfig& mcmc = {});

  const MultivariateEmulator& emulator() const { return emulator_; }
  const GpmsaCalibrationModel& model() const { return model_; }

 private:
  CalibrationDesign design_;
  Rng rng_;
  MultivariateEmulator emulator_;
  GpmsaCalibrationModel model_;
};

/// Direct-simulation calibration of the metapopulation model (Eq 6).
class MetapopCalibrator {
 public:
  /// `observed_daily[c][d]`: observed new confirmed cases per county/day.
  MetapopCalibrator(const MetapopModel& model,
                    std::vector<std::vector<double>> observed_daily,
                    std::vector<MetapopSeed> seeds,
                    MetapopParams base_params);

  /// Eq (6) log likelihood at a parameter setting; theta maps onto
  /// (beta, infectious_days).
  double log_likelihood(double beta, double infectious_days) const;

  struct Result {
    McmcResult chain;  // over (beta, infectious_days), original units
    MetapopParams map_params;
  };
  Result calibrate(const ParamRange& beta_range,
                   const ParamRange& infectious_range, const McmcConfig& mcmc,
                   Rng& rng) const;

 private:
  const MetapopModel& model_;
  std::vector<std::vector<double>> observed_;
  std::vector<MetapopSeed> seeds_;
  MetapopParams base_params_;
  int days_;
};

}  // namespace epi
