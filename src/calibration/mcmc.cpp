#include "calibration/mcmc.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace epi {

McmcResult metropolis(
    const std::function<double(const std::vector<double>&)>& log_density,
    std::vector<double> initial, const McmcConfig& config, Rng& rng) {
  EPI_REQUIRE(!initial.empty(), "MCMC needs at least one dimension");
  EPI_REQUIRE(config.samples > 0, "MCMC needs at least one sample");
  EPI_REQUIRE(config.thin > 0, "thin must be >= 1");

  const std::size_t dims = initial.size();
  std::vector<double> step(dims, config.initial_step);
  std::vector<double> current = std::move(initial);
  double current_density = log_density(current);
  EPI_REQUIRE(current_density > -1e299,
              "MCMC initial point has zero posterior density");

  McmcResult result;
  result.best_log_density = current_density;
  result.best_point = current;
  result.samples.reserve(config.samples);

  const std::size_t total_iterations =
      config.burn_in + config.samples * config.thin;
  std::size_t accepted_burn_in = 0;
  std::size_t accepted_post = 0;
  std::size_t window_accepted = 0;
  std::size_t window_size = 0;
  // Running per-dimension moments of the burn-in chain, for AM-style
  // proposal scaling (dimensions can have very different posterior
  // scales — e.g. unit-cube parameters vs log-precisions).
  std::vector<double> moment1(dims, 0.0), moment2(dims, 0.0);
  std::size_t moment_count = 0;
  for (std::size_t it = 0; it < total_iterations; ++it) {
    std::vector<double> proposal(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      proposal[d] = current[d] + rng.normal(0.0, step[d]);
    }
    const double proposal_density = log_density(proposal);
    const double log_ratio = proposal_density - current_density;
    if (log_ratio >= 0.0 || rng.uniform() < std::exp(log_ratio)) {
      current = std::move(proposal);
      current_density = proposal_density;
      ++(it < config.burn_in ? accepted_burn_in : accepted_post);
      ++window_accepted;
      if (current_density > result.best_log_density) {
        result.best_log_density = current_density;
        result.best_point = current;
      }
    }
    ++window_size;
    if (it < config.burn_in) {
      for (std::size_t d = 0; d < dims; ++d) {
        moment1[d] += current[d];
        moment2[d] += current[d] * current[d];
      }
      ++moment_count;
    }

    // Adaptation during burn-in, every 100 iterations: (a) shape the
    // per-dimension proposal sds from the chain's empirical sds (AM-style,
    // handles heterogeneous scales), then (b) nudge the overall scale
    // toward ~30% acceptance.
    if (config.adapt_during_burn_in && it < config.burn_in &&
        window_size == 100) {
      const double rate =
          static_cast<double>(window_accepted) / static_cast<double>(window_size);
      const double factor = rate > 0.3 ? 1.15 : 0.85;
      if (moment_count >= 200) {
        const double scale =
            2.4 / std::sqrt(static_cast<double>(dims));
        double geometric_mean = 1.0;
        std::vector<double> empirical_sd(dims);
        for (std::size_t d = 0; d < dims; ++d) {
          const double m = moment1[d] / static_cast<double>(moment_count);
          const double var =
              std::max(1e-10, moment2[d] / static_cast<double>(moment_count) -
                                  m * m);
          empirical_sd[d] = std::sqrt(var);
          geometric_mean *= std::pow(empirical_sd[d], 1.0 / double(dims));
        }
        // Preserve the current overall magnitude (tuned by the acceptance
        // loop) but redistribute it across dimensions by empirical shape.
        double current_magnitude = 1.0;
        for (double s : step) {
          current_magnitude *= std::pow(s, 1.0 / double(dims));
        }
        for (std::size_t d = 0; d < dims; ++d) {
          const double shaped = empirical_sd[d] / geometric_mean;
          step[d] = std::clamp(current_magnitude * shaped * scale /
                                   (2.4 / std::sqrt(double(dims))),
                               1e-5, 2.0);
        }
      }
      for (double& s : step) s = std::clamp(s * factor, 1e-5, 2.0);
      window_accepted = 0;
      window_size = 0;
    }

    if (it >= config.burn_in &&
        (it - config.burn_in + 1) % config.thin == 0) {
      result.samples.push_back(current);
    }
  }
  // Report the post-burn-in rate as the headline diagnostic: during
  // burn-in the step size is still adapting, so its acceptances describe
  // the tuner, not the equilibrium chain. samples > 0 guarantees the
  // post-burn-in denominator is nonzero.
  result.acceptance_rate =
      static_cast<double>(accepted_post) /
      static_cast<double>(total_iterations - config.burn_in);
  result.burn_in_acceptance_rate =
      config.burn_in > 0 ? static_cast<double>(accepted_burn_in) /
                               static_cast<double>(config.burn_in)
                         : 0.0;
  result.final_step = step;
  return result;
}

}  // namespace epi
