// Metropolis MCMC (Appendix E: "This posterior is explored via MCMC";
// metapopulation calibration uses "metropolis update in the Markov
// chain"). Random-walk Metropolis with per-dimension Gaussian proposals
// and optional scale adaptation during burn-in.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace epi {

struct McmcConfig {
  std::size_t samples = 2000;       // post-burn-in samples kept
  std::size_t burn_in = 1000;
  std::size_t thin = 1;
  double initial_step = 0.08;       // proposal sd per dimension
  bool adapt_during_burn_in = true; // tune toward ~30% acceptance
};

struct McmcResult {
  std::vector<std::vector<double>> samples;  // samples x dims
  /// Post-burn-in acceptance rate — the mixing diagnostic. Burn-in
  /// iterations are excluded: the step size is still adapting there, so
  /// folding them in biases the reported rate toward the adaptation
  /// target rather than the equilibrium chain.
  double acceptance_rate = 0.0;
  /// Acceptance rate of the adaptive burn-in phase alone (0 when
  /// burn_in == 0).
  double burn_in_acceptance_rate = 0.0;
  std::vector<double> final_step;            // adapted proposal scales
  double best_log_density = -1e300;
  std::vector<double> best_point;
};

/// Runs random-walk Metropolis on `log_density` starting at `initial`.
/// The density may return -inf (< -1e299) outside its support.
McmcResult metropolis(
    const std::function<double(const std::vector<double>&)>& log_density,
    std::vector<double> initial, const McmcConfig& config, Rng& rng);

}  // namespace epi
