#include "cluster/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace epi {

ConflictGraph::ConflictGraph(std::size_t vertices) : adjacency_(vertices) {}

void ConflictGraph::add_edge(std::size_t u, std::size_t v) {
  EPI_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
              "conflict edge endpoint out of range");
  EPI_REQUIRE(u != v, "self-conflict not allowed");
  // Idempotent: a duplicate edge is the same conflict (parallel edges
  // would double-count in the coloring budgets).
  for (std::size_t existing : adjacency_[u]) {
    if (existing == v) return;
  }
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++edges_;
}

const std::vector<std::size_t>& ConflictGraph::neighbors(std::size_t v) const {
  EPI_REQUIRE(v < adjacency_.size(), "vertex out of range");
  return adjacency_[v];
}

ConflictGraph ConflictGraph::union_of_cliques(
    std::size_t vertices, const std::vector<std::vector<std::size_t>>& groups) {
  ConflictGraph graph(vertices);
  for (const auto& group : groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        graph.add_edge(group[i], group[j]);
      }
    }
  }
  return graph;
}

RelaxedColoring relaxed_coloring(const ConflictGraph& graph, std::size_t r) {
  const std::size_t n = graph.vertex_count();
  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);
  RelaxedColoring result;
  result.color.assign(n, kUncolored);
  if (n == 0) return result;

  // Non-increasing degree order (hard vertices first).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.neighbors(a).size() > graph.neighbors(b).size();
  });

  // conflict_count[v][c] = how many neighbors of v currently have color c.
  // Stored sparsely per vertex as a small vector grown on demand.
  std::vector<std::vector<std::size_t>> conflict_count(n);
  auto count_of = [&](std::size_t v, std::size_t c) -> std::size_t {
    return c < conflict_count[v].size() ? conflict_count[v][c] : 0;
  };
  auto bump = [&](std::size_t v, std::size_t c) {
    if (conflict_count[v].size() <= c) conflict_count[v].resize(c + 1, 0);
    ++conflict_count[v][c];
  };

  for (std::size_t v : order) {
    for (std::size_t c = 0;; ++c) {
      // (a) v itself must tolerate color c: at most r-1 like-colored
      // neighbors.
      if (count_of(v, c) + 1 > r) continue;
      // (b) every neighbor already colored c must stay within budget after
      // v joins.
      bool ok = true;
      for (std::size_t u : graph.neighbors(v)) {
        if (result.color[u] == c && count_of(u, c) + 2 > r) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      result.color[v] = c;
      result.colors_used = std::max(result.colors_used, c + 1);
      for (std::size_t u : graph.neighbors(v)) bump(u, c);
      break;
    }
  }
  return result;
}

bool coloring_is_valid(const ConflictGraph& graph,
                       const std::vector<std::size_t>& color, std::size_t r) {
  if (color.size() != graph.vertex_count()) return false;
  for (std::size_t v = 0; v < color.size(); ++v) {
    std::size_t same = 0;
    for (std::size_t u : graph.neighbors(v)) {
      if (color[u] == color[v]) ++same;
    }
    if (same + 1 > r) return false;
  }
  return true;
}

std::size_t clique_color_lower_bound(std::size_t clique_size, std::size_t r) {
  if (clique_size == 0) return 0;
  return (clique_size + r - 1) / r;
}

}  // namespace epi
