// The r-relaxed coloring problem (paper §V, "Database Access
// Constraints").
//
// Tasks are vertices; an edge means two tasks conflict (they would
// overload a shared database if run simultaneously). An r-relaxed
// coloring assigns each vertex a color such that fewer than r of its
// neighbors share it (at most r-1); r = 1 degenerates to proper
// coloring (so the problem is NP-hard) and colors correspond to
// co-schedulable batches. The paper sidesteps the general problem by
// splitting one database per region (Step 1), which makes the conflict
// graph a disjoint union of cliques; both the general greedy heuristic and
// the clique specialization live here so the ablation bench can compare
// them.
#pragma once

#include <cstddef>
#include <vector>

namespace epi {

/// Undirected conflict graph on vertices 0..n-1.
class ConflictGraph {
 public:
  explicit ConflictGraph(std::size_t vertices);

  void add_edge(std::size_t u, std::size_t v);
  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_; }
  const std::vector<std::size_t>& neighbors(std::size_t v) const;

  /// Builds the union-of-cliques graph of the per-region decomposition:
  /// `groups[i]` lists the vertices of clique i.
  static ConflictGraph union_of_cliques(
      std::size_t vertices, const std::vector<std::vector<std::size_t>>& groups);

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;
};

/// Result of an r-relaxed coloring.
struct RelaxedColoring {
  std::vector<std::size_t> color;  // per vertex
  std::size_t colors_used = 0;
};

/// Greedy r-relaxed coloring: vertices in non-increasing degree order,
/// each assigned the smallest color that keeps BOTH the vertex and all its
/// like-colored neighbors within the (r-1)-shared-neighbor budget.
RelaxedColoring relaxed_coloring(const ConflictGraph& graph, std::size_t r);

/// Validity check: every vertex shares its color with fewer than r neighbors.
bool coloring_is_valid(const ConflictGraph& graph,
                       const std::vector<std::size_t>& color, std::size_t r);

/// Lower bound on colors for a clique of size k under r-relaxation:
/// ceil(k / r) — each color class within a clique has size <= r.
std::size_t clique_color_lower_bound(std::size_t clique_size, std::size_t r);

}  // namespace epi
