#include "cluster/machine.hpp"

namespace epi {

ClusterSpec bridges_cluster() {
  ClusterSpec spec;
  spec.name = "Bridges (PSC)";
  spec.nodes = 720;
  spec.cpus_per_node = 2;
  spec.cores_per_cpu = 14;
  spec.ram_gb_per_node = 128.0;
  spec.cpu_model = "Intel Haswell E5-2695 v3";
  spec.interconnect = "Intel Omnipath-1";
  spec.filesystem = "Lustre";
  spec.window_hours = 10.0;  // 10pm - 8am exclusive access
  // Large shared HPC fleet: a node fails every ~45 days, ~2 h to return
  // (drain + reboot + burn-in). Reference values for FaultSpec.
  spec.node_mtbf_hours = 45.0 * 24.0;
  spec.node_repair_hours = 2.0;
  return spec;
}

ClusterSpec rivanna_cluster() {
  ClusterSpec spec;
  spec.name = "Rivanna (UVA)";
  spec.nodes = 50;
  spec.cpus_per_node = 2;
  spec.cores_per_cpu = 20;
  spec.ram_gb_per_node = 384.0;
  spec.cpu_model = "Intel Xeon Gold 6148";
  spec.interconnect = "Mellanox ConnectX-5";
  spec.filesystem = "Lustre";
  spec.window_hours = 0.0;  // home cluster: always available
  // Smaller, younger fleet under local administration.
  spec.node_mtbf_hours = 60.0 * 24.0;
  spec.node_repair_hours = 1.0;
  return spec;
}

}  // namespace epi
