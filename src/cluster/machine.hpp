// Cluster hardware models (paper Table II).
//
// The production deployment spans two machines: the remote super-computing
// cluster (Bridges at PSC — 720 allocated nodes, 2x14-core Haswell, 128 GB,
// available to the project 10pm-8am) and the home cluster (Rivanna at UVA —
// 50 nodes, 2x20-core Skylake, 384 GB). The discrete-event scheduler and
// the workflow engine run against these specs.
#pragma once

#include <cstdint>
#include <string>

namespace epi {

struct ClusterSpec {
  std::string name;
  std::uint32_t nodes = 0;
  std::uint32_t cpus_per_node = 0;
  std::uint32_t cores_per_cpu = 0;
  double ram_gb_per_node = 0.0;
  std::string cpu_model;
  std::string interconnect;
  std::string filesystem;
  /// Length of the nightly exclusive-access window in hours (0 = always
  /// available).
  double window_hours = 0.0;

  /// Operational reliability reference values (per node). These do NOT
  /// make the model fail by themselves — hardware is perfect until a
  /// FaultSpec armed with these numbers is handed to a FaultInjector;
  /// they document the machine's characterized failure regime for
  /// resilience studies. 0 = not characterized.
  double node_mtbf_hours = 0.0;
  double node_repair_hours = 0.0;

  std::uint32_t cores_per_node() const { return cpus_per_node * cores_per_cpu; }
  std::uint64_t total_cores() const {
    return static_cast<std::uint64_t>(nodes) * cores_per_node();
  }
  double total_ram_gb() const { return nodes * ram_gb_per_node; }
};

/// The remote super-computing cluster (Bridges @ PSC), Table II column 1.
ClusterSpec bridges_cluster();

/// The home cluster (Rivanna @ UVA), Table II column 2.
ClusterSpec rivanna_cluster();

}  // namespace epi
