#include "cluster/packing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace epi {

const char* packing_policy_name(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kNextFitArrival: return "NF-arrival";
    case PackingPolicy::kNextFitDecreasing: return "NFDT-DC";
    case PackingPolicy::kFirstFitDecreasing: return "FFDT-DC";
  }
  return "?";
}

namespace {

/// Mutable level state during packing.
struct LevelState {
  double duration = 0.0;
  std::uint32_t nodes_used = 0;
  std::map<std::string, std::uint32_t> db_usage;  // region -> connections
  std::vector<const SimTask*> tasks;

  bool fits(const SimTask& task, std::uint32_t total_nodes,
            std::uint32_t db_bound) const {
    if (nodes_used + task.nodes_required > total_nodes) return false;
    const auto it = db_usage.find(task.region);
    const std::uint32_t used = it == db_usage.end() ? 0 : it->second;
    return used + task.db_connections <= db_bound;
  }

  void place(const SimTask& task) {
    nodes_used += task.nodes_required;
    db_usage[task.region] += task.db_connections;
    duration = std::max(duration, task.est_hours);
    tasks.push_back(&task);
  }
};

}  // namespace

PackingPlan pack_tasks(std::vector<SimTask> tasks, std::uint32_t total_nodes,
                       PackingPolicy policy, std::uint32_t db_bound) {
  EPI_REQUIRE(total_nodes > 0, "cluster has no nodes");
  for (const SimTask& task : tasks) {
    EPI_REQUIRE(task.nodes_required > 0 && task.nodes_required <= total_nodes,
                "task " << task.id << " needs " << task.nodes_required
                        << " nodes on a " << total_nodes << "-node cluster");
    EPI_REQUIRE(task.db_connections <= db_bound,
                "task " << task.id << " alone exceeds the DB bound");
    EPI_REQUIRE(task.est_hours > 0.0, "task with non-positive runtime");
  }

  if (policy != PackingPolicy::kNextFitArrival) {
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const SimTask& a, const SimTask& b) {
                       return a.est_hours > b.est_hours;
                     });
  }

  std::vector<LevelState> levels;
  for (const SimTask& task : tasks) {
    bool placed = false;
    if (policy == PackingPolicy::kFirstFitDecreasing) {
      // First fit: earliest level that can take the task.
      for (LevelState& level : levels) {
        if (level.fits(task, total_nodes, db_bound)) {
          level.place(task);
          placed = true;
          break;
        }
      }
    } else if (!levels.empty() &&
               levels.back().fits(task, total_nodes, db_bound)) {
      // Next fit: only the currently open (= last) level.
      levels.back().place(task);
      placed = true;
    }
    if (!placed) {
      levels.emplace_back();
      levels.back().place(task);
    }
  }

  PackingPlan plan;
  double clock = 0.0;
  double busy_node_hours = 0.0;
  for (const LevelState& level : levels) {
    PackingLevel out;
    out.start_hours = clock;
    out.duration_hours = level.duration;
    out.nodes_used = level.nodes_used;
    for (const SimTask* task : level.tasks) {
      out.task_ids.push_back(task->id);
      plan.start_hours[task->id] = clock;
      busy_node_hours += task->nodes_required * task->est_hours;
    }
    plan.levels.push_back(std::move(out));
    clock += level.duration;
  }
  plan.makespan_hours = clock;
  plan.planned_utilization =
      clock > 0.0
          ? busy_node_hours / (static_cast<double>(total_nodes) * clock)
          : 1.0;
  return plan;
}

}  // namespace epi
