// Level-oriented 2D-packing job mapping (paper §V, "Our Mapping heuristic
// (MAP)").
//
// Nodes on the X axis, time on the Y axis; tasks are rectangles
// (nodes_required x est_hours). Tasks are placed left-to-right into rows
// ("levels"); a new level starts at the completion time of the slowest
// task of the previous level. Two orderings from the paper:
//   * NFDT-DC — Next-Fit Decreasing Time with DB constraints: the current
//     level is closed as soon as a task does not fit;
//   * FFDT-DC — First-Fit Decreasing Time with DB constraints: a task is
//     placed on the FIRST level that can take it (existing levels stay
//     open), falling back to a new level.
// Without DB constraints their worst-case guarantees are 2 and 17/10.
// A third policy, kNextFitArrival, models the paper's initial unsorted
// production runs, whose utilization was only 44-56%.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/task_model.hpp"

namespace epi {

enum class PackingPolicy {
  kNextFitArrival,     // next-fit, submission order (initial prod. runs)
  kNextFitDecreasing,  // NFDT-DC
  kFirstFitDecreasing, // FFDT-DC
};

const char* packing_policy_name(PackingPolicy policy);

/// One packing level: tasks starting together at `start_hours`.
struct PackingLevel {
  double start_hours = 0.0;
  double duration_hours = 0.0;  // slowest task on the level
  std::uint32_t nodes_used = 0;
  std::vector<std::uint64_t> task_ids;
};

struct PackingPlan {
  std::vector<PackingLevel> levels;
  double makespan_hours = 0.0;
  /// Planned efficiency EC = sum(task nodes x task hours) /
  /// (total nodes x makespan) — the paper's utilization metric applied to
  /// the estimated schedule.
  double planned_utilization = 0.0;
  /// Task start times by id (for the DES to replay as release order).
  std::map<std::uint64_t, double> start_hours;
};

/// Packs `tasks` onto `total_nodes` nodes under per-region simultaneous
/// DB-connection bounds (`db_bound` per region; tasks of one region on the
/// same level must not exceed it). Tasks wider than total_nodes are
/// rejected.
PackingPlan pack_tasks(std::vector<SimTask> tasks, std::uint32_t total_nodes,
                       PackingPolicy policy,
                       std::uint32_t db_bound = db_connection_bound());

}  // namespace epi
