#include "cluster/slurm_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <queue>

#include "util/error.hpp"

namespace epi {

DesResult simulate_cluster(const ClusterSpec& cluster,
                           const std::vector<SimTask>& queue,
                           const DesConfig& config, Rng& rng,
                           std::uint32_t db_bound) {
  EPI_REQUIRE(cluster.nodes > 0, "cluster has no nodes");

  struct Running {
    double end;
    std::uint64_t task_id;
    std::uint32_t nodes;
    std::string region;
    std::uint32_t db;
    bool operator>(const Running& other) const { return end > other.end; }
  };

  std::deque<const SimTask*> pending;
  for (const SimTask& task : queue) {
    EPI_REQUIRE(task.nodes_required <= cluster.nodes,
                "task " << task.id << " wider than the cluster");
    pending.push_back(&task);
  }

  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;
  std::map<std::string, std::uint32_t> db_usage;
  std::uint32_t free_nodes = cluster.nodes;
  double clock = 0.0;
  DesResult result;

  auto actual_runtime = [&](const SimTask& task) {
    const double noise = std::exp(rng.normal(0.0, config.runtime_sigma));
    return task.est_hours * noise;
  };

  auto can_start = [&](const SimTask& task) {
    if (task.nodes_required > free_nodes) return false;
    const auto it = db_usage.find(task.region);
    const std::uint32_t used = it == db_usage.end() ? 0 : it->second;
    return used + task.db_connections <= db_bound;
  };

  auto start_task = [&](const SimTask& task) {
    const double runtime = actual_runtime(task);
    const double end = clock + runtime;
    free_nodes -= task.nodes_required;
    db_usage[task.region] += task.db_connections;
    running.push(Running{end, task.id, task.nodes_required, task.region,
                         task.db_connections});
    result.jobs.push_back(
        JobRecord{task.id, clock, end, task.nodes_required});
    result.busy_node_hours += task.nodes_required * runtime;
  };

  auto within_window = [&](const SimTask& task) {
    if (config.window_hours <= 0.0) return true;
    // Conservative admission: expected completion must fit the window.
    return clock + task.est_hours <= config.window_hours;
  };

  auto dispatch = [&] {
    if (config.backfill) {
      // Scan the whole queue in order; start everything that fits now.
      for (auto it = pending.begin(); it != pending.end();) {
        const SimTask& task = **it;
        if (!within_window(task)) {
          ++result.unfinished;
          it = pending.erase(it);
          continue;
        }
        if (can_start(task)) {
          start_task(task);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // Strict in-order dispatch: stop at the first job that does not fit.
      while (!pending.empty()) {
        const SimTask& task = *pending.front();
        if (!within_window(task)) {
          ++result.unfinished;
          pending.pop_front();
          continue;
        }
        if (!can_start(task)) break;
        start_task(task);
        pending.pop_front();
      }
    }
  };

  dispatch();
  while (!running.empty()) {
    const Running done = running.top();
    running.pop();
    clock = done.end;
    free_nodes += done.nodes;
    auto it = db_usage.find(done.region);
    EPI_ASSERT(it != db_usage.end() && it->second >= done.db,
               "DB usage accounting underflow");
    it->second -= done.db;
    dispatch();
  }
  result.unfinished += pending.size();

  result.makespan_hours = clock;
  result.utilization =
      clock > 0.0 ? result.busy_node_hours /
                        (static_cast<double>(cluster.nodes) * clock)
                  : 1.0;
  return result;
}

}  // namespace epi
