#include "cluster/slurm_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <queue>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace epi {

namespace {

// Bucket bounds for the per-job runtime histogram (hours).
const std::vector<double>& job_hour_bounds() {
  static const std::vector<double> bounds = {0.25, 0.5, 1.0, 2.0,
                                             4.0,  8.0, 16.0};
  return bounds;
}

/// One sample of the DES time series: busy/free/down node counts, queue
/// depth, and instantaneous utilization, all on the DES clock.
void sample_counters(const DesConfig& config, double clock,
                     std::uint32_t total_nodes, std::size_t busy_nodes,
                     std::size_t down_nodes, std::size_t queue_depth) {
  if (config.trace == nullptr) return;
  const double ts = config.trace_base_hours + clock;
  obs::TraceArgs nodes;
  nodes["busy"] = static_cast<std::uint64_t>(busy_nodes);
  nodes["down"] = static_cast<std::uint64_t>(down_nodes);
  nodes["free"] =
      static_cast<std::uint64_t>(total_nodes - busy_nodes - down_nodes);
  config.trace->counter(config.trace_pid, "slurm.nodes", ts,
                        std::move(nodes));
  obs::TraceArgs queue;
  queue["depth"] = static_cast<std::uint64_t>(queue_depth);
  config.trace->counter(config.trace_pid, "slurm.queue", ts,
                        std::move(queue));
  obs::TraceArgs utilization;
  utilization["busy_fraction"] =
      static_cast<double>(busy_nodes) / static_cast<double>(total_nodes);
  config.trace->counter(config.trace_pid, "slurm.utilization", ts,
                        std::move(utilization));
}

/// Emits the 'X' span for one job occupation of its nodes. The span lands
/// on the lane of the job's lowest-numbered node (occupancy guarantees
/// spans on one lane never overlap); lanes are tid = node + 1, keeping
/// tid 0 free for the workflow's own phase spans.
void emit_job_span(const DesConfig& config, const SimTask& task,
                   std::uint32_t lane_node, double start, double end,
                   const char* category) {
  if (config.trace == nullptr) return;
  config.trace->thread_name(config.trace_pid, lane_node + 1,
                            "node " + std::to_string(lane_node));
  obs::TraceArgs args;
  args["task"] = static_cast<std::uint64_t>(task.id);
  args["region"] = task.region;
  args["nodes"] = static_cast<std::uint64_t>(task.nodes_required);
  args["est_hours"] = task.est_hours;
  config.trace->complete(config.trace_pid, lane_node + 1,
                         "task " + std::to_string(task.id), category,
                         config.trace_base_hours + start, end - start,
                         std::move(args));
}

/// The fault-free seed path. Kept verbatim: with the injector disabled
/// every schedule must be byte-identical to the pre-resilience build.
DesResult simulate_perfect(const ClusterSpec& cluster,
                           const std::vector<SimTask>& queue,
                           const DesConfig& config, Rng& rng,
                           std::uint32_t db_bound) {
  struct Running {
    double end;
    std::uint64_t task_id;
    std::uint32_t nodes;
    std::string region;
    std::uint32_t db;
    // Trace-only bookkeeping (empty/default when tracing is off).
    double start = 0.0;
    const SimTask* task = nullptr;
    std::vector<std::uint32_t> node_ids;
    bool operator>(const Running& other) const { return end > other.end; }
  };

  std::deque<const SimTask*> pending;
  for (const SimTask& task : queue) {
    EPI_REQUIRE(task.nodes_required <= cluster.nodes,
                "task " << task.id << " wider than the cluster");
    pending.push_back(&task);
  }

  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;
  std::map<std::string, std::uint32_t> db_usage;
  std::uint32_t free_nodes = cluster.nodes;
  // Node-identity tracking exists only for the trace (one lane per node);
  // the schedule itself needs nothing beyond the free count.
  std::set<std::uint32_t> free_ids;
  if (config.trace != nullptr) {
    for (std::uint32_t n = 0; n < cluster.nodes; ++n) free_ids.insert(n);
  }
  double clock = 0.0;
  DesResult result;

  auto actual_runtime = [&](const SimTask& task) {
    const double noise = std::exp(rng.normal(0.0, config.runtime_sigma));
    return task.est_hours * noise;
  };

  auto can_start = [&](const SimTask& task) {
    if (task.nodes_required > free_nodes) return false;
    const auto it = db_usage.find(task.region);
    const std::uint32_t used = it == db_usage.end() ? 0 : it->second;
    return used + task.db_connections <= db_bound;
  };

  auto start_task = [&](const SimTask& task) {
    const double runtime = actual_runtime(task);
    const double end = clock + runtime;
    free_nodes -= task.nodes_required;
    db_usage[task.region] += task.db_connections;
    Running run;
    run.end = end;
    run.task_id = task.id;
    run.nodes = task.nodes_required;
    run.region = task.region;
    run.db = task.db_connections;
    if (config.trace != nullptr) {
      run.start = clock;
      run.task = &task;
      for (std::uint32_t i = 0; i < task.nodes_required; ++i) {
        run.node_ids.push_back(*free_ids.begin());
        free_ids.erase(free_ids.begin());
      }
    }
    running.push(std::move(run));
    result.jobs.push_back(
        JobRecord{task.id, clock, end, task.nodes_required});
    result.busy_node_hours += task.nodes_required * runtime;
  };

  auto within_window = [&](const SimTask& task) {
    if (config.window_hours <= 0.0) return true;
    // Conservative admission: expected completion must fit the window.
    return clock + task.est_hours <= config.window_hours;
  };

  auto dispatch = [&] {
    if (config.backfill) {
      // Scan the whole queue in order; start everything that fits now.
      for (auto it = pending.begin(); it != pending.end();) {
        const SimTask& task = **it;
        if (!within_window(task)) {
          ++result.unfinished;
          it = pending.erase(it);
          continue;
        }
        if (can_start(task)) {
          start_task(task);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // Strict in-order dispatch: stop at the first job that does not fit.
      while (!pending.empty()) {
        const SimTask& task = *pending.front();
        if (!within_window(task)) {
          ++result.unfinished;
          pending.pop_front();
          continue;
        }
        if (!can_start(task)) break;
        start_task(task);
        pending.pop_front();
      }
    }
  };

  dispatch();
  sample_counters(config, clock, cluster.nodes, cluster.nodes - free_nodes, 0,
                  pending.size());
  while (!running.empty()) {
    const Running done = running.top();
    running.pop();
    clock = done.end;
    free_nodes += done.nodes;
    auto it = db_usage.find(done.region);
    EPI_ASSERT(it != db_usage.end() && it->second >= done.db,
               "DB usage accounting underflow");
    it->second -= done.db;
    if (config.trace != nullptr) {
      emit_job_span(config, *done.task, done.node_ids.front(), done.start,
                    done.end, "job");
      for (const std::uint32_t node : done.node_ids) free_ids.insert(node);
    }
    if (config.metrics != nullptr) {
      config.metrics->add("slurm.jobs_completed");
      config.metrics->observe("slurm.job_hours", done.end - done.start,
                              job_hour_bounds());
    }
    dispatch();
    sample_counters(config, clock, cluster.nodes, cluster.nodes - free_nodes,
                    0, pending.size());
  }
  result.unfinished += pending.size();
  if (config.metrics != nullptr && result.unfinished > 0) {
    config.metrics->add("slurm.jobs_unfinished", result.unfinished);
  }

  result.makespan_hours = clock;
  result.utilization =
      clock > 0.0 ? result.busy_node_hours /
                        (static_cast<double>(cluster.nodes) * clock)
                  : 1.0;
  return result;
}

/// The fault path: node-identity allocation, injector-scheduled crashes,
/// kill + checkpoint-requeue. A killed job re-enters the *front* of the
/// queue (Slurm requeues preempted work at high priority) carrying its
/// durable checkpoint progress.
DesResult simulate_with_faults(const ClusterSpec& cluster,
                               const std::vector<SimTask>& queue,
                               const DesConfig& config, Rng& rng,
                               std::uint32_t db_bound) {
  const FaultInjector& faults = *config.faults;
  const CheckpointSpec& ckpt = config.checkpoint;
  ResilienceLedger* ledger = config.ledger;

  struct PendingJob {
    const SimTask* task;
    double base_runtime = 0.0;  // sampled at first start; 0 = fresh
    double saved_hours = 0.0;   // durable checkpoint progress
  };
  struct Instance {
    const SimTask* task;
    double base_runtime = 0.0;
    double saved_at_start = 0.0;
    double start = 0.0;
    double end = 0.0;
    std::vector<std::uint32_t> node_ids;
    bool alive = true;
  };

  std::deque<PendingJob> pending;
  for (const SimTask& task : queue) {
    EPI_REQUIRE(task.nodes_required <= cluster.nodes,
                "task " << task.id << " wider than the cluster");
    pending.push_back(PendingJob{&task});
  }

  const double horizon = config.window_hours > 0.0
                             ? config.window_hours
                             : config.fault_horizon_hours;
  const std::vector<NodeOutage> outages =
      faults.node_outages(cluster.nodes, horizon);
  std::size_t outage_idx = 0;

  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  std::set<std::uint32_t> free_nodes;  // ordered: lowest ids first
  for (std::uint32_t n = 0; n < cluster.nodes; ++n) free_nodes.insert(n);
  std::vector<std::uint64_t> node_owner(cluster.nodes, kNone);
  std::vector<bool> node_down(cluster.nodes, false);

  // Ordered by instance id so any iteration (per-instance accounting,
  // future end-of-window dumps) emits in deterministic sorted key order;
  // an unordered_map here would make such output hash-order dependent.
  std::map<std::uint64_t, Instance> running;
  std::uint64_t next_instance = 0;
  using EndEvent = std::pair<double, std::uint64_t>;  // (end, instance)
  std::priority_queue<EndEvent, std::vector<EndEvent>, std::greater<EndEvent>>
      completions;
  std::priority_queue<std::pair<double, std::uint32_t>,
                      std::vector<std::pair<double, std::uint32_t>>,
                      std::greater<std::pair<double, std::uint32_t>>>
      repairs;  // (up time, node)

  std::map<std::string, std::uint32_t> db_usage;
  double clock = 0.0;
  DesResult result;

  // Remaining wall time an instance occupies its nodes: restore cost (when
  // resuming), the un-done useful work, and the remaining checkpoint
  // writes.
  auto remaining_wall_hours = [&](const PendingJob& job) {
    const double useful = std::max(0.0, job.base_runtime - job.saved_hours);
    double wall = useful;
    if (ckpt.active() && job.base_runtime > 0.0) {
      const double period = ckpt.period_hours(job.base_runtime);
      const double writes_done =
          period > 0.0 ? std::floor(job.saved_hours / period + 0.5) : 0.0;
      const double writes_left = std::max(
          0.0, static_cast<double>(ckpt.checkpoints_per_run()) - writes_done);
      wall += writes_left * ckpt.write_cost_s / 3600.0;
    }
    if (job.saved_hours > 0.0) wall += ckpt.restore_hours();
    return wall;
  };

  auto can_start = [&](const SimTask& task) {
    if (task.nodes_required > free_nodes.size()) return false;
    const auto it = db_usage.find(task.region);
    const std::uint32_t used = it == db_usage.end() ? 0 : it->second;
    return used + task.db_connections <= db_bound;
  };

  auto start_job = [&](PendingJob job) {
    if (job.base_runtime <= 0.0) {
      const double noise = std::exp(rng.normal(0.0, config.runtime_sigma));
      job.base_runtime = job.task->est_hours * noise;
    }
    Instance inst;
    inst.task = job.task;
    inst.base_runtime = job.base_runtime;
    inst.saved_at_start = job.saved_hours;
    inst.start = clock;
    inst.end = clock + remaining_wall_hours(job);
    for (std::uint32_t i = 0; i < job.task->nodes_required; ++i) {
      const std::uint32_t node = *free_nodes.begin();
      free_nodes.erase(free_nodes.begin());
      node_owner[node] = next_instance;
      inst.node_ids.push_back(node);
    }
    db_usage[job.task->region] += job.task->db_connections;
    completions.push({inst.end, next_instance});
    running.emplace(next_instance, std::move(inst));
    ++next_instance;
  };

  auto within_window = [&](const SimTask& task) {
    if (config.window_hours <= 0.0) return true;
    return clock + task.est_hours <= config.window_hours;
  };

  auto dispatch = [&] {
    if (config.backfill) {
      for (auto it = pending.begin(); it != pending.end();) {
        const SimTask& task = *it->task;
        if (!within_window(task)) {
          ++result.unfinished;
          it = pending.erase(it);
          continue;
        }
        if (can_start(task)) {
          start_job(*it);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      while (!pending.empty()) {
        const SimTask& task = *pending.front().task;
        if (!within_window(task)) {
          ++result.unfinished;
          pending.pop_front();
          continue;
        }
        if (!can_start(task)) break;
        start_job(pending.front());
        pending.pop_front();
      }
    }
  };

  auto release_nodes = [&](const Instance& inst) {
    for (const std::uint32_t node : inst.node_ids) {
      if (!node_down[node]) free_nodes.insert(node);
      node_owner[node] = kNone;
    }
    auto it = db_usage.find(inst.task->region);
    EPI_ASSERT(it != db_usage.end() && it->second >= inst.task->db_connections,
               "DB usage accounting underflow");
    it->second -= inst.task->db_connections;
  };

  auto complete_instance = [&](std::uint64_t id) {
    Instance& inst = running.at(id);
    result.jobs.push_back(JobRecord{inst.task->id, inst.start, inst.end,
                                    inst.task->nodes_required});
    const double occupied = inst.end - inst.start;
    result.busy_node_hours += inst.task->nodes_required * occupied;
    // Wall time that was checkpoint I/O rather than simulation. Without
    // checkpointing there is none (guard against float residue in
    // occupied - useful).
    const double useful = inst.base_runtime - inst.saved_at_start;
    const double overhead =
        ckpt.active() ? std::max(0.0, occupied - useful) : 0.0;
    result.checkpoint_node_hours += inst.task->nodes_required * overhead;
    if (ledger != nullptr) {
      ledger->add_checkpoint_overhead_node_hours(inst.task->nodes_required *
                                                 overhead);
    }
    emit_job_span(config, *inst.task, inst.node_ids.front(), inst.start,
                  inst.end, "job");
    if (config.metrics != nullptr) {
      config.metrics->add("slurm.jobs_completed");
      config.metrics->observe("slurm.job_hours", inst.end - inst.start,
                              job_hour_bounds());
    }
    release_nodes(inst);
    running.erase(id);
  };

  auto kill_instance = [&](std::uint64_t id, std::uint32_t crashed_node) {
    Instance& inst = running.at(id);
    inst.alive = false;
    const double elapsed = clock - inst.start;
    // Durable progress: checkpoints completed since this attempt started
    // (execution after the restore phase alternates work and writes).
    double saved = inst.saved_at_start;
    if (ckpt.active()) {
      const double restore_offset =
          inst.saved_at_start > 0.0 ? ckpt.restore_hours() : 0.0;
      const double executed = std::max(0.0, elapsed - restore_offset);
      const double period = ckpt.period_hours(inst.base_runtime);
      const double slot = period + ckpt.write_cost_s / 3600.0;
      if (slot > 0.0) {
        const double new_periods = std::floor(executed / slot) * period;
        saved = std::min(inst.saved_at_start + new_periods,
                         static_cast<double>(ckpt.checkpoints_per_run()) *
                             period);
      }
    }
    const double progressed = saved - inst.saved_at_start;
    const double wasted = std::max(0.0, elapsed - progressed);
    result.busy_node_hours += inst.task->nodes_required * elapsed;
    result.wasted_node_hours += inst.task->nodes_required * wasted;
    ++result.jobs_requeued;
    if (ledger != nullptr) {
      ledger->add_wasted_node_hours(inst.task->nodes_required * wasted);
      ledger->record(FaultKind::kJobKilled, clock,
                     "task " + std::to_string(inst.task->id) + " on node " +
                         std::to_string(crashed_node));
      ledger->record(FaultKind::kJobRequeued, clock,
                     "task " + std::to_string(inst.task->id) +
                         " from checkpoint");
    }
    emit_job_span(config, *inst.task, inst.node_ids.front(), inst.start, clock,
                  "job.killed");
    if (config.metrics != nullptr) config.metrics->add("slurm.jobs_requeued");
    PendingJob requeued{inst.task, inst.base_runtime, saved};
    release_nodes(inst);
    running.erase(id);
    pending.push_front(requeued);
  };

  auto crash_node = [&](const NodeOutage& outage) {
    const std::uint32_t node = outage.node;
    if (node_down[node]) return;  // defensive; schedules do not overlap
    node_down[node] = true;
    if (ledger != nullptr) {
      ledger->record(FaultKind::kNodeCrash, clock,
                     "node " + std::to_string(node));
    }
    const std::uint64_t owner = node_owner[node];
    if (owner != kNone) {
      kill_instance(owner, node);
    } else {
      free_nodes.erase(node);
    }
    repairs.push({outage.up_hours, node});
  };

  auto repair_node = [&](std::uint32_t node) {
    EPI_ASSERT(node_down[node], "repairing a node that is not down");
    node_down[node] = false;
    free_nodes.insert(node);
    if (ledger != nullptr) {
      ledger->record(FaultKind::kNodeRepair, clock,
                     "node " + std::to_string(node));
    }
  };

  // Busy/down/free counter sample on the current DES clock; only the
  // trace consumes it, so skip the counting work entirely otherwise.
  auto sample_now = [&] {
    if (config.trace == nullptr) return;
    const auto down = static_cast<std::size_t>(
        std::count(node_down.begin(), node_down.end(), true));
    const std::size_t busy = cluster.nodes - free_nodes.size() - down;
    sample_counters(config, clock, cluster.nodes, busy, down, pending.size());
  };

  dispatch();
  sample_now();
  while (true) {
    // Drop completion events of killed instances.
    while (!completions.empty() &&
           (running.find(completions.top().second) == running.end() ||
            !running.at(completions.top().second).alive)) {
      completions.pop();
    }
    const bool work_left = !running.empty() || !pending.empty();
    if (!work_left) break;

    // Next event: job completion, node crash, or node repair. Crashes and
    // repairs only matter while work remains (checked above).
    constexpr int kNoEvent = 0, kCompletion = 1, kCrash = 2, kRepair = 3;
    int kind = kNoEvent;
    double when = 0.0;
    if (!completions.empty()) {
      kind = kCompletion;
      when = completions.top().first;
    }
    if (outage_idx < outages.size() &&
        (kind == kNoEvent || outages[outage_idx].down_hours < when)) {
      kind = kCrash;
      when = outages[outage_idx].down_hours;
    }
    if (!repairs.empty() && (kind == kNoEvent || repairs.top().first < when)) {
      kind = kRepair;
      when = repairs.top().first;
    }
    if (kind == kNoEvent) break;  // pending work that can never start

    clock = when;
    switch (kind) {
      case kCompletion: {
        const std::uint64_t id = completions.top().second;
        completions.pop();
        complete_instance(id);
        break;
      }
      case kCrash:
        crash_node(outages[outage_idx]);
        ++outage_idx;
        break;
      case kRepair: {
        const std::uint32_t node = repairs.top().second;
        repairs.pop();
        repair_node(node);
        break;
      }
      default:
        break;
    }
    dispatch();
    sample_now();
  }
  result.unfinished += pending.size();
  if (config.metrics != nullptr && result.unfinished > 0) {
    config.metrics->add("slurm.jobs_unfinished", result.unfinished);
  }

  result.makespan_hours = clock;
  result.utilization =
      clock > 0.0 ? result.busy_node_hours /
                        (static_cast<double>(cluster.nodes) * clock)
                  : 1.0;
  return result;
}

}  // namespace

DesResult simulate_cluster(const ClusterSpec& cluster,
                           const std::vector<SimTask>& queue,
                           const DesConfig& config, Rng& rng,
                           std::uint32_t db_bound) {
  EPI_REQUIRE(cluster.nodes > 0, "cluster has no nodes");
  if (config.faults != nullptr && config.faults->enabled()) {
    return simulate_with_faults(cluster, queue, config, rng, db_bound);
  }
  return simulate_perfect(cluster, queue, config, rng, db_bound);
}

}  // namespace epi
