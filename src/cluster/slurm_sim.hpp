// Discrete-event simulator of the remote cluster's Slurm execution
// (paper §IV "scripts are used to submit Slurm job arrays, which are
// scheduled to run using the heuristic scheduling strategy", §VI Fig 9).
//
// The mapper hands Slurm an *ordered* task list; Slurm then does a
// certain amount of real-time optimization. The DES models exactly that:
// whole-node allocations, an in-order queue with optional backfill (a
// later job may start if the head job cannot), per-region simultaneous
// database-connection bounds, actual runtimes sampled around the
// estimates, and the 10-hour nightly window. It reports the paper's
// utilization metric EC = busy node-hours / (total nodes x time of last
// completion).
//
// Fault injection (src/resilience/) is strictly additive: with
// DesConfig::faults unset or disabled the simulation takes the exact
// seed code path. With faults enabled, nodes crash on the injector's
// schedule, running jobs on a crashed node are killed and requeued from
// their last checkpoint (CheckpointSpec), and every fault/recovery is
// recorded in the optional ResilienceLedger.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/task_model.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "util/rng.hpp"

namespace epi::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace epi {

struct JobRecord {
  std::uint64_t task_id = 0;
  double start_hours = 0.0;
  double end_hours = 0.0;
  std::uint32_t nodes = 0;
};

struct DesResult {
  std::vector<JobRecord> jobs;   // completed jobs (final, successful runs)
  std::size_t unfinished = 0;    // did not fit in the window
  double makespan_hours = 0.0;   // last completion
  /// EC: busy node-hours within [0, makespan] / (nodes x makespan).
  double utilization = 0.0;
  double busy_node_hours = 0.0;

  // Fault-path accounting (0 when fault injection is off).
  std::size_t jobs_requeued = 0;        // kill-and-requeue events
  double wasted_node_hours = 0.0;       // execution lost to kills
  double checkpoint_node_hours = 0.0;   // checkpoint write/restore cost
};

struct DesConfig {
  /// Runtime noise: actual = estimate x LogNormal(0, sigma). The paper's
  /// Fig 8 shows substantial per-state runtime variance.
  double runtime_sigma = 0.15;
  /// Whether the scheduler may start a later queued job when the head of
  /// the queue does not fit (Slurm backfill). Disabling this makes the
  /// queue strictly next-fit.
  bool backfill = true;
  /// Stop dispatching jobs that could not finish by the window end
  /// (0 = no window).
  double window_hours = 0.0;

  /// Optional fault injector (nullptr or disabled = perfect hardware and
  /// the seed code path, byte-identical results).
  const FaultInjector* faults = nullptr;
  /// Checkpoint/requeue model used when faults are active.
  CheckpointSpec checkpoint;
  /// Optional fault/recovery event sink.
  ResilienceLedger* ledger = nullptr;
  /// Horizon over which node outages are pre-scheduled when there is no
  /// window (window_hours == 0); crashes past the horizon are not
  /// modeled. Ignored when a window is set (the window is the horizon).
  double fault_horizon_hours = 336.0;

  /// Optional trace sink (nullptr = no tracing, the exact seed path).
  /// When set, every job becomes an 'X' span on its lowest node's lane of
  /// `trace_pid`, killed attempts become "job.killed" spans, and
  /// busy-node / queue-depth / utilization counter series are sampled at
  /// every DES clock advance. Span times are trace_base_hours + DES
  /// clock, so spans land inside the workflow's "simulate" phase.
  obs::TraceRecorder* trace = nullptr;
  std::uint32_t trace_pid = 0;
  double trace_base_hours = 0.0;
  /// Optional metrics sink: job counts and a per-job runtime histogram.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Simulates the ordered `queue` on `cluster`. Task order IS the schedule
/// policy: feed it the FFDT-DC or NFDT-DC order from pack_tasks, or raw
/// submission order.
DesResult simulate_cluster(const ClusterSpec& cluster,
                           const std::vector<SimTask>& queue,
                           const DesConfig& config, Rng& rng,
                           std::uint32_t db_bound = db_connection_bound());

}  // namespace epi
