#include "cluster/task_model.hpp"

#include "util/error.hpp"

namespace epi {

std::uint32_t region_node_category(const StateInfo& state) {
  // Thresholds chosen so the big-ten states land in the large category and
  // roughly half of the regions are small (matching the production split).
  if (state.population < 3'000'000) return 2;
  if (state.population < 9'500'000) return 4;
  return 6;
}

double estimate_task_hours(const StateInfo& state,
                           double intervention_cost_factor) {
  EPI_REQUIRE(intervention_cost_factor > 0.0, "cost factor must be > 0");
  // Affine in population (network size tracks population linearly): a WY
  // replicate takes ~3 minutes, a California replicate ~14 minutes at base
  // intervention complexity — the paper's "100 to 300 time steps of about
  // 3 seconds each for a network the size of California".
  const double base_hours = 0.05;
  const double hours_per_person = 0.18 / 40'000'000.0;
  return (base_hours + hours_per_person * static_cast<double>(state.population)) *
         intervention_cost_factor;
}

std::vector<SimTask> make_workflow_tasks(const std::vector<std::string>& regions,
                                         std::uint32_t cells,
                                         std::uint32_t replicates,
                                         double cost_factor) {
  EPI_REQUIRE(cells > 0 && replicates > 0, "empty workflow design");
  std::vector<SimTask> tasks;
  tasks.reserve(static_cast<std::size_t>(regions.size()) * cells * replicates);
  std::uint64_t next_id = 0;
  for (const std::string& region : regions) {
    const StateInfo& state = state_by_abbrev(region);
    const std::uint32_t nodes = region_node_category(state);
    const double hours = estimate_task_hours(state, cost_factor);
    for (std::uint32_t cell = 0; cell < cells; ++cell) {
      for (std::uint32_t rep = 0; rep < replicates; ++rep) {
        SimTask task;
        task.id = next_id++;
        task.region = region;
        task.cell = cell;
        task.replicate = rep;
        task.nodes_required = nodes;
        task.est_hours = hours;
        task.db_connections = 28;  // one per core of the lead node
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

// A per-region PostgreSQL server tuned for the nightly runs accepts ~1000
// simultaneous connections (36 concurrent 28-core jobs). Tight enough that
// the largest workflows still feel it (the DB-WMP constraint of §V), loose
// enough that a night's design fits the 10-hour window.
std::uint32_t db_connection_bound() { return 1008; }

}  // namespace epi
