// The workflow mapping problem's task model (paper §V).
//
// A workflow is a 3-level hierarchy regions -> cells -> replicates; the
// atomic schedulable job is <cell, region> (T[c, r]). Per the paper's
// simplifying assumptions: all cells of a region take the same estimated
// time t(T[c,r]) (empirical mean, correlated with network size), require
// the same processor count, and regions fall into three whole-node
// categories — small (2 nodes), medium (4), large (6) — chosen so even the
// most complex intervention scenarios fit in memory. Each running task
// holds database connections against the region's bound B(T[r]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synthpop/us_states.hpp"

namespace epi {

struct SimTask {
  std::uint64_t id = 0;
  std::string region;
  std::uint32_t cell = 0;
  std::uint32_t replicate = 0;
  std::uint32_t nodes_required = 2;   // whole nodes (2/4/6 category)
  double est_hours = 0.5;             // empirical mean running time
  std::uint32_t db_connections = 28;  // held while running
};

/// Node category per region (paper §VI): small = 2, medium = 4, large = 6,
/// by synthetic-population size.
std::uint32_t region_node_category(const StateInfo& state);

/// Estimated runtime (hours) for one <cell, region> job: affine in network
/// size over the region's assigned nodes, matching Fig 7 (top) linearity
/// and Fig 8's strong correlation between runtime and state size.
double estimate_task_hours(const StateInfo& state,
                           double intervention_cost_factor = 1.0);

/// Expands a workflow design (cells x replicates over a region list) into
/// the flat task list handed to the mapper. `cost_factor` models the
/// intervention complexity of this workflow's scenarios.
std::vector<SimTask> make_workflow_tasks(const std::vector<std::string>& regions,
                                         std::uint32_t cells,
                                         std::uint32_t replicates,
                                         double cost_factor = 1.0);

/// Per-region database connection bound B(T[r]).
std::uint32_t db_connection_bound();

}  // namespace epi
