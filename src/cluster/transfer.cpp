#include "cluster/transfer.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace epi {

void GlobusTransfer::enable_resilience(const FaultInjector* injector,
                                       RetryPolicy policy,
                                       ResilienceLedger* ledger) {
  faults_ = injector;
  retry_ = policy;
  fault_ledger_ = ledger;
}

void GlobusTransfer::enable_trace(obs::TraceRecorder* trace, std::uint32_t pid,
                                  obs::MetricsRegistry* metrics) {
  trace_ = trace;
  trace_pid_ = pid;
  metrics_ = metrics;
}

void GlobusTransfer::emit_record(const TransferRecord& record,
                                 bool degraded) const {
  if (trace_ != nullptr) {
    obs::TraceArgs args;
    args["attempts"] = static_cast<std::uint64_t>(record.attempts);
    args["bytes"] = record.bytes;
    if (degraded) args["degraded"] = true;
    if (record.retry_wait_s > 0.0) args["retry_wait_s"] = record.retry_wait_s;
    trace_->complete(trace_pid_, record.to_remote ? 0U : 1U,
                     record.description, "wan", clock_hours_,
                     record.seconds / 3600.0, std::move(args));
  }
  if (metrics_ != nullptr) {
    metrics_->add("wan.transfers");
    metrics_->add(record.to_remote ? "wan.bytes_to_remote"
                                   : "wan.bytes_to_home",
                  record.bytes);
    if (record.attempts > 1) {
      metrics_->add("wan.retries", record.attempts - 1);
    }
    metrics_->observe("wan.transfer_s", record.seconds);
  }
}

double GlobusTransfer::attempt_seconds(std::uint64_t bytes,
                                       double throughput_factor) const {
  return link_.per_transfer_overhead_s +
         static_cast<double>(bytes) /
             (link_.bandwidth_mbytes_per_s * 1e6 * throughput_factor);
}

double GlobusTransfer::transfer(const std::string& description,
                                std::uint64_t bytes, bool to_remote) {
  EPI_REQUIRE(link_.bandwidth_mbytes_per_s > 0.0, "zero-bandwidth link");
  if (faults_ == nullptr || !faults_->enabled()) {
    // Seed path: one attempt, nominal throughput. Zero bytes still pay
    // the per-transfer overhead.
    const double seconds =
        link_.per_transfer_overhead_s +
        static_cast<double>(bytes) / (link_.bandwidth_mbytes_per_s * 1e6);
    ledger_.push_back(TransferRecord{description, bytes, seconds, to_remote});
    emit_record(ledger_.back(), /*degraded=*/false);
    return seconds;
  }

  const std::uint64_t seq = transfer_seq_++;
  double total_s = 0.0;
  double wait_s = 0.0;
  std::uint32_t attempt = 1;
  while (true) {
    const WanAttemptFault fault = faults_->wan_attempt(seq, attempt);
    if (!fault.fail) {
      if (fault.throughput_factor < 1.0 && fault_ledger_ != nullptr) {
        fault_ledger_->record(FaultKind::kWanDegraded, 0.0, description);
      }
      total_s += attempt_seconds(bytes, fault.throughput_factor);
      ledger_.push_back(TransferRecord{description, bytes, total_s, to_remote,
                                       attempt, wait_s});
      emit_record(ledger_.back(), fault.throughput_factor < 1.0);
      if (attempt > 1 && fault_ledger_ != nullptr) {
        fault_ledger_->add_retry_wait_seconds(wait_s);
      }
      return total_s;
    }
    // A failed attempt still burns its fixed overhead before the error
    // surfaces (session died mid-flight).
    total_s += link_.per_transfer_overhead_s;
    if (fault_ledger_ != nullptr) {
      fault_ledger_->record(FaultKind::kWanFailure, 0.0, description);
    }
    if (retry_.give_up(attempt, wait_s)) {
      EPI_REQUIRE(false, "WAN transfer '" << description << "' failed after "
                                          << attempt << " attempts");
    }
    const double delay = retry_.delay_s(attempt, faults_->jitter(seq, attempt));
    total_s += delay;
    wait_s += delay;
    if (fault_ledger_ != nullptr) {
      fault_ledger_->record(FaultKind::kWanRetry, 0.0, description);
    }
    ++attempt;
  }
}

std::uint64_t GlobusTransfer::total_bytes_to_remote() const {
  std::uint64_t total = 0;
  for (const auto& record : ledger_) {
    if (record.to_remote) total += record.bytes;
  }
  return total;
}

std::uint64_t GlobusTransfer::total_bytes_to_home() const {
  std::uint64_t total = 0;
  for (const auto& record : ledger_) {
    if (!record.to_remote) total += record.bytes;
  }
  return total;
}

double GlobusTransfer::total_seconds() const {
  double total = 0.0;
  for (const auto& record : ledger_) total += record.seconds;
  return total;
}

double GlobusTransfer::total_seconds_to_remote() const {
  double total = 0.0;
  for (const auto& record : ledger_) {
    if (record.to_remote) total += record.seconds;
  }
  return total;
}

double GlobusTransfer::total_seconds_to_home() const {
  double total = 0.0;
  for (const auto& record : ledger_) {
    if (!record.to_remote) total += record.seconds;
  }
  return total;
}

}  // namespace epi
