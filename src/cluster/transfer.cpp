#include "cluster/transfer.hpp"

#include "util/error.hpp"

namespace epi {

double GlobusTransfer::transfer(const std::string& description,
                                std::uint64_t bytes, bool to_remote) {
  EPI_REQUIRE(link_.bandwidth_mbytes_per_s > 0.0, "zero-bandwidth link");
  const double seconds =
      link_.per_transfer_overhead_s +
      static_cast<double>(bytes) / (link_.bandwidth_mbytes_per_s * 1e6);
  ledger_.push_back(TransferRecord{description, bytes, seconds, to_remote});
  return seconds;
}

std::uint64_t GlobusTransfer::total_bytes_to_remote() const {
  std::uint64_t total = 0;
  for (const auto& record : ledger_) {
    if (record.to_remote) total += record.bytes;
  }
  return total;
}

std::uint64_t GlobusTransfer::total_bytes_to_home() const {
  std::uint64_t total = 0;
  for (const auto& record : ledger_) {
    if (!record.to_remote) total += record.bytes;
  }
  return total;
}

double GlobusTransfer::total_seconds() const {
  double total = 0.0;
  for (const auto& record : ledger_) total += record.seconds;
  return total;
}

}  // namespace epi
