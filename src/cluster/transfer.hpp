// Inter-cluster data transfer model (the Globus substitute).
//
// All data movement between the home and remote clusters goes through
// this model (paper §IV: "data transfer between the home cluster and
// remote super-computing cluster utilizes the Globus platform"): the 2 TB
// one-time population/network shipment, the 100 MB - 8.7 GB nightly
// configurations, and the 120 MB - 70 GB summarized outputs coming back.
// A simple bandwidth + per-transfer overhead model; every transfer is
// logged so Table I/II volume rows can be reproduced from the ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epi {

struct WanLinkSpec {
  /// Sustained wide-area throughput. Internet2 between UVA and PSC
  /// sustains several Gbit/s for Globus/GridFTP flows.
  double bandwidth_mbytes_per_s = 400.0;
  /// Per-transfer fixed cost (auth, checksums, session setup).
  double per_transfer_overhead_s = 5.0;
};

struct TransferRecord {
  std::string description;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  bool to_remote = true;  // direction: home -> remote or back
};

/// A directional transfer service with a ledger.
class GlobusTransfer {
 public:
  explicit GlobusTransfer(WanLinkSpec link = {}) : link_(link) {}

  /// Executes (models) one transfer; returns its duration in seconds.
  double transfer(const std::string& description, std::uint64_t bytes,
                  bool to_remote);

  const std::vector<TransferRecord>& ledger() const { return ledger_; }
  std::uint64_t total_bytes_to_remote() const;
  std::uint64_t total_bytes_to_home() const;
  double total_seconds() const;

 private:
  WanLinkSpec link_;
  std::vector<TransferRecord> ledger_;
};

}  // namespace epi
