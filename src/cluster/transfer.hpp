// Inter-cluster data transfer model (the Globus substitute).
//
// All data movement between the home and remote clusters goes through
// this model (paper §IV: "data transfer between the home cluster and
// remote super-computing cluster utilizes the Globus platform"): the 2 TB
// one-time population/network shipment, the 100 MB - 8.7 GB nightly
// configurations, and the 120 MB - 70 GB summarized outputs coming back.
// A simple bandwidth + per-transfer overhead model; every transfer is
// logged so Table I/II volume rows can be reproduced from the ledger.
// Even a zero-byte transfer pays the per-transfer overhead (session
// setup and checksums are size-independent).
//
// With a FaultInjector attached (enable_resilience), each transfer runs
// an attempt loop: attempts may fail outright or run at degraded
// throughput, failed attempts are retried under a RetryPolicy with
// seeded backoff jitter, and exhaustion throws. Without an injector the
// arithmetic is byte-identical to the seed model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "resilience/retry_policy.hpp"

namespace epi::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace epi {

struct WanLinkSpec {
  /// Sustained wide-area throughput. Internet2 between UVA and PSC
  /// sustains several Gbit/s for Globus/GridFTP flows.
  double bandwidth_mbytes_per_s = 400.0;
  /// Per-transfer fixed cost (auth, checksums, session setup).
  double per_transfer_overhead_s = 5.0;
};

struct TransferRecord {
  std::string description;
  std::uint64_t bytes = 0;
  double seconds = 0.0;       // total, including failed attempts + backoff
  bool to_remote = true;      // direction: home -> remote or back
  std::uint32_t attempts = 1; // 1 = first try succeeded
  double retry_wait_s = 0.0;  // backoff portion of `seconds`
};

/// A directional transfer service with a ledger.
class GlobusTransfer {
 public:
  explicit GlobusTransfer(WanLinkSpec link = {}) : link_(link) {}

  /// Attaches fault injection + retry. The injector must outlive this
  /// object; `ledger` (optional) receives per-attempt fault events.
  void enable_resilience(const FaultInjector* injector, RetryPolicy policy,
                         ResilienceLedger* ledger = nullptr);

  /// Attaches tracing/metrics (nullptr = the exact seed path). Each
  /// transfer becomes an 'X' span on `pid`, lane 0 (to remote) or 1 (to
  /// home), starting at the clock set by set_clock_hours and lasting the
  /// modeled duration; bytes/attempt counters and a duration histogram go
  /// to `metrics`.
  void enable_trace(obs::TraceRecorder* trace, std::uint32_t pid,
                    obs::MetricsRegistry* metrics = nullptr);

  /// Workflow-clock time the next transfer starts at (trace placement
  /// only; the transfer arithmetic never reads it).
  void set_clock_hours(double hours) { clock_hours_ = hours; }

  /// Executes (models) one transfer; returns its duration in seconds.
  /// With resilience enabled, throws Error when every attempt allowed by
  /// the retry policy fails.
  double transfer(const std::string& description, std::uint64_t bytes,
                  bool to_remote);

  const std::vector<TransferRecord>& ledger() const { return ledger_; }
  std::uint64_t total_bytes_to_remote() const;
  std::uint64_t total_bytes_to_home() const;
  double total_seconds() const;
  /// Per-direction duration totals (resilience reporting needs the WAN
  /// budget split by direction, as Table II reports volumes).
  double total_seconds_to_remote() const;
  double total_seconds_to_home() const;

 private:
  double attempt_seconds(std::uint64_t bytes, double throughput_factor) const;
  void emit_record(const TransferRecord& record, bool degraded) const;

  WanLinkSpec link_;
  std::vector<TransferRecord> ledger_;
  const FaultInjector* faults_ = nullptr;
  RetryPolicy retry_;
  ResilienceLedger* fault_ledger_ = nullptr;
  std::uint64_t transfer_seq_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  double clock_hours_ = 0.0;
};

}  // namespace epi
