#include "emulator/gp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

double gp_correlation(const Vec& a, const Vec& b, const Vec& rho) {
  EPI_REQUIRE(a.size() == b.size() && a.size() == rho.size(),
              "gp_correlation dimension mismatch");
  double log_corr = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    // rho^{4 d^2} computed in log space for stability.
    log_corr += 4.0 * d * d * std::log(rho[k]);
  }
  return std::exp(log_corr);
}

double GpHyperparams::log_prior() const {
  double lp = 0.0;
  for (double r : rho) {
    if (r <= 0.0 || r >= 1.0) return -1e300;
    // Beta(1, 0.1) density up to a constant: (1-r)^(0.1-1).
    lp += (0.1 - 1.0) * std::log(1.0 - r);
  }
  // Gamma(a=5, b=5) on lambda_w (mode near 1 for standardized outputs).
  if (lambda_w <= 0.0 || lambda_nugget <= 0.0) return -1e300;
  lp += (5.0 - 1.0) * std::log(lambda_w) - 5.0 * lambda_w;
  // Gamma(a=3, b=0.003) on the nugget precision (large nugget precision =
  // small nugget variance favored).
  lp += (3.0 - 1.0) * std::log(lambda_nugget) - 0.003 * lambda_nugget;
  return lp;
}

GaussianProcess::GaussianProcess(Mat inputs, Vec outputs, GpHyperparams params)
    : inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      params_(std::move(params)) {
  const std::size_t n = inputs_.rows();
  EPI_REQUIRE(n == outputs_.size(), "GP inputs/outputs length mismatch");
  EPI_REQUIRE(params_.rho.size() == inputs_.cols(),
              "GP rho dimension mismatch");
  EPI_REQUIRE(params_.lambda_w > 0.0 && params_.lambda_nugget > 0.0,
              "GP precisions must be positive");
  Mat k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec xi = inputs_.row(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double c =
          gp_correlation(xi, inputs_.row(j), params_.rho) / params_.lambda_w;
      k.at(i, j) = c;
      k.at(j, i) = c;
    }
    k.at(i, i) += 1.0 / params_.lambda_nugget + 1e-10;
  }
  chol_ = cholesky(k);
  alpha_ = cholesky_solve(chol_, outputs_);
}

GaussianProcess::Prediction GaussianProcess::predict(const Vec& x) const {
  const std::size_t n = inputs_.rows();
  Vec k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] =
        gp_correlation(x, inputs_.row(i), params_.rho) / params_.lambda_w;
  }
  Prediction p;
  p.mean = dot(k_star, alpha_);
  const Vec v = solve_lower(chol_, k_star);
  const double prior_var = 1.0 / params_.lambda_w + 1.0 / params_.lambda_nugget;
  p.variance = std::max(1e-12, prior_var - dot(v, v));
  return p;
}

double GaussianProcess::log_marginal_likelihood() const {
  const auto n = static_cast<double>(outputs_.size());
  return -0.5 * dot(outputs_, alpha_) - 0.5 * log_det_from_cholesky(chol_) -
         0.5 * n * std::log(2.0 * 3.14159265358979323846);
}

GpHyperparams fit_gp_hyperparams(const Mat& inputs, const Vec& outputs,
                                 Rng& rng, std::size_t trials) {
  EPI_REQUIRE(trials > 0, "need at least one hyperparameter trial");
  GpHyperparams best;
  best.rho.assign(inputs.cols(), 0.5);
  double best_score = -1e300;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    GpHyperparams candidate;
    candidate.rho.resize(inputs.cols());
    for (double& r : candidate.rho) r = rng.uniform(0.05, 0.98);
    candidate.lambda_w = std::exp(rng.uniform(-1.5, 1.5));
    candidate.lambda_nugget = std::exp(rng.uniform(3.0, 9.0));
    double score;
    try {
      const GaussianProcess gp(inputs, outputs, candidate);
      score = gp.log_marginal_likelihood() + candidate.log_prior();
    } catch (const NumericError&) {
      continue;  // non-PD covariance at extreme hyperparameters
    }
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  EPI_REQUIRE(best_score > -1e299, "GP hyperparameter search found no valid fit");
  return best;
}

}  // namespace epi
