// Gaussian-process regression with the paper's correlation function.
//
// Appendix E: each basis coefficient w_i(theta) gets a zero-mean GP prior
// with marginal precision lambda_w and correlation
//     R(theta, theta'; rho) = prod_k rho_k^{4 (theta_k - theta'_k)^2},
// (the GPMSA parameterization of the squared-exponential kernel: rho_k in
// (0,1) is the correlation at half-range distance), plus a nugget so
// interpolation is not enforced.
#pragma once

#include <cstddef>
#include <vector>

#include "emulator/linalg.hpp"
#include "util/rng.hpp"

namespace epi {

struct GpHyperparams {
  Vec rho;               // one per input dimension, each in (0, 1)
  double lambda_w = 1.0; // marginal precision of the process
  double lambda_nugget = 1e4;  // precision of the nugget term

  /// Log prior: beta(1, 0.1)-like on rho (favoring smoothness), gamma on
  /// the precisions — the Appendix E hyperprior choices.
  double log_prior() const;
};

/// The paper's correlation function.
double gp_correlation(const Vec& a, const Vec& b, const Vec& rho);

class GaussianProcess {
 public:
  /// Fits (factorizes) the GP at the given inputs/outputs. Inputs should
  /// be scaled to the unit cube; outputs should be centered.
  GaussianProcess(Mat inputs, Vec outputs, GpHyperparams params);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  Prediction predict(const Vec& x) const;

  /// Log marginal likelihood of the training outputs under the GP.
  double log_marginal_likelihood() const;

  const GpHyperparams& hyperparams() const { return params_; }

 private:
  Mat inputs_;
  Vec outputs_;
  GpHyperparams params_;
  Mat chol_;       // Cholesky factor of the covariance
  Vec alpha_;      // K^{-1} y
};

/// MAP-estimates hyperparameters by random search over (rho, lambda_w,
/// lambda_nugget), scoring log marginal likelihood + log prior. Cheap and
/// robust for ~100-point designs.
GpHyperparams fit_gp_hyperparams(const Mat& inputs, const Vec& outputs,
                                 Rng& rng, std::size_t trials = 60);

}  // namespace epi
