#include "emulator/gpmsa.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

MultivariateEmulator::MultivariateEmulator(Mat design, Mat outputs,
                                           std::size_t num_basis, Rng& rng)
    : design_(std::move(design)) {
  const std::size_t m = design_.rows();
  const std::size_t t = outputs.cols();
  EPI_REQUIRE(outputs.rows() == m, "design/outputs row mismatch");
  EPI_REQUIRE(m >= 3, "emulator needs at least 3 design points");
  num_basis = std::min(num_basis, std::min(m - 1, t));

  // Standardize: remove the mean curve, scale by the global sd.
  phi0_.assign(t, 0.0);
  for (std::size_t j = 0; j < t; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) sum += outputs.at(i, j);
    phi0_[j] = sum / static_cast<double>(m);
  }
  Mat centered(m, t);
  double total_var = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      const double v = outputs.at(i, j) - phi0_[j];
      centered.at(i, j) = v;
      total_var += v * v;
    }
  }
  scale_ = std::sqrt(std::max(1e-12, total_var / static_cast<double>(m * t)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < t; ++j) centered.at(i, j) /= scale_;
  }

  // Eigenbasis of the T x T output covariance.
  const Mat cov = matmul(centered.transposed(), centered);
  const EigenPairs eig = top_eigenpairs(cov, num_basis);
  basis_ = eig.vectors;  // t x p

  double captured = 0.0;
  double trace = 0.0;
  for (std::size_t j = 0; j < t; ++j) trace += cov.at(j, j);
  for (double v : eig.values) captured += v;
  variance_captured_ = trace > 0.0 ? captured / trace : 1.0;

  // Basis coefficients per design point: W = centered * basis (m x p).
  const Mat weights = matmul(centered, basis_);

  // Independent GP per coefficient, MAP hyperparameters.
  gps_.reserve(num_basis);
  for (std::size_t k = 0; k < num_basis; ++k) {
    Vec w = weights.col(k);
    // Normalize coefficient scale so the lambda_w prior (centered at 1)
    // is appropriate for every component.
    double w_var = 0.0;
    for (double x : w) w_var += x * x;
    w_var = std::max(1e-12, w_var / static_cast<double>(m));
    coeff_scales_.push_back(std::sqrt(w_var));
    for (double& x : w) x /= coeff_scales_.back();
    Rng gp_rng = rng.derive({0x475053ULL, k});  // "GPS"
    const GpHyperparams params = fit_gp_hyperparams(design_, w, gp_rng);
    gps_.emplace_back(design_, std::move(w), params);
  }
}

MultivariateEmulator::CurvePrediction MultivariateEmulator::predict(
    const Vec& theta_unit) const {
  EPI_REQUIRE(theta_unit.size() == design_.cols(),
              "theta dimension mismatch");
  const std::size_t t = phi0_.size();
  CurvePrediction out;
  out.mean = phi0_;
  out.variance.assign(t, 0.0);
  for (std::size_t k = 0; k < gps_.size(); ++k) {
    const auto p = gps_[k].predict(theta_unit);
    const double mean_k = p.mean * coeff_scales_[k] * scale_;
    const double var_k =
        p.variance * coeff_scales_[k] * coeff_scales_[k] * scale_ * scale_;
    for (std::size_t j = 0; j < t; ++j) {
      const double phi = basis_.at(j, k);
      out.mean[j] += phi * mean_k;
      out.variance[j] += phi * phi * var_k;
    }
  }
  return out;
}

Mat discrepancy_basis(std::size_t series_length, double kernel_sd,
                      double spacing, std::size_t num_kernels) {
  EPI_REQUIRE(series_length > 0, "empty discrepancy basis");
  EPI_REQUIRE(kernel_sd > 0.0 && spacing > 0.0, "invalid kernel geometry");
  Mat d(series_length, num_kernels);
  // Kernels centred to cover the series; the paper spaces them 10 days
  // apart — for longer series the spacing stretches to keep coverage.
  const double span = static_cast<double>(series_length - 1);
  const double step =
      num_kernels > 1 ? std::max(spacing, span / static_cast<double>(num_kernels - 1))
                      : 0.0;
  const double first = (span - step * static_cast<double>(num_kernels - 1)) / 2.0;
  for (std::size_t k = 0; k < num_kernels; ++k) {
    const double center = first + step * static_cast<double>(k);
    for (std::size_t j = 0; j < series_length; ++j) {
      const double z = (static_cast<double>(j) - center) / kernel_sd;
      d.at(j, k) = std::exp(-0.5 * z * z);
    }
  }
  return d;
}

GpmsaCalibrationModel::GpmsaCalibrationModel(
    const MultivariateEmulator& emulator, Vec observed,
    Mat replicate_covariance)
    : emulator_(emulator),
      observed_(std::move(observed)),
      replicate_covariance_(std::move(replicate_covariance)) {
  EPI_REQUIRE(observed_.size() == emulator_.output_length(),
              "observed series length (" << observed_.size()
                                         << ") must match emulator output ("
                                         << emulator_.output_length() << ")");
  if (replicate_covariance_.rows() != 0) {
    EPI_REQUIRE(replicate_covariance_.rows() == observed_.size() &&
                    replicate_covariance_.cols() == observed_.size(),
                "replicate covariance must be T x T");
  }
  discrepancy_ = discrepancy_basis(observed_.size());
  discrepancy_gram_ = matmul(discrepancy_, discrepancy_.transposed());
}

double GpmsaCalibrationModel::log_posterior(const Vec& theta_unit,
                                            double lambda_delta,
                                            double lambda_eps) const {
  for (double x : theta_unit) {
    if (x < 0.0 || x > 1.0) return -1e300;  // uniform prior support
  }
  if (lambda_delta <= 0.0 || lambda_eps <= 0.0) return -1e300;

  const auto eta = emulator_.predict(theta_unit);
  const std::size_t t = observed_.size();
  Mat cov = discrepancy_gram_;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      cov.at(i, j) /= lambda_delta;
      if (replicate_covariance_.rows() != 0) {
        cov.at(i, j) += replicate_covariance_.at(i, j);
      }
    }
    cov.at(i, i) += eta.variance[i] + 1.0 / lambda_eps + 1e-9;
  }
  Vec residual(t);
  for (std::size_t i = 0; i < t; ++i) residual[i] = observed_[i] - eta.mean[i];

  double log_lik;
  try {
    const Mat l = cholesky(cov);
    const Vec alpha = cholesky_solve(l, residual);
    log_lik = -0.5 * dot(residual, alpha) - 0.5 * log_det_from_cholesky(l);
  } catch (const NumericError&) {
    return -1e300;
  }
  // Gamma hyperpriors (Appendix E: "all precision hyper-parameters are
  // given suitable gamma priors"). The rates anchor realistic scales for
  // logged case counts: discrepancy kernels with sd ~ 0.5 and observation
  // noise with sd ~ 0.15 — surveillance series are noisy, and letting
  // lambda_eps run away would over-concentrate the calibration posterior.
  // The discrepancy prior is deliberately informative (kernel sd ~ 0.2 in
  // log space): delta must absorb systematic *shape* misfit, not carry the
  // level of the curve — otherwise theta and delta trade off freely and
  // the calibration stops constraining theta (the classic GPMSA
  // identifiability tug-of-war).
  const double lp_delta =
      (6.0 - 1.0) * std::log(lambda_delta) - 0.3 * lambda_delta;
  const double lp_eps = (3.0 - 1.0) * std::log(lambda_eps) - 0.05 * lambda_eps;
  return log_lik + lp_delta + lp_eps;
}

GpmsaCalibrationModel::Band GpmsaCalibrationModel::predictive_band(
    const Vec& theta_unit, double lambda_delta, double lambda_eps) const {
  const auto eta = emulator_.predict(theta_unit);
  Band band;
  band.mean = eta.mean;
  band.sd.resize(eta.mean.size());
  for (std::size_t i = 0; i < eta.mean.size(); ++i) {
    const double disc_var = discrepancy_gram_.at(i, i) / lambda_delta;
    const double rep_var = replicate_covariance_.rows() != 0
                               ? replicate_covariance_.at(i, i)
                               : 0.0;
    band.sd[i] =
        std::sqrt(eta.variance[i] + disc_var + rep_var + 1.0 / lambda_eps);
  }
  return band;
}

}  // namespace epi
