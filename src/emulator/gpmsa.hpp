// GPMSA-style multivariate emulator and calibration model (Appendix E).
//
// The observed series y is modeled as y = eta(theta) + delta + eps:
//   * eta — the simulator at the best parameter setting, emulated via a
//     basis representation eta(theta) = phi0 + sum_k phi_k w_k(theta) + w0
//     with p_eta = 5 eigenvector basis functions and independent GP priors
//     on the coefficients w_k;
//   * delta — systematic discrepancy on a kernel basis (1-d normal kernels
//     with sd 15 days spaced 10 days apart, p_delta = 7);
//   * eps — iid observation error.
// Precision hyperparameters carry gamma priors, correlations beta priors;
// the posterior over theta is explored by MCMC (calibration module).
#pragma once

#include <cstddef>
#include <vector>

#include "emulator/gp.hpp"
#include "emulator/linalg.hpp"
#include "util/rng.hpp"

namespace epi {

/// Emulator of a multivariate (time-series) simulator output.
class MultivariateEmulator {
 public:
  /// `design`: m x d parameter settings scaled to the unit cube.
  /// `outputs`: m x T simulator outputs (one row per design point; the
  /// calibration workflow feeds logged cumulative case counts).
  /// `num_basis`: p_eta (paper value 5).
  MultivariateEmulator(Mat design, Mat outputs, std::size_t num_basis,
                       Rng& rng);

  struct CurvePrediction {
    Vec mean;      // length T
    Vec variance;  // length T (emulator uncertainty only)
  };

  /// Emulated simulator output at an untried setting (unit-cube coords).
  CurvePrediction predict(const Vec& theta_unit) const;

  std::size_t output_length() const { return phi0_.size(); }
  std::size_t input_dims() const { return design_.cols(); }
  std::size_t basis_count() const { return gps_.size(); }
  const Vec& mean_curve() const { return phi0_; }
  /// Fraction of output variance captured by the retained basis.
  double variance_captured() const { return variance_captured_; }

 private:
  Mat design_;
  Vec phi0_;        // column means of the training outputs
  double scale_ = 1.0;  // global standardization scale
  Mat basis_;       // T x p_eta eigenvector basis (columns phi_k)
  std::vector<GaussianProcess> gps_;
  Vec coeff_scales_;  // per-basis coefficient standardization
  double variance_captured_ = 1.0;
};

/// Discrepancy basis D (T x p_delta): normal kernels, sd `kernel_sd` days,
/// spaced `spacing` days (paper: 15 and 10, p_delta = 7).
Mat discrepancy_basis(std::size_t series_length, double kernel_sd = 15.0,
                      double spacing = 10.0, std::size_t num_kernels = 7);

/// The calibration posterior over (theta, lambda_delta, lambda_eps).
class GpmsaCalibrationModel {
 public:
  /// `observed` must have the emulator's output length.
  /// `replicate_covariance` (optional, T x T) is the covariance of
  /// simulator replicate-to-replicate noise at a fixed parameter setting;
  /// the production system handles this stochasticity with quantile-based
  /// emulation [18], we add the empirical covariance to the likelihood.
  GpmsaCalibrationModel(const MultivariateEmulator& emulator, Vec observed,
                        Mat replicate_covariance = {});

  /// Log posterior density (up to a constant): Gaussian likelihood with
  /// covariance diag(emulator var) + D D^T / lambda_delta + I / lambda_eps,
  /// uniform prior on theta in the unit cube, gamma priors on precisions.
  double log_posterior(const Vec& theta_unit, double lambda_delta,
                       double lambda_eps) const;

  /// Posterior-predictive band at theta: emulator mean, with total sd
  /// including discrepancy and observation noise.
  struct Band {
    Vec mean;
    Vec sd;
  };
  Band predictive_band(const Vec& theta_unit, double lambda_delta,
                       double lambda_eps) const;

  const Vec& observed() const { return observed_; }

 private:
  const MultivariateEmulator& emulator_;
  Vec observed_;
  Mat discrepancy_;       // T x p_delta
  Mat discrepancy_gram_;  // D D^T (T x T), precomputed
  Mat replicate_covariance_;  // T x T or empty
};

}  // namespace epi
