#include "emulator/linalg.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

Vec Mat::row(std::size_t r) const {
  EPI_REQUIRE(r < rows_, "row out of range");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vec Mat::col(std::size_t c) const {
  EPI_REQUIRE(c < cols_, "column out of range");
  Vec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

void Mat::set_row(std::size_t r, const Vec& values) {
  EPI_REQUIRE(r < rows_ && values.size() == cols_, "set_row shape mismatch");
  for (std::size_t c = 0; c < cols_; ++c) at(r, c) = values[c];
}

Mat Mat::transposed() const {
  Mat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Mat Mat::identity(std::size_t n) {
  Mat out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1.0;
  return out;
}

Mat matmul(const Mat& a, const Mat& b) {
  EPI_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch: "
                                        << a.rows() << "x" << a.cols() << " * "
                                        << b.rows() << "x" << b.cols());
  Mat out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return out;
}

Vec matvec(const Mat& a, const Vec& x) {
  EPI_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  Vec out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a.at(i, j) * x[j];
    out[i] = sum;
  }
  return out;
}

double dot(const Vec& a, const Vec& b) {
  EPI_REQUIRE(a.size() == b.size(), "dot shape mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vec vec_add(const Vec& a, const Vec& b) {
  EPI_REQUIRE(a.size() == b.size(), "vec_add shape mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec vec_sub(const Vec& a, const Vec& b) {
  EPI_REQUIRE(a.size() == b.size(), "vec_sub shape mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec vec_scale(const Vec& a, double s) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Mat cholesky(const Mat& k) {
  EPI_REQUIRE(k.rows() == k.cols(), "cholesky needs a square matrix");
  const std::size_t n = k.rows();
  Mat l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = k.at(i, j);
      for (std::size_t m = 0; m < j; ++m) sum -= l.at(i, m) * l.at(j, m);
      if (i == j) {
        if (sum <= 0.0) {
          throw NumericError("cholesky: matrix not positive definite at pivot " +
                             std::to_string(i));
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

Vec solve_lower(const Mat& l, const Vec& b) {
  EPI_REQUIRE(l.rows() == b.size(), "solve_lower shape mismatch");
  const std::size_t n = b.size();
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= l.at(i, j) * y[j];
    y[i] = sum / l.at(i, i);
  }
  return y;
}

Vec solve_lower_transpose(const Mat& l, const Vec& y) {
  EPI_REQUIRE(l.rows() == y.size(), "solve_lower_transpose shape mismatch");
  const std::size_t n = y.size();
  Vec x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= l.at(j, i) * x[j];
    x[i] = sum / l.at(i, i);
  }
  return x;
}

Vec cholesky_solve(const Mat& l, const Vec& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Mat& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) sum += std::log(l.at(i, i));
  return 2.0 * sum;
}

EigenPairs top_eigenpairs(const Mat& symmetric, std::size_t count,
                          std::size_t iterations) {
  EPI_REQUIRE(symmetric.rows() == symmetric.cols(),
              "eigenpairs need a square matrix");
  const std::size_t n = symmetric.rows();
  count = std::min(count, n);
  Mat deflated = symmetric;
  EigenPairs result;
  result.vectors = Mat(n, count);
  for (std::size_t k = 0; k < count; ++k) {
    // Deterministic start vector, orthogonalized against found vectors.
    Vec v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = 1.0 + 0.01 * static_cast<double>((i * 37 + k * 17) % 101);
    }
    double eigenvalue = 0.0;
    for (std::size_t it = 0; it < iterations; ++it) {
      Vec w = matvec(deflated, v);
      const double norm = std::sqrt(dot(w, w));
      if (norm < 1e-300) {
        w.assign(n, 0.0);
        eigenvalue = 0.0;
        v = w;
        break;
      }
      v = vec_scale(w, 1.0 / norm);
      eigenvalue = norm;
    }
    result.values.push_back(eigenvalue);
    for (std::size_t i = 0; i < n; ++i) result.vectors.at(i, k) = v[i];
    // Deflate: A <- A - lambda v v^T.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        deflated.at(i, j) -= eigenvalue * v[i] * v[j];
      }
    }
  }
  return result;
}

}  // namespace epi
