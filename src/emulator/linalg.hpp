// Dense linear algebra for the Gaussian-process emulator.
//
// Sized for calibration workloads: design matrices of ~100 points, output
// series of ~100-400 days. Cholesky-based solves; no external BLAS.
#pragma once

#include <cstddef>
#include <vector>

namespace epi {

using Vec = std::vector<double>;

/// Row-major dense matrix.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Vec row(std::size_t r) const;
  Vec col(std::size_t c) const;
  void set_row(std::size_t r, const Vec& values);

  Mat transposed() const;

  const std::vector<double>& data() const { return data_; }

  static Mat identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Mat matmul(const Mat& a, const Mat& b);
Vec matvec(const Mat& a, const Vec& x);
double dot(const Vec& a, const Vec& b);
Vec vec_add(const Vec& a, const Vec& b);
Vec vec_sub(const Vec& a, const Vec& b);
Vec vec_scale(const Vec& a, double s);

/// Cholesky factor L (lower-triangular, K = L Lᵀ). Throws NumericError if
/// K is not positive definite. A tiny jitter can be added by the caller.
Mat cholesky(const Mat& k);

/// Solves L y = b (forward substitution), L lower-triangular.
Vec solve_lower(const Mat& l, const Vec& b);

/// Solves Lᵀ x = y (back substitution), L lower-triangular.
Vec solve_lower_transpose(const Mat& l, const Vec& y);

/// Solves K x = b given the Cholesky factor of K.
Vec cholesky_solve(const Mat& l, const Vec& b);

/// log(det(K)) from its Cholesky factor.
double log_det_from_cholesky(const Mat& l);

/// Top `count` eigenpairs of a symmetric PSD matrix via power iteration
/// with deflation. Eigenvectors are returned as matrix columns, unit norm;
/// eigenvalues in decreasing order.
struct EigenPairs {
  Vec values;
  Mat vectors;  // n x count, column k = k-th eigenvector
};
EigenPairs top_eigenpairs(const Mat& symmetric, std::size_t count,
                          std::size_t iterations = 500);

}  // namespace epi
