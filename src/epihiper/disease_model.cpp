#include "epihiper/disease_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

DwellTime DwellTime::fixed(double days) {
  EPI_REQUIRE(days >= 0.0, "dwell time must be >= 0");
  DwellTime d;
  d.kind_ = Kind::kFixed;
  d.fixed_days_ = days;
  return d;
}

DwellTime DwellTime::normal(double mean, double stddev) {
  EPI_REQUIRE(mean >= 0.0 && stddev >= 0.0, "invalid normal dwell time");
  DwellTime d;
  d.kind_ = Kind::kNormal;
  d.mean_days_ = mean;
  d.stddev_days_ = stddev;
  return d;
}

DwellTime DwellTime::discrete(std::vector<std::pair<double, double>> outcomes) {
  EPI_REQUIRE(!outcomes.empty(), "discrete dwell time needs outcomes");
  double total = 0.0;
  for (const auto& [days, prob] : outcomes) {
    EPI_REQUIRE(days >= 0.0 && prob >= 0.0, "invalid discrete dwell outcome");
    total += prob;
  }
  EPI_REQUIRE(std::abs(total - 1.0) < 1e-6,
              "discrete dwell probabilities sum to " << total << ", not 1");
  DwellTime d;
  d.kind_ = Kind::kDiscrete;
  d.outcomes_ = std::move(outcomes);
  return d;
}

Tick DwellTime::sample(Rng& rng) const {
  double days = 1.0;
  switch (kind_) {
    case Kind::kFixed: days = fixed_days_; break;
    case Kind::kNormal:
      // Truncated at 0.5 so rounding can never yield a non-positive dwell.
      days = rng.truncated_normal(mean_days_, stddev_days_, 0.5, 60.0);
      break;
    case Kind::kDiscrete: {
      std::vector<double> weights;
      weights.reserve(outcomes_.size());
      for (const auto& [d, p] : outcomes_) weights.push_back(p);
      days = outcomes_[rng.discrete(weights)].first;
      break;
    }
  }
  return std::max<Tick>(1, static_cast<Tick>(std::llround(days)));
}

double DwellTime::mean() const {
  switch (kind_) {
    case Kind::kFixed: return fixed_days_;
    case Kind::kNormal: return mean_days_;
    case Kind::kDiscrete: {
      double m = 0.0;
      for (const auto& [days, prob] : outcomes_) m += days * prob;
      return m;
    }
  }
  return 0.0;
}

Json DwellTime::to_json() const {
  JsonObject o;
  switch (kind_) {
    case Kind::kFixed:
      o["kind"] = "fixed";
      o["days"] = fixed_days_;
      break;
    case Kind::kNormal:
      o["kind"] = "normal";
      o["mean"] = mean_days_;
      o["stddev"] = stddev_days_;
      break;
    case Kind::kDiscrete: {
      o["kind"] = "discrete";
      JsonArray arr;
      for (const auto& [days, prob] : outcomes_) {
        arr.push_back(Json(JsonArray{Json(days), Json(prob)}));
      }
      o["outcomes"] = Json(std::move(arr));
      break;
    }
  }
  return Json(std::move(o));
}

DwellTime DwellTime::from_json(const Json& j) {
  const std::string kind = j.at("kind").as_string();
  if (kind == "fixed") return fixed(j.at("days").as_double());
  if (kind == "normal") {
    return normal(j.at("mean").as_double(), j.at("stddev").as_double());
  }
  if (kind == "discrete") {
    std::vector<std::pair<double, double>> outcomes;
    for (const Json& pair : j.at("outcomes").as_array()) {
      const auto& arr = pair.as_array();
      EPI_REQUIRE(arr.size() == 2, "dwell outcome must be [days, prob]");
      outcomes.emplace_back(arr[0].as_double(), arr[1].as_double());
    }
    return discrete(std::move(outcomes));
  }
  throw ConfigError("unknown dwell-time kind: " + kind);
}

HealthStateId DiseaseModel::add_state(HealthState state) {
  for (const auto& existing : states_) {
    EPI_REQUIRE(existing.name != state.name,
                "duplicate health state name: " << state.name);
  }
  states_.push_back(std::move(state));
  progressions_.emplace_back();
  transmissions_by_from_.emplace_back();
  return static_cast<HealthStateId>(states_.size() - 1);
}

HealthStateId DiseaseModel::state_id(const std::string& name) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].name == name) return static_cast<HealthStateId>(i);
  }
  throw ConfigError("unknown health state: " + name);
}

void DiseaseModel::add_progression(HealthStateId from, ProgressionEdge edge) {
  EPI_REQUIRE(from < states_.size(), "progression from unknown state");
  EPI_REQUIRE(edge.to < states_.size(), "progression to unknown state");
  progressions_[from].push_back(std::move(edge));
}

const std::vector<ProgressionEdge>& DiseaseModel::progressions_from(
    HealthStateId s) const {
  EPI_REQUIRE(s < states_.size(), "unknown state id " << s);
  return progressions_[s];
}

void DiseaseModel::add_transmission(Transmission t) {
  EPI_REQUIRE(t.from < states_.size() && t.to < states_.size() &&
                  t.source < states_.size(),
              "transmission references unknown state");
  transmissions_.push_back(t);
  transmissions_by_from_[t.from].push_back(t);
}

const std::vector<Transmission>& DiseaseModel::transmissions_from(
    HealthStateId from) const {
  EPI_REQUIRE(from < states_.size(), "unknown state id " << from);
  return transmissions_by_from_[from];
}

void DiseaseModel::set_transmissibility(double tau) {
  EPI_REQUIRE(tau >= 0.0, "transmissibility must be >= 0");
  transmissibility_ = tau;
}

void DiseaseModel::validate() const {
  EPI_REQUIRE(!states_.empty(), "disease model has no states");
  EPI_REQUIRE(initial_state_ < states_.size(), "invalid initial state");
  EPI_REQUIRE(seed_state_ < states_.size(), "invalid seed state");
  EPI_REQUIRE(states_[initial_state_].susceptible(),
              "initial state must be susceptible");
  for (std::size_t s = 0; s < states_.size(); ++s) {
    for (int g = 0; g < kAgeGroupCount; ++g) {
      double total = 0.0;
      for (const auto& edge : progressions_[s]) {
        const double p = edge.probability[static_cast<std::size_t>(g)];
        EPI_REQUIRE(p >= 0.0 && p <= 1.0,
                    "progression probability out of range in state "
                        << states_[s].name);
        total += p;
      }
      // Paper (Appendix D): the sum of exit probabilities must be 1 or 0.
      EPI_REQUIRE(std::abs(total - 1.0) < 1e-6 || std::abs(total) < 1e-12,
                  "progression probabilities out of state "
                      << states_[s].name << " for age group " << g << " sum to "
                      << total << " (must be 0 or 1)");
    }
  }
  for (const auto& t : transmissions_) {
    EPI_REQUIRE(states_[t.source].infectious(),
                "transmission source state " << states_[t.source].name
                                             << " is not infectious");
    EPI_REQUIRE(states_[t.from].susceptible(),
                "transmission entry state " << states_[t.from].name
                                            << " is not susceptible");
    EPI_REQUIRE(t.omega >= 0.0, "negative transmission rate");
  }
}

bool DiseaseModel::sample_progression(HealthStateId from, AgeGroup group,
                                      Rng& rng, HealthStateId* next,
                                      Tick* dwell_ticks) const {
  const auto& edges = progressions_from(from);
  if (edges.empty()) return false;
  const auto g = static_cast<std::size_t>(group);
  std::vector<double> weights;
  weights.reserve(edges.size());
  double total = 0.0;
  for (const auto& edge : edges) {
    weights.push_back(edge.probability[g]);
    total += edge.probability[g];
  }
  if (total <= 0.0) return false;  // terminal for this age group
  const std::size_t pick = rng.discrete(weights);
  *next = edges[pick].to;
  *dwell_ticks = edges[pick].dwell[g].sample(rng);
  return true;
}

Json DiseaseModel::to_json() const {
  JsonObject root;
  root["transmissibility"] = transmissibility_;
  root["initialState"] = states_[initial_state_].name;
  root["seedState"] = states_[seed_state_].name;
  JsonArray states;
  for (const auto& s : states_) {
    JsonObject o;
    o["name"] = s.name;
    o["infectivity"] = s.infectivity;
    o["susceptibility"] = s.susceptibility;
    o["symptomatic"] = s.counts_as_symptomatic;
    o["hospitalized"] = s.counts_as_hospitalized;
    o["ventilated"] = s.counts_as_ventilated;
    o["death"] = s.counts_as_death;
    states.push_back(Json(std::move(o)));
  }
  root["states"] = Json(std::move(states));
  JsonArray progressions;
  for (std::size_t from = 0; from < states_.size(); ++from) {
    for (const auto& edge : progressions_[from]) {
      JsonObject o;
      o["from"] = states_[from].name;
      o["to"] = states_[edge.to].name;
      JsonArray probs, dwells;
      for (int g = 0; g < kAgeGroupCount; ++g) {
        probs.push_back(Json(edge.probability[static_cast<std::size_t>(g)]));
        dwells.push_back(edge.dwell[static_cast<std::size_t>(g)].to_json());
      }
      o["probability"] = Json(std::move(probs));
      o["dwell"] = Json(std::move(dwells));
      progressions.push_back(Json(std::move(o)));
    }
  }
  root["progressions"] = Json(std::move(progressions));
  JsonArray transmissions;
  for (const auto& t : transmissions_) {
    JsonObject o;
    o["from"] = states_[t.from].name;
    o["to"] = states_[t.to].name;
    o["source"] = states_[t.source].name;
    o["omega"] = t.omega;
    transmissions.push_back(Json(std::move(o)));
  }
  root["transmissions"] = Json(std::move(transmissions));
  return Json(std::move(root));
}

DiseaseModel DiseaseModel::from_json(const Json& j) {
  DiseaseModel model;
  for (const Json& s : j.at("states").as_array()) {
    HealthState state;
    state.name = s.at("name").as_string();
    state.infectivity = s.at("infectivity").as_double();
    state.susceptibility = s.at("susceptibility").as_double();
    state.counts_as_symptomatic = s.get_bool("symptomatic", false);
    state.counts_as_hospitalized = s.get_bool("hospitalized", false);
    state.counts_as_ventilated = s.get_bool("ventilated", false);
    state.counts_as_death = s.get_bool("death", false);
    model.add_state(std::move(state));
  }
  for (const Json& p : j.at("progressions").as_array()) {
    ProgressionEdge edge;
    edge.to = model.state_id(p.at("to").as_string());
    const auto& probs = p.at("probability").as_array();
    const auto& dwells = p.at("dwell").as_array();
    EPI_REQUIRE(probs.size() == kAgeGroupCount && dwells.size() == kAgeGroupCount,
                "progression arrays must have one entry per age group");
    for (int g = 0; g < kAgeGroupCount; ++g) {
      edge.probability[static_cast<std::size_t>(g)] =
          probs[static_cast<std::size_t>(g)].as_double();
      edge.dwell[static_cast<std::size_t>(g)] =
          DwellTime::from_json(dwells[static_cast<std::size_t>(g)]);
    }
    model.add_progression(model.state_id(p.at("from").as_string()),
                          std::move(edge));
  }
  for (const Json& t : j.at("transmissions").as_array()) {
    Transmission tr;
    tr.from = model.state_id(t.at("from").as_string());
    tr.to = model.state_id(t.at("to").as_string());
    tr.source = model.state_id(t.at("source").as_string());
    tr.omega = t.at("omega").as_double();
    model.add_transmission(tr);
  }
  model.set_transmissibility(j.at("transmissibility").as_double());
  model.set_initial_state(model.state_id(j.at("initialState").as_string()));
  model.set_seed_state(model.state_id(j.at("seedState").as_string()));
  model.validate();
  return model;
}

namespace {

std::array<double, kAgeGroupCount> uniform_prob(double p) {
  return {p, p, p, p, p};
}

std::array<DwellTime, kAgeGroupCount> uniform_dwell(DwellTime d) {
  return {d, d, d, d, d};
}

ProgressionEdge edge_uniform(HealthStateId to, double prob, DwellTime dwell) {
  ProgressionEdge e;
  e.to = to;
  e.probability = uniform_prob(prob);
  e.dwell = uniform_dwell(std::move(dwell));
  return e;
}

ProgressionEdge edge_by_age(HealthStateId to,
                            std::array<double, kAgeGroupCount> prob,
                            std::array<DwellTime, kAgeGroupCount> dwell) {
  ProgressionEdge e;
  e.to = to;
  e.probability = prob;
  e.dwell = std::move(dwell);
  return e;
}

}  // namespace

DiseaseModel covid_model(const CovidParams& params) {
  EPI_REQUIRE(params.symptomatic_fraction >= 0.0 &&
                  params.symptomatic_fraction <= 1.0,
              "symptomatic fraction out of [0,1]");
  using namespace covid_states;
  DiseaseModel m;

  auto plain = [](const char* name) {
    HealthState s;
    s.name = name;
    return s;
  };

  HealthState susceptible = plain(kSusceptible);
  susceptible.susceptibility = 1.0;  // Table IV
  const HealthStateId S = m.add_state(susceptible);

  const HealthStateId E = m.add_state(plain(kExposed));

  HealthState presympt = plain(kPresymptomatic);
  presympt.infectivity = 0.8;  // Table IV
  const HealthStateId P = m.add_state(presympt);

  HealthState asympt = plain(kAsymptomatic);
  asympt.infectivity = 1.0;  // Table IV
  const HealthStateId A = m.add_state(asympt);

  HealthState sympt = plain(kSymptomatic);
  sympt.infectivity = 1.0;  // Table IV
  sympt.counts_as_symptomatic = true;
  const HealthStateId Y = m.add_state(sympt);

  HealthState attended = plain(kAttended);
  attended.counts_as_symptomatic = true;
  const HealthStateId Att = m.add_state(attended);

  HealthState attended_h = plain(kAttendedHosp);
  attended_h.counts_as_symptomatic = true;
  const HealthStateId AttH = m.add_state(attended_h);

  HealthState attended_d = plain(kAttendedDeath);
  attended_d.counts_as_symptomatic = true;
  const HealthStateId AttD = m.add_state(attended_d);

  HealthState hosp = plain(kHospitalized);
  hosp.counts_as_hospitalized = true;
  const HealthStateId H = m.add_state(hosp);

  HealthState hosp_d = plain(kHospitalizedDeath);
  hosp_d.counts_as_hospitalized = true;
  const HealthStateId HD = m.add_state(hosp_d);

  HealthState vent = plain(kVentilated);
  vent.counts_as_hospitalized = true;
  vent.counts_as_ventilated = true;
  const HealthStateId V = m.add_state(vent);

  HealthState vent_d = plain(kVentilatedDeath);
  vent_d.counts_as_hospitalized = true;
  vent_d.counts_as_ventilated = true;
  const HealthStateId VD = m.add_state(vent_d);

  const HealthStateId R = m.add_state(plain(kRecovered));

  HealthState dead = plain(kDeceased);
  dead.counts_as_death = true;
  const HealthStateId D = m.add_state(dead);

  // RX failure: treated but treatment failed; susceptible again (Table IV
  // gives it susceptibility 1.0). A small fraction of Attended land here.
  HealthState rx = plain(kRxFailure);
  rx.susceptibility = 1.0;
  const HealthStateId RX = m.add_state(rx);

  // --- Progressions (Table III; see DESIGN.md for reconstruction notes) --
  const double symp = params.symptomatic_fraction;
  // Exposed branches: asymptomatic vs presymptomatic. Table III has
  // prob(E->A) = 0.35 in the base model; the calibration varies the
  // symptomatic fraction, so prob(E->P) = symp here.
  m.add_progression(
      E, edge_uniform(A, 1.0 - symp, DwellTime::normal(5.0, 1.0)));
  m.add_progression(E, edge_uniform(P, symp, DwellTime::fixed(4.0)));
  // Asymptomatic recover after ~5 days.
  m.add_progression(A, edge_uniform(R, 1.0, DwellTime::normal(5.0, 1.0)));
  // Presymptomatic become symptomatic after a fixed 2 days.
  m.add_progression(P, edge_uniform(Y, 1.0, DwellTime::fixed(2.0)));

  // Symptomatic split three ways by severity, age-stratified (Table III):
  // recovery via medical attention, hospitalization path, or death path.
  const DwellTime attend_delay = DwellTime::discrete({{1, 0.175},
                                                      {2, 0.175},
                                                      {3, 0.1},
                                                      {4, 0.1},
                                                      {5, 0.1},
                                                      {6, 0.1},
                                                      {7, 0.1},
                                                      {8, 0.05},
                                                      {9, 0.05},
                                                      {10, 0.05}});
  m.add_progression(
      Y, edge_by_age(Att, {0.9594, 0.9894, 0.9594, 0.912, 0.788},
                     uniform_dwell(attend_delay)));
  m.add_progression(
      Y, edge_by_age(AttH, {0.04, 0.01, 0.04, 0.085, 0.195},
                     uniform_dwell(DwellTime::fixed(1.0))));
  m.add_progression(
      Y, edge_by_age(AttD, {0.0006, 0.0006, 0.0006, 0.003, 0.017},
                     uniform_dwell(DwellTime::fixed(2.0))));

  // Attended (mild): mostly recover; a sliver fail treatment (RX failure)
  // and become susceptible again.
  m.add_progression(Att, edge_uniform(R, 0.98, DwellTime::normal(5.0, 1.0)));
  m.add_progression(Att, edge_uniform(RX, 0.02, DwellTime::normal(5.0, 1.0)));

  // Hospitalization path: Attended(H) -> Hospitalized after an
  // age-stratified delay (Table III dt-mean row {5,5,5,5.3,4.2}).
  m.add_progression(
      AttH, edge_by_age(H, {1, 1, 1, 1, 1},
                        {DwellTime::normal(5.0, 1.0), DwellTime::normal(5.0, 1.0),
                         DwellTime::normal(5.0, 1.0), DwellTime::normal(5.3, 1.0),
                         DwellTime::normal(4.2, 1.0)}));
  // Hospitalized: most recover, the severe fraction move to ventilation
  // (Table III: {0.06, 0.06, 0.06, 0.15, 0.225}).
  m.add_progression(
      H, edge_by_age(R, {0.94, 0.94, 0.94, 0.85, 0.775},
                     {DwellTime::normal(4.6, 3.7), DwellTime::normal(4.6, 3.7),
                      DwellTime::normal(4.6, 3.7), DwellTime::normal(5.2, 6.3),
                      DwellTime::normal(5.2, 4.9)}));
  m.add_progression(
      H, edge_by_age(V, {0.06, 0.06, 0.06, 0.15, 0.225},
                     {DwellTime::normal(3.1, 0.2), DwellTime::normal(3.1, 0.2),
                      DwellTime::normal(3.1, 0.2), DwellTime::normal(7.8, 1.0),
                      DwellTime::normal(6.5, 1.0)}));
  // Ventilated (survivors) recover (Table III dt-mean {2.1,2.1,2.1,6.8,5.5},
  // dt-std {3.7,3.7,3.7,6.3,4.9}).
  m.add_progression(
      V, edge_by_age(R, {1, 1, 1, 1, 1},
                     {DwellTime::normal(2.1, 3.7), DwellTime::normal(2.1, 3.7),
                      DwellTime::normal(2.1, 3.7), DwellTime::normal(6.8, 6.3),
                      DwellTime::normal(5.5, 4.9)}));

  // Death path (the "(D)" chain): Attended(D) mostly reach the hospital
  // before dying (0.95 / 0.05, Table III).
  m.add_progression(AttD, edge_uniform(HD, 0.95, DwellTime::fixed(2.0)));
  m.add_progression(AttD, edge_uniform(D, 0.05, DwellTime::fixed(8.0)));
  m.add_progression(
      HD, edge_by_age(VD, {0.06, 0.06, 0.06, 0.15, 0.225},
                      uniform_dwell(DwellTime::fixed(4.0))));
  m.add_progression(
      HD, edge_by_age(D, {0.94, 0.94, 0.94, 0.85, 0.775},
                      uniform_dwell(DwellTime::fixed(5.0))));
  m.add_progression(VD, edge_uniform(D, 1.0, DwellTime::fixed(6.0)));

  // --- Transmissions (Table IV) ------------------------------------------
  // Susceptible or RX-failure persons are infected by presymptomatic,
  // symptomatic or asymptomatic contacts.
  for (const HealthStateId from : {S, RX}) {
    for (const HealthStateId source : {P, Y, A}) {
      m.add_transmission(Transmission{from, E, source, 1.0});
    }
  }

  m.set_transmissibility(params.transmissibility);
  m.set_initial_state(S);
  m.set_seed_state(E);
  m.validate();
  return m;
}

}  // namespace epi
