// Disease model: a probabilistic timed transition system (PTTS).
//
// Paper Fig 12 / Appendix B: health states with (a) *transmissions* —
// contact-driven transitions of a susceptible person triggered by an
// infectious neighbor, governed by the propensity law of Eq (1) — and (b)
// *progressions* — within-host timed transitions, each with an exit
// probability and a dwell-time distribution, possibly age-stratified
// (Table III). State attributes (infectivity, susceptibility) come from
// Table IV. Models are specified independently of the population and
// network, are JSON round-trippable, and a built-in CDC COVID-19 model
// (the paper's Table III/IV "best guess" configuration) ships in
// covid_model().
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "synthpop/population.hpp"  // kAgeGroupCount
#include "util/json.hpp"
#include "util/rng.hpp"

namespace epi {

using HealthStateId = std::uint16_t;
using Tick = std::int32_t;

inline constexpr HealthStateId kNoState = 0xFFFF;

/// Dwell-time distribution for a progression edge (Table III uses fixed,
/// truncated-normal ("dt-mean"/"dt-std dev") and discrete ("dt-discrete")
/// forms).
class DwellTime {
 public:
  enum class Kind : std::uint8_t { kFixed, kNormal, kDiscrete };

  static DwellTime fixed(double days);
  static DwellTime normal(double mean, double stddev);
  /// `outcomes` = (days, probability) pairs; probabilities sum to 1.
  static DwellTime discrete(std::vector<std::pair<double, double>> outcomes);

  /// Samples a dwell time in whole ticks, always >= 1 (a progression never
  /// completes within the tick it was scheduled).
  Tick sample(Rng& rng) const;

  double mean() const;

  Kind kind() const { return kind_; }

  Json to_json() const;
  static DwellTime from_json(const Json& j);

 private:
  Kind kind_ = Kind::kFixed;
  double fixed_days_ = 1.0;
  double mean_days_ = 1.0;
  double stddev_days_ = 0.0;
  std::vector<std::pair<double, double>> outcomes_;
};

/// One progression edge out of a state, age-stratified.
struct ProgressionEdge {
  HealthStateId to = kNoState;
  /// Exit probability per age group; the probabilities of all edges out of
  /// a state must sum to 1 (or 0 for terminal states) in each age group.
  std::array<double, kAgeGroupCount> probability{};
  /// Dwell time per age group (Table III stratifies some dwell times).
  std::array<DwellTime, kAgeGroupCount> dwell;
};

/// A health state with its transmission-relevant attributes (Table IV).
struct HealthState {
  std::string name;
  double infectivity = 0.0;     // iota scaling when this person is a source
  double susceptibility = 0.0;  // sigma scaling when this person is a target
  bool counts_as_symptomatic = false;   // aggregation flag for case counts
  bool counts_as_hospitalized = false;  // occupies a hospital bed
  bool counts_as_ventilated = false;    // occupies a ventilator
  bool counts_as_death = false;
  bool infectious() const { return infectivity > 0.0; }
  bool susceptible() const { return susceptibility > 0.0; }
};

/// Contact-driven transmission T_{i,j,k}: a person in entry state `from`
/// (X_i) in contact with a person in infectious state `source` (X_k) may
/// transition to `to` (X_j) with transmission weight omega.
struct Transmission {
  HealthStateId from = kNoState;
  HealthStateId to = kNoState;
  HealthStateId source = kNoState;
  double omega = 1.0;
};

/// The complete PTTS.
class DiseaseModel {
 public:
  /// Adds a state; returns its id. Names must be unique.
  HealthStateId add_state(HealthState state);

  HealthStateId state_id(const std::string& name) const;
  const HealthState& state(HealthStateId id) const { return states_[id]; }
  std::size_t state_count() const { return states_.size(); }

  void add_progression(HealthStateId from, ProgressionEdge edge);
  const std::vector<ProgressionEdge>& progressions_from(HealthStateId s) const;

  void add_transmission(Transmission t);
  const std::vector<Transmission>& transmissions() const {
    return transmissions_;
  }
  /// Transmissions applicable to a target currently in state `from`.
  const std::vector<Transmission>& transmissions_from(HealthStateId from) const;

  /// Global transmissibility scaling tau (Table IV: 0.18 for the
  /// calibrated base model; the primary calibration parameter).
  double transmissibility() const { return transmissibility_; }
  void set_transmissibility(double tau);

  /// The state newly synthesized persons start in.
  HealthStateId initial_state() const { return initial_state_; }
  void set_initial_state(HealthStateId s) { initial_state_ = s; }

  /// The state a transmission seeds (exposure target for seeding).
  HealthStateId seed_state() const { return seed_state_; }
  void set_seed_state(HealthStateId s) { seed_state_ = s; }

  /// Validates structural invariants (probabilities sum to 1 or 0 per age
  /// group, transmission endpoints exist, initial state is susceptible).
  /// Throws ConfigError on violation.
  void validate() const;

  /// Samples the progression out of `from` for `group`: picks an edge by
  /// probability and a dwell time. Returns false (and leaves outputs
  /// untouched) for terminal states.
  bool sample_progression(HealthStateId from, AgeGroup group, Rng& rng,
                          HealthStateId* next, Tick* dwell_ticks) const;

  Json to_json() const;
  static DiseaseModel from_json(const Json& j);

 private:
  std::vector<HealthState> states_;
  std::vector<std::vector<ProgressionEdge>> progressions_;
  std::vector<Transmission> transmissions_;
  std::vector<std::vector<Transmission>> transmissions_by_from_;
  double transmissibility_ = 1.0;
  HealthStateId initial_state_ = 0;
  HealthStateId seed_state_ = 0;
};

/// Parameters that calibration varies on top of the base COVID model
/// (case study 3: "the disease transmissibility and the ratio between
/// symptomatic and asymptomatic cases").
struct CovidParams {
  double transmissibility = 0.18;   // TAU
  double symptomatic_fraction = 0.65;  // SYMP: P(Exposed -> Presymptomatic)
};

/// Builds the paper's COVID-19 PTTS (Fig 12, Tables III-IV): Susceptible,
/// Exposed, Presymptomatic/Asymptomatic branch, Symptomatic, medically
/// attended / hospitalized / ventilated branches with recovery and death
/// paths, age-stratified severity, plus RX-failure. Dwell-time values not
/// fully legible in the preprint's Table III are reconstructed from the
/// CDC planning-scenario document it cites; see DESIGN.md.
DiseaseModel covid_model(const CovidParams& params = {});

/// Canonical state names of the COVID model (shared with tests/analytics).
namespace covid_states {
inline constexpr const char* kSusceptible = "Susceptible";
inline constexpr const char* kExposed = "Exposed";
inline constexpr const char* kPresymptomatic = "Presymptomatic";
inline constexpr const char* kAsymptomatic = "Asymptomatic";
inline constexpr const char* kSymptomatic = "Symptomatic";
inline constexpr const char* kAttended = "Attended";
inline constexpr const char* kAttendedHosp = "Attended(H)";
inline constexpr const char* kAttendedDeath = "Attended(D)";
inline constexpr const char* kHospitalized = "Hospitalized";
inline constexpr const char* kHospitalizedDeath = "Hospitalized(D)";
inline constexpr const char* kVentilated = "Ventilated";
inline constexpr const char* kVentilatedDeath = "Ventilated(D)";
inline constexpr const char* kRecovered = "Recovered";
inline constexpr const char* kDeceased = "Deceased";
inline constexpr const char* kRxFailure = "RxFailure";
}  // namespace covid_states

}  // namespace epi
