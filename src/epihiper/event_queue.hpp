// Deterministic per-rank timed-event queue (the ExaCorona direction).
//
// The event-driven transmission core schedules within-host disease-state
// transitions as timed events instead of rescanning every local person
// every tick: transition_person() pushes one event per scheduled
// progression and step_progressions() pops only the events due at the
// current tick. Ticks with an empty queue (and an empty frontier) cost
// nothing, which is what makes quiescent tick ranges skippable.
//
// Determinism contract: events pop in strict ascending (tick, kind,
// PersonId) order regardless of insertion order — the exact order the
// legacy per-tick person scan fired transitions in — so the event-driven
// core replays the scan byte for byte. Stale events (a person was
// re-transitioned after scheduling, superseding the pending progression)
// are invalidated lazily: the simulation revalidates each popped event
// against the person's live next_transition_tick before firing it.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "epihiper/disease_model.hpp"   // Tick
#include "network/contact_network.hpp"  // PersonId

namespace epi {

/// Event kinds, in intra-tick firing order. Progressions are currently the
/// only kind; the field exists so future timed work (scheduled intervention
/// actions, delayed tracing hops) slots into the same total order without
/// perturbing existing pop sequences.
enum class EventKind : std::uint8_t {
  kProgression = 0,
};

/// One scheduled event. The (tick, kind, person) triple is the queue's
/// total order; duplicates are legal (re-scheduling does not cancel the
/// superseded entry) and are shed lazily by the consumer.
struct TimedEvent {
  Tick tick = 0;
  EventKind kind = EventKind::kProgression;
  PersonId person = 0;
};

/// Binary min-heap over (tick, kind, person) with lazy invalidation.
///
/// A heap's internal layout depends on insertion order, but its pop
/// sequence over a *total* order does not: distinct keys always pop in
/// ascending key order, and equal keys are identical events. That makes
/// the pop order a pure function of the multiset of scheduled events —
/// the determinism property the event-ordering tests pin down.
class EventQueue {
 public:
  /// Sentinel next_tick() of an empty queue; compares greater than any
  /// real tick.
  static constexpr Tick kNever = std::numeric_limits<Tick>::max();

  void schedule(Tick tick, EventKind kind, PersonId person) {
    heap_.push_back(TimedEvent{tick, kind, person});
    sift_up(heap_.size() - 1);
    ++scheduled_;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Tick of the earliest pending event (kNever when empty) — the queue's
  /// contribution to the rank's next-active-tick bid.
  Tick next_tick() const { return heap_.empty() ? kNever : heap_[0].tick; }

  /// Pops the earliest event if it is due at or before `tick`. Returns
  /// false (leaving `out` untouched) when nothing is due.
  bool pop_due(Tick tick, TimedEvent* out) {
    if (heap_.empty() || heap_[0].tick > tick) return false;
    *out = heap_[0];
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return true;
  }

  /// Lifetime count of schedule() calls (events-scheduled accounting).
  std::uint64_t scheduled() const { return scheduled_; }

  std::uint64_t memory_bytes() const {
    return heap_.capacity() * sizeof(TimedEvent);
  }

 private:
  static bool before(const TimedEvent& a, const TimedEvent& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.person < b.person;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<TimedEvent> heap_;
  std::uint64_t scheduled_ = 0;
};

}  // namespace epi
