#include "epihiper/interventions.hpp"

#include "epihiper/scripted.hpp"
#include "util/error.hpp"

namespace epi {

namespace {
// Coin-purpose labels (see Simulation::person_coin).
constexpr std::uint64_t kVhiCoin = 0x564849ULL;      // "VHI"
constexpr std::uint64_t kShCoin = 0x5348ULL;         // "SH"
constexpr std::uint64_t kPsCoin = 0x5053ULL;         // "PS"
constexpr std::uint64_t kRoCoin = 0x524fULL;         // "RO"
constexpr std::uint64_t kTaCoin = 0x5441ULL;         // "TA"
constexpr std::uint64_t kCtIndexCoin = 0x435449ULL;  // "CTI"
constexpr std::uint64_t kCtTraceCoin = 0x435454ULL;  // "CTT"
}  // namespace

void VoluntaryHomeIsolation::apply(Simulation& sim) {
  if (sim.tick() < config_.start) return;
  const HealthStateId symptomatic =
      sim.model().state_id(covid_states::kSymptomatic);
  for (PersonId p : sim.entered_this_tick(symptomatic)) {
    if (sim.person_coin(p, kVhiCoin, config_.compliance)) {
      sim.isolate(p, sim.tick() + config_.isolation_days);
    }
  }
}

void SchoolClosure::apply(Simulation& sim) {
  const bool closed = sim.tick() >= config_.start && sim.tick() < config_.end;
  sim.set_context_closed(ActivityType::kSchool, closed);
  sim.set_context_closed(ActivityType::kCollege, closed);
}

void StayAtHome::apply(Simulation& sim) {
  if (!compliance_assigned_ && sim.tick() >= config_.start) {
    for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
      sim.set_stay_home_compliant(
          p, sim.person_coin(p, kShCoin, config_.compliance));
    }
    compliance_assigned_ = true;
  }
  sim.set_stay_home_active(sim.tick() >= config_.start &&
                           sim.tick() < config_.end);
}

void PartialReopening::apply(Simulation& sim) {
  if (applied_ || sim.tick() < config_.reopen_tick) return;
  applied_ = true;
  // Deterministically sample the surviving fraction of non-home edges;
  // keyed on the global edge index so any partitioning agrees.
  const ContactNetwork& net = sim.network();
  for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
    for (EdgeIndex e = net.in_begin(p); e < net.in_end(p); ++e) {
      const Contact& c = net.contact(e);
      const bool home_edge =
          static_cast<ActivityType>(c.target_activity) == ActivityType::kHome &&
          static_cast<ActivityType>(c.source_activity) == ActivityType::kHome;
      if (home_edge) continue;
      // Key on the unordered pair so both directions of a contact agree.
      const PersonId lo = std::min(p, c.source);
      const PersonId hi = std::max(p, c.source);
      Rng edge_rng = Rng(sim.config().seed).derive({kRoCoin, lo, hi});
      sim.set_edge_active(e, edge_rng.bernoulli(config_.level));
    }
  }
}

void TestAndIsolate::apply(Simulation& sim) {
  if (sim.tick() < config_.start) return;
  const HealthStateId asympt =
      sim.model().state_id(covid_states::kAsymptomatic);
  const HealthStateId presympt =
      sim.model().state_id(covid_states::kPresymptomatic);
  for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
    const HealthStateId h = sim.health(p);
    if (h != asympt && h != presympt) continue;
    if (sim.is_isolated(p)) continue;
    // Per-(person, tick) detection draw.
    const auto purpose =
        kTaCoin ^ (static_cast<std::uint64_t>(sim.tick()) << 16);
    if (sim.person_coin(p, purpose, config_.daily_detection)) {
      sim.isolate(p, sim.tick() + config_.isolation_days);
    }
  }
}

void PulsingShutdown::apply(Simulation& sim) {
  if (sim.tick() < config_.start) {
    return;
  }
  if (!compliance_assigned_) {
    for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
      sim.set_stay_home_compliant(
          p, sim.person_coin(p, kPsCoin, config_.compliance));
    }
    compliance_assigned_ = true;
  }
  const Tick phase =
      (sim.tick() - config_.start) % (config_.on_days + config_.off_days);
  const bool shutdown_on = phase < config_.on_days;
  sim.set_stay_home_active(shutdown_on);
  // Each pulse boundary reschedules the per-edge system-state changes of
  // every compliant person — the repeated SH<->RO alternation whose
  // bookkeeping the paper singles out as significantly increasing running
  // time (and memory, Fig 10). The edge flags end up consistent with the
  // stay-home semantics; the cost of rewriting them is the point.
  if (shutdown_on != last_phase_on_) {
    last_phase_on_ = shutdown_on;
    const ContactNetwork& net = sim.network();
    for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
      for (EdgeIndex e = net.in_begin(p); e < net.in_end(p); ++e) {
        const Contact& c = net.contact(e);
        const bool home_edge =
            static_cast<ActivityType>(c.target_activity) == ActivityType::kHome &&
            static_cast<ActivityType>(c.source_activity) == ActivityType::kHome;
        if (home_edge) continue;
        const bool endpoint_compliant =
            sim.person_coin(p, kPsCoin, config_.compliance) ||
            sim.person_coin(c.source, kPsCoin, config_.compliance);
        if (!endpoint_compliant) continue;
        sim.set_edge_active(e, !shutdown_on);
      }
    }
  }
}

ContactTracing::ContactTracing(Config config) : config_(config) {
  EPI_REQUIRE(config_.depth >= 1 && config_.depth <= 2,
              "contact tracing depth must be 1 or 2");
}

void ContactTracing::run_monitoring(Simulation& sim) {
  // Daily follow-up of everyone in the monitoring program: review the
  // person's contact list (depth 1) and, for D2CT, the contact lists of
  // their local contacts as well. A monitored person who has developed
  // symptoms is isolated immediately (they are already enrolled, no
  // compliance draw) and their contacts re-enter the tracing frontier.
  const ContactNetwork& net = sim.network();
  const HealthStateId symptomatic =
      sim.model().state_id(covid_states::kSymptomatic);
  for (auto it = monitored_until_.begin(); it != monitored_until_.end();) {
    if (it->second < sim.tick()) {
      it = monitored_until_.erase(it);
      continue;
    }
    const PersonId person = it->first;
    // Review the monitored person's contact diary; at depth 2, also walk
    // each (locally resident) contact's own diary to assess second-ring
    // exposure — reading every edge record, which is where D2CT's cost
    // lives. The accumulated exposure minutes feed the tracer-workload
    // variable below.
    std::uint64_t exposure_minutes = 0;
    for (EdgeIndex e = net.in_begin(person); e < net.in_end(person); ++e) {
      ++reviews_;
      exposure_minutes += net.contact(e).duration_minutes;
      if (config_.depth >= 2) {
        const PersonId contact = net.contact(e).source;
        if (sim.is_local(contact)) {
          for (EdgeIndex f = net.in_begin(contact); f < net.in_end(contact);
               ++f) {
            ++reviews_;
            exposure_minutes += net.contact(f).duration_minutes;
          }
        }
      }
    }
    sim.set_variable("ct_exposure_minutes",
                     sim.variable("ct_exposure_minutes") +
                         static_cast<double>(exposure_minutes));
    if (sim.health(person) == symptomatic && !sim.is_isolated(person)) {
      sim.isolate(person, sim.tick() + config_.isolation_days);
      for (EdgeIndex e = net.in_begin(person); e < net.in_end(person); ++e) {
        const PersonId contact = net.contact(e).source;
        if (sim.person_coin(contact, kCtTraceCoin ^ person,
                            config_.trace_compliance)) {
          frontier_.emplace_back(contact, config_.depth - 1);
        }
      }
    }
    ++it;
  }
}

void ContactTracing::apply(Simulation& sim) {
  // Phase 0: daily follow-up of the monitoring program.
  run_monitoring(sim);

  // Phase 1: route pending expansion requests to their owner ranks.
  // (Collective — every rank participates every tick.)
  std::vector<std::pair<PersonId, int>> local_frontier;
  if (sim.comm() != nullptr) {
    auto* comm = sim.comm();
    std::vector<std::vector<std::uint64_t>> outbox(
        static_cast<std::size_t>(comm->size()));
    for (const auto& [person, depth] : frontier_) {
      // partition_of() needs the partitioning, which the simulation hides;
      // route by asking the simulation instead.
      if (sim.is_local(person)) {
        local_frontier.emplace_back(person, depth);
      } else {
        // The owner is the rank whose range contains the person; we simply
        // send to everyone and let owners keep their own (frontiers are
        // small: bounded by new symptomatic cases times mean degree).
        for (int r = 0; r < comm->size(); ++r) {
          if (r == comm->rank()) continue;
          outbox[static_cast<std::size_t>(r)].push_back(person);
          outbox[static_cast<std::size_t>(r)].push_back(
              static_cast<std::uint64_t>(depth));
        }
      }
    }
    const auto inbox = comm->alltoallv(outbox);
    for (const auto& messages : inbox) {
      for (std::size_t i = 0; i + 1 < messages.size(); i += 2) {
        const auto person = static_cast<PersonId>(messages[i]);
        if (sim.is_local(person)) {
          local_frontier.emplace_back(person,
                                      static_cast<int>(messages[i + 1]));
        }
      }
    }
  } else {
    local_frontier = frontier_;
  }
  frontier_.clear();

  // Phase 2: expand the frontier — isolate each traced person and, if
  // depth remains, enqueue their contacts for the next tick.
  const ContactNetwork& net = sim.network();
  for (const auto& [person, depth] : local_frontier) {
    ++expansions_;
    // Everyone traced enters the monitoring program; isolation additionally
    // requires the compliance draw made when they were enqueued.
    Tick& monitored = monitored_until_[person];
    monitored = std::max(monitored, sim.tick() + config_.monitor_days);
    sim.isolate(person, sim.tick() + config_.isolation_days);
    if (depth <= 0) continue;
    for (EdgeIndex e = net.in_begin(person); e < net.in_end(person); ++e) {
      const PersonId contact = net.contact(e).source;
      if (!sim.person_coin(contact, kCtTraceCoin ^ person,
                           config_.trace_compliance)) {
        continue;
      }
      frontier_.emplace_back(contact, depth - 1);
    }
  }

  // Phase 3: enroll new index cases.
  if (sim.tick() < config_.start) return;
  const HealthStateId symptomatic =
      sim.model().state_id(covid_states::kSymptomatic);
  for (PersonId p : sim.entered_this_tick(symptomatic)) {
    if (!sim.person_coin(p, kCtIndexCoin, config_.index_compliance)) continue;
    for (EdgeIndex e = net.in_begin(p); e < net.in_end(p); ++e) {
      const PersonId contact = net.contact(e).source;
      if (!sim.person_coin(contact, kCtTraceCoin ^ p,
                           config_.trace_compliance)) {
        continue;
      }
      frontier_.emplace_back(contact, config_.depth - 1);
    }
  }
}

const std::vector<std::string>& intervention_stack_names() {
  static const std::vector<std::string> names = {
      "base", "base+RO", "base+TA", "base+PS", "base+D1CT", "base+D2CT"};
  return names;
}

std::vector<std::shared_ptr<Intervention>> make_intervention_stack(
    const std::string& stack_name) {
  std::vector<std::shared_ptr<Intervention>> stack;
  // Base case (paper §VI): VHI + SC + SH.
  stack.push_back(std::make_shared<VoluntaryHomeIsolation>(
      VoluntaryHomeIsolation::Config{}));
  stack.push_back(std::make_shared<SchoolClosure>(SchoolClosure::Config{10}));
  stack.push_back(
      std::make_shared<StayAtHome>(StayAtHome::Config{20, 80, 0.6}));
  if (stack_name == "base") return stack;
  if (stack_name == "base+RO") {
    stack.push_back(std::make_shared<PartialReopening>(
        PartialReopening::Config{80, 0.5}));
    return stack;
  }
  if (stack_name == "base+TA") {
    stack.push_back(
        std::make_shared<TestAndIsolate>(TestAndIsolate::Config{20, 0.05, 14}));
    return stack;
  }
  if (stack_name == "base+PS") {
    stack.push_back(std::make_shared<PulsingShutdown>(
        PulsingShutdown::Config{20, 14, 14, 0.6}));
    return stack;
  }
  if (stack_name == "base+D1CT") {
    stack.push_back(std::make_shared<ContactTracing>(
        ContactTracing::Config{1, 15, 0.5, 0.75, 14}));
    return stack;
  }
  if (stack_name == "base+D2CT") {
    stack.push_back(std::make_shared<ContactTracing>(
        ContactTracing::Config{2, 15, 0.5, 0.75, 14}));
    return stack;
  }
  throw ConfigError("unknown intervention stack: " + stack_name);
}

std::shared_ptr<Intervention> intervention_from_json(const Json& spec) {
  const std::string type = spec.at("type").as_string();
  if (type == "VHI") {
    VoluntaryHomeIsolation::Config c;
    c.compliance = spec.get_double("compliance", c.compliance);
    c.isolation_days =
        static_cast<Tick>(spec.get_int("isolationDays", c.isolation_days));
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    return std::make_shared<VoluntaryHomeIsolation>(c);
  }
  if (type == "SC") {
    SchoolClosure::Config c;
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    c.end = static_cast<Tick>(spec.get_int("end", c.end));
    return std::make_shared<SchoolClosure>(c);
  }
  if (type == "SH") {
    StayAtHome::Config c;
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    c.end = static_cast<Tick>(spec.get_int("end", c.end));
    c.compliance = spec.get_double("compliance", c.compliance);
    return std::make_shared<StayAtHome>(c);
  }
  if (type == "RO") {
    PartialReopening::Config c;
    c.reopen_tick = static_cast<Tick>(spec.get_int("reopenTick", c.reopen_tick));
    c.level = spec.get_double("level", c.level);
    return std::make_shared<PartialReopening>(c);
  }
  if (type == "TA") {
    TestAndIsolate::Config c;
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    c.daily_detection = spec.get_double("dailyDetection", c.daily_detection);
    c.isolation_days =
        static_cast<Tick>(spec.get_int("isolationDays", c.isolation_days));
    return std::make_shared<TestAndIsolate>(c);
  }
  if (type == "PS") {
    PulsingShutdown::Config c;
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    c.on_days = static_cast<Tick>(spec.get_int("onDays", c.on_days));
    c.off_days = static_cast<Tick>(spec.get_int("offDays", c.off_days));
    c.compliance = spec.get_double("compliance", c.compliance);
    return std::make_shared<PulsingShutdown>(c);
  }
  if (type == "scripted") {
    return std::make_shared<ScriptedIntervention>(spec);
  }
  if (type == "D1CT" || type == "D2CT") {
    ContactTracing::Config c;
    c.depth = type == "D2CT" ? 2 : 1;
    c.start = static_cast<Tick>(spec.get_int("start", c.start));
    c.index_compliance =
        spec.get_double("indexCompliance", c.index_compliance);
    c.trace_compliance =
        spec.get_double("traceCompliance", c.trace_compliance);
    c.isolation_days =
        static_cast<Tick>(spec.get_int("isolationDays", c.isolation_days));
    return std::make_shared<ContactTracing>(c);
  }
  throw ConfigError("unknown intervention type: " + type);
}

}  // namespace epi
