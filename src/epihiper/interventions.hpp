// Built-in interventions (paper §VI, Fig 7 bottom).
//
// The paper's base case stacks VHI (voluntary home isolation), SC (school
// closure) and SH (stay-at-home); extensions add RO (partial reopening),
// TA (testing and isolating asymptomatic cases), PS (pulsing shutdown —
// repeatedly alternating SH and RO), and distance-1 / distance-2 contact
// tracing with isolation (D1CT / D2CT), the latter "increasing the running
// time by almost 300% from the base case" because it touches many more
// nodes and edges.
//
// Each intervention is an Appendix-D trigger + action ensemble specialized
// in code: the trigger is the tick/state predicate in apply(), the action
// ensemble the (possibly sampled) state mutations through the Simulation
// API. All sampling is per-person keyed, so parallel runs match serial
// runs exactly.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "epihiper/simulation.hpp"
#include "util/json.hpp"

namespace epi {

/// VHI: symptomatic persons isolate at home with probability `compliance`
/// from symptom onset for `isolation_days`.
class VoluntaryHomeIsolation : public Intervention {
 public:
  struct Config {
    double compliance = 0.75;
    Tick isolation_days = 14;
    Tick start = 0;
  };
  explicit VoluntaryHomeIsolation(Config config) : config_(config) {}
  std::string name() const override { return "VHI"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
};

/// SC: all school and college contacts disabled in [start, end).
class SchoolClosure : public Intervention {
 public:
  struct Config {
    Tick start = 0;
    Tick end = 1 << 30;
  };
  explicit SchoolClosure(Config config) : config_(config) {}
  std::string name() const override { return "SC"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
};

/// SH: in [start, end), compliant persons keep only home contacts.
class StayAtHome : public Intervention {
 public:
  struct Config {
    Tick start = 0;
    Tick end = 1 << 30;
    double compliance = 0.6;
  };
  explicit StayAtHome(Config config) : config_(config) {}
  std::string name() const override { return "SH"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
  bool compliance_assigned_ = false;
};

/// RO: at `reopen_tick`, only a fraction `level` of each person's non-home
/// contacts become active again (per-edge deterministic sampling); models
/// partial reopening after a stay-at-home order expires.
class PartialReopening : public Intervention {
 public:
  struct Config {
    Tick reopen_tick = 75;
    double level = 0.5;  // fraction of non-home edges reactivated
  };
  explicit PartialReopening(Config config) : config_(config) {}
  std::string name() const override { return "RO"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
  bool applied_ = false;
};

/// TA: from `start`, each asymptomatic or presymptomatic person is
/// detected with probability `daily_detection` per tick and isolated.
class TestAndIsolate : public Intervention {
 public:
  struct Config {
    Tick start = 0;
    double daily_detection = 0.05;
    Tick isolation_days = 14;
  };
  explicit TestAndIsolate(Config config) : config_(config) {}
  std::string name() const override { return "TA"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
};

/// PS: pulsing shutdown — stay-at-home alternates `on_days` active /
/// `off_days` inactive from `start`, repeatedly rescheduling system-state
/// changes (the paper notes this significantly increases running time).
class PulsingShutdown : public Intervention {
 public:
  struct Config {
    Tick start = 30;
    Tick on_days = 14;
    Tick off_days = 14;
    double compliance = 0.6;
  };
  explicit PulsingShutdown(Config config) : config_(config) {}
  std::string name() const override { return "PS"; }
  void apply(Simulation& sim) override;

 private:
  Config config_;
  bool compliance_assigned_ = false;
  bool last_phase_on_ = false;
};

/// D1CT / D2CT: when a person turns symptomatic (an index case, enrolled
/// with probability `index_compliance`), their contacts are traced; traced
/// persons isolate with probability `trace_compliance` and ALL of them
/// enter a monitoring program for `monitor_days` — each tick the program
/// reviews every monitored person's contact list (and, at depth 2, their
/// contacts' contact lists), which is why distance-2 tracing "affects many
/// more nodes and edges" and dominates running time (Fig 7 bottom). A
/// monitored person who develops symptoms is isolated immediately and
/// re-traced. Tracing expands one hop per tick (the real-world tracing
/// delay) and crosses partition boundaries via an explicit exchange.
class ContactTracing : public Intervention {
 public:
  struct Config {
    int depth = 1;  // 1 = D1CT, 2 = D2CT
    Tick start = 0;
    double index_compliance = 0.5;
    double trace_compliance = 0.75;
    Tick isolation_days = 14;
    Tick monitor_days = 14;
  };
  explicit ContactTracing(Config config);
  std::string name() const override {
    return config_.depth >= 2 ? "D2CT" : "D1CT";
  }
  void apply(Simulation& sim) override;

  /// Number of persons expanded so far (work accounting for Fig 7).
  std::uint64_t expansions() const { return expansions_; }
  /// Contact-list entries reviewed by the monitoring program so far.
  std::uint64_t reviews() const { return reviews_; }

 private:
  void run_monitoring(Simulation& sim);

  Config config_;
  // (person, remaining depth) expansion frontier for the next tick.
  std::vector<std::pair<PersonId, int>> frontier_;
  // Local persons under daily follow-up -> last monitored tick. Ordered:
  // run_monitoring() iterates this map, and the iteration order feeds the
  // re-entry order of the tracing frontier — with an unordered map that
  // order would be hash order, which differs across libstdc++ versions.
  std::map<PersonId, Tick> monitored_until_;
  std::uint64_t expansions_ = 0;
  std::uint64_t reviews_ = 0;
};

/// Named intervention stacks of Fig 7 (bottom): "base" = VHI+SC+SH, then
/// base+RO, base+TA, base+PS, base+D1CT, base+D2CT.
std::vector<std::shared_ptr<Intervention>> make_intervention_stack(
    const std::string& stack_name);

/// Names accepted by make_intervention_stack, in Fig 7 order.
const std::vector<std::string>& intervention_stack_names();

/// Builds one intervention from a JSON spec {"type": "VHI", ...}; the
/// workflow layer uses this to materialize cell configurations.
std::shared_ptr<Intervention> intervention_from_json(const Json& spec);

}  // namespace epi
