#include "epihiper/parallel.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace epi {

SimOutput run_simulation(const ContactNetwork& network,
                         const Population& population,
                         const DiseaseModel& model,
                         const SimulationConfig& config,
                         const InterventionFactory& interventions) {
  Simulation sim(network, population, model, config);
  if (interventions) {
    for (auto& intervention : interventions()) {
      sim.add_intervention(std::move(intervention));
    }
  }
  return sim.run();
}

SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions) {
  return run_simulation_parallel(network, population, model, config,
                                 partitioning, num_ranks, interventions,
                                 mpilite::ObsHooks{});
}

SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions,
                                  const mpilite::ObsHooks& obs) {
  EPI_REQUIRE(num_ranks > 0, "need at least one rank");
  EPI_REQUIRE(partitioning.size() == static_cast<std::size_t>(num_ranks),
              "partitioning has " << partitioning.size() << " parts for "
                                  << num_ranks << " ranks");
  std::vector<SimOutput> per_rank(static_cast<std::size_t>(num_ranks));
  mpilite::Runtime::run(num_ranks, [&](mpilite::Comm& comm) {
    Simulation sim(network, population, model, config, &comm, &partitioning);
    sim.set_metrics(obs.metrics);
    if (interventions) {
      for (auto& intervention : interventions()) {
        sim.add_intervention(std::move(intervention));
      }
    }
    per_rank[static_cast<std::size_t>(comm.rank())] = sim.run();
  }, obs);

  // Merge rank outputs into the serial-equivalent view.
  SimOutput merged;
  const auto ticks = static_cast<std::size_t>(config.num_ticks);
  merged.new_infections_per_tick.assign(ticks, 0);
  merged.frontier_edges_per_tick.assign(ticks, 0);
  merged.memory_bytes_per_tick.assign(ticks, 0);
  merged.seconds_per_tick.assign(ticks, 0.0);
  merged.final_states.reserve(network.node_count());
  for (const SimOutput& out : per_rank) {
    EPI_ASSERT(out.new_infections_per_tick.size() == ticks,
               "rank output tick-count mismatch");
    for (std::size_t t = 0; t < ticks; ++t) {
      merged.new_infections_per_tick[t] += out.new_infections_per_tick[t];
      merged.frontier_edges_per_tick[t] += out.frontier_edges_per_tick[t];
      merged.memory_bytes_per_tick[t] += out.memory_bytes_per_tick[t];
      merged.seconds_per_tick[t] =
          std::max(merged.seconds_per_tick[t], out.seconds_per_tick[t]);
    }
    merged.transitions.insert(merged.transitions.end(),
                              out.transitions.begin(), out.transitions.end());
    merged.final_states.insert(merged.final_states.end(),
                               out.final_states.begin(),
                               out.final_states.end());
    merged.total_infections += out.total_infections;
    merged.communication_bytes += out.communication_bytes;
    merged.ghost_exchange_bytes += out.ghost_exchange_bytes;
    merged.work_units += out.work_units;
    merged.max_rank_work_units =
        std::max(merged.max_rank_work_units, out.work_units);
    // Event accounting sums across ranks; tick counters are identical on
    // every rank (skip decisions are min-allreduced), so max == any rank.
    merged.events_scheduled += out.events_scheduled;
    merged.events_fired += out.events_fired;
    merged.events_stale += out.events_stale;
    merged.ticks_skipped = std::max(merged.ticks_skipped, out.ticks_skipped);
    merged.ticks_executed =
        std::max(merged.ticks_executed, out.ticks_executed);
    merged.broadcast_ticks =
        std::max(merged.broadcast_ticks, out.broadcast_ticks);
    merged.ghost_ticks = std::max(merged.ghost_ticks, out.ghost_ticks);
  }
  std::sort(merged.transitions.begin(), merged.transitions.end(),
            [](const TransitionEvent& a, const TransitionEvent& b) {
              return a.tick < b.tick ||
                     (a.tick == b.tick && a.person < b.person);
            });
  return merged;
}

}  // namespace epi
