#include "epihiper/parallel.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>

#include "util/error.hpp"

namespace epi {

namespace {

// Rank-local results only exist in rank 0's process under the mpilite shm
// backend (forked ranks do not share per_rank below), so every other rank
// ships its SimOutput to rank 0 explicitly. The tag is the highest valid
// user tag — far from the simulator's small tick-keyed tags.
constexpr int kGatherTag = (1 << 30) - 1;

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
void put_pod_vector(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_u64(out, v.size());
  const std::size_t at = out.size();
  out.resize(at + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data() + at, v.data(), v.size() * sizeof(T));
}

struct OutputReader {
  std::span<const std::byte> blob;
  std::size_t pos = 0;

  std::uint64_t u64() {
    EPI_REQUIRE(pos + 8 <= blob.size(), "truncated rank SimOutput payload");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  template <typename T>
  std::vector<T> pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    EPI_REQUIRE(pos + count * sizeof(T) <= blob.size(),
                "truncated rank SimOutput payload");
    std::vector<T> v(static_cast<std::size_t>(count));
    if (count > 0) std::memcpy(v.data(), blob.data() + pos, count * sizeof(T));
    pos += count * sizeof(T);
    return v;
  }
};

std::vector<std::byte> serialize_sim_output(const SimOutput& out) {
  std::vector<std::byte> blob;
  put_pod_vector(blob, out.transitions);
  put_pod_vector(blob, out.new_infections_per_tick);
  put_pod_vector(blob, out.memory_bytes_per_tick);
  put_pod_vector(blob, out.seconds_per_tick);
  put_pod_vector(blob, out.final_states);
  put_pod_vector(blob, out.frontier_edges_per_tick);
  put_u64(blob, out.total_infections);
  put_u64(blob, out.communication_bytes);
  put_u64(blob, out.ghost_exchange_bytes);
  put_u64(blob, out.work_units);
  put_u64(blob, out.max_rank_work_units);
  put_u64(blob, out.events_scheduled);
  put_u64(blob, out.events_fired);
  put_u64(blob, out.events_stale);
  put_u64(blob, out.ticks_skipped);
  put_u64(blob, out.ticks_executed);
  put_u64(blob, out.broadcast_ticks);
  put_u64(blob, out.ghost_ticks);
  return blob;
}

SimOutput deserialize_sim_output(const std::vector<std::byte>& blob) {
  OutputReader in{blob};
  SimOutput out;
  out.transitions = in.pod_vector<TransitionEvent>();
  out.new_infections_per_tick = in.pod_vector<std::uint64_t>();
  out.memory_bytes_per_tick = in.pod_vector<std::uint64_t>();
  out.seconds_per_tick = in.pod_vector<double>();
  out.final_states = in.pod_vector<HealthStateId>();
  out.frontier_edges_per_tick = in.pod_vector<std::uint64_t>();
  out.total_infections = in.u64();
  out.communication_bytes = in.u64();
  out.ghost_exchange_bytes = in.u64();
  out.work_units = in.u64();
  out.max_rank_work_units = in.u64();
  out.events_scheduled = in.u64();
  out.events_fired = in.u64();
  out.events_stale = in.u64();
  out.ticks_skipped = in.u64();
  out.ticks_executed = in.u64();
  out.broadcast_ticks = in.u64();
  out.ghost_ticks = in.u64();
  EPI_REQUIRE(in.pos == blob.size(),
              "trailing bytes in rank SimOutput payload");
  return out;
}

}  // namespace

SimOutput run_simulation(const ContactNetwork& network,
                         const Population& population,
                         const DiseaseModel& model,
                         const SimulationConfig& config,
                         const InterventionFactory& interventions) {
  Simulation sim(network, population, model, config);
  if (interventions) {
    for (auto& intervention : interventions()) {
      sim.add_intervention(std::move(intervention));
    }
  }
  return sim.run();
}

SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions) {
  return run_simulation_parallel(network, population, model, config,
                                 partitioning, num_ranks, interventions,
                                 mpilite::ObsHooks{});
}

SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions,
                                  const mpilite::ObsHooks& obs) {
  EPI_REQUIRE(num_ranks > 0, "need at least one rank");
  EPI_REQUIRE(partitioning.size() == static_cast<std::size_t>(num_ranks),
              "partitioning has " << partitioning.size() << " parts for "
                                  << num_ranks << " ranks");
  std::vector<SimOutput> per_rank(static_cast<std::size_t>(num_ranks));
  mpilite::Runtime::run(num_ranks, [&](mpilite::Comm& comm) {
    Simulation sim(network, population, model, config, &comm, &partitioning);
    // Through the Comm, not obs.metrics directly: under the shm backend
    // each forked rank reports into a process-local registry that is
    // merged after the run (a captured parent pointer would silently drop
    // every child's metrics).
    sim.set_metrics(comm.metrics());
    if (interventions) {
      for (auto& intervention : interventions()) {
        sim.add_intervention(std::move(intervention));
      }
    }
    SimOutput out = sim.run();
    if (comm.backend() == mpilite::BackendKind::kShm) {
      // Gather to rank 0, whose body runs on this (launching) thread so
      // its per_rank writes survive the forked ranks' exit. The gather
      // runs after sim.run() captured communication_bytes, so it never
      // perturbs the simulation output itself.
      if (comm.rank() == 0) {
        per_rank[0] = std::move(out);
        for (int r = 1; r < comm.size(); ++r) {
          per_rank[static_cast<std::size_t>(r)] =
              deserialize_sim_output(comm.recv_bytes(r, kGatherTag));
        }
      } else {
        comm.send_bytes(0, kGatherTag, serialize_sim_output(out));
      }
    } else {
      per_rank[static_cast<std::size_t>(comm.rank())] = std::move(out);
    }
  }, obs);

  // Merge rank outputs into the serial-equivalent view.
  SimOutput merged;
  const auto ticks = static_cast<std::size_t>(config.num_ticks);
  merged.new_infections_per_tick.assign(ticks, 0);
  merged.frontier_edges_per_tick.assign(ticks, 0);
  merged.memory_bytes_per_tick.assign(ticks, 0);
  merged.seconds_per_tick.assign(ticks, 0.0);
  merged.final_states.reserve(network.node_count());
  for (const SimOutput& out : per_rank) {
    EPI_ASSERT(out.new_infections_per_tick.size() == ticks,
               "rank output tick-count mismatch");
    for (std::size_t t = 0; t < ticks; ++t) {
      merged.new_infections_per_tick[t] += out.new_infections_per_tick[t];
      merged.frontier_edges_per_tick[t] += out.frontier_edges_per_tick[t];
      merged.memory_bytes_per_tick[t] += out.memory_bytes_per_tick[t];
      merged.seconds_per_tick[t] =
          std::max(merged.seconds_per_tick[t], out.seconds_per_tick[t]);
    }
    merged.transitions.insert(merged.transitions.end(),
                              out.transitions.begin(), out.transitions.end());
    merged.final_states.insert(merged.final_states.end(),
                               out.final_states.begin(),
                               out.final_states.end());
    merged.total_infections += out.total_infections;
    merged.communication_bytes += out.communication_bytes;
    merged.ghost_exchange_bytes += out.ghost_exchange_bytes;
    merged.work_units += out.work_units;
    merged.max_rank_work_units =
        std::max(merged.max_rank_work_units, out.work_units);
    // Event accounting sums across ranks; tick counters are identical on
    // every rank (skip decisions are min-allreduced), so max == any rank.
    merged.events_scheduled += out.events_scheduled;
    merged.events_fired += out.events_fired;
    merged.events_stale += out.events_stale;
    merged.ticks_skipped = std::max(merged.ticks_skipped, out.ticks_skipped);
    merged.ticks_executed =
        std::max(merged.ticks_executed, out.ticks_executed);
    merged.broadcast_ticks =
        std::max(merged.broadcast_ticks, out.broadcast_ticks);
    merged.ghost_ticks = std::max(merged.ghost_ticks, out.ghost_ticks);
  }
  std::sort(merged.transitions.begin(), merged.transitions.end(),
            [](const TransitionEvent& a, const TransitionEvent& b) {
              return a.tick < b.tick ||
                     (a.tick == b.tick && a.person < b.person);
            });
  return merged;
}

}  // namespace epi
