// Whole-replicate drivers: serial and rank-parallel execution with output
// merging. The parallel driver reproduces the production setup — network
// partitioned ahead of time, one engine instance per rank, per-tick
// infectious-set exchange — and merges the per-rank outputs into the same
// SimOutput a serial run produces (bitwise-identical transitions; the
// equivalence is covered by tests).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "epihiper/simulation.hpp"

namespace epi {

/// Builds a fresh intervention set; called once per rank (interventions
/// carry per-rank state and must not be shared across ranks).
using InterventionFactory =
    std::function<std::vector<std::shared_ptr<Intervention>>()>;

/// Runs one replicate serially.
SimOutput run_simulation(const ContactNetwork& network,
                         const Population& population,
                         const DiseaseModel& model,
                         const SimulationConfig& config,
                         const InterventionFactory& interventions = nullptr);

/// Runs one replicate on `num_ranks` mpilite ranks over `partitioning`
/// (must have exactly num_ranks parts) and merges outputs: transitions
/// sorted by (tick, person), per-tick infection counts summed, per-tick
/// memory summed across ranks, per-tick seconds = max across ranks (the
/// critical path), final states concatenated in person order.
SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions =
                                      nullptr);

/// As above, with observability sinks attached to the mpilite group
/// (per-rank-pair traffic counters, collective-time histograms).
SimOutput run_simulation_parallel(const ContactNetwork& network,
                                  const Population& population,
                                  const DiseaseModel& model,
                                  const SimulationConfig& config,
                                  const Partitioning& partitioning,
                                  int num_ranks,
                                  const InterventionFactory& interventions,
                                  const mpilite::ObsHooks& obs);

}  // namespace epi
