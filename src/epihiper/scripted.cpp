#include "epihiper/scripted.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

namespace {
// Coin purpose namespace for scripted sampling, mixed with the intervention
// name hash and block index so distinct scripts sample independently.
constexpr std::uint64_t kScriptCoin = 0x534352ULL;  // "SCR"

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

/// One element-level (or once-level) operation.
struct ScriptedIntervention::Operation {
  enum class Kind {
    kIsolate,
    kSetTrait,
    kScaleInfectivity,
    kScaleSusceptibility,
    kSetHealthState,
    kSetEdgeActive,
    kScaleEdgeWeight,
    kSetVariable,
  };
  Kind kind;
  Tick isolate_days = 14;
  std::string trait;
  std::uint8_t trait_value = 0;
  double factor = 1.0;
  std::string health_state;  // resolved against the model at apply time
  bool active_value = true;
  std::string variable;
  double variable_value = 0.0;
  bool variable_add = false;

  static Operation parse(const Json& spec, bool edge_context) {
    Operation op;
    if (spec.contains("isolate")) {
      EPI_REQUIRE(!edge_context, "isolate applies to nodes, not edges");
      op.kind = Kind::kIsolate;
      op.isolate_days = static_cast<Tick>(spec.at("isolate").as_int());
      return op;
    }
    if (spec.contains("setTrait")) {
      EPI_REQUIRE(!edge_context, "setTrait applies to nodes");
      op.kind = Kind::kSetTrait;
      op.trait = spec.at("setTrait").as_string();
      op.trait_value = static_cast<std::uint8_t>(spec.at("value").as_int());
      return op;
    }
    if (spec.contains("scale")) {
      const std::string what = spec.at("scale").as_string();
      op.factor = spec.at("factor").as_double();
      if (what == "infectivity") {
        EPI_REQUIRE(!edge_context, "infectivity is a node attribute");
        op.kind = Kind::kScaleInfectivity;
      } else if (what == "susceptibility") {
        EPI_REQUIRE(!edge_context, "susceptibility is a node attribute");
        op.kind = Kind::kScaleSusceptibility;
      } else if (what == "weight") {
        EPI_REQUIRE(edge_context, "weight is an edge attribute");
        op.kind = Kind::kScaleEdgeWeight;
      } else {
        throw ConfigError("unknown scale target: " + what);
      }
      return op;
    }
    if (spec.contains("set")) {
      const std::string what = spec.at("set").as_string();
      if (what == "active") {
        EPI_REQUIRE(edge_context, "active is an edge attribute");
        op.kind = Kind::kSetEdgeActive;
        op.active_value = spec.at("value").as_bool();
      } else if (what == "healthState") {
        EPI_REQUIRE(!edge_context, "healthState is a node attribute");
        op.kind = Kind::kSetHealthState;
        op.health_state = spec.at("value").as_string();
      } else {
        throw ConfigError("unknown set target: " + what);
      }
      return op;
    }
    if (spec.contains("setVariable")) {
      op.kind = Kind::kSetVariable;
      op.variable = spec.at("setVariable").as_string();
      if (spec.contains("add")) {
        op.variable_add = true;
        op.variable_value = spec.at("add").as_double();
      } else {
        op.variable_value = spec.at("value").as_double();
      }
      return op;
    }
    throw ConfigError("unrecognized scripted operation: " + spec.dump());
  }
};

/// One "target set + operations" block of the action ensemble.
struct ScriptedIntervention::ActionBlock {
  enum class Target { kNodes, kEdges, kOnce };
  Target target = Target::kOnce;
  Json filter;  // empty object = everything
  bool has_sampling = false;
  double sample_fraction = 1.0;
  Tick delay = 0;
  std::vector<Operation> operations;
  std::vector<Operation> nonsampled_operations;
  std::size_t index = 0;  // position within the script (sampling key)
};

struct ScriptedIntervention::DelayedBlock {
  Tick due = 0;
  std::size_t block_index = 0;
};

ScriptedIntervention::~ScriptedIntervention() = default;

ScriptedIntervention::ScriptedIntervention(const Json& spec) {
  name_ = spec.get_string("name", "scripted");
  once_ = spec.get_bool("once", false);
  EPI_REQUIRE(spec.contains("trigger"), "scripted intervention needs a trigger");
  trigger_ = spec.at("trigger");
  EPI_REQUIRE(spec.contains("actions"), "scripted intervention needs actions");
  std::size_t index = 0;
  for (const Json& action : spec.at("actions").as_array()) {
    ActionBlock block;
    block.index = index++;
    const std::string target = action.at("target").as_string();
    if (target == "nodes") {
      block.target = ActionBlock::Target::kNodes;
    } else if (target == "edges") {
      block.target = ActionBlock::Target::kEdges;
    } else if (target == "once") {
      block.target = ActionBlock::Target::kOnce;
    } else {
      throw ConfigError("unknown action target: " + target);
    }
    if (action.contains("filter")) block.filter = action.at("filter");
    if (action.contains("sampling")) {
      const Json& sampling = action.at("sampling");
      const std::string kind = sampling.at("type").as_string();
      // Only fraction sampling is supported: an exact "absolute" count
      // would require global coordination that EpiHiper also avoids.
      EPI_REQUIRE(kind == "fraction",
                  "unsupported sampling type: " << kind);
      block.has_sampling = true;
      block.sample_fraction = sampling.at("value").as_double();
      EPI_REQUIRE(block.sample_fraction >= 0.0 && block.sample_fraction <= 1.0,
                  "sampling fraction out of [0,1]");
    }
    block.delay = static_cast<Tick>(action.get_int("delay", 0));
    EPI_REQUIRE(block.delay >= 0, "negative delay");
    const bool edge_context = block.target == ActionBlock::Target::kEdges;
    for (const Json& op : action.at("operations").as_array()) {
      block.operations.push_back(Operation::parse(op, edge_context));
    }
    if (action.contains("nonsampledOperations")) {
      EPI_REQUIRE(block.has_sampling,
                  "nonsampledOperations require sampling");
      for (const Json& op : action.at("nonsampledOperations").as_array()) {
        block.nonsampled_operations.push_back(
            Operation::parse(op, edge_context));
      }
    }
    blocks_.push_back(std::move(block));
  }
}

double ScriptedIntervention::evaluate_value(const Json& value,
                                            Simulation& sim) const {
  if (value.contains("value")) return value.at("value").as_double();
  const std::string var = value.at("var").as_string();
  if (var == "time") return static_cast<double>(sim.tick());
  if (var == "stateCount") {
    const HealthStateId state =
        sim.model().state_id(value.at("state").as_string());
    return static_cast<double>(sim.global_state_count(state));
  }
  if (var == "variable") {
    return sim.variable(value.at("name").as_string());
  }
  throw ConfigError("unknown value variable: " + var);
}

bool ScriptedIntervention::evaluate_predicate(const Json& predicate,
                                              Simulation& sim) const {
  const std::string op = predicate.at("op").as_string();
  if (op == "and" || op == "or") {
    const auto& args = predicate.at("args").as_array();
    EPI_REQUIRE(!args.empty(), "empty boolean argument list");
    for (const Json& arg : args) {
      const bool value = evaluate_predicate(arg, sim);
      if (op == "and" && !value) return false;
      if (op == "or" && value) return true;
    }
    return op == "and";
  }
  if (op == "not") {
    return !evaluate_predicate(predicate.at("arg"), sim);
  }
  const double left = evaluate_value(predicate.at("left"), sim);
  const double right = evaluate_value(predicate.at("right"), sim);
  if (op == ">") return left > right;
  if (op == ">=") return left >= right;
  if (op == "<") return left < right;
  if (op == "<=") return left <= right;
  if (op == "==") return left == right;
  if (op == "!=") return left != right;
  throw ConfigError("unknown trigger operator: " + op);
}

bool ScriptedIntervention::evaluate_trigger(Simulation& sim) const {
  return evaluate_predicate(trigger_, sim);
}

namespace {

bool node_matches(const Json& filter, PersonId p, Simulation& sim) {
  if (!filter.is_object()) return true;
  if (filter.contains("healthState")) {
    if (sim.health(p) !=
        sim.model().state_id(filter.at("healthState").as_string())) {
      return false;
    }
  }
  if (filter.contains("ageGroup")) {
    if (static_cast<int>(sim.population().age_group(p)) !=
        static_cast<int>(filter.at("ageGroup").as_int())) {
      return false;
    }
  }
  if (filter.contains("county")) {
    if (sim.population().person(p).county != filter.at("county").as_int()) {
      return false;
    }
  }
  if (filter.contains("trait")) {
    if (sim.node_trait(filter.at("trait").as_string(), p) !=
        static_cast<std::uint8_t>(filter.at("traitValue").as_int())) {
      return false;
    }
  }
  return true;
}

bool edge_matches(const Json& filter, EdgeIndex e, PersonId target,
                  Simulation& sim) {
  if (!filter.is_object()) return true;
  const Contact& c = sim.network().contact(e);
  if (filter.contains("context")) {
    const ActivityType wanted =
        activity_from_name(filter.at("context").as_string());
    if (static_cast<ActivityType>(c.target_activity) != wanted &&
        static_cast<ActivityType>(c.source_activity) != wanted) {
      return false;
    }
  }
  if (filter.contains("active")) {
    if (sim.edge_active(e) != filter.at("active").as_bool()) return false;
  }
  if (filter.contains("targetHealthState")) {
    if (sim.health(target) !=
        sim.model().state_id(filter.at("targetHealthState").as_string())) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ScriptedIntervention::execute_node_ops(const std::vector<Operation>& ops,
                                            PersonId p,
                                            Simulation& sim) const {
  for (const Operation& op : ops) {
    switch (op.kind) {
      case Operation::Kind::kIsolate:
        sim.isolate(p, sim.tick() + op.isolate_days);
        break;
      case Operation::Kind::kSetTrait:
        sim.set_node_trait(op.trait, p, op.trait_value);
        break;
      case Operation::Kind::kScaleInfectivity:
        sim.scale_infectivity(p, op.factor);
        break;
      case Operation::Kind::kScaleSusceptibility:
        sim.scale_susceptibility(p, op.factor);
        break;
      case Operation::Kind::kSetHealthState:
        sim.force_transition(p, sim.model().state_id(op.health_state));
        break;
      case Operation::Kind::kSetVariable:
        execute_once_ops({op}, sim);
        break;
      default:
        throw ConfigError("edge operation applied to a node target");
    }
  }
}

void ScriptedIntervention::execute_edge_ops(const std::vector<Operation>& ops,
                                            EdgeIndex e,
                                            Simulation& sim) const {
  for (const Operation& op : ops) {
    switch (op.kind) {
      case Operation::Kind::kSetEdgeActive:
        sim.set_edge_active(e, op.active_value);
        break;
      case Operation::Kind::kScaleEdgeWeight:
        sim.scale_edge_weight(e, op.factor);
        break;
      case Operation::Kind::kSetVariable:
        execute_once_ops({op}, sim);
        break;
      default:
        throw ConfigError("node operation applied to an edge target");
    }
  }
}

void ScriptedIntervention::execute_once_ops(const std::vector<Operation>& ops,
                                            Simulation& sim) const {
  for (const Operation& op : ops) {
    EPI_REQUIRE(op.kind == Operation::Kind::kSetVariable,
                "once-target operations must be variable updates");
    const double current = sim.variable(op.variable);
    sim.set_variable(op.variable, op.variable_add
                                      ? current + op.variable_value
                                      : op.variable_value);
  }
}

void ScriptedIntervention::execute_block(const ActionBlock& block,
                                         Simulation& sim) const {
  const std::uint64_t sampling_key =
      kScriptCoin ^ hash_name(name_) ^ (block.index << 32);
  switch (block.target) {
    case ActionBlock::Target::kOnce:
      execute_once_ops(block.operations, sim);
      break;
    case ActionBlock::Target::kNodes:
      for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
        if (!node_matches(block.filter, p, sim)) continue;
        const bool sampled =
            !block.has_sampling ||
            sim.person_coin(p, sampling_key, block.sample_fraction);
        if (sampled) {
          execute_node_ops(block.operations, p, sim);
        } else {
          execute_node_ops(block.nonsampled_operations, p, sim);
        }
      }
      break;
    case ActionBlock::Target::kEdges:
      for (PersonId p = sim.local_begin(); p < sim.local_end(); ++p) {
        const auto [begin, end] = sim.in_edges(p);
        for (EdgeIndex e = begin; e < end; ++e) {
          if (!edge_matches(block.filter, e, p, sim)) continue;
          bool sampled = true;
          if (block.has_sampling) {
            // Key on the unordered endpoint pair so both directions of a
            // contact make the same draw on any partitioning.
            const PersonId src = sim.network().contact(e).source;
            const PersonId lo = std::min(p, src);
            const PersonId hi = std::max(p, src);
            Rng edge_rng =
                Rng(sim.config().seed).derive({sampling_key, lo, hi});
            sampled = edge_rng.bernoulli(block.sample_fraction);
          }
          if (sampled) {
            execute_edge_ops(block.operations, e, sim);
          } else {
            execute_edge_ops(block.nonsampled_operations, e, sim);
          }
        }
      }
      break;
  }
}

void ScriptedIntervention::apply(Simulation& sim) {
  // Execute any delayed blocks that have come due.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->due <= sim.tick()) {
      execute_block(blocks_[it->block_index], sim);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (exhausted_) return;
  if (!evaluate_trigger(sim)) return;
  ++fired_;
  if (once_) exhausted_ = true;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].delay > 0) {
      pending_.push_back(DelayedBlock{sim.tick() + blocks_[i].delay, i});
    } else {
      execute_block(blocks_[i], sim);
    }
  }
}

std::shared_ptr<ScriptedIntervention> make_initialization(
    const Json& actions, Tick when, const std::string& name) {
  JsonObject spec;
  spec["name"] = name;
  spec["once"] = true;
  JsonObject trigger;
  trigger["op"] = ">=";
  JsonObject left;
  left["var"] = "time";
  trigger["left"] = Json(std::move(left));
  JsonObject right;
  right["value"] = static_cast<double>(when);
  trigger["right"] = Json(std::move(right));
  spec["trigger"] = Json(std::move(trigger));
  spec["actions"] = actions;
  return std::make_shared<ScriptedIntervention>(Json(std::move(spec)));
}

}  // namespace epi
