// JSON-scripted interventions: the generic trigger + action-ensemble
// machinery of Appendix D.
//
// "An intervention comprises of a trigger and an action ensemble. The
// action ensemble is only applied if the trigger evaluates to true. ...
// An action ensemble operates on a target set which may contain either
// nodes or edges. Operations may be performed: (i) once per intervention
// (typically to update variables), (ii) for each element within the
// target set, and (iii) for a sampled subset, as well as for the remaining
// non-sampled elements ... it is possible to delay the operation to a
// later point in the simulation."
//
// The accessible state values follow Table V: system.time, node.id /
// healthState / infectivity / susceptibility / nodeTrait[...], edge
// endpoints / activities / active / weight, and user-defined variables.
//
// Example (a triggered partial closure):
//   {
//     "type": "scripted",
//     "name": "surge-closure",
//     "once": true,
//     "trigger": {"op": ">=",
//                 "left": {"var": "stateCount", "state": "Symptomatic"},
//                 "right": {"value": 50}},
//     "actions": [
//       {"target": "edges",
//        "filter": {"context": "work"},
//        "sampling": {"type": "fraction", "value": 0.5},
//        "operations": [{"set": "active", "value": false}],
//        "nonsampledOperations": [{"scale": "weight", "factor": 0.5}]},
//       {"target": "nodes",
//        "filter": {"healthState": "Symptomatic"},
//        "delay": 2,
//        "operations": [{"isolate": 14},
//                       {"setTrait": "flagged", "value": 1}]},
//       {"target": "once",
//        "operations": [{"setVariable": "closures", "add": 1}]}
//     ]
//   }
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "epihiper/simulation.hpp"
#include "util/json.hpp"

namespace epi {

/// A scripted intervention parsed from JSON. Deterministic and
/// partition-invariant: element sampling is keyed on person/edge-pair
/// identity, never on iteration order.
class ScriptedIntervention : public Intervention {
 public:
  /// Parses the spec; throws ConfigError on malformed scripts. `spec` is
  /// the object documented above (the "type" member is optional here).
  explicit ScriptedIntervention(const Json& spec);
  ~ScriptedIntervention() override;  // defined where ActionBlock is complete

  std::string name() const override { return name_; }
  void apply(Simulation& sim) override;

  /// How many times the trigger has fired.
  std::uint64_t fired_count() const { return fired_; }

 private:
  struct Operation;
  struct ActionBlock;
  struct DelayedBlock;

  bool evaluate_trigger(Simulation& sim) const;
  double evaluate_value(const Json& value, Simulation& sim) const;
  bool evaluate_predicate(const Json& predicate, Simulation& sim) const;
  void execute_block(const ActionBlock& block, Simulation& sim) const;
  void execute_node_ops(const std::vector<Operation>& ops, PersonId p,
                        Simulation& sim) const;
  void execute_edge_ops(const std::vector<Operation>& ops, EdgeIndex e,
                        Simulation& sim) const;
  void execute_once_ops(const std::vector<Operation>& ops,
                        Simulation& sim) const;

  std::string name_;
  bool once_ = false;
  Json trigger_;
  std::vector<ActionBlock> blocks_;
  std::vector<DelayedBlock> pending_;
  std::uint64_t fired_ = 0;
  bool exhausted_ = false;
};

/// Initialization is "a special case of an intervention where the trigger
/// is omitted" (Appendix D): builds a scripted intervention whose actions
/// run exactly once at tick `when`.
std::shared_ptr<ScriptedIntervention> make_initialization(
    const Json& actions, Tick when = 0, const std::string& name = "init");

}  // namespace epi
