#include "epihiper/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace epi {

namespace {
// RNG purpose labels: distinct streams per decision kind.
constexpr std::uint64_t kPurposeTransmission = 0x5452414eULL;  // "TRAN"
constexpr std::uint64_t kPurposeProgression = 0x50524f47ULL;   // "PROG"
constexpr std::uint64_t kPurposeSeed = 0x53454544ULL;          // "SEED"
constexpr std::uint64_t kPurposeCoin = 0x434f494eULL;          // "COIN"
constexpr int kTagIsolation = 7;

// kAdaptive density switch: broadcast when global_infectious * kAdaptiveDenom
// >= network nodes (i.e. >= 2% of persons infectious). Above that density
// the push frontier approaches every edge anyway and its enumerate+sort
// overhead loses to the branch-light full rescan; below it the frontier
// wins outright. The decision input is an allreduced count, so every rank
// switches on the same tick.
constexpr std::int64_t kAdaptiveDenom = 50;

/// Wire format of the owner-routed isolation requests.
struct IsolationRequest {
  PersonId person;
  Tick until;
};
static_assert(std::is_trivially_copyable_v<IsolationRequest>);
}  // namespace

const char* exchange_mode_name(ExchangeMode mode) {
  switch (mode) {
    case ExchangeMode::kGhostDelta: return "ghost";
    case ExchangeMode::kBroadcast: return "broadcast";
    case ExchangeMode::kEvent: return "event";
    case ExchangeMode::kAdaptive: return "adaptive";
  }
  return "unknown";
}

ExchangeMode parse_exchange_mode(std::string_view name) {
  if (name == "ghost") return ExchangeMode::kGhostDelta;
  if (name == "broadcast") return ExchangeMode::kBroadcast;
  if (name == "event") return ExchangeMode::kEvent;
  if (name == "adaptive") return ExchangeMode::kAdaptive;
  EPI_REQUIRE(false, "unknown exchange mode '"
                         << name
                         << "' (expected broadcast|ghost|event|adaptive)");
  return ExchangeMode::kGhostDelta;  // unreachable
}

ExchangeMode default_exchange_mode() {
  const char* value = env_raw("EPI_EXCHANGE");
  if (value == nullptr || value[0] == '\0') return ExchangeMode::kGhostDelta;
  return parse_exchange_mode(value);
}

Tick Intervention::quiescent_until(const Simulation& sim) const {
  return sim.tick() + 1;  // conservative: may act every tick
}

Simulation::Simulation(const ContactNetwork& network,
                       const Population& population, const DiseaseModel& model,
                       SimulationConfig config, mpilite::Comm* comm,
                       const Partitioning* partitioning)
    : network_(network),
      population_(population),
      model_(model),
      config_(std::move(config)),
      comm_(comm) {
  EPI_REQUIRE(network_.node_count() == population_.person_count(),
              "network and population disagree on person count");
  model_.validate();
  EPI_REQUIRE(config_.num_ticks > 0, "simulation needs at least one tick");
  EPI_REQUIRE((comm_ == nullptr) == (partitioning == nullptr),
              "parallel runs need both a communicator and a partitioning");

  if (comm_ != nullptr) {
    EPI_REQUIRE(partitioning->size() == static_cast<std::size_t>(comm_->size()),
                "partition count must equal rank count");
    const Partition& mine =
        partitioning->part(static_cast<std::size_t>(comm_->rank()));
    local_begin_ = mine.node_begin;
    local_end_ = mine.node_end;
    partitioning_ = partitioning;
    edge_offset_ = mine.edge_begin;
    edge_active_.assign(mine.edge_count(), 1);
  } else {
    local_begin_ = 0;
    local_end_ = network_.node_count();
    edge_offset_ = 0;
    edge_active_.assign(network_.edge_count(), 1);
  }

  const std::size_t local_count = local_end_ - local_begin_;
  nodes_.resize(local_count);
  for (auto& node : nodes_) {
    node.health = model_.initial_state();
  }
  isolated_until_.assign(local_count, -1);
  stay_home_.assign(local_count, 0);
  entered_by_state_.resize(model_.state_count());
  local_state_counts_.assign(model_.state_count(), 0);
  local_state_counts_[model_.initial_state()] =
      static_cast<std::int64_t>(local_count);

  local_infectious_pos_.assign(local_count, 0);
  if (model_.state(model_.initial_state()).infectious()) {
    local_infectious_.reserve(local_count);
    for (PersonId p = local_begin_; p < local_end_; ++p) {
      local_infectious_.push_back(p);
      local_infectious_pos_[p - local_begin_] =
          static_cast<std::uint32_t>(local_infectious_.size());
    }
  }

  event_driven_ = config_.exchange == ExchangeMode::kEvent ||
                  config_.exchange == ExchangeMode::kAdaptive;
  if (config_.exchange == ExchangeMode::kBroadcast) {
    // The legacy kernel's person-indexed lookup spans the whole network —
    // the O(network nodes)-per-rank cost the ghost halo replaces. Under
    // kAdaptive it is allocated lazily on the first broadcast tick.
    infectious_lookup_.assign(network_.node_count(), 0);
  } else if (comm_ != nullptr) {
    build_ghost_plan(*partitioning);
  }

  // Pending-seed schedule for the quiescence scan: ascending unique ticks.
  for (const SeedSpec& spec : config_.seeds) {
    seed_ticks_.push_back(spec.tick);
  }
  std::sort(seed_ticks_.begin(), seed_ticks_.end());
  seed_ticks_.erase(std::unique(seed_ticks_.begin(), seed_ticks_.end()),
                    seed_ticks_.end());

  static_assert(std::is_trivially_copyable_v<InfectiousInfo> &&
                    sizeof(InfectiousInfo) == 12,
                "InfectiousInfo is a packed wire struct");

  // Dense (from-state, source-state) -> transmission lookup for the hot
  // propensity loop.
  const std::size_t s = model_.state_count();
  transmission_to_.assign(s * s, kNoState);
  transmission_omega_.assign(s * s, 0.0);
  for (const Transmission& t : model_.transmissions()) {
    transmission_to_[t.from * s + t.source] = t.to;
    transmission_omega_[t.from * s + t.source] = t.omega;
  }
}

void Simulation::build_ghost_plan(const Partitioning& partitioning) {
  // Ghosts: the exact remote persons this rank needs infectious records
  // for — sources of its in-edges owned elsewhere (the partition halo).
  ghost_persons_ = compute_ghost_sources(
      network_, partitioning, static_cast<std::size_t>(comm_->rank()));
  ghost_records_.resize(ghost_persons_.size());
  for (std::size_t i = 0; i < ghost_persons_.size(); ++i) {
    ghost_records_[i].person = ghost_persons_[i];
  }
  ghost_active_pos_.assign(ghost_persons_.size(), 0);

  // Tell each owner which of its persons we want (one-time handshake);
  // the inbound want-lists become this rank's subscriber index.
  std::vector<std::vector<PersonId>> want(
      static_cast<std::size_t>(comm_->size()));
  for (const PersonId g : ghost_persons_) {
    want[partitioning.partition_of(g)].push_back(g);
  }
  const auto inbox = comm_->alltoallv(want);

  const std::size_t local_count = local_end_ - local_begin_;
  subscriber_offsets_.assign(local_count + 1, 0);
  for (const auto& wanted : inbox) {
    for (const PersonId p : wanted) {
      EPI_ASSERT(is_local(p), "subscriber handshake wants a non-local person");
      ++subscriber_offsets_[p - local_begin_ + 1];
    }
  }
  for (std::size_t i = 0; i < local_count; ++i) {
    subscriber_offsets_[i + 1] += subscriber_offsets_[i];
  }
  subscriber_ranks_.resize(subscriber_offsets_[local_count]);
  std::vector<std::uint64_t> cursor(subscriber_offsets_.begin(),
                                    subscriber_offsets_.end() - 1);
  for (std::size_t s = 0; s < inbox.size(); ++s) {
    for (const PersonId p : inbox[s]) {
      subscriber_ranks_[cursor[p - local_begin_]++] =
          static_cast<std::int32_t>(s);
    }
  }
  delta_outbox_.resize(static_cast<std::size_t>(comm_->size()));
}

Simulation::InfectiousInfo Simulation::infectious_record(PersonId p) const {
  const NodeState& node = nodes_[p - local_begin_];
  InfectiousInfo info;
  info.person = p;
  info.state = node.health;
  info.infectivity_scale = node.infectivity_scale;
  info.isolated = is_isolated(p) ? 1 : 0;
  info.stay_home = stay_home_[p - local_begin_];
  return info;
}

void Simulation::add_intervention(std::shared_ptr<Intervention> intervention) {
  EPI_REQUIRE(intervention != nullptr, "null intervention");
  interventions_.push_back(std::move(intervention));
}

Rng Simulation::person_rng(PersonId p) const {
  return Rng(config_.seed)
      .derive({config_.replicate, p, static_cast<std::uint64_t>(tick_)});
}

bool Simulation::person_coin(PersonId p, std::uint64_t purpose,
                             double probability) const {
  Rng rng =
      Rng(config_.seed).derive({kPurposeCoin, config_.replicate, p, purpose});
  return rng.bernoulli(probability);
}

HealthStateId Simulation::health(PersonId p) const {
  EPI_REQUIRE(is_local(p), "health() is local-only; person " << p);
  return nodes_[p - local_begin_].health;
}

const std::vector<PersonId>& Simulation::entered_this_tick(
    HealthStateId state) const {
  EPI_REQUIRE(state < entered_by_state_.size(), "unknown state " << state);
  return entered_by_state_[state];
}

std::int64_t Simulation::global_state_count(HealthStateId state) {
  EPI_REQUIRE(state < model_.state_count(), "unknown state " << state);
  if (!cached_global_counts_.has_value()) {
    if (comm_ == nullptr) {
      cached_global_counts_ = local_state_counts_;
    } else {
      // Exact integer sum: the double path loses precision above 2^53,
      // which population-scale occupancy counts can exceed.
      cached_global_counts_ = comm_->allreduce(
          std::span<const std::int64_t>(local_state_counts_),
          mpilite::ReduceOp::kSum);
    }
  }
  return (*cached_global_counts_)[state];
}

void Simulation::set_edge_active(EdgeIndex e, bool active) {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  edge_active_[e - edge_offset_] = active ? 1 : 0;
  intervention_log_bytes_ += sizeof(EdgeIndex) + 1;  // scheduled-change log
}

void Simulation::scale_edge_weight(EdgeIndex e, double factor) {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  if (edge_weight_scale_.empty()) {
    edge_weight_scale_.assign(edge_active_.size(), 1.0f);
  }
  edge_weight_scale_[e - edge_offset_] *= static_cast<float>(factor);
  intervention_log_bytes_ += sizeof(EdgeIndex) + sizeof(float);
}

double Simulation::edge_weight_scale(EdgeIndex e) const {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  return edge_weight_scale_.empty()
             ? 1.0
             : edge_weight_scale_[e - edge_offset_];
}

void Simulation::force_transition(PersonId p, HealthStateId new_state) {
  EPI_REQUIRE(is_local(p), "force_transition is local-only; person " << p);
  EPI_REQUIRE(new_state < model_.state_count(), "unknown state " << new_state);
  if (nodes_[p - local_begin_].health == new_state) return;
  transition_person(p, new_state, kNoPerson);
}

void Simulation::set_context_closed(ActivityType context, bool closed) {
  context_closed_[static_cast<std::size_t>(context)] = closed;
}

bool Simulation::context_closed(ActivityType context) const {
  return context_closed_[static_cast<std::size_t>(context)];
}

void Simulation::isolate(PersonId p, Tick until) {
  if (is_local(p)) {
    Tick& slot = isolated_until_[p - local_begin_];
    slot = std::max(slot, until);
    // Scheduled-change accounting: an isolation schedules a deactivation
    // and a reactivation record for each of the person's contacts (the
    // deferred action lists that make intervention-heavy runs grow in
    // memory, Fig 10).
    intervention_log_bytes_ +=
        2 * (network_.in_end(p) - network_.in_begin(p)) *
        (sizeof(EdgeIndex) + sizeof(Tick));
  } else {
    pending_remote_isolations_.emplace_back(p, until);
  }
}

bool Simulation::is_isolated(PersonId p) const {
  EPI_REQUIRE(is_local(p), "is_isolated() is local-only; person " << p);
  return isolated_until_[p - local_begin_] >= tick_;
}

void Simulation::set_stay_home_compliant(PersonId p, bool compliant) {
  EPI_REQUIRE(is_local(p), "stay-home compliance is local-only");
  stay_home_[p - local_begin_] = compliant ? 1 : 0;
}

void Simulation::set_stay_home_active(bool active) {
  stay_home_active_ = active;
}

void Simulation::scale_infectivity(PersonId p, double factor) {
  EPI_REQUIRE(is_local(p), "scale_infectivity is local-only");
  nodes_[p - local_begin_].infectivity_scale *= static_cast<float>(factor);
}

void Simulation::scale_susceptibility(PersonId p, double factor) {
  EPI_REQUIRE(is_local(p), "scale_susceptibility is local-only");
  nodes_[p - local_begin_].susceptibility_scale *= static_cast<float>(factor);
}

void Simulation::set_node_trait(const std::string& trait, PersonId p,
                                std::uint8_t v) {
  EPI_REQUIRE(is_local(p), "node traits are local-only");
  auto [it, inserted] = node_traits_.try_emplace(trait);
  if (inserted) it->second.assign(local_end_ - local_begin_, 0);
  it->second[p - local_begin_] = v;
}

std::uint8_t Simulation::node_trait(const std::string& trait,
                                    PersonId p) const {
  EPI_REQUIRE(is_local(p), "node traits are local-only");
  const auto it = node_traits_.find(trait);
  if (it == node_traits_.end()) return 0;
  return it->second[p - local_begin_];
}

void Simulation::set_variable(const std::string& name, double value) {
  variables_[name] = value;
}

double Simulation::variable(const std::string& name) const {
  const auto it = variables_.find(name);
  return it == variables_.end() ? 0.0 : it->second;
}

std::pair<EdgeIndex, EdgeIndex> Simulation::in_edges(PersonId p) const {
  EPI_REQUIRE(is_local(p), "in_edges is local-only; person " << p);
  return {network_.in_begin(p), network_.in_end(p)};
}

bool Simulation::edge_transmissible(EdgeIndex e, PersonId target,
                                    bool source_isolated,
                                    bool source_stay_home) const {
  if (edge_active_[e - edge_offset_] == 0) return false;
  const Contact& c = network_.contact(e);
  const auto target_context = static_cast<ActivityType>(c.target_activity);
  const auto source_context = static_cast<ActivityType>(c.source_activity);
  if (context_closed(target_context) || context_closed(source_context)) {
    return false;
  }
  const bool home_edge = target_context == ActivityType::kHome &&
                         source_context == ActivityType::kHome;
  if (home_edge) return true;
  if (is_isolated(target) || source_isolated) return false;
  if (stay_home_active_ &&
      (stay_home_[target - local_begin_] != 0 || source_stay_home)) {
    return false;
  }
  return true;
}

std::uint64_t Simulation::memory_footprint_bytes() const {
  std::uint64_t bytes = 0;
  bytes += nodes_.capacity() * sizeof(NodeState);
  bytes += edge_active_.capacity();
  bytes += edge_weight_scale_.capacity() * sizeof(float);
  bytes += isolated_until_.capacity() * sizeof(Tick);
  bytes += stay_home_.capacity();
  // Broadcast mode: the O(network nodes) lookup plus the full gathered
  // infectious set. Ghost mode: halo-sized structures only.
  bytes += infectious_lookup_.capacity() * sizeof(std::uint32_t);
  bytes += global_infectious_.capacity() * sizeof(InfectiousInfo);
  bytes += local_infectious_.capacity() * sizeof(PersonId);
  bytes += local_infectious_pos_.capacity() * sizeof(std::uint32_t);
  bytes += ghost_persons_.capacity() * sizeof(PersonId);
  bytes += ghost_records_.capacity() * sizeof(InfectiousInfo);
  bytes += ghost_active_.capacity() * sizeof(std::uint32_t);
  bytes += ghost_active_pos_.capacity() * sizeof(std::uint32_t);
  bytes += subscriber_offsets_.capacity() * sizeof(std::uint64_t);
  bytes += subscriber_ranks_.capacity() * sizeof(std::int32_t);
  bytes += advertised_.capacity() * sizeof(InfectiousInfo);
  // Event-driven core: the timed-event heap plus the per-tick SoA record
  // slots of the transmission kernels.
  bytes += event_queue_.memory_bytes();
  bytes += slot_person_.capacity() * sizeof(PersonId);
  bytes += slot_iota_.capacity() * sizeof(double);
  bytes += slot_state_.capacity() * sizeof(HealthStateId);
  bytes += slot_isolated_.capacity() + slot_stay_home_.capacity();
  for (const auto& [name, values] : node_traits_) {
    bytes += values.capacity();
  }
  // The transition log is NOT counted: production EpiHiper streams state
  // transitions to the (Lustre) output file as they happen, so resident
  // memory is the network-proportional base plus the scheduled
  // intervention changes — exactly the Fig 10 decomposition.
  bytes += intervention_log_bytes_;
  return bytes;
}

void Simulation::transition_person(PersonId p, HealthStateId new_state,
                                   PersonId cause) {
  NodeState& node = nodes_[p - local_begin_];
  const HealthStateId old_state = node.health;
  --local_state_counts_[old_state];
  ++local_state_counts_[new_state];
  node.health = new_state;
  node.next_transition_tick = -1;
  node.next_state = kNoState;
  entered_by_state_[new_state].push_back(p);
  // Keep the infectious set incremental: O(1) membership updates here
  // instead of a full person scan every tick.
  const bool was_infectious = model_.state(old_state).infectious();
  const bool now_infectious = model_.state(new_state).infectious();
  if (was_infectious != now_infectious) {
    const std::size_t li = p - local_begin_;
    if (now_infectious) {
      local_infectious_.push_back(p);
      local_infectious_pos_[li] =
          static_cast<std::uint32_t>(local_infectious_.size());
    } else {
      const std::uint32_t pos = local_infectious_pos_[li] - 1;
      const PersonId moved = local_infectious_.back();
      local_infectious_[pos] = moved;
      local_infectious_pos_[moved - local_begin_] = pos + 1;
      local_infectious_.pop_back();
      local_infectious_pos_[li] = 0;
    }
  }
  if (config_.record_transitions) {
    output_.transitions.push_back(TransitionEvent{tick_, p, new_state, cause});
  }
  if (cause != kNoPerson) {
    ++output_.total_infections;
    ++output_.new_infections_per_tick.back();
  }
  // Schedule the within-host progression out of the new state.
  Rng rng = person_rng(p).derive({kPurposeProgression});
  HealthStateId next = kNoState;
  Tick dwell = 0;
  if (model_.sample_progression(new_state, population_.age_group(p), rng,
                                &next, &dwell)) {
    node.next_transition_tick = tick_ + dwell;
    node.next_state = next;
    // Event-driven core: the progression becomes a timed event. A
    // superseded earlier event for p (this transition pre-empted it) stays
    // queued and is shed lazily when popped (next_transition_tick no
    // longer matches).
    if (event_driven_) {
      event_queue_.schedule(node.next_transition_tick,
                            EventKind::kProgression, p);
      ++output_.events_scheduled;
    }
  }
}

void Simulation::seed_infections() {
  for (const SeedSpec& spec : config_.seeds) {
    if (spec.tick != tick_ || spec.count == 0) continue;
    // Rank local candidates by a per-person hash so the global selection is
    // identical for any partitioning.
    std::vector<std::pair<std::uint64_t, PersonId>> candidates;
    for (PersonId p = local_begin_; p < local_end_; ++p) {
      if (population_.person(p).county != spec.county) continue;
      if (nodes_[p - local_begin_].health != model_.initial_state()) continue;
      const std::uint64_t h = mix_labels(
          config_.seed, {kPurposeSeed, config_.replicate, spec.county, p,
                         static_cast<std::uint64_t>(tick_)});
      candidates.emplace_back(h, p);
    }
    std::sort(candidates.begin(), candidates.end());
    if (candidates.size() > spec.count) candidates.resize(spec.count);
    if (comm_ != nullptr) {
      // Merge the per-rank shortlists and keep the global top `count`.
      std::vector<std::uint64_t> flat;
      flat.reserve(candidates.size() * 2);
      for (const auto& [h, p] : candidates) {
        flat.push_back(h);
        flat.push_back(p);
      }
      const auto merged = comm_->allgatherv(flat);
      candidates.clear();
      for (std::size_t i = 0; i + 1 < merged.size(); i += 2) {
        candidates.emplace_back(merged[i],
                                static_cast<PersonId>(merged[i + 1]));
      }
      std::sort(candidates.begin(), candidates.end());
      if (candidates.size() > spec.count) candidates.resize(spec.count);
    }
    for (const auto& [h, p] : candidates) {
      if (is_local(p)) transition_person(p, model_.seed_state(), kNoPerson);
    }
  }
}

void Simulation::exchange_remote_isolation_requests() {
  if (comm_ == nullptr) {
    EPI_ASSERT(pending_remote_isolations_.empty(),
               "remote isolation queued in a serial run");
    return;
  }
  // Route each request to the owner rank as typed POD records (no uint64
  // flattening round-trip; half the bytes of the old encoding).
  std::vector<std::vector<IsolationRequest>> outbox(
      static_cast<std::size_t>(comm_->size()));
  for (const auto& [person, until] : pending_remote_isolations_) {
    const std::size_t owner = partitioning_->partition_of(person);
    outbox[owner].push_back(IsolationRequest{person, until});
  }
  pending_remote_isolations_.clear();
  const auto inbox = comm_->alltoallv(outbox);
  for (const auto& messages : inbox) {
    for (const IsolationRequest& request : messages) {
      EPI_ASSERT(is_local(request.person), "misrouted isolation request");
      isolate(request.person, request.until);
    }
  }
}

void Simulation::step_transmissions() {
  // Snapshot the local infectious records in ascending person order (the
  // order the legacy full scan produced them in), shared by all kernels.
  sorted_infectious_scratch_.assign(local_infectious_.begin(),
                                    local_infectious_.end());
  std::sort(sorted_infectious_scratch_.begin(),
            sorted_infectious_scratch_.end());
  tick_records_.clear();
  for (const PersonId p : sorted_infectious_scratch_) {
    tick_records_.push_back(infectious_record(p));
  }
  switch (config_.exchange) {
    case ExchangeMode::kBroadcast:
      step_transmissions_broadcast();
      break;
    case ExchangeMode::kGhostDelta:
    case ExchangeMode::kEvent:
      step_transmissions_frontier();
      break;
    case ExchangeMode::kAdaptive:
      step_transmissions_adaptive();
      break;
  }
}

void Simulation::step_transmissions_adaptive() {
  // Deterministic density switch: identical on every rank because the
  // input is an allreduced global count, never rank-local state.
  std::int64_t global_infectious =
      static_cast<std::int64_t>(local_infectious_.size());
  if (comm_ != nullptr) {
    global_infectious =
        comm_->allreduce(global_infectious, mpilite::ReduceOp::kSum);
  }
  const bool use_broadcast =
      global_infectious * kAdaptiveDenom >=
      static_cast<std::int64_t>(network_.node_count());
  if (metrics_ != nullptr) {
    metrics_->add(use_broadcast ? "epihiper.adaptive_broadcast_ticks"
                                : "epihiper.adaptive_ghost_ticks");
  }
  if (use_broadcast) {
    ++output_.broadcast_ticks;
    if (infectious_lookup_.empty()) {
      infectious_lookup_.assign(network_.node_count(), 0);
    }
    // No deltas flow this tick, so whatever subscribers last saw is stale
    // from here on; the next ghost tick must resync from scratch.
    ghost_halo_synced_ = false;
    step_transmissions_broadcast();
  } else {
    ++output_.ghost_ticks;
    if (!ghost_halo_synced_) {
      reset_ghost_halo();
      ghost_halo_synced_ = true;
    }
    step_transmissions_frontier();
  }
}

void Simulation::reset_ghost_halo() {
  advertised_.clear();
  for (const std::uint32_t gi : ghost_active_) {
    ghost_active_pos_[gi] = 0;
  }
  ghost_active_.clear();
  for (std::size_t i = 0; i < ghost_records_.size(); ++i) {
    InfectiousInfo blank;
    blank.person = ghost_persons_[i];
    ghost_records_[i] = blank;  // state == kNoState: absent
  }
}

void Simulation::build_record_soa(const std::vector<InfectiousInfo>& records) {
  const std::size_t n = records.size();
  slot_person_.resize(n);
  slot_iota_.resize(n);
  slot_state_.resize(n);
  slot_isolated_.resize(n);
  slot_stay_home_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const InfectiousInfo& rec = records[i];
    slot_person_[i] = rec.person;
    slot_state_[i] = rec.state;
    // Same double arithmetic the AoS loop performed per candidate edge:
    // (double) state infectivity x (float->double) dynamic scale.
    slot_iota_[i] =
        model_.state(rec.state).infectivity * rec.infectivity_scale;
    slot_isolated_[i] = rec.isolated;
    slot_stay_home_[i] = rec.stay_home;
  }
}

void Simulation::finish_candidate(PersonId p, double rate_sum) {
  const double rate = model_.transmissibility() * rate_sum;
  if (rate <= 0.0) return;
  // Gillespie: exponential waiting time against the one-tick interval;
  // the causing contact is drawn proportionally to its propensity.
  Rng rng = person_rng(p).derive({kPurposeTransmission});
  if (rng.exponential(rate) >= 1.0) return;
  const std::uint32_t slot = candidate_slots_[rng.discrete(candidate_rho_)];
  const HealthStateId to =
      transmission_to_[nodes_[p - local_begin_].health * model_.state_count() +
                       slot_state_[slot]];
  transition_person(p, to, slot_person_[slot]);
}

void Simulation::step_transmissions_broadcast() {
  // Legacy kernel: every rank receives every rank's infectious records and
  // rescans all of its persons and in-edges.
  for (const InfectiousInfo& info : global_infectious_) {
    infectious_lookup_[info.person] = 0;
  }
  if (comm_ != nullptr) {
    global_infectious_ = comm_->allgatherv(tick_records_);
  } else {
    global_infectious_.assign(tick_records_.begin(), tick_records_.end());
  }
  for (std::size_t i = 0; i < global_infectious_.size(); ++i) {
    infectious_lookup_[global_infectious_[i].person] =
        static_cast<std::uint32_t>(i + 1);
  }
  if (global_infectious_.empty()) return;
  build_record_soa(global_infectious_);

  const std::size_t state_count = model_.state_count();
  const bool weights_scaled = !edge_weight_scale_.empty();
  std::uint64_t work = 0;
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    const NodeState& node = nodes_[p - local_begin_];
    const HealthState& state = model_.state(node.health);
    ++work;
    if (!state.susceptible()) continue;
    const std::uint64_t degree = network_.in_end(p) - network_.in_begin(p);
    work += degree;
    output_.frontier_edges_per_tick.back() += degree;
    candidate_edges_.clear();
    candidate_rho_.clear();
    candidate_slots_.clear();
    const std::size_t omega_row = node.health * state_count;
    const double sigma = state.susceptibility * node.susceptibility_scale;
    double rate_sum = 0.0;
    for (EdgeIndex e = network_.in_begin(p); e < network_.in_end(p); ++e) {
      const Contact& c = network_.contact(e);
      const std::uint32_t slot = infectious_lookup_[c.source];
      if (slot == 0) continue;
      const double omega = transmission_omega_[omega_row + slot_state_[slot - 1]];
      if (omega <= 0.0) continue;
      if (!edge_transmissible(e, p, slot_isolated_[slot - 1] != 0,
                              slot_stay_home_[slot - 1] != 0)) {
        continue;
      }
      // Eq (1): rho = T * w_e * sigma(Ps) * iota(Pi) * omega, with contact
      // duration T expressed as a fraction of the one-day tick and w_e the
      // static weight times any dynamic scaling. sigma is loop-invariant
      // and hoisted; its operand position in the product is unchanged, so
      // every rho is the bit-identical double the per-edge form produced.
      const double duration_fraction = c.duration_minutes / 1440.0;
      const double weight =
          weights_scaled ? c.weight * edge_weight_scale_[e - edge_offset_]
                         : c.weight;
      const double rho =
          duration_fraction * weight * sigma * slot_iota_[slot - 1] * omega;
      if (rho <= 0.0) continue;
      rate_sum += rho;
      candidate_edges_.push_back(e);
      candidate_rho_.push_back(rho);
      candidate_slots_.push_back(slot - 1);
    }
    finish_candidate(p, rate_sum);
  }
  output_.work_units += work;
}

void Simulation::exchange_ghost_deltas() {
  // Records this rank must advertise: its infectious persons that appear
  // as ghosts somewhere (subscriber list non-empty). tick_records_ holds
  // the local records in ascending person order at this point.
  current_advert_.clear();
  for (const InfectiousInfo& rec : tick_records_) {
    const std::size_t li = rec.person - local_begin_;
    if (subscriber_offsets_[li + 1] > subscriber_offsets_[li]) {
      current_advert_.push_back(rec);
    }
  }

  for (auto& box : delta_outbox_) box.clear();
  const auto send_to_subscribers = [&](const InfectiousInfo& rec) {
    const std::size_t li = rec.person - local_begin_;
    for (std::uint64_t s = subscriber_offsets_[li];
         s < subscriber_offsets_[li + 1]; ++s) {
      delta_outbox_[static_cast<std::size_t>(subscriber_ranks_[s])].push_back(
          rec);
    }
  };
  // Merge-diff against what subscribers last saw (both lists sorted by
  // person): new records and field changes go out as upserts; records that
  // vanished go out as tombstones (state == kNoState). Field changes cover
  // isolation expiry and infectivity rescaling while a person stays
  // infectious — correctness depends on them, not just on became/left.
  std::size_t a = 0;
  std::size_t c = 0;
  while (a < advertised_.size() || c < current_advert_.size()) {
    if (a == advertised_.size() ||
        (c < current_advert_.size() &&
         current_advert_[c].person < advertised_[a].person)) {
      send_to_subscribers(current_advert_[c]);
      ++c;
    } else if (c == current_advert_.size() ||
               advertised_[a].person < current_advert_[c].person) {
      InfectiousInfo tombstone;
      tombstone.person = advertised_[a].person;
      send_to_subscribers(tombstone);
      ++a;
    } else {
      const InfectiousInfo& was = advertised_[a];
      const InfectiousInfo& now = current_advert_[c];
      if (was.state != now.state ||
          was.infectivity_scale != now.infectivity_scale ||
          was.isolated != now.isolated || was.stay_home != now.stay_home) {
        send_to_subscribers(now);
      }
      ++a;
      ++c;
    }
  }
  advertised_.assign(current_advert_.begin(), current_advert_.end());

  std::uint64_t delta_bytes = 0;
  for (const auto& box : delta_outbox_) {
    delta_bytes += box.size() * sizeof(InfectiousInfo);
  }
  output_.ghost_exchange_bytes += delta_bytes;
  if (metrics_ != nullptr) {
    metrics_->add("epihiper.ghost_delta_bytes", delta_bytes);
  }

  // Unconditional collective: every rank calls alltoallv every tick even
  // with an empty outbox (mpilite collectives are lockstep).
  const auto inbox = comm_->alltoallv(delta_outbox_);
  for (const auto& messages : inbox) {
    for (const InfectiousInfo& rec : messages) {
      const auto it = std::lower_bound(ghost_persons_.begin(),
                                       ghost_persons_.end(), rec.person);
      EPI_ASSERT(it != ghost_persons_.end() && *it == rec.person,
                 "ghost delta for a person this rank never subscribed to");
      const auto gi =
          static_cast<std::uint32_t>(it - ghost_persons_.begin());
      ghost_records_[gi] = rec;
      const bool was_active = ghost_active_pos_[gi] != 0;
      const bool now_active = rec.state != kNoState;
      if (was_active == now_active) continue;
      if (now_active) {
        ghost_active_.push_back(gi);
        ghost_active_pos_[gi] =
            static_cast<std::uint32_t>(ghost_active_.size());
      } else {
        const std::uint32_t pos = ghost_active_pos_[gi] - 1;
        const std::uint32_t moved = ghost_active_.back();
        ghost_active_[pos] = moved;
        ghost_active_pos_[moved] = pos + 1;
        ghost_active_.pop_back();
        ghost_active_pos_[gi] = 0;
      }
    }
  }
}

void Simulation::step_transmissions_frontier() {
  if (comm_ != nullptr) {
    exchange_ghost_deltas();
    for (const std::uint32_t gi : ghost_active_) {
      tick_records_.push_back(ghost_records_[gi]);
    }
  }
  if (tick_records_.empty()) return;
  build_record_soa(tick_records_);

  // Push phase: enumerate this rank's in-edges sourced at any record
  // holder. Out-edge buckets are ascending, so a binary search finds the
  // first locally-owned edge and the walk stops at the partition boundary.
  std::uint64_t work = 0;
  frontier_hits_.clear();
  const EdgeIndex edge_end = edge_offset_ + edge_active_.size();
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(slot_person_.size()); ++slot) {
    const auto edges = network_.out_edges_of(slot_person_[slot]);
    auto it = std::lower_bound(edges.begin(), edges.end(), edge_offset_);
    for (; it != edges.end() && *it < edge_end; ++it) {
      frontier_hits_.push_back(CandidateHit{*it, slot});
    }
  }
  work += frontier_hits_.size();
  output_.frontier_edges_per_tick.back() += frontier_hits_.size();
  if (metrics_ != nullptr) {
    metrics_->add("epihiper.frontier_edges", frontier_hits_.size());
  }

  // Sorting by edge groups hits by target (the in-CSR keeps each person's
  // edges contiguous, buckets in ascending person order), and inside each
  // group restores the legacy kernel's ascending-EdgeIndex candidate
  // order — the property that keeps every RNG draw byte-identical.
  std::sort(frontier_hits_.begin(), frontier_hits_.end(),
            [](const CandidateHit& x, const CandidateHit& y) {
              return x.edge < y.edge;
            });

  const std::size_t state_count = model_.state_count();
  const bool weights_scaled = !edge_weight_scale_.empty();
  std::uint64_t groups = 0;
  std::size_t i = 0;
  while (i < frontier_hits_.size()) {
    const PersonId p = network_.target_of(frontier_hits_[i].edge);
    const EdgeIndex group_end = network_.in_end(p);
    std::size_t j = i;
    while (j < frontier_hits_.size() && frontier_hits_[j].edge < group_end) {
      ++j;
    }
    ++groups;
    const NodeState& node = nodes_[p - local_begin_];
    const HealthState& state = model_.state(node.health);
    if (!state.susceptible()) {
      i = j;
      continue;
    }
    candidate_edges_.clear();
    candidate_rho_.clear();
    candidate_slots_.clear();
    const std::size_t omega_row = node.health * state_count;
    const double sigma = state.susceptibility * node.susceptibility_scale;
    double rate_sum = 0.0;
    for (std::size_t k = i; k < j; ++k) {
      const EdgeIndex e = frontier_hits_[k].edge;
      const std::uint32_t slot = frontier_hits_[k].slot;
      const double omega = transmission_omega_[omega_row + slot_state_[slot]];
      if (omega <= 0.0) continue;
      if (!edge_transmissible(e, p, slot_isolated_[slot] != 0,
                              slot_stay_home_[slot] != 0)) {
        continue;
      }
      // Eq (1), identical arithmetic and filter order to the broadcast
      // kernel (same rho values in the same candidate positions); the
      // source fields come from the dense SoA arrays and sigma is hoisted
      // per target, neither of which perturbs a single double bit.
      const Contact& c = network_.contact(e);
      const double duration_fraction = c.duration_minutes / 1440.0;
      const double weight =
          weights_scaled ? c.weight * edge_weight_scale_[e - edge_offset_]
                         : c.weight;
      const double rho =
          duration_fraction * weight * sigma * slot_iota_[slot] * omega;
      if (rho <= 0.0) continue;
      rate_sum += rho;
      candidate_edges_.push_back(e);
      candidate_rho_.push_back(rho);
      candidate_slots_.push_back(slot);
    }
    finish_candidate(p, rate_sum);
    i = j;
  }
  work += groups;
  if (metrics_ != nullptr) {
    metrics_->add("epihiper.frontier_candidates", groups);
  }
  output_.work_units += work;
}

void Simulation::step_progressions() {
  if (event_driven_) {
    step_progressions_events();
    return;
  }
  // Legacy tick-driven form: O(local persons) every tick, the cost the
  // event queue eliminates.
  output_.work_units += local_end_ - local_begin_;
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    NodeState& node = nodes_[p - local_begin_];
    if (node.next_transition_tick == tick_ && node.next_state != kNoState) {
      transition_person(p, node.next_state, kNoPerson);
    }
  }
}

void Simulation::step_progressions_events() {
  // Pop everything due this tick in (tick, kind, person) order — ascending
  // person, exactly the order the legacy scan fired in. An event fires only
  // if it still matches the person's live schedule; anything superseded by
  // an intervening transition is stale and shed here. Events fired now
  // schedule strictly-future events (dwell >= 1), so this loop terminates.
  std::uint64_t popped = 0;
  TimedEvent event;
  while (event_queue_.pop_due(tick_, &event)) {
    ++popped;
    EPI_ASSERT(event.tick == tick_,
               "event for tick " << event.tick << " still queued at tick "
                                 << tick_ << " — a quiescence skip "
                                 << "jumped over scheduled work");
    NodeState& node = nodes_[event.person - local_begin_];
    if (node.next_transition_tick == tick_ && node.next_state != kNoState) {
      ++output_.events_fired;
      transition_person(event.person, node.next_state, kNoPerson);
    } else {
      ++output_.events_stale;
    }
  }
  output_.work_units += popped;
}

void Simulation::apply_interventions() {
  for (const auto& intervention : interventions_) {
    intervention->apply(*this);
  }
}

Tick Simulation::next_active_tick() const {
  // This rank's bid for the next tick that needs real work:
  //   - the head of the timed-event queue (earliest pending progression);
  //   - the next configured seeding tick (seeding is collective);
  //   - tick_ + 1 whenever transmission or an owed exchange could still
  //     happen: a live local frontier, subscribed ghost infectious persons,
  //     unsent advert deltas/tombstones, or queued remote isolations;
  //   - each intervention's quiescent_until() hint. Hints may be rank-local
  //     (trait triggers, local counts): the min-allreduce in run() turns
  //     the most conservative rank's bid into the global decision.
  Tick next = event_queue_.next_tick();
  const auto seed_it =
      std::upper_bound(seed_ticks_.begin(), seed_ticks_.end(), tick_);
  if (seed_it != seed_ticks_.end()) next = std::min(next, *seed_it);
  if (!local_infectious_.empty() || !ghost_active_.empty() ||
      !advertised_.empty() || !pending_remote_isolations_.empty()) {
    next = std::min(next, tick_ + 1);
  }
  for (const auto& intervention : interventions_) {
    next = std::min(next,
                    std::max(intervention->quiescent_until(*this), tick_ + 1));
  }
  return std::max(next, tick_ + 1);
}

SimOutput Simulation::run() {
  tick_ = 0;
  while (tick_ < config_.num_ticks) {
    Timer tick_timer;
    cached_global_counts_.reset();
    for (auto& bucket : entered_by_state_) bucket.clear();
    output_.new_infections_per_tick.push_back(0);
    output_.frontier_edges_per_tick.push_back(0);

    exchange_remote_isolation_requests();
    seed_infections();
    step_transmissions();
    step_progressions();
    apply_interventions();

    output_.memory_bytes_per_tick.push_back(memory_footprint_bytes());
    output_.seconds_per_tick.push_back(tick_timer.elapsed_seconds());
    ++output_.ticks_executed;

    if (!event_driven_) {
      ++tick_;
      continue;
    }
    // Quiescence skip: agree on the next globally active tick and jump
    // there without touching person state. Skipping is safe because the
    // RNG is keyed by (person, tick) — dormant ticks consume no stream
    // state — and it is collective-safe because every rank takes the same
    // min-allreduced jump, keeping lockstep collectives aligned.
    Tick next = next_active_tick();
    if (comm_ != nullptr) {
      next = static_cast<Tick>(comm_->allreduce(
          static_cast<std::int64_t>(next), mpilite::ReduceOp::kMin));
    }
    next = std::min(next, config_.num_ticks);
    for (Tick skipped = tick_ + 1; skipped < next; ++skipped) {
      // Skipped ticks still get per-tick output rows (zero activity, zero
      // cost) so time series stay per-mode comparable tick for tick.
      output_.new_infections_per_tick.push_back(0);
      output_.frontier_edges_per_tick.push_back(0);
      output_.memory_bytes_per_tick.push_back(memory_footprint_bytes());
      output_.seconds_per_tick.push_back(0.0);
      ++output_.ticks_skipped;
    }
    tick_ = next;
  }
  if (metrics_ != nullptr) {
    metrics_->add("epihiper.events_scheduled", output_.events_scheduled);
    metrics_->add("epihiper.events_fired", output_.events_fired);
    metrics_->add("epihiper.events_stale", output_.events_stale);
    metrics_->add("epihiper.ticks_skipped", output_.ticks_skipped);
    metrics_->add("epihiper.ticks_executed", output_.ticks_executed);
  }
  output_.final_states.resize(local_end_ - local_begin_);
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    output_.final_states[p - local_begin_] = nodes_[p - local_begin_].health;
  }
  if (comm_ != nullptr) {
    output_.communication_bytes = comm_->bytes_sent();
  }
  output_.max_rank_work_units = output_.work_units;
  return output_;
}

}  // namespace epi
