#include "epihiper/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace epi {

namespace {
// RNG purpose labels: distinct streams per decision kind.
constexpr std::uint64_t kPurposeTransmission = 0x5452414eULL;  // "TRAN"
constexpr std::uint64_t kPurposeProgression = 0x50524f47ULL;   // "PROG"
constexpr std::uint64_t kPurposeSeed = 0x53454544ULL;          // "SEED"
constexpr std::uint64_t kPurposeCoin = 0x434f494eULL;          // "COIN"
constexpr int kTagIsolation = 7;
}  // namespace

Simulation::Simulation(const ContactNetwork& network,
                       const Population& population, const DiseaseModel& model,
                       SimulationConfig config, mpilite::Comm* comm,
                       const Partitioning* partitioning)
    : network_(network),
      population_(population),
      model_(model),
      config_(std::move(config)),
      comm_(comm) {
  EPI_REQUIRE(network_.node_count() == population_.person_count(),
              "network and population disagree on person count");
  model_.validate();
  EPI_REQUIRE(config_.num_ticks > 0, "simulation needs at least one tick");
  EPI_REQUIRE((comm_ == nullptr) == (partitioning == nullptr),
              "parallel runs need both a communicator and a partitioning");

  if (comm_ != nullptr) {
    EPI_REQUIRE(partitioning->size() == static_cast<std::size_t>(comm_->size()),
                "partition count must equal rank count");
    const Partition& mine =
        partitioning->part(static_cast<std::size_t>(comm_->rank()));
    local_begin_ = mine.node_begin;
    local_end_ = mine.node_end;
    partitioning_ = partitioning;
    edge_offset_ = mine.edge_begin;
    edge_active_.assign(mine.edge_count(), 1);
  } else {
    local_begin_ = 0;
    local_end_ = network_.node_count();
    edge_offset_ = 0;
    edge_active_.assign(network_.edge_count(), 1);
  }

  const std::size_t local_count = local_end_ - local_begin_;
  nodes_.resize(local_count);
  for (auto& node : nodes_) {
    node.health = model_.initial_state();
  }
  isolated_until_.assign(local_count, -1);
  stay_home_.assign(local_count, 0);
  infectious_lookup_.assign(network_.node_count(), 0);
  entered_by_state_.resize(model_.state_count());
  local_state_counts_.assign(model_.state_count(), 0);
  local_state_counts_[model_.initial_state()] =
      static_cast<std::int64_t>(local_count);

  // Dense (from-state, source-state) -> transmission lookup for the hot
  // propensity loop.
  const std::size_t s = model_.state_count();
  transmission_to_.assign(s * s, kNoState);
  transmission_omega_.assign(s * s, 0.0);
  for (const Transmission& t : model_.transmissions()) {
    transmission_to_[t.from * s + t.source] = t.to;
    transmission_omega_[t.from * s + t.source] = t.omega;
  }
}

void Simulation::add_intervention(std::shared_ptr<Intervention> intervention) {
  EPI_REQUIRE(intervention != nullptr, "null intervention");
  interventions_.push_back(std::move(intervention));
}

Rng Simulation::person_rng(PersonId p) const {
  return Rng(config_.seed)
      .derive({config_.replicate, p, static_cast<std::uint64_t>(tick_)});
}

bool Simulation::person_coin(PersonId p, std::uint64_t purpose,
                             double probability) const {
  Rng rng =
      Rng(config_.seed).derive({kPurposeCoin, config_.replicate, p, purpose});
  return rng.bernoulli(probability);
}

HealthStateId Simulation::health(PersonId p) const {
  EPI_REQUIRE(is_local(p), "health() is local-only; person " << p);
  return nodes_[p - local_begin_].health;
}

const std::vector<PersonId>& Simulation::entered_this_tick(
    HealthStateId state) const {
  EPI_REQUIRE(state < entered_by_state_.size(), "unknown state " << state);
  return entered_by_state_[state];
}

std::int64_t Simulation::global_state_count(HealthStateId state) {
  EPI_REQUIRE(state < model_.state_count(), "unknown state " << state);
  if (!cached_global_counts_.has_value()) {
    if (comm_ == nullptr) {
      cached_global_counts_ = local_state_counts_;
    } else {
      std::vector<double> as_double(local_state_counts_.begin(),
                                    local_state_counts_.end());
      const auto reduced = comm_->allreduce(
          std::span<const double>(as_double), mpilite::ReduceOp::kSum);
      cached_global_counts_ = std::vector<std::int64_t>(reduced.begin(),
                                                        reduced.end());
    }
  }
  return (*cached_global_counts_)[state];
}

void Simulation::set_edge_active(EdgeIndex e, bool active) {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  edge_active_[e - edge_offset_] = active ? 1 : 0;
  intervention_log_bytes_ += sizeof(EdgeIndex) + 1;  // scheduled-change log
}

void Simulation::scale_edge_weight(EdgeIndex e, double factor) {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  if (edge_weight_scale_.empty()) {
    edge_weight_scale_.assign(edge_active_.size(), 1.0f);
  }
  edge_weight_scale_[e - edge_offset_] *= static_cast<float>(factor);
  intervention_log_bytes_ += sizeof(EdgeIndex) + sizeof(float);
}

double Simulation::edge_weight_scale(EdgeIndex e) const {
  EPI_REQUIRE(e >= edge_offset_ && e - edge_offset_ < edge_active_.size(),
              "edge " << e << " not owned by this rank");
  return edge_weight_scale_.empty()
             ? 1.0
             : edge_weight_scale_[e - edge_offset_];
}

void Simulation::force_transition(PersonId p, HealthStateId new_state) {
  EPI_REQUIRE(is_local(p), "force_transition is local-only; person " << p);
  EPI_REQUIRE(new_state < model_.state_count(), "unknown state " << new_state);
  if (nodes_[p - local_begin_].health == new_state) return;
  transition_person(p, new_state, kNoPerson);
}

void Simulation::set_context_closed(ActivityType context, bool closed) {
  context_closed_[static_cast<std::size_t>(context)] = closed;
}

bool Simulation::context_closed(ActivityType context) const {
  return context_closed_[static_cast<std::size_t>(context)];
}

void Simulation::isolate(PersonId p, Tick until) {
  if (is_local(p)) {
    Tick& slot = isolated_until_[p - local_begin_];
    slot = std::max(slot, until);
    // Scheduled-change accounting: an isolation schedules a deactivation
    // and a reactivation record for each of the person's contacts (the
    // deferred action lists that make intervention-heavy runs grow in
    // memory, Fig 10).
    intervention_log_bytes_ +=
        2 * (network_.in_end(p) - network_.in_begin(p)) *
        (sizeof(EdgeIndex) + sizeof(Tick));
  } else {
    pending_remote_isolations_.emplace_back(p, until);
  }
}

bool Simulation::is_isolated(PersonId p) const {
  EPI_REQUIRE(is_local(p), "is_isolated() is local-only; person " << p);
  return isolated_until_[p - local_begin_] >= tick_;
}

void Simulation::set_stay_home_compliant(PersonId p, bool compliant) {
  EPI_REQUIRE(is_local(p), "stay-home compliance is local-only");
  stay_home_[p - local_begin_] = compliant ? 1 : 0;
}

void Simulation::set_stay_home_active(bool active) {
  stay_home_active_ = active;
}

void Simulation::scale_infectivity(PersonId p, double factor) {
  EPI_REQUIRE(is_local(p), "scale_infectivity is local-only");
  nodes_[p - local_begin_].infectivity_scale *= static_cast<float>(factor);
}

void Simulation::scale_susceptibility(PersonId p, double factor) {
  EPI_REQUIRE(is_local(p), "scale_susceptibility is local-only");
  nodes_[p - local_begin_].susceptibility_scale *= static_cast<float>(factor);
}

void Simulation::set_node_trait(const std::string& trait, PersonId p,
                                std::uint8_t v) {
  EPI_REQUIRE(is_local(p), "node traits are local-only");
  auto [it, inserted] = node_traits_.try_emplace(trait);
  if (inserted) it->second.assign(local_end_ - local_begin_, 0);
  it->second[p - local_begin_] = v;
}

std::uint8_t Simulation::node_trait(const std::string& trait,
                                    PersonId p) const {
  EPI_REQUIRE(is_local(p), "node traits are local-only");
  const auto it = node_traits_.find(trait);
  if (it == node_traits_.end()) return 0;
  return it->second[p - local_begin_];
}

void Simulation::set_variable(const std::string& name, double value) {
  variables_[name] = value;
}

double Simulation::variable(const std::string& name) const {
  const auto it = variables_.find(name);
  return it == variables_.end() ? 0.0 : it->second;
}

std::pair<EdgeIndex, EdgeIndex> Simulation::in_edges(PersonId p) const {
  EPI_REQUIRE(is_local(p), "in_edges is local-only; person " << p);
  return {network_.in_begin(p), network_.in_end(p)};
}

bool Simulation::edge_transmissible(EdgeIndex e, PersonId target,
                                    bool source_isolated,
                                    bool source_stay_home) const {
  if (edge_active_[e - edge_offset_] == 0) return false;
  const Contact& c = network_.contact(e);
  const auto target_context = static_cast<ActivityType>(c.target_activity);
  const auto source_context = static_cast<ActivityType>(c.source_activity);
  if (context_closed(target_context) || context_closed(source_context)) {
    return false;
  }
  const bool home_edge = target_context == ActivityType::kHome &&
                         source_context == ActivityType::kHome;
  if (home_edge) return true;
  if (is_isolated(target) || source_isolated) return false;
  if (stay_home_active_ &&
      (stay_home_[target - local_begin_] != 0 || source_stay_home)) {
    return false;
  }
  return true;
}

std::uint64_t Simulation::memory_footprint_bytes() const {
  std::uint64_t bytes = 0;
  bytes += nodes_.capacity() * sizeof(NodeState);
  bytes += edge_active_.capacity();
  bytes += edge_weight_scale_.capacity() * sizeof(float);
  bytes += isolated_until_.capacity() * sizeof(Tick);
  bytes += stay_home_.capacity();
  bytes += infectious_lookup_.capacity() * sizeof(std::uint32_t);
  bytes += global_infectious_.capacity() * sizeof(InfectiousInfo);
  for (const auto& [name, values] : node_traits_) {
    bytes += values.capacity();
  }
  // The transition log is NOT counted: production EpiHiper streams state
  // transitions to the (Lustre) output file as they happen, so resident
  // memory is the network-proportional base plus the scheduled
  // intervention changes — exactly the Fig 10 decomposition.
  bytes += intervention_log_bytes_;
  return bytes;
}

void Simulation::transition_person(PersonId p, HealthStateId new_state,
                                   PersonId cause) {
  NodeState& node = nodes_[p - local_begin_];
  const HealthStateId old_state = node.health;
  --local_state_counts_[old_state];
  ++local_state_counts_[new_state];
  node.health = new_state;
  node.next_transition_tick = -1;
  node.next_state = kNoState;
  entered_by_state_[new_state].push_back(p);
  if (config_.record_transitions) {
    output_.transitions.push_back(TransitionEvent{tick_, p, new_state, cause});
  }
  if (cause != kNoPerson) {
    ++output_.total_infections;
    ++output_.new_infections_per_tick.back();
  }
  // Schedule the within-host progression out of the new state.
  Rng rng = person_rng(p).derive({kPurposeProgression});
  HealthStateId next = kNoState;
  Tick dwell = 0;
  if (model_.sample_progression(new_state, population_.age_group(p), rng,
                                &next, &dwell)) {
    node.next_transition_tick = tick_ + dwell;
    node.next_state = next;
  }
}

void Simulation::seed_infections() {
  for (const SeedSpec& spec : config_.seeds) {
    if (spec.tick != tick_ || spec.count == 0) continue;
    // Rank local candidates by a per-person hash so the global selection is
    // identical for any partitioning.
    std::vector<std::pair<std::uint64_t, PersonId>> candidates;
    for (PersonId p = local_begin_; p < local_end_; ++p) {
      if (population_.person(p).county != spec.county) continue;
      if (nodes_[p - local_begin_].health != model_.initial_state()) continue;
      const std::uint64_t h = mix_labels(
          config_.seed, {kPurposeSeed, config_.replicate, spec.county, p,
                         static_cast<std::uint64_t>(tick_)});
      candidates.emplace_back(h, p);
    }
    std::sort(candidates.begin(), candidates.end());
    if (candidates.size() > spec.count) candidates.resize(spec.count);
    if (comm_ != nullptr) {
      // Merge the per-rank shortlists and keep the global top `count`.
      std::vector<std::uint64_t> flat;
      flat.reserve(candidates.size() * 2);
      for (const auto& [h, p] : candidates) {
        flat.push_back(h);
        flat.push_back(p);
      }
      const auto merged = comm_->allgatherv(flat);
      candidates.clear();
      for (std::size_t i = 0; i + 1 < merged.size(); i += 2) {
        candidates.emplace_back(merged[i],
                                static_cast<PersonId>(merged[i + 1]));
      }
      std::sort(candidates.begin(), candidates.end());
      if (candidates.size() > spec.count) candidates.resize(spec.count);
    }
    for (const auto& [h, p] : candidates) {
      if (is_local(p)) transition_person(p, model_.seed_state(), kNoPerson);
    }
  }
}

void Simulation::exchange_remote_isolation_requests() {
  if (comm_ == nullptr) {
    EPI_ASSERT(pending_remote_isolations_.empty(),
               "remote isolation queued in a serial run");
    return;
  }
  // Route each request to the owner rank; POD pairs of (person, until).
  std::vector<std::vector<std::uint64_t>> outbox(
      static_cast<std::size_t>(comm_->size()));
  for (const auto& [person, until] : pending_remote_isolations_) {
    const std::size_t owner = partitioning_->partition_of(person);
    outbox[owner].push_back(person);
    outbox[owner].push_back(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(until)));
  }
  pending_remote_isolations_.clear();
  const auto inbox = comm_->alltoallv(outbox);
  for (const auto& messages : inbox) {
    for (std::size_t i = 0; i + 1 < messages.size(); i += 2) {
      const auto person = static_cast<PersonId>(messages[i]);
      const auto until = static_cast<Tick>(
          static_cast<std::int64_t>(messages[i + 1]));
      EPI_ASSERT(is_local(person), "misrouted isolation request");
      isolate(person, until);
    }
  }
}

void Simulation::step_transmissions() {
  // Snapshot the global infectious set (state at tick start).
  std::vector<InfectiousInfo> local_infectious;
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    const NodeState& node = nodes_[p - local_begin_];
    if (!model_.state(node.health).infectious()) continue;
    InfectiousInfo info;
    info.person = p;
    info.state = node.health;
    info.infectivity_scale = node.infectivity_scale;
    info.isolated = is_isolated(p) ? 1 : 0;
    info.stay_home = stay_home_[p - local_begin_];
    local_infectious.push_back(info);
  }
  // Clear the previous tick's lookup entries before installing new ones.
  for (const InfectiousInfo& info : global_infectious_) {
    infectious_lookup_[info.person] = 0;
  }
  if (comm_ != nullptr) {
    global_infectious_ = comm_->allgatherv(local_infectious);
  } else {
    global_infectious_ = std::move(local_infectious);
  }
  for (std::size_t i = 0; i < global_infectious_.size(); ++i) {
    infectious_lookup_[global_infectious_[i].person] =
        static_cast<std::uint32_t>(i + 1);
  }
  if (global_infectious_.empty()) return;

  const double tau = model_.transmissibility();
  const std::size_t state_count = model_.state_count();
  std::uint64_t work = 0;
  std::vector<EdgeIndex> candidate_edges;
  std::vector<double> candidate_rho;
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    const NodeState& node = nodes_[p - local_begin_];
    const HealthState& state = model_.state(node.health);
    ++work;
    if (!state.susceptible()) continue;
    work += network_.in_end(p) - network_.in_begin(p);
    candidate_edges.clear();
    candidate_rho.clear();
    double rate_sum = 0.0;
    for (EdgeIndex e = network_.in_begin(p); e < network_.in_end(p); ++e) {
      const Contact& c = network_.contact(e);
      const std::uint32_t slot = infectious_lookup_[c.source];
      if (slot == 0) continue;
      const InfectiousInfo& source = global_infectious_[slot - 1];
      const double omega =
          transmission_omega_[node.health * state_count + source.state];
      if (omega <= 0.0) continue;
      if (!edge_transmissible(e, p, source.isolated != 0,
                              source.stay_home != 0)) {
        continue;
      }
      // Eq (1): rho = T * w_e * sigma(Ps) * iota(Pi) * omega, with contact
      // duration T expressed as a fraction of the one-day tick and w_e the
      // static weight times any dynamic scaling.
      const double duration_fraction = c.duration_minutes / 1440.0;
      const double weight =
          edge_weight_scale_.empty()
              ? c.weight
              : c.weight * edge_weight_scale_[e - edge_offset_];
      const double sigma =
          state.susceptibility * node.susceptibility_scale;
      const double iota = model_.state(source.state).infectivity *
                          source.infectivity_scale;
      const double rho =
          duration_fraction * weight * sigma * iota * omega;
      if (rho <= 0.0) continue;
      rate_sum += rho;
      candidate_edges.push_back(e);
      candidate_rho.push_back(rho);
    }
    const double rate = tau * rate_sum;
    if (rate <= 0.0) continue;
    // Gillespie: exponential waiting time against the one-tick interval;
    // the causing contact is drawn proportionally to its propensity.
    Rng rng = person_rng(p).derive({kPurposeTransmission});
    if (rng.exponential(rate) >= 1.0) continue;
    const std::size_t cause_index = rng.discrete(candidate_rho);
    const Contact& cause = network_.contact(candidate_edges[cause_index]);
    const std::uint32_t slot = infectious_lookup_[cause.source];
    const InfectiousInfo& source = global_infectious_[slot - 1];
    const HealthStateId to =
        transmission_to_[node.health * state_count + source.state];
    transition_person(p, to, cause.source);
  }
  output_.work_units += work;
}

void Simulation::step_progressions() {
  output_.work_units += local_end_ - local_begin_;
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    NodeState& node = nodes_[p - local_begin_];
    if (node.next_transition_tick == tick_ && node.next_state != kNoState) {
      transition_person(p, node.next_state, kNoPerson);
    }
  }
}

void Simulation::apply_interventions() {
  for (const auto& intervention : interventions_) {
    intervention->apply(*this);
  }
}

SimOutput Simulation::run() {
  for (tick_ = 0; tick_ < config_.num_ticks; ++tick_) {
    Timer tick_timer;
    cached_global_counts_.reset();
    for (auto& bucket : entered_by_state_) bucket.clear();
    output_.new_infections_per_tick.push_back(0);

    exchange_remote_isolation_requests();
    seed_infections();
    step_transmissions();
    step_progressions();
    apply_interventions();

    output_.memory_bytes_per_tick.push_back(memory_footprint_bytes());
    output_.seconds_per_tick.push_back(tick_timer.elapsed_seconds());
  }
  output_.final_states.resize(local_end_ - local_begin_);
  for (PersonId p = local_begin_; p < local_end_; ++p) {
    output_.final_states[p - local_begin_] = nodes_[p - local_begin_].health;
  }
  if (comm_ != nullptr) {
    output_.communication_bytes = comm_->bytes_sent();
  }
  output_.max_rank_work_units = output_.work_units;
  return output_;
}

}  // namespace epi
