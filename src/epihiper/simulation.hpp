// EpiHiper simulation engine.
//
// An agent-based discrete-time simulator of disease spread over a contact
// network (paper §III): per tick (= one day) it computes probabilistic
// transmissions across active contacts via the propensity law of Eq (1)
// with Gillespie sampling, advances within-host disease progressions, and
// applies interventions. It records every state transition — "each line
// ... includes the tick of the transition event, the identifier of the
// person, their exit state, and the identifier of the person causing the
// state transition" — from which dendrograms (transmission trees) and
// county-level aggregates are derived.
//
// The engine is partition-parallel over mpilite: each rank owns one
// partition of the network (all in-edges of its nodes). Cross-rank
// infection visibility uses a ghost-list halo exchange: at construction
// each rank computes the exact set of remote persons appearing as sources
// on its in-edges (its ghosts) and subscribes to their owners; per tick,
// owners send only the *deltas* of their boundary infectious records
// (became infectious / record changed / left infectious) to subscribing
// ranks via alltoallv. Transmission compute is frontier-proportional: the
// local infectious set is maintained incrementally and only susceptible
// out-neighbors of currently-infectious sources are evaluated. The legacy
// broadcast-everything kernel (allgatherv of the full infectious set +
// full person/edge rescan) is retained behind ExchangeMode::kBroadcast as
// the A/B baseline; both kernels draw identical RNG streams and produce
// byte-identical epidemic output (tested).
//
// All randomness is keyed by (seed, replicate, person, tick), which makes
// results *identical for any rank count* — a property the tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "mpilite/comm.hpp"
#include "network/contact_network.hpp"
#include "network/partition.hpp"
#include "synthpop/population.hpp"

namespace epi::obs {
class MetricsRegistry;
}

namespace epi {

inline constexpr PersonId kNoPerson = 0xFFFFFFFF;

/// One recorded state transition (the EpiHiper output-file line).
struct TransitionEvent {
  Tick tick = 0;
  PersonId person = kNoPerson;
  HealthStateId exit_state = kNoState;  // the state entered at `tick`
  PersonId infector = kNoPerson;        // set for transmission events only
};

/// Per-county seeding instruction: expose `count` susceptible persons of
/// county index `county` at tick `tick`.
struct SeedSpec {
  std::uint16_t county = 0;
  std::uint32_t count = 0;
  Tick tick = 0;
};

/// How ranks learn about remote infectious contacts each tick.
enum class ExchangeMode : std::uint8_t {
  /// Ghost-list halo exchange of boundary infectious *deltas* plus the
  /// push-based candidate frontier (the production kernel).
  kGhostDelta,
  /// Legacy baseline: allgatherv the full infectious set to every rank and
  /// rescan every local person and in-edge. Kept for A/B benchmarking and
  /// the byte-identity tests.
  kBroadcast,
};

struct SimulationConfig {
  Tick num_ticks = 120;
  std::uint64_t seed = 1;
  std::uint32_t replicate = 0;
  std::vector<SeedSpec> seeds;
  /// Record individual transition events (raw output). Aggregates are
  /// always recorded.
  bool record_transitions = true;
  ExchangeMode exchange = ExchangeMode::kGhostDelta;
};

/// Simulation output for one replicate.
struct SimOutput {
  std::vector<TransitionEvent> transitions;  // ordered by tick
  /// Per-tick count of new transmissions (the incidence curve).
  std::vector<std::uint64_t> new_infections_per_tick;
  /// Per-tick engine memory footprint in bytes (Fig 10 instrumentation).
  std::vector<std::uint64_t> memory_bytes_per_tick;
  /// Per-tick wall-clock seconds (Fig 7/8 instrumentation).
  std::vector<double> seconds_per_tick;
  /// Final health state of every person.
  std::vector<HealthStateId> final_states;
  std::uint64_t total_infections = 0;
  std::uint64_t communication_bytes = 0;  // mpilite traffic (scaling model)
  /// Bytes of per-tick ghost-delta payload this rank sent (a subset of
  /// communication_bytes; zero in broadcast mode and serial runs).
  std::uint64_t ghost_exchange_bytes = 0;
  /// Per-tick count of candidate edges the transmission kernel evaluated —
  /// the frontier size. Under kGhostDelta this is the edges pushed from
  /// currently-infectious sources; under kBroadcast it is every in-edge of
  /// every susceptible person (the full rescan).
  std::vector<std::uint64_t> frontier_edges_per_tick;
  /// Computational work performed by this rank: edge propensity
  /// evaluations plus per-node scans. On a dedicated-core machine,
  /// per-tick compute time is proportional to this (the strong-scaling
  /// model's numerator).
  std::uint64_t work_units = 0;
  /// After a parallel merge: the largest single rank's work_units — the
  /// compute-bound critical path.
  std::uint64_t max_rank_work_units = 0;
};

class Simulation;

/// An intervention: external modification of simulation state (paper
/// Appendix D: trigger + action ensemble). `apply` runs once per tick on
/// every rank after transmissions and progressions; implementations read
/// and mutate state through the Simulation's intervention API and must be
/// SPMD-deterministic (same control flow on all ranks; collective calls
/// allowed).
class Intervention {
 public:
  virtual ~Intervention() = default;
  virtual std::string name() const = 0;
  virtual void apply(Simulation& sim) = 0;
};

/// The simulator. Construct once per replicate and call run().
///
/// Serial use: pass comm == nullptr (the engine owns the whole network).
/// Parallel use: construct inside an mpilite rank body with the shared
/// Partitioning; the engine owns partition comm->rank().
class Simulation {
 public:
  Simulation(const ContactNetwork& network, const Population& population,
             const DiseaseModel& model, SimulationConfig config,
             mpilite::Comm* comm = nullptr,
             const Partitioning* partitioning = nullptr);

  void add_intervention(std::shared_ptr<Intervention> intervention);

  /// Runs all ticks; returns this rank's output (global output on rank 0
  /// after merge — see parallel.hpp — or the full output when serial).
  SimOutput run();

  // --- Intervention / inspection API -------------------------------------
  // (public so interventions and tests can drive the runtime; everything
  // here operates on the local partition unless stated otherwise).

  Tick tick() const { return tick_; }
  const SimulationConfig& config() const { return config_; }
  const ContactNetwork& network() const { return network_; }
  const Population& population() const { return population_; }
  const DiseaseModel& model() const { return model_; }

  PersonId local_begin() const { return local_begin_; }
  PersonId local_end() const { return local_end_; }
  bool is_local(PersonId p) const {
    return p >= local_begin_ && p < local_end_;
  }

  HealthStateId health(PersonId p) const;
  /// Persons (local) that entered `state` during the current tick.
  const std::vector<PersonId>& entered_this_tick(HealthStateId state) const;

  /// Global occupancy count of a state (collective in parallel runs).
  std::int64_t global_state_count(HealthStateId state);

  /// Per-edge dynamic active flag (Table V: edge.active rw).
  bool edge_active(EdgeIndex e) const { return edge_active_[e] != 0; }
  void set_edge_active(EdgeIndex e, bool active);

  /// Per-edge dynamic weight scaling (Table V: edge.weight rw); the
  /// effective propensity weight is contact.weight x this factor.
  /// Allocated lazily on first write.
  void scale_edge_weight(EdgeIndex e, double factor);
  double edge_weight_scale(EdgeIndex e) const;

  /// Forces a health-state transition (Appendix D: initialization and
  /// scripted actions may set node.healthState directly). The within-host
  /// progression out of the new state is scheduled as usual. Local only.
  void force_transition(PersonId p, HealthStateId new_state);

  /// Closes or reopens an entire activity context (SC closes school +
  /// college; global, must be called on all ranks).
  void set_context_closed(ActivityType context, bool closed);
  bool context_closed(ActivityType context) const;

  /// Isolates person p (all non-home contacts inactive) through tick
  /// `until`. Works for remote persons too: the request is routed to the
  /// owner at the next tick boundary.
  void isolate(PersonId p, Tick until);
  bool is_isolated(PersonId p) const;  // local persons only

  /// Marks person p stay-at-home compliant; while stay-at-home is active,
  /// compliant persons keep only home contacts. Local persons only.
  void set_stay_home_compliant(PersonId p, bool compliant);
  void set_stay_home_active(bool active);
  bool stay_home_active() const { return stay_home_active_; }

  /// Node infectivity / susceptibility scaling (Table V rw attributes).
  void scale_infectivity(PersonId p, double factor);
  void scale_susceptibility(PersonId p, double factor);

  /// Named node traits (Table V nodeTrait[...]); local persons only.
  void set_node_trait(const std::string& trait, PersonId p, std::uint8_t v);
  std::uint8_t node_trait(const std::string& trait, PersonId p) const;

  /// User-defined variables (Table V); process-local, rank-replicated.
  void set_variable(const std::string& name, double value);
  double variable(const std::string& name) const;

  /// Deterministic per-(person, purpose) coin flip, identical on every
  /// rank count; `purpose` distinguishes independent decisions.
  bool person_coin(PersonId p, std::uint64_t purpose, double probability) const;

  /// In-edges of a local person (for contact tracing); the returned edge
  /// indices index network().contact().
  std::pair<EdgeIndex, EdgeIndex> in_edges(PersonId p) const;

  /// Whether edge e is currently transmissible given all dynamic state
  /// (edge flag, context closures, isolation and stay-home of both ends).
  /// Source-side flags must be supplied for remote sources.
  bool edge_transmissible(EdgeIndex e, PersonId target, bool source_isolated,
                          bool source_stay_home) const;

  /// Total bytes of dynamic engine state (Fig 10 memory accounting).
  std::uint64_t memory_footprint_bytes() const;

  /// Optional observability sink: per-tick ghost-exchange bytes and
  /// frontier sizes are recorded as "epihiper.*" counters. Null (the
  /// default) is the exact unobserved path.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  mpilite::Comm* comm() { return comm_; }

 private:
  struct NodeState {
    HealthStateId health;
    float infectivity_scale = 1.0f;
    float susceptibility_scale = 1.0f;
    Tick next_transition_tick = -1;
    HealthStateId next_state = kNoState;
  };

  // Infectious-record exchange unit: effective infectivity of one
  // currently infectious person. Also the wire format of the ghost-delta
  // protocol: `state == kNoState` is the left-infectious tombstone. Field
  // order packs to 12 bytes with no padding (wire bytes must be fully
  // initialized).
  struct InfectiousInfo {
    PersonId person = kNoPerson;
    float infectivity_scale = 0.0f;
    HealthStateId state = kNoState;
    std::uint8_t isolated = 0;
    std::uint8_t stay_home = 0;
  };

  void seed_infections();
  void step_transmissions();
  void step_transmissions_broadcast();
  void step_transmissions_frontier();
  void exchange_ghost_deltas();
  void build_ghost_plan(const Partitioning& partitioning);
  void step_progressions();
  void apply_interventions();
  void exchange_remote_isolation_requests();
  void transition_person(PersonId p, HealthStateId new_state, PersonId cause);
  Rng person_rng(PersonId p) const;
  InfectiousInfo infectious_record(PersonId p) const;
  /// Gillespie draw for one susceptible target after its candidate edges
  /// (candidate_edges_/candidate_rho_/candidate_slots_, ascending
  /// EdgeIndex) have been collected; shared verbatim by both kernels so
  /// their RNG consumption is identical.
  void finish_candidate(PersonId p, double rate_sum,
                        const std::vector<InfectiousInfo>& records);

  const ContactNetwork& network_;
  const Population& population_;
  const DiseaseModel& model_;
  SimulationConfig config_;
  mpilite::Comm* comm_;
  const Partitioning* partitioning_ = nullptr;

  PersonId local_begin_ = 0;
  PersonId local_end_ = 0;
  EdgeIndex edge_offset_ = 0;

  // Dense (from * state_count + source) lookups built from the model's
  // transmission list for the propensity hot loop.
  std::vector<HealthStateId> transmission_to_;
  std::vector<double> transmission_omega_;

  Tick tick_ = 0;
  std::vector<NodeState> nodes_;  // indexed by (p - local_begin_)
  std::vector<std::uint8_t> edge_active_;
  std::vector<float> edge_weight_scale_;  // lazy; empty = all 1.0
  std::vector<Tick> isolated_until_;          // local persons
  std::vector<std::uint8_t> stay_home_;       // local persons
  bool stay_home_active_ = false;
  std::array<bool, kActivityTypeCount> context_closed_{};
  std::map<std::string, std::vector<std::uint8_t>> node_traits_;
  std::map<std::string, double> variables_;

  // --- Incrementally maintained local infectious set (both kernels) -----
  // Membership updates happen in transition_person (O(1) swap-remove), so
  // no per-tick full scan is needed to enumerate infectious persons.
  std::vector<PersonId> local_infectious_;       // unordered members
  std::vector<std::uint32_t> local_infectious_pos_;  // local idx -> pos+1

  // --- Broadcast-mode state (allocated only under kBroadcast) ------------
  std::vector<InfectiousInfo> global_infectious_;
  std::vector<std::uint32_t> infectious_lookup_;  // person -> index+1, 0=none

  // --- Ghost-list halo state (allocated only under kGhostDelta) ----------
  std::vector<PersonId> ghost_persons_;        // sorted remote in-edge sources
  std::vector<InfectiousInfo> ghost_records_;  // per ghost; kNoState = absent
  std::vector<std::uint32_t> ghost_active_;      // ghost indices, unordered
  std::vector<std::uint32_t> ghost_active_pos_;  // ghost idx -> pos+1
  // Subscribers: for each local person, the ranks holding it as a ghost
  // (CSR, ranks ascending). Only boundary persons have entries.
  std::vector<std::uint64_t> subscriber_offsets_;  // local_count + 1
  std::vector<std::int32_t> subscriber_ranks_;
  // Last records advertised to subscribers, sorted by person; the per-tick
  // diff against the current records yields the delta traffic.
  std::vector<InfectiousInfo> advertised_;

  // --- Per-tick scratch, hoisted out of the hot loops --------------------
  std::vector<InfectiousInfo> tick_records_;   // current local (+ghost) view
  std::vector<InfectiousInfo> current_advert_;
  std::vector<std::vector<InfectiousInfo>> delta_outbox_;
  std::vector<PersonId> sorted_infectious_scratch_;
  struct CandidateHit {
    EdgeIndex edge;
    std::uint32_t slot;  // index into tick_records_
  };
  std::vector<CandidateHit> frontier_hits_;
  std::vector<EdgeIndex> candidate_edges_;
  std::vector<double> candidate_rho_;
  std::vector<std::uint32_t> candidate_slots_;

  std::vector<std::vector<PersonId>> entered_by_state_;
  std::vector<std::pair<PersonId, Tick>> pending_remote_isolations_;
  std::vector<std::int64_t> local_state_counts_;
  std::optional<std::vector<std::int64_t>> cached_global_counts_;

  std::vector<std::shared_ptr<Intervention>> interventions_;
  obs::MetricsRegistry* metrics_ = nullptr;
  SimOutput output_;
  std::uint64_t intervention_log_bytes_ = 0;  // grows with scheduled changes
};

}  // namespace epi
