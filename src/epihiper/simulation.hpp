// EpiHiper simulation engine.
//
// An agent-based discrete-time simulator of disease spread over a contact
// network (paper §III): per tick (= one day) it computes probabilistic
// transmissions across active contacts via the propensity law of Eq (1)
// with Gillespie sampling, advances within-host disease progressions, and
// applies interventions. It records every state transition — "each line
// ... includes the tick of the transition event, the identifier of the
// person, their exit state, and the identifier of the person causing the
// state transition" — from which dendrograms (transmission trees) and
// county-level aggregates are derived.
//
// The engine is partition-parallel over mpilite: each rank owns one
// partition of the network (all in-edges of its nodes) and ranks exchange
// the global infectious set each tick. All randomness is keyed by
// (seed, replicate, person, tick), which makes results *identical for any
// rank count* — a property the tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "mpilite/comm.hpp"
#include "network/contact_network.hpp"
#include "network/partition.hpp"
#include "synthpop/population.hpp"

namespace epi {

inline constexpr PersonId kNoPerson = 0xFFFFFFFF;

/// One recorded state transition (the EpiHiper output-file line).
struct TransitionEvent {
  Tick tick = 0;
  PersonId person = kNoPerson;
  HealthStateId exit_state = kNoState;  // the state entered at `tick`
  PersonId infector = kNoPerson;        // set for transmission events only
};

/// Per-county seeding instruction: expose `count` susceptible persons of
/// county index `county` at tick `tick`.
struct SeedSpec {
  std::uint16_t county = 0;
  std::uint32_t count = 0;
  Tick tick = 0;
};

struct SimulationConfig {
  Tick num_ticks = 120;
  std::uint64_t seed = 1;
  std::uint32_t replicate = 0;
  std::vector<SeedSpec> seeds;
  /// Record individual transition events (raw output). Aggregates are
  /// always recorded.
  bool record_transitions = true;
};

/// Simulation output for one replicate.
struct SimOutput {
  std::vector<TransitionEvent> transitions;  // ordered by tick
  /// Per-tick count of new transmissions (the incidence curve).
  std::vector<std::uint64_t> new_infections_per_tick;
  /// Per-tick engine memory footprint in bytes (Fig 10 instrumentation).
  std::vector<std::uint64_t> memory_bytes_per_tick;
  /// Per-tick wall-clock seconds (Fig 7/8 instrumentation).
  std::vector<double> seconds_per_tick;
  /// Final health state of every person.
  std::vector<HealthStateId> final_states;
  std::uint64_t total_infections = 0;
  std::uint64_t communication_bytes = 0;  // mpilite traffic (scaling model)
  /// Computational work performed by this rank: edge propensity
  /// evaluations plus per-node scans. On a dedicated-core machine,
  /// per-tick compute time is proportional to this (the strong-scaling
  /// model's numerator).
  std::uint64_t work_units = 0;
  /// After a parallel merge: the largest single rank's work_units — the
  /// compute-bound critical path.
  std::uint64_t max_rank_work_units = 0;
};

class Simulation;

/// An intervention: external modification of simulation state (paper
/// Appendix D: trigger + action ensemble). `apply` runs once per tick on
/// every rank after transmissions and progressions; implementations read
/// and mutate state through the Simulation's intervention API and must be
/// SPMD-deterministic (same control flow on all ranks; collective calls
/// allowed).
class Intervention {
 public:
  virtual ~Intervention() = default;
  virtual std::string name() const = 0;
  virtual void apply(Simulation& sim) = 0;
};

/// The simulator. Construct once per replicate and call run().
///
/// Serial use: pass comm == nullptr (the engine owns the whole network).
/// Parallel use: construct inside an mpilite rank body with the shared
/// Partitioning; the engine owns partition comm->rank().
class Simulation {
 public:
  Simulation(const ContactNetwork& network, const Population& population,
             const DiseaseModel& model, SimulationConfig config,
             mpilite::Comm* comm = nullptr,
             const Partitioning* partitioning = nullptr);

  void add_intervention(std::shared_ptr<Intervention> intervention);

  /// Runs all ticks; returns this rank's output (global output on rank 0
  /// after merge — see parallel.hpp — or the full output when serial).
  SimOutput run();

  // --- Intervention / inspection API -------------------------------------
  // (public so interventions and tests can drive the runtime; everything
  // here operates on the local partition unless stated otherwise).

  Tick tick() const { return tick_; }
  const SimulationConfig& config() const { return config_; }
  const ContactNetwork& network() const { return network_; }
  const Population& population() const { return population_; }
  const DiseaseModel& model() const { return model_; }

  PersonId local_begin() const { return local_begin_; }
  PersonId local_end() const { return local_end_; }
  bool is_local(PersonId p) const {
    return p >= local_begin_ && p < local_end_;
  }

  HealthStateId health(PersonId p) const;
  /// Persons (local) that entered `state` during the current tick.
  const std::vector<PersonId>& entered_this_tick(HealthStateId state) const;

  /// Global occupancy count of a state (collective in parallel runs).
  std::int64_t global_state_count(HealthStateId state);

  /// Per-edge dynamic active flag (Table V: edge.active rw).
  bool edge_active(EdgeIndex e) const { return edge_active_[e] != 0; }
  void set_edge_active(EdgeIndex e, bool active);

  /// Per-edge dynamic weight scaling (Table V: edge.weight rw); the
  /// effective propensity weight is contact.weight x this factor.
  /// Allocated lazily on first write.
  void scale_edge_weight(EdgeIndex e, double factor);
  double edge_weight_scale(EdgeIndex e) const;

  /// Forces a health-state transition (Appendix D: initialization and
  /// scripted actions may set node.healthState directly). The within-host
  /// progression out of the new state is scheduled as usual. Local only.
  void force_transition(PersonId p, HealthStateId new_state);

  /// Closes or reopens an entire activity context (SC closes school +
  /// college; global, must be called on all ranks).
  void set_context_closed(ActivityType context, bool closed);
  bool context_closed(ActivityType context) const;

  /// Isolates person p (all non-home contacts inactive) through tick
  /// `until`. Works for remote persons too: the request is routed to the
  /// owner at the next tick boundary.
  void isolate(PersonId p, Tick until);
  bool is_isolated(PersonId p) const;  // local persons only

  /// Marks person p stay-at-home compliant; while stay-at-home is active,
  /// compliant persons keep only home contacts. Local persons only.
  void set_stay_home_compliant(PersonId p, bool compliant);
  void set_stay_home_active(bool active);
  bool stay_home_active() const { return stay_home_active_; }

  /// Node infectivity / susceptibility scaling (Table V rw attributes).
  void scale_infectivity(PersonId p, double factor);
  void scale_susceptibility(PersonId p, double factor);

  /// Named node traits (Table V nodeTrait[...]); local persons only.
  void set_node_trait(const std::string& trait, PersonId p, std::uint8_t v);
  std::uint8_t node_trait(const std::string& trait, PersonId p) const;

  /// User-defined variables (Table V); process-local, rank-replicated.
  void set_variable(const std::string& name, double value);
  double variable(const std::string& name) const;

  /// Deterministic per-(person, purpose) coin flip, identical on every
  /// rank count; `purpose` distinguishes independent decisions.
  bool person_coin(PersonId p, std::uint64_t purpose, double probability) const;

  /// In-edges of a local person (for contact tracing); the returned edge
  /// indices index network().contact().
  std::pair<EdgeIndex, EdgeIndex> in_edges(PersonId p) const;

  /// Whether edge e is currently transmissible given all dynamic state
  /// (edge flag, context closures, isolation and stay-home of both ends).
  /// Source-side flags must be supplied for remote sources.
  bool edge_transmissible(EdgeIndex e, PersonId target, bool source_isolated,
                          bool source_stay_home) const;

  /// Total bytes of dynamic engine state (Fig 10 memory accounting).
  std::uint64_t memory_footprint_bytes() const;

  mpilite::Comm* comm() { return comm_; }

 private:
  struct NodeState {
    HealthStateId health;
    float infectivity_scale = 1.0f;
    float susceptibility_scale = 1.0f;
    Tick next_transition_tick = -1;
    HealthStateId next_state = kNoState;
  };

  void seed_infections();
  void step_transmissions();
  void step_progressions();
  void apply_interventions();
  void exchange_remote_isolation_requests();
  void transition_person(PersonId p, HealthStateId new_state, PersonId cause);
  Rng person_rng(PersonId p) const;

  const ContactNetwork& network_;
  const Population& population_;
  const DiseaseModel& model_;
  SimulationConfig config_;
  mpilite::Comm* comm_;
  const Partitioning* partitioning_ = nullptr;

  PersonId local_begin_ = 0;
  PersonId local_end_ = 0;
  EdgeIndex edge_offset_ = 0;

  // Dense (from * state_count + source) lookups built from the model's
  // transmission list for the propensity hot loop.
  std::vector<HealthStateId> transmission_to_;
  std::vector<double> transmission_omega_;

  Tick tick_ = 0;
  std::vector<NodeState> nodes_;  // indexed by (p - local_begin_)
  std::vector<std::uint8_t> edge_active_;
  std::vector<float> edge_weight_scale_;  // lazy; empty = all 1.0
  std::vector<Tick> isolated_until_;          // local persons
  std::vector<std::uint8_t> stay_home_;       // local persons
  bool stay_home_active_ = false;
  std::array<bool, kActivityTypeCount> context_closed_{};
  std::map<std::string, std::vector<std::uint8_t>> node_traits_;
  std::map<std::string, double> variables_;

  // Infectious-set exchange record: effective infectivity of each currently
  // infectious person (global view, rebuilt per tick).
  struct InfectiousInfo {
    PersonId person;
    HealthStateId state;
    float infectivity_scale;
    std::uint8_t isolated;
    std::uint8_t stay_home;
  };
  std::vector<InfectiousInfo> global_infectious_;
  std::vector<std::uint32_t> infectious_lookup_;  // person -> index+1, 0=none

  std::vector<std::vector<PersonId>> entered_by_state_;
  std::vector<std::pair<PersonId, Tick>> pending_remote_isolations_;
  std::vector<std::int64_t> local_state_counts_;
  std::optional<std::vector<std::int64_t>> cached_global_counts_;

  std::vector<std::shared_ptr<Intervention>> interventions_;
  SimOutput output_;
  std::uint64_t intervention_log_bytes_ = 0;  // grows with scheduled changes
};

}  // namespace epi
