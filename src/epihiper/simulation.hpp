// EpiHiper simulation engine.
//
// An agent-based discrete-time simulator of disease spread over a contact
// network (paper §III): per tick (= one day) it computes probabilistic
// transmissions across active contacts via the propensity law of Eq (1)
// with Gillespie sampling, advances within-host disease progressions, and
// applies interventions. It records every state transition — "each line
// ... includes the tick of the transition event, the identifier of the
// person, their exit state, and the identifier of the person causing the
// state transition" — from which dendrograms (transmission trees) and
// county-level aggregates are derived.
//
// The engine is partition-parallel over mpilite: each rank owns one
// partition of the network (all in-edges of its nodes). Cross-rank
// infection visibility uses a ghost-list halo exchange: at construction
// each rank computes the exact set of remote persons appearing as sources
// on its in-edges (its ghosts) and subscribes to their owners; per tick,
// owners send only the *deltas* of their boundary infectious records
// (became infectious / record changed / left infectious) to subscribing
// ranks via alltoallv. Transmission compute is frontier-proportional: the
// local infectious set is maintained incrementally and only susceptible
// out-neighbors of currently-infectious sources are evaluated.
//
// On top of the ghost halo sits the *event-driven core* (ExaCorona
// direction, DESIGN.md §14): within-host progressions are scheduled as
// timed events in a deterministic (tick, kind, person) queue instead of
// rescanning every person every tick, and globally quiescent tick ranges
// — empty frontier, empty queues, no pending seeds / interventions /
// isolation requests on any rank, agreed via an mpilite min-allreduce —
// are skipped without touching person state. ExchangeMode::kAdaptive
// additionally re-picks broadcast vs ghost-delta each executed tick from
// the global frontier density. The legacy broadcast-everything kernel
// (allgatherv of the full infectious set + full person/edge rescan,
// ExchangeMode::kBroadcast) and the scan-based ghost mode (kGhostDelta)
// are retained as A/B baselines; all modes draw identical RNG streams and
// produce byte-identical epidemic output (tested).
//
// All randomness is keyed by (seed, replicate, person, tick) — stateless
// streams, no draw ever depends on a previous draw's position — which
// makes results *identical for any rank count* (a property the tests rely
// on) and is what lets skipped ticks consume nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "epihiper/disease_model.hpp"
#include "epihiper/event_queue.hpp"
#include "mpilite/comm.hpp"
#include "network/contact_network.hpp"
#include "network/partition.hpp"
#include "synthpop/population.hpp"

namespace epi::obs {
class MetricsRegistry;
}

namespace epi {

inline constexpr PersonId kNoPerson = 0xFFFFFFFF;

/// One recorded state transition (the EpiHiper output-file line).
struct TransitionEvent {
  Tick tick = 0;
  PersonId person = kNoPerson;
  HealthStateId exit_state = kNoState;  // the state entered at `tick`
  PersonId infector = kNoPerson;        // set for transmission events only
};

/// Per-county seeding instruction: expose `count` susceptible persons of
/// county index `county` at tick `tick`.
struct SeedSpec {
  std::uint16_t county = 0;
  std::uint32_t count = 0;
  Tick tick = 0;
};

/// How ranks learn about remote infectious contacts each tick, and whether
/// the engine runs tick-driven (scan) or event-driven (queue + skip).
/// Every mode produces byte-identical epidemic output (tested); they
/// differ only in wire traffic and per-tick compute.
enum class ExchangeMode : std::uint8_t {
  /// Ghost-list halo exchange of boundary infectious *deltas* plus the
  /// push-based candidate frontier; per-tick progression scan.
  kGhostDelta,
  /// Legacy baseline: allgatherv the full infectious set to every rank and
  /// rescan every local person and in-edge. Kept for A/B benchmarking and
  /// the byte-identity tests.
  kBroadcast,
  /// Event-driven core (the production mode): ghost-delta exchange,
  /// progressions from the timed-event queue, quiescent tick ranges
  /// skipped under a global min-allreduce agreement.
  kEvent,
  /// Event-driven core with a per-executed-tick broadcast-vs-ghost switch
  /// keyed on global frontier density (DESIGN.md §14); the decision is an
  /// allreduced count, so it is deterministic and rank-identical.
  kAdaptive,
};

/// Canonical lowercase name ("ghost", "broadcast", "event", "adaptive").
const char* exchange_mode_name(ExchangeMode mode);

/// Inverse of exchange_mode_name; throws epi::Error on unknown names.
ExchangeMode parse_exchange_mode(std::string_view name);

/// The mode SimulationConfig defaults to: EPI_EXCHANGE when set (one of
/// broadcast|ghost|event|adaptive), else kGhostDelta. Callers that assign
/// config.exchange explicitly (A/B benches, mode tests) are unaffected.
ExchangeMode default_exchange_mode();

struct SimulationConfig {
  Tick num_ticks = 120;
  std::uint64_t seed = 1;
  std::uint32_t replicate = 0;
  std::vector<SeedSpec> seeds;
  /// Record individual transition events (raw output). Aggregates are
  /// always recorded.
  bool record_transitions = true;
  ExchangeMode exchange = default_exchange_mode();
};

/// Simulation output for one replicate.
struct SimOutput {
  std::vector<TransitionEvent> transitions;  // ordered by tick
  /// Per-tick count of new transmissions (the incidence curve).
  std::vector<std::uint64_t> new_infections_per_tick;
  /// Per-tick engine memory footprint in bytes (Fig 10 instrumentation).
  std::vector<std::uint64_t> memory_bytes_per_tick;
  /// Per-tick wall-clock seconds (Fig 7/8 instrumentation).
  std::vector<double> seconds_per_tick;
  /// Final health state of every person.
  std::vector<HealthStateId> final_states;
  std::uint64_t total_infections = 0;
  std::uint64_t communication_bytes = 0;  // mpilite traffic (scaling model)
  /// Bytes of per-tick ghost-delta payload this rank sent (a subset of
  /// communication_bytes; zero in broadcast mode and serial runs).
  std::uint64_t ghost_exchange_bytes = 0;
  /// Per-tick count of candidate edges the transmission kernel evaluated —
  /// the frontier size. Semantics per mode:
  ///   kGhostDelta — edges pushed from currently-infectious sources (local
  ///     + ghost) into this rank's partition;
  ///   kBroadcast  — every in-edge of every susceptible local person (the
  ///     full rescan), counted whether or not its source is infectious;
  ///   kEvent      — as kGhostDelta on executed ticks, exactly 0 on
  ///     skipped ticks (nothing is touched);
  ///   kAdaptive   — per tick, whichever kernel the density switch picked
  ///     (so the series is a mix of the two counting rules; use
  ///     broadcast_ticks/ghost_ticks below to attribute them).
  std::vector<std::uint64_t> frontier_edges_per_tick;
  /// Computational work performed by this rank: edge propensity
  /// evaluations plus per-node scans. On a dedicated-core machine,
  /// per-tick compute time is proportional to this (the strong-scaling
  /// model's numerator).
  std::uint64_t work_units = 0;
  /// After a parallel merge: the largest single rank's work_units — the
  /// compute-bound critical path.
  std::uint64_t max_rank_work_units = 0;

  // --- Event-driven-core accounting (zero under the legacy modes) --------
  /// Progression events pushed into the timed-event queue.
  std::uint64_t events_scheduled = 0;
  /// Events popped and fired (the progression actually happened).
  std::uint64_t events_fired = 0;
  /// Events popped but superseded by a later transition (lazy
  /// invalidation); scheduled == fired + stale + still-queued at exit.
  std::uint64_t events_stale = 0;
  /// Ticks advanced without touching person state (globally quiescent).
  /// Rank-identical in parallel runs — the skip decision is collective.
  std::uint64_t ticks_skipped = 0;
  /// Ticks that actually executed; executed + skipped == num_ticks.
  std::uint64_t ticks_executed = 0;
  /// kAdaptive only: executed ticks resolved to each kernel. The split is
  /// deterministic (the switch keys on an allreduced infectious count).
  std::uint64_t broadcast_ticks = 0;
  std::uint64_t ghost_ticks = 0;
};

class Simulation;

/// An intervention: external modification of simulation state (paper
/// Appendix D: trigger + action ensemble). `apply` runs once per tick on
/// every rank after transmissions and progressions; implementations read
/// and mutate state through the Simulation's intervention API and must be
/// SPMD-deterministic (same control flow on all ranks; collective calls
/// allowed).
class Intervention {
 public:
  virtual ~Intervention() = default;
  virtual std::string name() const = 0;
  virtual void apply(Simulation& sim) = 0;
  /// Quiescence hint for the event-driven core: the earliest future tick
  /// at which this intervention might act. The default — "next tick" —
  /// disables tick skipping while the intervention is installed, which is
  /// always correct. Override to return a later tick (e.g. a fixed start
  /// tick) and the scheduler may skip up to it. May be rank-local: the
  /// global skip decision min-allreduces every rank's bid, so divergent
  /// hints are safe. Must not mutate state.
  virtual Tick quiescent_until(const Simulation& sim) const;
};

/// The simulator. Construct once per replicate and call run().
///
/// Serial use: pass comm == nullptr (the engine owns the whole network).
/// Parallel use: construct inside an mpilite rank body with the shared
/// Partitioning; the engine owns partition comm->rank().
class Simulation {
 public:
  Simulation(const ContactNetwork& network, const Population& population,
             const DiseaseModel& model, SimulationConfig config,
             mpilite::Comm* comm = nullptr,
             const Partitioning* partitioning = nullptr);

  void add_intervention(std::shared_ptr<Intervention> intervention);

  /// Runs all ticks; returns this rank's output (global output on rank 0
  /// after merge — see parallel.hpp — or the full output when serial).
  SimOutput run();

  // --- Intervention / inspection API -------------------------------------
  // (public so interventions and tests can drive the runtime; everything
  // here operates on the local partition unless stated otherwise).

  Tick tick() const { return tick_; }
  const SimulationConfig& config() const { return config_; }
  const ContactNetwork& network() const { return network_; }
  const Population& population() const { return population_; }
  const DiseaseModel& model() const { return model_; }

  PersonId local_begin() const { return local_begin_; }
  PersonId local_end() const { return local_end_; }
  bool is_local(PersonId p) const {
    return p >= local_begin_ && p < local_end_;
  }

  HealthStateId health(PersonId p) const;
  /// Persons (local) that entered `state` during the current tick.
  const std::vector<PersonId>& entered_this_tick(HealthStateId state) const;

  /// Global occupancy count of a state (collective in parallel runs).
  std::int64_t global_state_count(HealthStateId state);

  /// Per-edge dynamic active flag (Table V: edge.active rw).
  bool edge_active(EdgeIndex e) const { return edge_active_[e] != 0; }
  void set_edge_active(EdgeIndex e, bool active);

  /// Per-edge dynamic weight scaling (Table V: edge.weight rw); the
  /// effective propensity weight is contact.weight x this factor.
  /// Allocated lazily on first write.
  void scale_edge_weight(EdgeIndex e, double factor);
  double edge_weight_scale(EdgeIndex e) const;

  /// Forces a health-state transition (Appendix D: initialization and
  /// scripted actions may set node.healthState directly). The within-host
  /// progression out of the new state is scheduled as usual. Local only.
  void force_transition(PersonId p, HealthStateId new_state);

  /// Closes or reopens an entire activity context (SC closes school +
  /// college; global, must be called on all ranks).
  void set_context_closed(ActivityType context, bool closed);
  bool context_closed(ActivityType context) const;

  /// Isolates person p (all non-home contacts inactive) through tick
  /// `until`. Works for remote persons too: the request is routed to the
  /// owner at the next tick boundary.
  void isolate(PersonId p, Tick until);
  bool is_isolated(PersonId p) const;  // local persons only

  /// Marks person p stay-at-home compliant; while stay-at-home is active,
  /// compliant persons keep only home contacts. Local persons only.
  void set_stay_home_compliant(PersonId p, bool compliant);
  void set_stay_home_active(bool active);
  bool stay_home_active() const { return stay_home_active_; }

  /// Node infectivity / susceptibility scaling (Table V rw attributes).
  void scale_infectivity(PersonId p, double factor);
  void scale_susceptibility(PersonId p, double factor);

  /// Named node traits (Table V nodeTrait[...]); local persons only.
  void set_node_trait(const std::string& trait, PersonId p, std::uint8_t v);
  std::uint8_t node_trait(const std::string& trait, PersonId p) const;

  /// User-defined variables (Table V); process-local, rank-replicated.
  void set_variable(const std::string& name, double value);
  double variable(const std::string& name) const;

  /// Deterministic per-(person, purpose) coin flip, identical on every
  /// rank count; `purpose` distinguishes independent decisions.
  bool person_coin(PersonId p, std::uint64_t purpose, double probability) const;

  /// In-edges of a local person (for contact tracing); the returned edge
  /// indices index network().contact().
  std::pair<EdgeIndex, EdgeIndex> in_edges(PersonId p) const;

  /// Whether edge e is currently transmissible given all dynamic state
  /// (edge flag, context closures, isolation and stay-home of both ends).
  /// Source-side flags must be supplied for remote sources.
  bool edge_transmissible(EdgeIndex e, PersonId target, bool source_isolated,
                          bool source_stay_home) const;

  /// Total bytes of dynamic engine state (Fig 10 memory accounting).
  std::uint64_t memory_footprint_bytes() const;

  /// Optional observability sink: per-tick ghost-exchange bytes and
  /// frontier sizes are recorded as "epihiper.*" counters. Null (the
  /// default) is the exact unobserved path.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  mpilite::Comm* comm() { return comm_; }

 private:
  struct NodeState {
    HealthStateId health;
    float infectivity_scale = 1.0f;
    float susceptibility_scale = 1.0f;
    Tick next_transition_tick = -1;
    HealthStateId next_state = kNoState;
  };

  // Infectious-record exchange unit: effective infectivity of one
  // currently infectious person. Also the wire format of the ghost-delta
  // protocol: `state == kNoState` is the left-infectious tombstone. Field
  // order packs to 12 bytes with no padding (wire bytes must be fully
  // initialized).
  struct InfectiousInfo {
    PersonId person = kNoPerson;
    float infectivity_scale = 0.0f;
    HealthStateId state = kNoState;
    std::uint8_t isolated = 0;
    std::uint8_t stay_home = 0;
  };

  void seed_infections();
  /// Mode dispatch for the transmission step. All modes first snapshot the
  /// local infectious records in ascending person order (tick_records_).
  /// kBroadcast runs the full-rescan kernel; kGhostDelta and kEvent run
  /// the push-based frontier kernel (with the halo exchange in parallel
  /// runs); kAdaptive re-picks one of the two kernels per executed tick
  /// from the allreduced global infectious count — see
  /// step_transmissions_adaptive for the switch and the halo resync that
  /// keeps ghost state consistent across kernel changes.
  void step_transmissions();
  void step_transmissions_broadcast();
  void step_transmissions_frontier();
  void step_transmissions_adaptive();
  void exchange_ghost_deltas();
  void build_ghost_plan(const Partitioning& partitioning);
  /// Rebuilds the per-tick SoA mirror (slot_* arrays) of `records` for the
  /// transmission inner loops: premultiplied source infectivity, state,
  /// isolation flags, person ids, indexed by record slot.
  void build_record_soa(const std::vector<InfectiousInfo>& records);
  /// Forgets all advertised/ghost halo state (every record absent) so the
  /// next exchange_ghost_deltas() re-sends the full current boundary set —
  /// the resync run after adaptive broadcast ticks left the halo stale.
  /// Collective in effect: all ranks reset on the same tick because the
  /// adaptive decision is global.
  void reset_ghost_halo();
  void step_progressions();
  void step_progressions_events();
  void apply_interventions();
  void exchange_remote_isolation_requests();
  /// The earliest future tick at which this rank might need to do any
  /// work: queue head, frontier/halo activity, pending seeds,
  /// interventions' quiescence hints, queued isolation requests. The
  /// global skip target is the min-allreduce of every rank's value.
  Tick next_active_tick() const;
  void transition_person(PersonId p, HealthStateId new_state, PersonId cause);
  Rng person_rng(PersonId p) const;
  InfectiousInfo infectious_record(PersonId p) const;
  /// Gillespie draw for one susceptible target after its candidate edges
  /// (candidate_edges_/candidate_rho_/candidate_slots_, ascending
  /// EdgeIndex) have been collected; shared verbatim by all kernels so
  /// their RNG consumption is identical. Sources are read from the slot_*
  /// SoA arrays (build_record_soa must cover the current records).
  void finish_candidate(PersonId p, double rate_sum);

  const ContactNetwork& network_;
  const Population& population_;
  const DiseaseModel& model_;
  SimulationConfig config_;
  mpilite::Comm* comm_;
  const Partitioning* partitioning_ = nullptr;

  PersonId local_begin_ = 0;
  PersonId local_end_ = 0;
  EdgeIndex edge_offset_ = 0;

  // Dense (from * state_count + source) lookups built from the model's
  // transmission list for the propensity hot loop.
  std::vector<HealthStateId> transmission_to_;
  std::vector<double> transmission_omega_;

  Tick tick_ = 0;
  std::vector<NodeState> nodes_;  // indexed by (p - local_begin_)
  std::vector<std::uint8_t> edge_active_;
  std::vector<float> edge_weight_scale_;  // lazy; empty = all 1.0
  std::vector<Tick> isolated_until_;          // local persons
  std::vector<std::uint8_t> stay_home_;       // local persons
  bool stay_home_active_ = false;
  std::array<bool, kActivityTypeCount> context_closed_{};
  std::map<std::string, std::vector<std::uint8_t>> node_traits_;
  std::map<std::string, double> variables_;

  // --- Incrementally maintained local infectious set (both kernels) -----
  // Membership updates happen in transition_person (O(1) swap-remove), so
  // no per-tick full scan is needed to enumerate infectious persons.
  std::vector<PersonId> local_infectious_;       // unordered members
  std::vector<std::uint32_t> local_infectious_pos_;  // local idx -> pos+1

  // --- Broadcast-mode state (allocated only under kBroadcast) ------------
  std::vector<InfectiousInfo> global_infectious_;
  std::vector<std::uint32_t> infectious_lookup_;  // person -> index+1, 0=none

  // --- Ghost-list halo state (allocated only under kGhostDelta) ----------
  std::vector<PersonId> ghost_persons_;        // sorted remote in-edge sources
  std::vector<InfectiousInfo> ghost_records_;  // per ghost; kNoState = absent
  std::vector<std::uint32_t> ghost_active_;      // ghost indices, unordered
  std::vector<std::uint32_t> ghost_active_pos_;  // ghost idx -> pos+1
  // Subscribers: for each local person, the ranks holding it as a ghost
  // (CSR, ranks ascending). Only boundary persons have entries.
  std::vector<std::uint64_t> subscriber_offsets_;  // local_count + 1
  std::vector<std::int32_t> subscriber_ranks_;
  // Last records advertised to subscribers, sorted by person; the per-tick
  // diff against the current records yields the delta traffic.
  std::vector<InfectiousInfo> advertised_;

  // --- Event-driven core (kEvent / kAdaptive only) -----------------------
  bool event_driven_ = false;   // progressions from the queue + tick skipping
  EventQueue event_queue_;
  std::vector<Tick> seed_ticks_;  // sorted unique pending-seed ticks
  // kAdaptive: whether the advertised/ghost halo matches what subscribers
  // last received; false after a broadcast tick (no deltas flowed), forcing
  // reset_ghost_halo() before the next ghost-kernel exchange.
  bool ghost_halo_synced_ = true;

  // --- Per-tick scratch, hoisted out of the hot loops --------------------
  std::vector<InfectiousInfo> tick_records_;   // current local (+ghost) view
  // SoA mirror of the current records (build_record_soa): the frontier
  // inner loop touches only these dense arrays, not the 12-byte AoS wire
  // structs. slot_iota_ is the premultiplied effective source infectivity
  // (state infectivity x dynamic scale), computed once per record per tick
  // instead of once per candidate edge.
  std::vector<PersonId> slot_person_;
  std::vector<double> slot_iota_;
  std::vector<HealthStateId> slot_state_;
  std::vector<std::uint8_t> slot_isolated_;
  std::vector<std::uint8_t> slot_stay_home_;
  std::vector<InfectiousInfo> current_advert_;
  std::vector<std::vector<InfectiousInfo>> delta_outbox_;
  std::vector<PersonId> sorted_infectious_scratch_;
  struct CandidateHit {
    EdgeIndex edge;
    std::uint32_t slot;  // index into tick_records_
  };
  std::vector<CandidateHit> frontier_hits_;
  std::vector<EdgeIndex> candidate_edges_;
  std::vector<double> candidate_rho_;
  std::vector<std::uint32_t> candidate_slots_;

  std::vector<std::vector<PersonId>> entered_by_state_;
  std::vector<std::pair<PersonId, Tick>> pending_remote_isolations_;
  std::vector<std::int64_t> local_state_counts_;
  std::optional<std::vector<std::int64_t>> cached_global_counts_;

  std::vector<std::shared_ptr<Intervention>> interventions_;
  obs::MetricsRegistry* metrics_ = nullptr;
  SimOutput output_;
  std::uint64_t intervention_log_bytes_ = 0;  // grows with scheduled changes
};

}  // namespace epi
