#include "exec/executor.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace epi::exec {

std::size_t jobs_from_env() { return env_positive_size("EPI_JOBS", 1); }

std::size_t resolve_jobs(std::size_t config_jobs) {
  return config_jobs != 0 ? config_jobs : jobs_from_env();
}

std::size_t hardware_limit() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t effective_workers(std::size_t jobs, std::size_t ranks_per_task,
                              std::size_t items) {
  std::size_t workers = jobs == 0 ? 1 : jobs;
  if (items < workers) workers = items;
  if (ranks_per_task > 1) {
    // Each task multiplies into ranks_per_task real threads; cap the
    // product against the hardware so a 8-worker farm of 4-rank
    // simulations does not ask one machine for 32 hot threads.
    const std::size_t cap = hardware_limit() / ranks_per_task;
    workers = std::min(workers, cap == 0 ? std::size_t{1} : cap);
  }
  return workers == 0 ? 1 : workers;
}

namespace detail {

void flush_obs(const ExecObs& obs, const std::string& label,
               std::size_t items, std::size_t workers, std::uint64_t steals,
               const std::vector<TaskSpan>& spans) {
  if (obs.metrics != nullptr) {
    obs.metrics->add("exec.tasks", items);
    obs.metrics->set("exec.workers", static_cast<double>(workers));
    // High-water queue depth: every task of this call is enqueued before
    // the first completes, so the submission burst is the peak.
    obs.metrics->set_max("exec.queue_depth", static_cast<double>(items));
    if (!obs.deterministic_timing) {
      // Which worker physically ran a task is a scheduler artifact; the
      // count is meaningful for load-balance diagnostics but would break
      // byte-reproducibility, so deterministic sessions skip it.
      obs.metrics->add("exec.steal", steals);
    }
  }
  if (obs.trace == nullptr || spans.empty()) return;
  // The TraceRecorder belongs to the orchestration thread, so spans are
  // flushed here — after the join — in task-index order; the stable sort
  // in TraceRecorder::to_json keeps that order within equal timestamps.
  const std::uint32_t pid = obs.trace->process("exec");
  for (std::size_t w = 0; w < workers; ++w) {
    obs.trace->thread_name(pid, static_cast<std::uint32_t>(w),
                           "worker " + std::to_string(w));
  }
  const double base_hours = obs.trace->sim_hours();
  // Chains from different parallel_map calls must not share flow ids (a
  // later call's 's' could otherwise sort before an earlier call's 'f'
  // within one sim-hour); the recorder's event count at flush time is a
  // deterministic per-call discriminator.
  const std::uint64_t call_seq = obs.trace->event_count();
  const auto queue_lane = static_cast<std::uint32_t>(workers);
  if (obs.flow) obs.trace->thread_name(pid, queue_lane, "queue");
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const std::size_t lane =
        obs.deterministic_timing ? i % workers : spans[i].worker;
    const double duration_s =
        obs.deterministic_timing ? 0.0 : spans[i].duration_s;
    obs::TraceArgs args;
    args["index"] = static_cast<std::uint64_t>(i);
    args["worker"] = static_cast<std::uint64_t>(lane);
    args["task_s"] = duration_s;
    obs.trace->complete(pid, static_cast<std::uint32_t>(lane),
                        label + "[" + std::to_string(i) + "]", "exec",
                        base_hours, duration_s / 3600.0, std::move(args));
    if (obs.flow) {
      const std::string chain = "exec:" + label + "#" +
                                std::to_string(call_seq) + "[" +
                                std::to_string(i) + "]";
      obs::TraceArgs flow_args;
      flow_args["index"] = static_cast<std::uint64_t>(i);
      obs.trace->flow_start(pid, queue_lane, "submit", "exec", base_hours,
                            chain, flow_args);
      obs.trace->flow_step(pid, static_cast<std::uint32_t>(lane), "start",
                           "exec", base_hours, chain, flow_args);
      obs.trace->flow_end(pid, static_cast<std::uint32_t>(lane), "finish",
                          "exec", base_hours + duration_s / 3600.0, chain,
                          std::move(flow_args));
    }
  }
}

}  // namespace detail

}  // namespace epi::exec
