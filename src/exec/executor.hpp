// Deterministic task-pool executor for the simulation farm.
//
// The paper's nightly workflows hit their 8am deadline by running
// independent EpiHiper simulations concurrently across cluster nodes
// (100-point LHC prior designs, 30-member forecast ensembles, per-state
// replicates). Our reproduction models that concurrency in the Slurm DES
// but, until this module, *executed* every real simulation serially.
// parallel_map() is the farm driver: a fixed pool of worker threads runs
// independent tasks and hands results back in submission-index order, so
// callers observe exactly what the serial loop would have produced.
//
// Determinism contract:
//   - every task must be a pure function of its (config, seed) — the
//     property the calibration cycle and nightly engine already rely on
//     for retry-replay (`with_sim_retries` reproduces identical
//     trajectories);
//   - results are returned in submission-index order regardless of
//     completion order, so downstream accumulation (matrix rows, ledger
//     merges, report counters) is order-identical to the serial loop;
//   - an exception thrown by a task is rethrown on the calling thread at
//     the *first failing index*: tasks are issued in index order, every
//     issued task runs to completion, and issuing stops after the first
//     observed failure — any failure at a lower index belongs to an
//     already-issued task and is captured, so the minimum failing index
//     is reached on every schedule;
//   - with an effective worker count of 1 the items run in a plain loop
//     on the calling thread — no pool, no exception repackaging — the
//     exact seed code path.
//
// Concurrency comes from ExecConfig::jobs; 0 defers to the EPI_JOBS
// environment variable (default 1, so existing binaries stay serial).
// When a task itself runs rank-parallel (run_simulation_parallel spawns
// mpilite ranks as real threads) the caller declares ranks_per_task and
// the pool caps workers so workers x ranks does not oversubscribe the
// hardware.
//
// Observability (src/obs/): task spans land on per-worker lanes of an
// "exec" trace process, `exec.tasks` / `exec.steal` counters and an
// `exec.queue_depth` high-water gauge land in the metrics registry. The
// TraceRecorder is single-threaded by contract, so workers buffer their
// spans and the pool flushes them from the calling thread, in task-index
// order, after the join. Under deterministic timing the span lane is the
// task's round-robin home worker (the physical assignment is a scheduler
// artifact) and the steal counter is suppressed, so traced parallel runs
// stay byte-reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace epi::exec {

/// Observability sinks for one parallel_map call; null pointers disable
/// recording entirely (no buffering, no flush).
struct ExecObs {
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Byte-reproducible mode: spans are attributed to each task's
  /// round-robin home lane instead of the physical worker, durations and
  /// wall stamps read 0, and the (schedule-dependent) steal counter is
  /// not recorded.
  bool deterministic_timing = false;
  /// Emit per-task submit->start->finish flow chains ('s'/'t'/'f') from
  /// the queue lane to the task's worker lane. Ignored when trace is null.
  bool flow = true;
};

struct ExecConfig {
  /// Worker threads; 0 = resolve from the EPI_JOBS environment variable
  /// (default 1: the serial seed path).
  std::size_t jobs = 0;
  /// Threads each task spawns internally (mpilite ranks run as threads);
  /// the pool caps workers so workers x ranks_per_task stays within
  /// hardware concurrency. 1 = tasks are single-threaded (no cap beyond
  /// the item count).
  std::size_t ranks_per_task = 1;
  /// Span-name prefix for task spans ("<label>[<index>]").
  std::string label = "task";
  ExecObs obs;
};

/// Parses EPI_JOBS (>= 1); unset or empty means 1 (the serial seed path).
/// Malformed, zero, or negative values throw epi::Error instead of
/// silently running serial — see util/env.hpp.
std::size_t jobs_from_env();

/// config_jobs when nonzero, else jobs_from_env().
std::size_t resolve_jobs(std::size_t config_jobs);

/// std::thread::hardware_concurrency(), floored at 1.
std::size_t hardware_limit();

/// Worker count actually used for `items` tasks: `jobs`, capped by the
/// item count, and — when ranks_per_task > 1 — capped so that
/// workers x ranks_per_task <= hardware_limit() (never below 1). An
/// explicitly requested jobs count with single-threaded tasks is honored
/// even above the core count: oversubscribed workers only cost
/// time-slicing, while the rank product can multiply far past it.
std::size_t effective_workers(std::size_t jobs, std::size_t ranks_per_task,
                              std::size_t items);

namespace detail {

/// One buffered task span, flushed post-join from the calling thread.
struct TaskSpan {
  std::size_t worker = 0;
  double start_wall_s = 0.0;
  double duration_s = 0.0;
};

/// Flushes metrics + per-worker task spans (in task-index order) for one
/// parallel_map call. `spans` may be empty when tracing is off.
void flush_obs(const ExecObs& obs, const std::string& label,
               std::size_t items, std::size_t workers, std::uint64_t steals,
               const std::vector<TaskSpan>& spans);

}  // namespace detail

/// Runs fn(0) .. fn(count - 1) and returns the results in index order.
/// See the file comment for the determinism contract. fn must be safe to
/// invoke concurrently from several threads with distinct indices.
template <typename Fn>
auto parallel_index_map(std::size_t count, Fn&& fn,
                        const ExecConfig& config = {}) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<R>,
                "parallel_index_map tasks must return a value; return a "
                "placeholder from side-effect-free tasks");
  const std::size_t workers =
      effective_workers(resolve_jobs(config.jobs), config.ranks_per_task,
                        count);
  const bool record = config.obs.metrics != nullptr ||
                      config.obs.trace != nullptr;

  if (workers <= 1) {
    // Serial path: the exact seed loop — tasks run in order on the
    // calling thread and exceptions propagate unwrapped.
    std::vector<R> results;
    results.reserve(count);
    std::vector<detail::TaskSpan> spans;
    const bool trace_spans = config.obs.trace != nullptr;
    if (trace_spans) spans.resize(count);
    Timer wall;
    for (std::size_t i = 0; i < count; ++i) {
      const double start_s = wall.elapsed_seconds();
      results.push_back(fn(i));
      if (trace_spans) {
        spans[i] = {0, start_s, wall.elapsed_seconds() - start_s};
      }
    }
    if (record) detail::flush_obs(config.obs, config.label, count, 1, 0, spans);
    return results;
  }

  // Parallel path. Slots are written by exactly one worker each and read
  // only after the join, so the join is the sole synchronization point.
  std::vector<std::optional<R>> slots(count);
  std::vector<std::exception_ptr> errors(count);
  std::vector<detail::TaskSpan> spans;
  const bool trace_spans = config.obs.trace != nullptr;
  if (trace_spans) spans.resize(count);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> poisoned{false};
  std::atomic<std::uint64_t> steals{0};
  Timer wall;

  auto worker_loop = [&](std::size_t worker) {
    for (;;) {
      if (poisoned.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      // Round-robin "home" stripe: a task picked up by any other worker
      // counts as stolen (the shared queue is effectively work stealing
      // against that notional static partition).
      if (i % workers != worker) {
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      const double start_s = wall.elapsed_seconds();
      try {
        slots[i].emplace(fn(i));
      } catch (...) {
        errors[i] = std::current_exception();
        poisoned.store(true, std::memory_order_relaxed);
      }
      if (trace_spans) {
        spans[i] = {worker, start_s, wall.elapsed_seconds() - start_s};
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker_loop, w);
  }
  for (std::thread& t : pool) t.join();

  if (record) {
    detail::flush_obs(config.obs, config.label, count, workers,
                      steals.load(), spans);
  }

  // Deterministic rethrow: the lowest failing index, independent of the
  // schedule (see the file comment for why issuing order guarantees it).
  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  std::vector<R> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    results.push_back(std::move(*slots[i]));
  }
  return results;
}

/// Maps fn over `items`, returning results in item order. fn is invoked
/// as fn(item, index) when that compiles, else fn(item).
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, Fn&& fn,
                  const ExecConfig& config = {}) {
  return parallel_index_map(
      items.size(),
      [&](std::size_t i) {
        if constexpr (std::is_invocable_v<Fn&, const Item&, std::size_t>) {
          return fn(items[i], i);
        } else {
          return fn(items[i]);
        }
      },
      config);
}

}  // namespace epi::exec
