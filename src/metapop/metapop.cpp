#include "metapop/metapop.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace epi {

std::vector<double> MetapopOutput::cumulative_confirmed_total() const {
  std::vector<double> out;
  if (new_confirmed.empty()) return out;
  out.assign(new_confirmed[0].size(), 0.0);
  for (const auto& county : new_confirmed) {
    for (std::size_t d = 0; d < county.size(); ++d) out[d] += county[d];
  }
  double running = 0.0;
  for (double& x : out) {
    running += x;
    x = running;
  }
  return out;
}

std::vector<double> MetapopOutput::cumulative_confirmed_county(
    std::size_t c) const {
  EPI_REQUIRE(c < new_confirmed.size(), "county out of range");
  std::vector<double> out = new_confirmed[c];
  double running = 0.0;
  for (double& x : out) {
    running += x;
    x = running;
  }
  return out;
}

MetapopModel::MetapopModel(std::vector<double> county_populations,
                           std::vector<std::vector<double>> coupling)
    : populations_(std::move(county_populations)),
      coupling_(std::move(coupling)) {
  EPI_REQUIRE(!populations_.empty(), "metapop model needs counties");
  EPI_REQUIRE(coupling_.size() == populations_.size(),
              "coupling matrix row count mismatch");
  for (std::size_t c = 0; c < coupling_.size(); ++c) {
    EPI_REQUIRE(coupling_[c].size() == populations_.size(),
                "coupling matrix must be square");
    double row_sum = 0.0;
    for (double x : coupling_[c]) {
      EPI_REQUIRE(x >= 0.0, "coupling entries must be >= 0");
      row_sum += x;
    }
    EPI_REQUIRE(std::abs(row_sum - 1.0) < 1e-6,
                "coupling row " << c << " sums to " << row_sum << ", not 1");
    EPI_REQUIRE(populations_[c] > 0.0, "county population must be > 0");
  }
}

MetapopModel MetapopModel::with_gravity_coupling(
    std::vector<double> county_populations, double home_mixing) {
  EPI_REQUIRE(home_mixing > 0.0 && home_mixing <= 1.0,
              "home mixing fraction out of (0,1]");
  const std::size_t n = county_populations.size();
  EPI_REQUIRE(n > 0, "need at least one county");
  double total = 0.0;
  for (double p : county_populations) total += p;
  std::vector<std::vector<double>> coupling(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    if (n == 1) {
      coupling[i][i] = 1.0;
      continue;
    }
    const double away = 1.0 - home_mixing;
    const double other_total = total - county_populations[i];
    for (std::size_t j = 0; j < n; ++j) {
      coupling[i][j] = (i == j)
                           ? home_mixing
                           : away * county_populations[j] / other_total;
    }
  }
  return MetapopModel(std::move(county_populations), std::move(coupling));
}

template <typename StepDraw>
MetapopOutput MetapopModel::run_impl(const MetapopParams& params, int days,
                                     const std::vector<MetapopSeed>& seeds,
                                     StepDraw&& draw) const {
  EPI_REQUIRE(days > 0, "need at least one day");
  EPI_REQUIRE(params.latent_days > 0 && params.infectious_days > 0,
              "durations must be positive");
  const std::size_t n = populations_.size();
  std::vector<double> S(populations_), E(n, 0.0), I(n, 0.0), R(n, 0.0);
  for (const MetapopSeed& seed : seeds) {
    EPI_REQUIRE(seed.county < n, "seed county out of range");
    const double count = std::min(seed.infectious, S[seed.county]);
    S[seed.county] -= count;
    I[seed.county] += count;
  }

  // Reporting pipeline: new symptomatic infections enter a delay queue and
  // emerge as confirmed cases reporting_delay_days later.
  const int delay = std::max(0, static_cast<int>(
                                    std::llround(params.reporting_delay_days)));
  std::vector<std::vector<double>> report_queue(
      n, std::vector<double>(static_cast<std::size_t>(days + delay + 1), 0.0));

  MetapopOutput out;
  out.new_confirmed.assign(n, std::vector<double>(static_cast<std::size_t>(days), 0.0));
  const double sigma = 1.0 / params.latent_days;
  const double gamma = 1.0 / params.infectious_days;

  for (int day = 0; day < days; ++day) {
    double beta = params.beta;
    if (day >= params.intervention_start_day &&
        day < params.intervention_end_day) {
      beta *= params.intervention_effect;
    }
    // Force of infection per county via the coupling matrix.
    std::vector<double> lambda(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      double pressure = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (coupling_[c][j] == 0.0) continue;
        pressure += coupling_[c][j] * I[j] / populations_[j];
      }
      lambda[c] = beta * pressure;
    }
    double s_total = 0, e_total = 0, i_total = 0, r_total = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const double p_infect = 1.0 - std::exp(-lambda[c]);
      const double p_progress = 1.0 - std::exp(-sigma);
      const double p_recover = 1.0 - std::exp(-gamma);
      const double new_exposed = draw(S[c], p_infect);
      const double new_infectious = draw(E[c], p_progress);
      const double new_recovered = draw(I[c], p_recover);
      S[c] -= new_exposed;
      E[c] += new_exposed - new_infectious;
      I[c] += new_infectious - new_recovered;
      R[c] += new_recovered;
      // Reported with rate + delay.
      const std::size_t report_day = static_cast<std::size_t>(day + delay);
      report_queue[c][report_day] += new_infectious * params.reporting_rate;
      out.new_confirmed[c][static_cast<std::size_t>(day)] =
          report_queue[c][static_cast<std::size_t>(day)];
      s_total += S[c];
      e_total += E[c];
      i_total += I[c];
      r_total += R[c];
    }
    out.susceptible.push_back(s_total);
    out.exposed.push_back(e_total);
    out.infectious.push_back(i_total);
    out.recovered.push_back(r_total);
  }
  return out;
}

MetapopOutput MetapopModel::run_deterministic(
    const MetapopParams& params, int days,
    const std::vector<MetapopSeed>& seeds) const {
  return run_impl(params, days, seeds,
                  [](double pool, double p) { return pool * p; });
}

MetapopOutput MetapopModel::run_stochastic(const MetapopParams& params,
                                           int days,
                                           const std::vector<MetapopSeed>& seeds,
                                           Rng& rng) const {
  return run_impl(params, days, seeds, [&rng](double pool, double p) {
    const auto n = static_cast<std::uint64_t>(std::max(0.0, pool));
    return static_cast<double>(rng.binomial(n, p));
  });
}

}  // namespace epi
