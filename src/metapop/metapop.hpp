// County-level metapopulation SEIR model (paper case study 2).
//
// "We adopted a combination of mechanistic metapopulation and agent-based
// modeling frameworks ... Our model represents SEIR disease dynamics
// across counties", with transmissivity of asymptomatic/presymptomatic
// patients folded into the force of infection and commuting captured by a
// county coupling matrix. Cheap to run, so calibration simulates it
// directly inside the MCMC loop (Appendix E, "Metapopulation Model
// Calibration").
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace epi {

/// Calibratable parameters (case study 2 calibrates transmissibility and
/// infectious duration; the rest are fixed from early COVID estimates).
struct MetapopParams {
  double beta = 0.35;            // transmission rate per day
  double latent_days = 4.0;      // 1/sigma
  double infectious_days = 6.0;  // 1/gamma
  double reporting_rate = 0.25;  // confirmed / true infections
  double reporting_delay_days = 5.0;
  /// Multiplier on beta while an intervention window is active (models
  /// "intense social distancing" reducing transmissibility by 25%/50%).
  double intervention_effect = 1.0;
  int intervention_start_day = -1;  // -1 = no intervention window
  int intervention_end_day = -1;
};

/// County seeding: initial infectious count per county.
struct MetapopSeed {
  std::size_t county = 0;
  double infectious = 1.0;
};

/// Per-county daily output series.
struct MetapopOutput {
  /// new_confirmed[c][d]: new reported cases in county c on day d.
  std::vector<std::vector<double>> new_confirmed;
  /// Compartment totals per day (summed over counties).
  std::vector<double> susceptible;
  std::vector<double> exposed;
  std::vector<double> infectious;
  std::vector<double> recovered;

  std::vector<double> cumulative_confirmed_total() const;
  std::vector<double> cumulative_confirmed_county(std::size_t c) const;
};

/// The model: county populations + row-stochastic contact-coupling matrix
/// (diagonal-dominant; off-diagonal mass from commute flows).
class MetapopModel {
 public:
  MetapopModel(std::vector<double> county_populations,
               std::vector<std::vector<double>> coupling);

  /// Builds a coupling matrix where each county keeps `home_mixing` of its
  /// contacts at home and spreads the rest over other counties by
  /// population share.
  static MetapopModel with_gravity_coupling(
      std::vector<double> county_populations, double home_mixing = 0.85);

  std::size_t county_count() const { return populations_.size(); }
  const std::vector<double>& populations() const { return populations_; }

  /// Deterministic (mean-field) run — what the MCMC likelihood evaluates.
  MetapopOutput run_deterministic(const MetapopParams& params, int days,
                                  const std::vector<MetapopSeed>& seeds) const;

  /// Stochastic run (binomial transitions) — used by the surveillance
  /// generator to create noisy synthetic ground truth.
  MetapopOutput run_stochastic(const MetapopParams& params, int days,
                               const std::vector<MetapopSeed>& seeds,
                               Rng& rng) const;

 private:
  template <typename StepDraw>
  MetapopOutput run_impl(const MetapopParams& params, int days,
                         const std::vector<MetapopSeed>& seeds,
                         StepDraw&& draw) const;

  std::vector<double> populations_;
  std::vector<std::vector<double>> coupling_;  // row-stochastic
};

}  // namespace epi
