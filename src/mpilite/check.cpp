#include "mpilite/check.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace epi::mpilite {

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kCollectiveMismatch: return "collective-mismatch";
    case CheckKind::kMessageLeak: return "message-leak";
    case CheckKind::kDeadlock: return "deadlock";
    case CheckKind::kRankMisuse: return "rank-misuse";
    case CheckKind::kTagMisuse: return "tag-misuse";
    case CheckKind::kSelfSend: return "self-send";
  }
  return "unknown";
}

std::string format_reports(const std::vector<CheckReport>& reports) {
  std::ostringstream oss;
  for (const CheckReport& report : reports) {
    oss << "[" << to_string(report.kind) << "]";
    if (report.rank >= 0) oss << " rank " << report.rank << ":";
    oss << " " << report.message << "\n";
  }
  return oss.str();
}

namespace detail {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kAllgatherv: return "allgatherv";
    case CollectiveKind::kAlltoallv: return "alltoallv";
    case CollectiveKind::kBroadcast: return "broadcast";
  }
  return "unknown";
}

namespace {

const char* reduce_op_name(int op) {
  switch (op) {
    case 0: return "sum";
    case 1: return "min";
    case 2: return "max";
    case 3: return "logical_or";
  }
  return "?";
}

}  // namespace

CommChecker::CommChecker(int num_ranks, const CheckOptions& options)
    : num_ranks_(num_ranks),
      options_(options),
      ranks_(static_cast<std::size_t>(num_ranks)),
      history_(static_cast<std::size_t>(num_ranks)) {}

CommChecker::~CommChecker() { stop_watchdog(); }

void CommChecker::record(CheckKind kind, int rank, std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  reports_.push_back(CheckReport{kind, rank, std::move(message)});
}

void CommChecker::report_violation(CheckKind kind, int rank,
                                   std::string message) {
  bump_progress(rank);
  record(kind, rank, std::move(message));
}

void CommChecker::bump_progress(int rank) {
  progress_.fetch_add(1, std::memory_order_relaxed);
  if (shm_slots_ != nullptr && rank >= 0 && rank < num_ranks_) {
    shm_slots_[rank].progress.fetch_add(1, std::memory_order_relaxed);
  }
}

void CommChecker::touch(int rank) { bump_progress(rank); }

void CommChecker::attach_shm(ShmCheckSlot* slots) { shm_slots_ = slots; }

/// Copies `rank`'s local state into its shared slot (strings first, then
/// the phase store with release, matching the watchdog's acquire read).
/// Caller holds mutex_.
void CommChecker::mirror_locked(int rank) {
  if (shm_slots_ == nullptr) return;
  const RankState& state = ranks_[static_cast<std::size_t>(rank)];
  ShmCheckSlot& slot = shm_slots_[rank];
  std::snprintf(slot.blocked_on, sizeof(slot.blocked_on), "%s",
                state.blocked_on.c_str());
  std::snprintf(slot.last_op, sizeof(slot.last_op), "%s",
                state.last_op.c_str());
  slot.phase.store(static_cast<std::uint8_t>(state.phase),
                   std::memory_order_release);
}

void CommChecker::on_send(int rank, int dest, int tag, int comm_size) {
  bump_progress(rank);
  if (dest < 0 || dest >= comm_size) {
    std::ostringstream oss;
    oss << "send to rank " << dest << " but the communicator has ranks 0.."
        << comm_size - 1 << "; check the destination computation "
        << "(a common source is a partition index used as a rank)";
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (tag < 0 || tag >= (1 << 30)) {
    std::ostringstream oss;
    oss << "send with tag " << tag << " outside the user range [0, 2^30); "
        << "tags at or above 2^30 are reserved for mpilite collectives and "
        << "negative tags are invalid (MPI_ANY_TAG is not supported)";
    record(CheckKind::kTagMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (dest == rank) {
    std::ostringstream oss;
    oss << "send to self (tag " << tag << "); mpilite buffers it, but a "
        << "blocking send-to-self deadlocks under rendezvous-mode MPI — "
        << "keep local data local instead of routing it through the "
        << "communicator";
    record(CheckKind::kSelfSend, rank, oss.str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++sends_[{rank, dest, tag}];
}

void CommChecker::on_recv_args(int rank, int source, int tag, int comm_size) {
  bump_progress(rank);
  if (source < 0 || source >= comm_size) {
    std::ostringstream oss;
    oss << "recv from rank " << source << " but the communicator has ranks "
        << "0.." << comm_size - 1 << "; no message can ever arrive from a "
        << "nonexistent rank";
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (tag < 0 || tag >= (1 << 30)) {
    std::ostringstream oss;
    oss << "recv with tag " << tag << " outside the user range [0, 2^30); "
        << "no user send can carry this tag, so the receive can never "
        << "complete";
    record(CheckKind::kTagMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
}

void CommChecker::on_delivered(int rank, int source, int tag) {
  bump_progress(rank);
  std::lock_guard<std::mutex> lock(mutex_);
  ++delivered_[{source, rank, tag}];
}

void CommChecker::on_collective(int rank, CollectiveKind kind, int root,
                                int op, std::size_t count,
                                bool count_must_agree) {
  bump_progress(rank);
  if (kind == CollectiveKind::kBroadcast &&
      (root < 0 || root >= num_ranks_)) {
    std::ostringstream oss;
    oss << "broadcast with root " << root << " but the communicator has "
        << "ranks 0.." << num_ranks_ - 1;
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  history_[static_cast<std::size_t>(rank)].push_back(
      CollectiveRecord{kind, root, op, count, count_must_agree});
}

void CommChecker::enter_blocked(int rank, std::string what) {
  bump_progress(rank);
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::kBlocked;
  state.blocked_on = std::move(what);
  mirror_locked(rank);
}

void CommChecker::exit_blocked(int rank) {
  bump_progress(rank);
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::kRunning;
  state.blocked_on.clear();
  mirror_locked(rank);
}

void CommChecker::on_op_complete(int rank, std::string op) {
  bump_progress(rank);
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_[static_cast<std::size_t>(rank)].last_op = std::move(op);
  mirror_locked(rank);
}

void CommChecker::on_rank_done(int rank) {
  bump_progress(rank);
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_[static_cast<std::size_t>(rank)].phase = Phase::kDone;
  mirror_locked(rank);
}

void CommChecker::start_watchdog(std::function<void()> abort_group) {
  abort_group_ = std::move(abort_group);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void CommChecker::stop_watchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

/// The group-wide progress counter the watchdog samples: the local atomic
/// in-process, or the per-rank slot sum once a shared segment is attached
/// (children tick their own slots from their own processes).
std::uint64_t CommChecker::observed_progress() const {
  if (shm_slots_ == nullptr) return progress_.load();
  std::uint64_t sum = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    sum += shm_slots_[r].progress.load(std::memory_order_relaxed);
  }
  return sum;
}

void CommChecker::collect_phases(bool& any_blocked, bool& all_stuck) const {
  any_blocked = false;
  all_stuck = true;
  if (shm_slots_ != nullptr) {
    for (int r = 0; r < num_ranks_; ++r) {
      const auto phase = static_cast<Phase>(
          shm_slots_[r].phase.load(std::memory_order_acquire));
      if (phase == Phase::kBlocked) any_blocked = true;
      if (phase == Phase::kRunning) all_stuck = false;
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RankState& state : ranks_) {
    if (state.phase == Phase::kBlocked) any_blocked = true;
    if (state.phase == Phase::kRunning) all_stuck = false;
  }
}

void CommChecker::watchdog_loop() {
  using Clock = std::chrono::steady_clock;
  const auto timeout =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          options_.deadlock_timeout_s));
  const auto poll = std::min<Clock::duration>(
      timeout / 4 + Clock::duration{1}, std::chrono::milliseconds(50));

  std::uint64_t last_progress = observed_progress();
  auto last_change = Clock::now();
  std::unique_lock<std::mutex> wlock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(wlock, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;

    const std::uint64_t now_progress = observed_progress();
    const auto now = Clock::now();
    if (now_progress != last_progress) {
      last_progress = now_progress;
      last_change = now;
      continue;
    }

    bool any_blocked = false;
    bool all_stuck = true;
    collect_phases(any_blocked, all_stuck);
    if (!any_blocked || !all_stuck || now - last_change < timeout) continue;

    // Deadlock: every rank is blocked or finished, and nothing has moved
    // for a full timeout. Any deliverable message would have woken its
    // receiver (mailbox puts notify; ring pushes bump the route's futex
    // word), so nothing can ever move again. Progress ticked when the
    // last rank entered its blocked state, so the group really was wedged
    // for the whole window.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int r = 0; r < num_ranks_; ++r) {
        std::string blocked_on;
        std::string last_op;
        if (shm_slots_ != nullptr) {
          const ShmCheckSlot& slot = shm_slots_[r];
          if (static_cast<Phase>(slot.phase.load(
                  std::memory_order_acquire)) != Phase::kBlocked) {
            continue;
          }
          // The owner has been quiescent for a full timeout, so these
          // fixed-size NUL-terminated mirrors are stable.
          blocked_on.assign(slot.blocked_on,
                            strnlen(slot.blocked_on, sizeof(slot.blocked_on)));
          last_op.assign(slot.last_op,
                         strnlen(slot.last_op, sizeof(slot.last_op)));
        } else {
          const RankState& state = ranks_[static_cast<std::size_t>(r)];
          if (state.phase != Phase::kBlocked) continue;
          blocked_on = state.blocked_on;
          last_op = state.last_op;
        }
        std::ostringstream oss;
        oss << "blocked in " << blocked_on
            << " with no deliverable message and no rank running"
            << "; last completed operation: " << last_op;
        reports_.push_back(CheckReport{CheckKind::kDeadlock, r, oss.str()});
      }
    }
    deadlock_fired_.store(true);
    if (abort_group_) abort_group_();
    return;
  }
}

std::string CommChecker::describe(const CollectiveRecord& rec) {
  std::ostringstream oss;
  oss << to_string(rec.kind);
  switch (rec.kind) {
    case CollectiveKind::kAllreduce:
      oss << "(op=" << reduce_op_name(rec.op) << ", count=" << rec.count
          << ")";
      break;
    case CollectiveKind::kBroadcast:
      oss << "(root=" << rec.root << ")";
      break;
    default:
      break;
  }
  return oss.str();
}

void CommChecker::check_collective_history(
    Shutdown shutdown, std::vector<CheckReport>& out) const {
  std::size_t min_len = history_.empty() ? 0 : history_[0].size();
  std::size_t max_len = min_len;
  for (const auto& h : history_) {
    min_len = std::min(min_len, h.size());
    max_len = std::max(max_len, h.size());
  }

  // Compare the slots every rank reached; rank 0 is the reference.
  for (std::size_t slot = 0; slot < min_len; ++slot) {
    const CollectiveRecord& ref = history_[0][slot];
    for (int r = 1; r < num_ranks_; ++r) {
      const CollectiveRecord& rec = history_[static_cast<std::size_t>(r)][slot];
      std::ostringstream oss;
      if (rec.kind != ref.kind) {
        oss << "collective #" << slot << ": rank 0 entered " << describe(ref)
            << " but rank " << r << " entered " << describe(rec)
            << "; every rank of a communicator must enter the same "
            << "collective in the same order";
      } else if (rec.kind == CollectiveKind::kBroadcast &&
                 rec.root != ref.root) {
        oss << "collective #" << slot << ": broadcast with root " << ref.root
            << " on rank 0 but root " << rec.root << " on rank " << r
            << "; MPI requires every rank to pass the same root";
      } else if (rec.count_must_agree &&
                 (rec.op != ref.op || rec.count != ref.count)) {
        oss << "collective #" << slot << ": " << describe(ref)
            << " on rank 0 but " << describe(rec) << " on rank " << r
            << "; allreduce requires the same ReduceOp and element count on "
            << "every rank (a mismatch silently corrupts the reduction)";
      } else {
        continue;
      }
      out.push_back(CheckReport{CheckKind::kCollectiveMismatch, r, oss.str()});
    }
  }

  // Length divergence is a finding on clean shutdown (an extra buffered
  // collective completed unmatched) and on deadlock (the extra collective
  // is usually what wedged the group). After a rank's own exception the
  // streams were cut mid-flight and unequal lengths are noise.
  if (shutdown != Shutdown::kAborted && min_len != max_len) {
    for (int r = 0; r < num_ranks_; ++r) {
      const std::size_t len = history_[static_cast<std::size_t>(r)].size();
      if (len == min_len) continue;
      std::ostringstream oss;
      oss << "entered " << len << " collectives but another rank entered "
          << "only " << min_len << "; the extra "
          << describe(history_[static_cast<std::size_t>(r)][min_len])
          << " at position #" << min_len << " was never matched";
      out.push_back(
          CheckReport{CheckKind::kCollectiveMismatch, r, oss.str()});
    }
  }
}

std::vector<CheckReport> CommChecker::finalize(Shutdown shutdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CheckReport> out = reports_;

  if (shutdown != Shutdown::kAborted) {
    check_collective_history(shutdown, out);
  }

  if (shutdown == Shutdown::kClean) {
    for (const auto& [key, sent] : sends_) {
      const auto it = delivered_.find(key);
      const std::int64_t count =
          sent - (it == delivered_.end() ? 0 : it->second);
      if (count <= 0) continue;
      const auto& [source, dest, tag] = key;
      std::ostringstream oss;
      oss << count << " message" << (count == 1 ? "" : "s") << " from rank "
          << source << " to rank " << dest << " with tag " << tag
          << " sent but never received; the payload sat in rank " << dest
          << "'s mailbox at finalize (missing recv, or a recv with the "
          << "wrong source/tag)";
      out.push_back(CheckReport{CheckKind::kMessageLeak, -1, oss.str()});
    }
  }
  return out;
}

// --- Cross-process state shipping ---------------------------------------
//
// A forked child's checker is a copy-on-write snapshot: its reports, its
// own rank's collective history, and its send/delivered tallies exist only
// in the child. The child serializes them into its exit blob; the parent
// absorbs every child in rank order before finalize, reconstructing the
// global view the thread backend accumulates in one address space. The
// format is a private parent<->child pipe payload (same binary, same
// architecture), so plain little-endian scalar dumps suffice.

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::vector<std::byte>& out, std::int32_t v) {
  put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

void put_str(std::vector<std::byte>& out, const std::string& s) {
  put_u64(out, s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
}

class BlobReader {
 public:
  explicit BlobReader(std::span<const std::byte> blob) : blob_(blob) {}

  std::uint8_t u8() {
    EPI_REQUIRE(pos_ + 1 <= blob_.size(),
                "mpilite: truncated checker state blob from child process");
    return static_cast<std::uint8_t>(blob_[pos_++]);
  }

  std::uint64_t u64() {
    EPI_REQUIRE(pos_ + 8 <= blob_.size(),
                "mpilite: truncated checker state blob from child process");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(u64()));
  }

  std::string str() {
    const std::uint64_t len = u64();
    EPI_REQUIRE(pos_ + len <= blob_.size(),
                "mpilite: truncated checker state blob from child process");
    std::string s(len, '\0');
    for (std::uint64_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>(blob_[pos_ + i]);
    }
    pos_ += len;
    return s;
  }

  bool done() const { return pos_ == blob_.size(); }

 private:
  std::span<const std::byte> blob_;
  std::size_t pos_ = 0;
};

void put_tally(std::vector<std::byte>& out,
               const std::map<std::tuple<int, int, int>, std::int64_t>& m) {
  put_u64(out, m.size());
  for (const auto& [key, count] : m) {
    put_i32(out, std::get<0>(key));
    put_i32(out, std::get<1>(key));
    put_i32(out, std::get<2>(key));
    put_u64(out, static_cast<std::uint64_t>(count));
  }
}

void read_tally(BlobReader& in,
                std::map<std::tuple<int, int, int>, std::int64_t>& m) {
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int a = in.i32();
    const int b = in.i32();
    const int c = in.i32();
    m[{a, b, c}] += static_cast<std::int64_t>(in.u64());
  }
}

}  // namespace

std::vector<std::byte> CommChecker::serialize_child_state(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::byte> out;

  put_u64(out, reports_.size());
  for (const CheckReport& report : reports_) {
    out.push_back(static_cast<std::byte>(report.kind));
    put_i32(out, report.rank);
    put_str(out, report.message);
  }

  const auto& history = history_[static_cast<std::size_t>(rank)];
  put_u64(out, history.size());
  for (const CollectiveRecord& rec : history) {
    out.push_back(static_cast<std::byte>(rec.kind));
    put_i32(out, rec.root);
    put_i32(out, rec.op);
    put_u64(out, rec.count);
    out.push_back(static_cast<std::byte>(rec.count_must_agree ? 1 : 0));
  }

  put_tally(out, sends_);
  put_tally(out, delivered_);
  return out;
}

void CommChecker::absorb_child_state(int rank,
                                     std::span<const std::byte> blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  BlobReader in(blob);

  const std::uint64_t n_reports = in.u64();
  for (std::uint64_t i = 0; i < n_reports; ++i) {
    CheckReport report;
    report.kind = static_cast<CheckKind>(in.u8());
    report.rank = in.i32();
    report.message = in.str();
    reports_.push_back(std::move(report));
  }

  auto& history = history_[static_cast<std::size_t>(rank)];
  history.clear();  // the parent never ran this rank; the slot is empty
  const std::uint64_t n_records = in.u64();
  history.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    CollectiveRecord rec;
    rec.kind = static_cast<CollectiveKind>(in.u8());
    rec.root = in.i32();
    rec.op = in.i32();
    rec.count = static_cast<std::size_t>(in.u64());
    rec.count_must_agree = in.u8() != 0;
    history.push_back(rec);
  }

  read_tally(in, sends_);
  read_tally(in, delivered_);
  EPI_REQUIRE(in.done(), "mpilite: trailing bytes in checker state blob");
}

}  // namespace detail

}  // namespace epi::mpilite
