#include "mpilite/check.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace epi::mpilite {

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kCollectiveMismatch: return "collective-mismatch";
    case CheckKind::kMessageLeak: return "message-leak";
    case CheckKind::kDeadlock: return "deadlock";
    case CheckKind::kRankMisuse: return "rank-misuse";
    case CheckKind::kTagMisuse: return "tag-misuse";
    case CheckKind::kSelfSend: return "self-send";
  }
  return "unknown";
}

std::string format_reports(const std::vector<CheckReport>& reports) {
  std::ostringstream oss;
  for (const CheckReport& report : reports) {
    oss << "[" << to_string(report.kind) << "]";
    if (report.rank >= 0) oss << " rank " << report.rank << ":";
    oss << " " << report.message << "\n";
  }
  return oss.str();
}

namespace detail {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier: return "barrier";
    case CollectiveKind::kAllreduce: return "allreduce";
    case CollectiveKind::kAllgatherv: return "allgatherv";
    case CollectiveKind::kAlltoallv: return "alltoallv";
    case CollectiveKind::kBroadcast: return "broadcast";
  }
  return "unknown";
}

namespace {

const char* reduce_op_name(int op) {
  switch (op) {
    case 0: return "sum";
    case 1: return "min";
    case 2: return "max";
    case 3: return "logical_or";
  }
  return "?";
}

}  // namespace

CommChecker::CommChecker(int num_ranks, const CheckOptions& options)
    : num_ranks_(num_ranks),
      options_(options),
      ranks_(static_cast<std::size_t>(num_ranks)),
      history_(static_cast<std::size_t>(num_ranks)) {}

CommChecker::~CommChecker() { stop_watchdog(); }

void CommChecker::record(CheckKind kind, int rank, std::string message) {
  std::lock_guard<std::mutex> lock(mutex_);
  reports_.push_back(CheckReport{kind, rank, std::move(message)});
}

void CommChecker::bump_progress() {
  progress_.fetch_add(1, std::memory_order_relaxed);
}

void CommChecker::on_send(int rank, int dest, int tag, int comm_size) {
  bump_progress();
  if (dest < 0 || dest >= comm_size) {
    std::ostringstream oss;
    oss << "send to rank " << dest << " but the communicator has ranks 0.."
        << comm_size - 1 << "; check the destination computation "
        << "(a common source is a partition index used as a rank)";
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (tag < 0 || tag >= (1 << 30)) {
    std::ostringstream oss;
    oss << "send with tag " << tag << " outside the user range [0, 2^30); "
        << "tags at or above 2^30 are reserved for mpilite collectives and "
        << "negative tags are invalid (MPI_ANY_TAG is not supported)";
    record(CheckKind::kTagMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (dest == rank) {
    std::ostringstream oss;
    oss << "send to self (tag " << tag << "); mpilite buffers it, but a "
        << "blocking send-to-self deadlocks under rendezvous-mode MPI — "
        << "keep local data local instead of routing it through the "
        << "communicator";
    record(CheckKind::kSelfSend, rank, oss.str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++pending_[{rank, dest, tag}];
}

void CommChecker::on_recv_args(int rank, int source, int tag, int comm_size) {
  bump_progress();
  if (source < 0 || source >= comm_size) {
    std::ostringstream oss;
    oss << "recv from rank " << source << " but the communicator has ranks "
        << "0.." << comm_size - 1 << "; no message can ever arrive from a "
        << "nonexistent rank";
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  if (tag < 0 || tag >= (1 << 30)) {
    std::ostringstream oss;
    oss << "recv with tag " << tag << " outside the user range [0, 2^30); "
        << "no user send can carry this tag, so the receive can never "
        << "complete";
    record(CheckKind::kTagMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
}

void CommChecker::on_delivered(int rank, int source, int tag) {
  bump_progress();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find({source, rank, tag});
  if (it != pending_.end() && --it->second == 0) pending_.erase(it);
}

void CommChecker::on_collective(int rank, CollectiveKind kind, int root,
                                int op, std::size_t count,
                                bool count_must_agree) {
  bump_progress();
  if (kind == CollectiveKind::kBroadcast &&
      (root < 0 || root >= num_ranks_)) {
    std::ostringstream oss;
    oss << "broadcast with root " << root << " but the communicator has "
        << "ranks 0.." << num_ranks_ - 1;
    record(CheckKind::kRankMisuse, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  history_[static_cast<std::size_t>(rank)].push_back(
      CollectiveRecord{kind, root, op, count, count_must_agree});
}

void CommChecker::enter_blocked(int rank, std::string what) {
  bump_progress();
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::kBlocked;
  state.blocked_on = std::move(what);
}

void CommChecker::exit_blocked(int rank) {
  bump_progress();
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  state.phase = Phase::kRunning;
  state.blocked_on.clear();
}

void CommChecker::on_op_complete(int rank, std::string op) {
  bump_progress();
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_[static_cast<std::size_t>(rank)].last_op = std::move(op);
}

void CommChecker::on_rank_done(int rank) {
  bump_progress();
  std::lock_guard<std::mutex> lock(mutex_);
  ranks_[static_cast<std::size_t>(rank)].phase = Phase::kDone;
}

void CommChecker::start_watchdog(std::function<void()> abort_group) {
  abort_group_ = std::move(abort_group);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void CommChecker::stop_watchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void CommChecker::watchdog_loop() {
  using Clock = std::chrono::steady_clock;
  const auto timeout =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          options_.deadlock_timeout_s));
  const auto poll = std::min<Clock::duration>(
      timeout / 4 + Clock::duration{1}, std::chrono::milliseconds(50));

  std::uint64_t last_progress = progress_.load();
  auto last_change = Clock::now();
  std::unique_lock<std::mutex> wlock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(wlock, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;

    const std::uint64_t now_progress = progress_.load();
    const auto now = Clock::now();
    if (now_progress != last_progress) {
      last_progress = now_progress;
      last_change = now;
      continue;
    }

    bool any_blocked = false;
    bool all_stuck = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const RankState& state : ranks_) {
        if (state.phase == Phase::kBlocked) any_blocked = true;
        if (state.phase == Phase::kRunning) all_stuck = false;
      }
    }
    if (!any_blocked || !all_stuck || now - last_change < timeout) continue;

    // Deadlock: every rank is blocked or finished, and nothing has moved
    // for a full timeout. Any deliverable message would have woken its
    // receiver (mailbox puts notify), so nothing can ever move again.
    // Progress ticked when the last rank entered its blocked state, so the
    // group really was wedged for the whole window.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int r = 0; r < num_ranks_; ++r) {
        const RankState& state = ranks_[static_cast<std::size_t>(r)];
        if (state.phase != Phase::kBlocked) continue;
        std::ostringstream oss;
        oss << "blocked in " << state.blocked_on
            << " with no deliverable message and no rank running"
            << "; last completed operation: " << state.last_op;
        reports_.push_back(CheckReport{CheckKind::kDeadlock, r, oss.str()});
      }
    }
    deadlock_fired_.store(true);
    if (abort_group_) abort_group_();
    return;
  }
}

std::string CommChecker::describe(const CollectiveRecord& rec) {
  std::ostringstream oss;
  oss << to_string(rec.kind);
  switch (rec.kind) {
    case CollectiveKind::kAllreduce:
      oss << "(op=" << reduce_op_name(rec.op) << ", count=" << rec.count
          << ")";
      break;
    case CollectiveKind::kBroadcast:
      oss << "(root=" << rec.root << ")";
      break;
    default:
      break;
  }
  return oss.str();
}

void CommChecker::check_collective_history(
    Shutdown shutdown, std::vector<CheckReport>& out) const {
  std::size_t min_len = history_.empty() ? 0 : history_[0].size();
  std::size_t max_len = min_len;
  for (const auto& h : history_) {
    min_len = std::min(min_len, h.size());
    max_len = std::max(max_len, h.size());
  }

  // Compare the slots every rank reached; rank 0 is the reference.
  for (std::size_t slot = 0; slot < min_len; ++slot) {
    const CollectiveRecord& ref = history_[0][slot];
    for (int r = 1; r < num_ranks_; ++r) {
      const CollectiveRecord& rec = history_[static_cast<std::size_t>(r)][slot];
      std::ostringstream oss;
      if (rec.kind != ref.kind) {
        oss << "collective #" << slot << ": rank 0 entered " << describe(ref)
            << " but rank " << r << " entered " << describe(rec)
            << "; every rank of a communicator must enter the same "
            << "collective in the same order";
      } else if (rec.kind == CollectiveKind::kBroadcast &&
                 rec.root != ref.root) {
        oss << "collective #" << slot << ": broadcast with root " << ref.root
            << " on rank 0 but root " << rec.root << " on rank " << r
            << "; MPI requires every rank to pass the same root";
      } else if (rec.count_must_agree &&
                 (rec.op != ref.op || rec.count != ref.count)) {
        oss << "collective #" << slot << ": " << describe(ref)
            << " on rank 0 but " << describe(rec) << " on rank " << r
            << "; allreduce requires the same ReduceOp and element count on "
            << "every rank (a mismatch silently corrupts the reduction)";
      } else {
        continue;
      }
      out.push_back(CheckReport{CheckKind::kCollectiveMismatch, r, oss.str()});
    }
  }

  // Length divergence is a finding on clean shutdown (an extra buffered
  // collective completed unmatched) and on deadlock (the extra collective
  // is usually what wedged the group). After a rank's own exception the
  // streams were cut mid-flight and unequal lengths are noise.
  if (shutdown != Shutdown::kAborted && min_len != max_len) {
    for (int r = 0; r < num_ranks_; ++r) {
      const std::size_t len = history_[static_cast<std::size_t>(r)].size();
      if (len == min_len) continue;
      std::ostringstream oss;
      oss << "entered " << len << " collectives but another rank entered "
          << "only " << min_len << "; the extra "
          << describe(history_[static_cast<std::size_t>(r)][min_len])
          << " at position #" << min_len << " was never matched";
      out.push_back(
          CheckReport{CheckKind::kCollectiveMismatch, r, oss.str()});
    }
  }
}

std::vector<CheckReport> CommChecker::finalize(Shutdown shutdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CheckReport> out = reports_;

  if (shutdown != Shutdown::kAborted) {
    check_collective_history(shutdown, out);
  }

  if (shutdown == Shutdown::kClean) {
    for (const auto& [key, count] : pending_) {
      const auto& [source, dest, tag] = key;
      std::ostringstream oss;
      oss << count << " message" << (count == 1 ? "" : "s") << " from rank "
          << source << " to rank " << dest << " with tag " << tag
          << " sent but never received; the payload sat in rank " << dest
          << "'s mailbox at finalize (missing recv, or a recv with the "
          << "wrong source/tag)";
      out.push_back(CheckReport{CheckKind::kMessageLeak, -1, oss.str()});
    }
  }
  return out;
}

}  // namespace detail

}  // namespace epi::mpilite
