// CommChecker — an opt-in MPI-correctness validation layer for mpilite.
//
// The paper's production stack is C++/MPI whose nightly calibration cycles
// cannot afford a hung or silently-corrupted run. Because mpilite runs
// ranks as threads of one process, every protocol bug that is heisenbuggy
// under real MPI — mismatched collectives, unmatched sends, deadlock — is
// reproducible in-process. The checker records each rank's operation
// stream (in the spirit of MUST) and reports, at runtime:
//
//   * collective mismatches — ranks entering different collectives at the
//     same position in their call sequence, or the same collective with
//     inconsistent root / ReduceOp / element count where MPI requires
//     agreement;
//   * message leaks — point-to-point sends never received, reported per
//     (source, dest, tag) at finalize;
//   * deadlock — a watchdog that fires when every rank is simultaneously
//     blocked or finished with no progress, dumping each rank's last
//     completed operation and blocked call site, then aborting the group
//     so the run terminates instead of hanging;
//   * misuse — out-of-range ranks, reserved/negative tags, and self-sends
//     (which rely on mpilite's buffering and would deadlock under a
//     rendezvous-mode MPI), with actionable messages.
//
// Enable it per-run with Runtime::run_checked, or for an existing binary
// by setting EPI_MPILITE_CHECK=1 (Runtime::run then throws at finalize if
// any report was produced). The checker only observes: message delivery
// order and payloads are unchanged, so a clean run is byte-identical with
// the checker on or off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "util/error.hpp"

namespace epi::mpilite {

/// Thrown by checked operations on invalid arguments (bad rank, reserved
/// tag). The corresponding report is recorded before the throw, so callers
/// of Runtime::run_checked see the diagnosis even though the rank died.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error(what) {}
};

enum class CheckKind {
  kCollectiveMismatch,
  kMessageLeak,
  kDeadlock,
  kRankMisuse,
  kTagMisuse,
  kSelfSend,
};

const char* to_string(CheckKind kind);

/// One checker finding. `rank` is the offending or reporting rank, or -1
/// for group-wide findings (e.g. a message leak seen at finalize).
struct CheckReport {
  CheckKind kind;
  int rank;
  std::string message;
};

/// Human-readable multi-line rendering of a report list.
std::string format_reports(const std::vector<CheckReport>& reports);

struct CheckOptions {
  /// Watchdog patience: the deadlock report fires after every rank has
  /// been blocked (or finished) with zero checker-visible progress for
  /// this long. Must comfortably exceed scheduling jitter; legitimate
  /// long local computation never trips it because a computing rank is
  /// not blocked.
  double deadlock_timeout_s = 2.0;
};

namespace detail {

/// Public entry points whose call sequences must agree across ranks.
enum class CollectiveKind : std::uint8_t {
  kBarrier,
  kAllreduce,
  kAllgatherv,
  kAlltoallv,
  kBroadcast,
};

const char* to_string(CollectiveKind kind);

/// One rank's checker mirror in the shared-memory segment (shm backend).
/// Each rank — parent or forked child — owns exactly one slot and writes
/// its phase / blocked call site / last completed operation / progress
/// counter there, so the parent's deadlock watchdog can observe every
/// process of the group. Strings are written before the phase store
/// (release) and read after the phase load (acquire); during a diagnosed
/// deadlock the owner is quiescent, so the dump reads stable text.
struct ShmCheckSlot {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<std::uint8_t> phase{0};  // CommChecker::Phase values
  char blocked_on[104] = {};
  char last_op[104] = {};
};

/// Shared, thread-safe recorder. One instance per communicator group,
/// owned by the Hub; every hook may be called concurrently from rank
/// threads. Hooks are cheap (one mutex, small map updates) and never
/// change communication behaviour.
class CommChecker {
 public:
  CommChecker(int num_ranks, const CheckOptions& options);
  ~CommChecker();

  // --- Hooks called from Comm (rank threads) ---------------------------

  /// Validates a point-to-point send. Records misuse reports; throws
  /// CheckError on out-of-range dest or reserved tag (the send cannot be
  /// performed), records-but-allows self-sends. On success registers the
  /// message as pending delivery.
  void on_send(int rank, int dest, int tag, int comm_size);

  /// Validates a point-to-point receive's arguments the same way.
  void on_recv_args(int rank, int source, int tag, int comm_size);

  /// A user-tag message (source -> rank, tag) was taken out of the
  /// mailbox; clears its pending-delivery record.
  void on_delivered(int rank, int source, int tag);

  /// Records entry into a collective at the next position of `rank`'s
  /// collective call sequence. `root`/`op` are -1 when not applicable;
  /// `count_must_agree` marks collectives where MPI requires equal
  /// element counts on every rank (allreduce).
  void on_collective(int rank, CollectiveKind kind, int root, int op,
                     std::size_t count, bool count_must_agree);

  /// Marks `rank` as blocked inside `what` (a human-readable call-site
  /// description) / as running again. Used by the deadlock watchdog and
  /// for the per-rank dump when it fires.
  void enter_blocked(int rank, std::string what);
  void exit_blocked(int rank);

  /// Records completion of a top-level operation (for "last operation"
  /// in deadlock dumps).
  void on_op_complete(int rank, std::string op);

  /// Marks `rank`'s body as returned; a done rank can no longer unblock
  /// anyone, so it counts toward the deadlock condition.
  void on_rank_done(int rank);

  /// A bare progress tick for `rank` — used by the shm backend once per
  /// transferred chunk / collective round so a long-but-moving transfer
  /// is never diagnosed as a deadlock.
  void touch(int rank);

  /// Records a violation found outside the checker's own hooks (the shm
  /// arena's collective-stamp verification); the caller is responsible
  /// for aborting (typically by throwing CheckError after this returns).
  void report_violation(CheckKind kind, int rank, std::string message);

  // --- Cross-process support (shm backend) ------------------------------

  /// Mirrors every subsequent hook's rank state into `slots` (one per
  /// rank, living in the shared segment) and makes the watchdog read
  /// phases and progress from there instead of this process's local
  /// state. Call in the parent before forking so every process inherits
  /// an attached checker.
  void attach_shm(ShmCheckSlot* slots);

  /// Serializes the state a forked child accumulated — its live reports,
  /// its rank's collective history, and its send/delivered tallies — for
  /// shipment through the exit pipe.
  std::vector<std::byte> serialize_child_state(int rank) const;

  /// Merges one child's shipped state into this (parent) checker:
  /// reports append in absorption order, the child's history replaces the
  /// empty slot for `rank`, and send/delivered tallies add, so finalize
  /// sees the same global view the thread backend accumulates in-process.
  void absorb_child_state(int rank, std::span<const std::byte> blob);

  // --- Lifecycle (runtime thread) --------------------------------------

  /// Starts the watchdog thread. `abort_group` is invoked (once) when a
  /// deadlock is diagnosed, after the deadlock reports are recorded; it
  /// must wake every blocked rank.
  void start_watchdog(std::function<void()> abort_group);
  void stop_watchdog();

  bool deadlock_fired() const { return deadlock_fired_.load(); }

  /// How the run ended, which determines which finalize-time checks are
  /// meaningful.
  enum class Shutdown {
    kClean,     // all ranks returned: leaks + full collective history
    kDeadlock,  // watchdog aborted: collective history prefix only
    kAborted,   // a rank threw: live reports only (pending state is noise)
  };

  /// Runs finalize-time analyses and returns every report recorded during
  /// the run plus the finalize findings. Call exactly once, after all
  /// rank threads joined and the watchdog stopped.
  std::vector<CheckReport> finalize(Shutdown shutdown);

 private:
  struct CollectiveRecord {
    CollectiveKind kind;
    int root;
    int op;
    std::size_t count;
    bool count_must_agree;
  };

  enum class Phase : std::uint8_t { kRunning, kBlocked, kDone };

  struct RankState {
    Phase phase = Phase::kRunning;
    std::string blocked_on;  // valid while phase == kBlocked
    std::string last_op = "(no operation yet)";
  };

  void record(CheckKind kind, int rank, std::string message);
  void bump_progress(int rank);
  void mirror_locked(int rank);
  std::uint64_t observed_progress() const;
  void collect_phases(bool& any_blocked, bool& all_stuck) const;
  void watchdog_loop();
  void check_collective_history(Shutdown shutdown,
                                std::vector<CheckReport>& out) const;
  static std::string describe(const CollectiveRecord& rec);

  const int num_ranks_;
  const CheckOptions options_;

  mutable std::mutex mutex_;
  std::vector<CheckReport> reports_;
  std::vector<RankState> ranks_;
  // Send and delivery tallies keyed by (source, dest, tag); kept as two
  // separate monotone maps (rather than one decremented pending map) so a
  // child process's tallies can be shipped and added into the parent's —
  // finalize reports any key where sends exceed deliveries, in sorted key
  // order.
  std::map<std::tuple<int, int, int>, std::int64_t> sends_;
  std::map<std::tuple<int, int, int>, std::int64_t> delivered_;
  std::vector<std::vector<CollectiveRecord>> history_;
  ShmCheckSlot* shm_slots_ = nullptr;  // non-null once attach_shm ran

  // Watchdog coordination. `progress_` ticks on every hook; the watchdog
  // fires only when it is static while every rank is blocked or done.
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<bool> deadlock_fired_{false};
  std::function<void()> abort_group_;
  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace detail

}  // namespace epi::mpilite
