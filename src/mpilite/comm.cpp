#include "mpilite/comm.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace epi::mpilite {

namespace detail {

namespace {
// Tags at or above this value are reserved for collectives.
constexpr int kSystemTagBase = 1 << 30;
constexpr int kTagAllgather = kSystemTagBase + 1;
constexpr int kTagAlltoall = kSystemTagBase + 2;
constexpr int kTagBroadcast = kSystemTagBase + 3;
constexpr int kTagReduce = kSystemTagBase + 4;
}  // namespace

struct Hub {
  explicit Hub(int n) : size(n), barrier(n) {
    mailboxes.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
  }

  int size;
  std::atomic<bool> aborted{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  Barrier barrier;

  void abort();
};

void Mailbox::put(int source, int tag, Bytes payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

Bytes Mailbox::take(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = std::make_pair(source, tag);
  cv_.wait(lock, [&] {
    if (aborted_ != nullptr && aborted_->load()) return true;
    const auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  if (aborted_ != nullptr && aborted_->load()) {
    throw Error("mpilite: communicator aborted while waiting for message");
  }
  auto& queue = queues_[key];
  Bytes payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Mailbox::set_abort_flag(const std::atomic<bool>* flag) { aborted_ = flag; }

void Mailbox::wake_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_ != nullptr && aborted_->load()) {
    throw Error("mpilite: communicator aborted at barrier");
  }
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    return generation_ != my_generation ||
           (aborted_ != nullptr && aborted_->load());
  });
  if (generation_ == my_generation && aborted_ != nullptr && aborted_->load()) {
    throw Error("mpilite: communicator aborted at barrier");
  }
}

void Barrier::set_abort_flag(const std::atomic<bool>* flag) { aborted_ = flag; }

void Barrier::wake_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Hub::abort() {
  aborted.store(true);
  for (auto& mailbox : mailboxes) mailbox->wake_all();
  barrier.wake_all();
}

}  // namespace detail

int Comm::size() const { return hub_->size; }

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  EPI_REQUIRE(dest >= 0 && dest < size(), "send to invalid rank " << dest);
  EPI_REQUIRE(tag >= 0 && tag < detail::kSystemTagBase,
              "user tags must be in [0, 2^30)");
  bytes_sent_ += data.size();
  hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
      rank_, tag, Bytes(data.begin(), data.end()));
}

Bytes Comm::recv_bytes(int source, int tag) {
  EPI_REQUIRE(source >= 0 && source < size(), "recv from invalid rank " << source);
  return hub_->mailboxes[static_cast<std::size_t>(rank_)]->take(source, tag);
}

void Comm::barrier() { hub_->barrier.arrive_and_wait(); }

Bytes Comm::allgatherv_bytes(Bytes mine) {
  // Ring-free naive implementation: everyone posts to everyone. Message
  // counts are tiny (one per rank pair) and correctness is what matters.
  for (int dest = 0; dest < size(); ++dest) {
    if (dest == rank_) continue;
    bytes_sent_ += mine.size();
    hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
        rank_, detail::kTagAllgather, mine);
  }
  Bytes result;
  for (int source = 0; source < size(); ++source) {
    if (source == rank_) {
      result.insert(result.end(), mine.begin(), mine.end());
    } else {
      Bytes part = hub_->mailboxes[static_cast<std::size_t>(rank_)]->take(
          source, detail::kTagAllgather);
      result.insert(result.end(), part.begin(), part.end());
    }
  }
  return result;
}

std::vector<Bytes> Comm::alltoallv_bytes(const std::vector<Bytes>& outbox) {
  for (int dest = 0; dest < size(); ++dest) {
    if (dest == rank_) continue;
    bytes_sent_ += outbox[static_cast<std::size_t>(dest)].size();
    hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
        rank_, detail::kTagAlltoall, outbox[static_cast<std::size_t>(dest)]);
  }
  std::vector<Bytes> inbox(static_cast<std::size_t>(size()));
  inbox[static_cast<std::size_t>(rank_)] = outbox[static_cast<std::size_t>(rank_)];
  for (int source = 0; source < size(); ++source) {
    if (source == rank_) continue;
    inbox[static_cast<std::size_t>(source)] =
        hub_->mailboxes[static_cast<std::size_t>(rank_)]->take(
            source, detail::kTagAlltoall);
  }
  return inbox;
}

std::vector<double> Comm::allreduce(std::span<const double> values,
                                    ReduceOp op) {
  // Gather everyone's vector, reduce locally. O(P^2) messages — fine for
  // the rank counts we run (<= 64).
  std::vector<double> mine(values.begin(), values.end());
  Bytes raw = allgatherv_bytes(
      Bytes(reinterpret_cast<const std::byte*>(mine.data()),
            reinterpret_cast<const std::byte*>(mine.data()) +
                mine.size() * sizeof(double)));
  const std::size_t n = values.size();
  EPI_REQUIRE(raw.size() == n * sizeof(double) * static_cast<std::size_t>(size()),
              "allreduce: ranks contributed different lengths");
  std::vector<double> all(raw.size() / sizeof(double));
  std::memcpy(all.data(), raw.data(), raw.size());
  std::vector<double> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = all[i];
    for (int r = 1; r < size(); ++r) {
      const double x = all[static_cast<std::size_t>(r) * n + i];
      switch (op) {
        case ReduceOp::kSum: acc += x; break;
        case ReduceOp::kMin: acc = std::min(acc, x); break;
        case ReduceOp::kMax: acc = std::max(acc, x); break;
        case ReduceOp::kLogicalOr: acc = (acc != 0.0 || x != 0.0) ? 1.0 : 0.0; break;
      }
    }
    result[i] = acc;
  }
  return result;
}

double Comm::allreduce(double value, ReduceOp op) {
  return allreduce(std::span<const double>(&value, 1), op)[0];
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  // Doubles hold integers exactly up to 2^53; our counters stay far below.
  return static_cast<std::int64_t>(allreduce(static_cast<double>(value), op));
}

std::vector<double> Comm::broadcast(std::vector<double> value, int root) {
  EPI_REQUIRE(root >= 0 && root < size(), "broadcast from invalid root");
  if (rank_ == root) {
    Bytes raw(reinterpret_cast<const std::byte*>(value.data()),
              reinterpret_cast<const std::byte*>(value.data()) +
                  value.size() * sizeof(double));
    for (int dest = 0; dest < size(); ++dest) {
      if (dest == root) continue;
      bytes_sent_ += raw.size();
      hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
          rank_, detail::kTagBroadcast, raw);
    }
    return value;
  }
  Bytes raw = hub_->mailboxes[static_cast<std::size_t>(rank_)]->take(
      root, detail::kTagBroadcast);
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

std::int64_t Comm::broadcast(std::int64_t value, int root) {
  auto v = broadcast(std::vector<double>{static_cast<double>(value)}, root);
  return static_cast<std::int64_t>(v[0]);
}

void Runtime::run(int num_ranks, const std::function<void(Comm&)>& body) {
  EPI_REQUIRE(num_ranks > 0, "mpilite needs at least one rank");
  auto hub = std::make_shared<detail::Hub>(num_ranks);
  for (auto& mailbox : hub->mailboxes) mailbox->set_abort_flag(&hub->aborted);
  hub->barrier.set_abort_flag(&hub->aborted);

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(hub, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub->abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace epi::mpilite
