#include "mpilite/comm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>

#include "obs/trace.hpp"

#include "mpilite/hub.hpp"
#include "mpilite/shm.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace epi::mpilite {

namespace detail {

namespace {
// Tags at or above this value are reserved for collectives.
constexpr int kSystemTagBase = 1 << 30;
constexpr int kTagAllgather = kSystemTagBase + 1;
constexpr int kTagAlltoall = kSystemTagBase + 2;
constexpr int kTagBroadcast = kSystemTagBase + 3;
constexpr int kTagReduce = kSystemTagBase + 4;
}  // namespace

Hub::Hub(int n) : size(n), barrier(n) {
  mailboxes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
}

Hub::~Hub() = default;

namespace {

/// Marks a rank blocked for the checker's deadlock watchdog; restores the
/// running state on scope exit (including abort-driven unwinds).
struct BlockGuard {
  BlockGuard(CommChecker* checker, int rank, std::string what)
      : checker_(checker), rank_(rank) {
    if (checker_ != nullptr) checker_->enter_blocked(rank_, std::move(what));
  }
  ~BlockGuard() {
    if (checker_ != nullptr) checker_->exit_blocked(rank_);
  }
  BlockGuard(const BlockGuard&) = delete;
  BlockGuard& operator=(const BlockGuard&) = delete;

 private:
  CommChecker* checker_;
  int rank_;
};

/// Suppresses nested collective recording (allreduce runs on allgatherv).
struct CollectiveScope {
  explicit CollectiveScope(bool& flag) : flag_(flag), outer_(flag) {
    flag_ = true;
  }
  ~CollectiveScope() { flag_ = outer_; }
  bool outer() const { return outer_; }

 private:
  bool& flag_;
  bool outer_;
};

}  // namespace

// Declared in hub.hpp — shared with the shm backend (shm.cpp).
void count_message(const Hub& hub, int source, int dest, std::size_t bytes) {
  if (hub.obs.metrics == nullptr) return;
  char pair[16];
  std::snprintf(pair, sizeof(pair), "%03d->%03d", source, dest);
  hub.obs.metrics->add(std::string("mpilite.msgs.") + pair);
  if (bytes > 0) {
    hub.obs.metrics->add(std::string("mpilite.bytes.") + pair, bytes);
  }
}

void record_collective_seconds(const Hub& hub, const char* name,
                               const Timer& timer) {
  if (hub.obs.metrics == nullptr) return;
  hub.obs.metrics->observe(
      std::string("mpilite.") + name + "_s",
      hub.obs.deterministic_timing ? 0.0 : timer.elapsed_seconds());
}

/// Buffers one side of a user point-to-point message for the post-join
/// flow flush. Collectives are excluded by construction: they bypass
/// send_bytes/recv_bytes and their waits are already accounted by the
/// "mpilite.<collective>_s" histograms.
void record_flow(Hub& hub, bool is_send, int source, int dest, int tag,
                 std::size_t bytes) {
  if (hub.obs.trace == nullptr) return;
  std::lock_guard<std::mutex> lock(hub.flow_mutex);
  auto& seq_map = is_send ? hub.flow_send_seq : hub.flow_recv_seq;
  FlowRecord record;
  record.source = source;
  record.dest = dest;
  record.tag = tag;
  record.seq = seq_map[{source, dest, tag}]++;
  record.bytes = bytes;
  (is_send ? hub.flow_sends : hub.flow_recvs).push_back(record);
}

/// Drains the flow buffer into the TraceRecorder. Called from the
/// orchestration thread after every rank thread has joined (the recorder
/// is not thread-safe). Only matched pairs are emitted, in (source, dest,
/// tag, seq) order, so the output is schedule-independent.
void flush_flows(Hub& hub) {
  obs::TraceRecorder* trace = hub.obs.trace;
  if (trace == nullptr) return;
  auto key_less = [](const FlowRecord& a, const FlowRecord& b) {
    return std::tie(a.source, a.dest, a.tag, a.seq) <
           std::tie(b.source, b.dest, b.tag, b.seq);
  };
  std::sort(hub.flow_sends.begin(), hub.flow_sends.end(), key_less);
  std::sort(hub.flow_recvs.begin(), hub.flow_recvs.end(), key_less);

  const std::uint32_t pid = trace->process("mpilite");
  const double ts = trace->sim_hours();
  auto recv_it = hub.flow_recvs.begin();
  for (const FlowRecord& send : hub.flow_sends) {
    while (recv_it != hub.flow_recvs.end() && key_less(*recv_it, send)) {
      ++recv_it;
    }
    const bool matched = recv_it != hub.flow_recvs.end() &&
                         !key_less(send, *recv_it);
    if (!matched) continue;  // unreceived message: no edge, no dangling 's'
    const std::string id = "msg:" + std::to_string(send.source) + "->" +
                           std::to_string(send.dest) + ":t" +
                           std::to_string(send.tag) + ":#" +
                           std::to_string(send.seq);
    trace->thread_name(pid, static_cast<std::uint32_t>(send.source),
                       "rank " + std::to_string(send.source));
    trace->thread_name(pid, static_cast<std::uint32_t>(send.dest),
                       "rank " + std::to_string(send.dest));
    obs::TraceArgs args;
    args["bytes"] = send.bytes;
    trace->flow_start(pid, static_cast<std::uint32_t>(send.source), "send",
                      "mpilite", ts, id, args);
    trace->flow_end(pid, static_cast<std::uint32_t>(send.dest), "recv",
                    "mpilite", ts, id, std::move(args));
    ++recv_it;
  }
  hub.flow_sends.clear();
  hub.flow_recvs.clear();
}

void Mailbox::put(int source, int tag, Bytes payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

Bytes Mailbox::take(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = std::make_pair(source, tag);
  cv_.wait(lock, [&] {
    if (aborted_ != nullptr && aborted_->load()) return true;
    const auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  if (aborted_ != nullptr && aborted_->load()) {
    throw AbortedError("mpilite: communicator aborted while waiting for message");
  }
  auto& queue = queues_[key];
  Bytes payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

void Mailbox::set_abort_flag(const std::atomic<bool>* flag) { aborted_ = flag; }

void Mailbox::wake_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_ != nullptr && aborted_->load()) {
    throw AbortedError("mpilite: communicator aborted at barrier");
  }
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    return generation_ != my_generation ||
           (aborted_ != nullptr && aborted_->load());
  });
  if (generation_ == my_generation && aborted_ != nullptr && aborted_->load()) {
    throw AbortedError("mpilite: communicator aborted at barrier");
  }
}

void Barrier::set_abort_flag(const std::atomic<bool>* flag) { aborted_ = flag; }

void Barrier::wake_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void Hub::abort() {
  aborted.store(true);
  if (shm) shm->abort();  // wakes blocked ranks in every process
  for (auto& mailbox : mailboxes) mailbox->wake_all();
  barrier.wake_all();
}

std::vector<CheckReport> finish_run(
    Hub& hub, CommChecker* chk,
    const std::vector<std::exception_ptr>& errors) {
  // Every rank is done; the orchestration thread owns the (not
  // thread-safe) TraceRecorder again, so the flow buffer can drain.
  flush_flows(hub);

  std::vector<CheckReport> reports;
  if (chk != nullptr) {
    chk->stop_watchdog();
    using Shutdown = CommChecker::Shutdown;
    Shutdown shutdown = Shutdown::kClean;
    const bool aborted =
        hub.aborted.load() || (hub.shm != nullptr && hub.shm->aborted());
    if (chk->deadlock_fired()) {
      shutdown = Shutdown::kDeadlock;
    } else if (aborted) {
      shutdown = Shutdown::kAborted;
    }
    reports = chk->finalize(shutdown);
  }

  // An AbortedError is a secondary casualty of the group abort — the rank
  // that actually threw carries the diagnosis, whatever its rank number.
  // Rethrow the first primary error in rank order; fall back to the first
  // AbortedError only when no rank failed for its own reason. (Under the
  // checker both AbortedError and CheckError are swallowed outright: the
  // returned reports are the diagnosis.)
  std::exception_ptr secondary;
  for (const auto& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const CheckError&) {
      if (chk == nullptr) throw;
    } catch (const AbortedError&) {
      if (chk == nullptr && !secondary) secondary = error;
    } catch (...) {
      throw;
    }
  }
  if (secondary) std::rethrow_exception(secondary);
  return reports;
}

}  // namespace detail

int Comm::size() const { return hub_->size; }

BackendKind Comm::backend() const {
  return hub_->shm != nullptr ? BackendKind::kShm : BackendKind::kThread;
}

obs::MetricsRegistry* Comm::metrics() const { return hub_->obs.metrics; }

detail::CommChecker* Comm::checker() const { return hub_->checker.get(); }

/// A blocking take annotated as a blocked state for the deadlock watchdog:
/// from this rank's mailbox (thread backend) or the (source -> rank) ring
/// (shm backend).
Bytes Comm::take_blocking(int source, int tag, const std::string& what) {
  detail::BlockGuard guard(checker(), rank_, what);
  if (hub_->shm) return shm_take(source, tag);
  return hub_->mailboxes[static_cast<std::size_t>(rank_)]->take(source, tag);
}

/// The shm receive path. The per-route ring is FIFO in send order across
/// all tags, so a pop may surface a message with a tag this call is not
/// waiting for; those park in shm_stash_ (checked first) and per-(source,
/// tag) FIFO order — the thread backend's mailbox matching rule — is
/// preserved. Self-sends never touch the segment: they are stashed
/// directly by send_bytes, mirroring the thread backend's unbounded
/// self-buffering.
Bytes Comm::shm_take(int source, int tag) {
  const auto key = std::make_pair(source, tag);
  const auto it = shm_stash_.find(key);
  if (it != shm_stash_.end() && !it->second.empty()) {
    Bytes payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }
  for (;;) {
    auto [got_tag, payload] =
        hub_->shm->pop_message(source, rank_, checker(), rank_);
    if (got_tag == tag) return payload;
    shm_stash_[{source, got_tag}].push_back(std::move(payload));
  }
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> data) {
  if (auto* chk = checker()) chk->on_send(rank_, dest, tag, size());
  EPI_REQUIRE(dest >= 0 && dest < size(), "send to invalid rank " << dest);
  EPI_REQUIRE(tag >= 0 && tag < detail::kSystemTagBase,
              "user tags must be in [0, 2^30)");
  bytes_sent_ += data.size();
  detail::count_message(*hub_, rank_, dest, data.size());
  detail::record_flow(*hub_, /*is_send=*/true, rank_, dest, tag, data.size());
  if (hub_->shm) {
    if (dest == rank_) {
      shm_stash_[{rank_, tag}].emplace_back(data.begin(), data.end());
    } else {
      // Unlike the unbounded thread mailboxes, a ring send blocks under
      // backpressure (rendezvous-like, as real MPI may); mark it for the
      // watchdog so a never-received giant send is diagnosed, not hung.
      detail::BlockGuard guard(checker(), rank_,
                               "send(dest=" + std::to_string(dest) +
                                   ", tag=" + std::to_string(tag) + ")");
      hub_->shm->push_message(rank_, dest, tag, data, checker(), rank_);
    }
  } else {
    hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
        rank_, tag, Bytes(data.begin(), data.end()));
  }
  if (auto* chk = checker()) {
    chk->on_op_complete(rank_, "send(dest=" + std::to_string(dest) +
                                   ", tag=" + std::to_string(tag) + ")");
  }
}

Bytes Comm::recv_bytes(int source, int tag) {
  auto* chk = checker();
  if (chk != nullptr) chk->on_recv_args(rank_, source, tag, size());
  EPI_REQUIRE(source >= 0 && source < size(), "recv from invalid rank " << source);
  const std::string what = "recv(source=" + std::to_string(source) +
                           ", tag=" + std::to_string(tag) + ")";
  Bytes payload = take_blocking(source, tag, what);
  detail::record_flow(*hub_, /*is_send=*/false, source, rank_, tag,
                      payload.size());
  if (chk != nullptr) {
    chk->on_delivered(rank_, source, tag);
    chk->on_op_complete(rank_, what);
  }
  return payload;
}

void Comm::barrier() {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kBarrier, -1, -1, 0,
                       false);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  {
    detail::BlockGuard guard(chk, rank_, "barrier()");
    if (hub_->shm) {
      hub_->shm->barrier_collective(rank_, chk);
    } else {
      hub_->barrier.arrive_and_wait();
    }
  }
  if (!scope.outer()) detail::record_collective_seconds(*hub_, "barrier", timer);
  if (chk != nullptr && !scope.outer()) chk->on_op_complete(rank_, "barrier()");
}

Bytes Comm::allgatherv_bytes(Bytes mine) {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kAllgatherv, -1, -1,
                       mine.size(), false);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  // Accounting is identical on both backends: one logical message per
  // peer, so metrics and bytes_sent() stay backend-independent.
  for (int dest = 0; dest < size(); ++dest) {
    if (dest == rank_) continue;
    bytes_sent_ += mine.size();
    detail::count_message(*hub_, rank_, dest, mine.size());
    if (!hub_->shm) {
      hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
          rank_, detail::kTagAllgather, mine);
    }
  }
  Bytes result;
  if (hub_->shm) {
    detail::BlockGuard guard(chk, rank_, "allgatherv");
    // Nested only under allreduce, so when this call is not the top-level
    // collective the arena stamp must say "allreduce" — the collective the
    // user actually entered — for cross-rank verification and reporting.
    const auto stamp_kind = scope.outer()
                                ? detail::CollectiveKind::kAllreduce
                                : detail::CollectiveKind::kAllgatherv;
    result = hub_->shm->allgatherv(rank_, mine, chk, stamp_kind);
  } else {
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) {
        result.insert(result.end(), mine.begin(), mine.end());
      } else {
        Bytes part =
            take_blocking(source, detail::kTagAllgather,
                          "allgatherv: waiting for the contribution of rank " +
                              std::to_string(source));
        result.insert(result.end(), part.begin(), part.end());
      }
    }
  }
  if (!scope.outer()) {
    detail::record_collective_seconds(*hub_, "allgatherv", timer);
  }
  if (chk != nullptr && !scope.outer()) {
    chk->on_op_complete(rank_, "allgatherv");
  }
  return result;
}

std::vector<Bytes> Comm::alltoallv_bytes(const std::vector<Bytes>& outbox) {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kAlltoallv, -1, -1, 0,
                       false);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  for (int dest = 0; dest < size(); ++dest) {
    if (dest == rank_) continue;
    bytes_sent_ += outbox[static_cast<std::size_t>(dest)].size();
    detail::count_message(*hub_, rank_, dest,
                          outbox[static_cast<std::size_t>(dest)].size());
    if (!hub_->shm) {
      hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
          rank_, detail::kTagAlltoall, outbox[static_cast<std::size_t>(dest)]);
    }
  }
  std::vector<Bytes> inbox;
  if (hub_->shm) {
    detail::BlockGuard guard(chk, rank_, "alltoallv");
    inbox = hub_->shm->alltoallv(rank_, outbox, chk);
  } else {
    inbox.resize(static_cast<std::size_t>(size()));
    inbox[static_cast<std::size_t>(rank_)] =
        outbox[static_cast<std::size_t>(rank_)];
    for (int source = 0; source < size(); ++source) {
      if (source == rank_) continue;
      inbox[static_cast<std::size_t>(source)] =
          take_blocking(source, detail::kTagAlltoall,
                        "alltoallv: waiting for the slice from rank " +
                            std::to_string(source));
    }
  }
  if (!scope.outer()) {
    detail::record_collective_seconds(*hub_, "alltoallv", timer);
  }
  if (chk != nullptr && !scope.outer()) {
    chk->on_op_complete(rank_, "alltoallv");
  }
  return inbox;
}

std::vector<double> Comm::allreduce(std::span<const double> values,
                                    ReduceOp op) {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kAllreduce, -1,
                       static_cast<int>(op), values.size(), true);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  // Gather everyone's vector, reduce locally. O(P^2) messages — fine for
  // the rank counts we run (<= 64).
  std::vector<double> mine(values.begin(), values.end());
  Bytes raw = allgatherv_bytes(
      Bytes(reinterpret_cast<const std::byte*>(mine.data()),
            reinterpret_cast<const std::byte*>(mine.data()) +
                mine.size() * sizeof(double)));
  const std::size_t n = values.size();
  EPI_REQUIRE(raw.size() == n * sizeof(double) * static_cast<std::size_t>(size()),
              "allreduce: ranks contributed different lengths");
  std::vector<double> all(raw.size() / sizeof(double));
  std::memcpy(all.data(), raw.data(), raw.size());
  std::vector<double> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = all[i];
    for (int r = 1; r < size(); ++r) {
      const double x = all[static_cast<std::size_t>(r) * n + i];
      switch (op) {
        case ReduceOp::kSum: acc += x; break;
        case ReduceOp::kMin: acc = std::min(acc, x); break;
        case ReduceOp::kMax: acc = std::max(acc, x); break;
        case ReduceOp::kLogicalOr: acc = (acc != 0.0 || x != 0.0) ? 1.0 : 0.0; break;
      }
    }
    result[i] = acc;
  }
  if (!scope.outer()) {
    detail::record_collective_seconds(*hub_, "allreduce", timer);
  }
  if (chk != nullptr && !scope.outer()) chk->on_op_complete(rank_, "allreduce");
  return result;
}

double Comm::allreduce(double value, ReduceOp op) {
  return allreduce(std::span<const double>(&value, 1), op)[0];
}

std::vector<std::int64_t> Comm::allreduce(std::span<const std::int64_t> values,
                                          ReduceOp op) {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kAllreduce, -1,
                       static_cast<int>(op), values.size(), true);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  Bytes raw = allgatherv_bytes(
      Bytes(reinterpret_cast<const std::byte*>(values.data()),
            reinterpret_cast<const std::byte*>(values.data()) +
                values.size() * sizeof(std::int64_t)));
  const std::size_t n = values.size();
  EPI_REQUIRE(
      raw.size() == n * sizeof(std::int64_t) * static_cast<std::size_t>(size()),
      "allreduce: ranks contributed different lengths");
  std::vector<std::int64_t> all(raw.size() / sizeof(std::int64_t));
  if (!raw.empty()) std::memcpy(all.data(), raw.data(), raw.size());
  std::vector<std::int64_t> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t acc = all[i];
    for (int r = 1; r < size(); ++r) {
      const std::int64_t x = all[static_cast<std::size_t>(r) * n + i];
      switch (op) {
        case ReduceOp::kSum: acc += x; break;
        case ReduceOp::kMin: acc = std::min(acc, x); break;
        case ReduceOp::kMax: acc = std::max(acc, x); break;
        case ReduceOp::kLogicalOr: acc = (acc != 0 || x != 0) ? 1 : 0; break;
      }
    }
    result[i] = acc;
  }
  if (!scope.outer()) {
    detail::record_collective_seconds(*hub_, "allreduce", timer);
  }
  if (chk != nullptr && !scope.outer()) chk->on_op_complete(rank_, "allreduce");
  return result;
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  return allreduce(std::span<const std::int64_t>(&value, 1), op)[0];
}

std::vector<double> Comm::broadcast(std::vector<double> value, int root) {
  auto* chk = checker();
  if (chk != nullptr && !in_collective_) {
    chk->on_collective(rank_, detail::CollectiveKind::kBroadcast, root, -1,
                       value.size(), false);
  }
  detail::CollectiveScope scope(in_collective_);
  const Timer timer;
  EPI_REQUIRE(root >= 0 && root < size(), "broadcast from invalid root");
  if (rank_ == root) {
    Bytes raw(reinterpret_cast<const std::byte*>(value.data()),
              reinterpret_cast<const std::byte*>(value.data()) +
                  value.size() * sizeof(double));
    for (int dest = 0; dest < size(); ++dest) {
      if (dest == root) continue;
      bytes_sent_ += raw.size();
      detail::count_message(*hub_, rank_, dest, raw.size());
      if (!hub_->shm) {
        hub_->mailboxes[static_cast<std::size_t>(dest)]->put(
            rank_, detail::kTagBroadcast, raw);
      }
    }
    if (hub_->shm) {
      detail::BlockGuard guard(
          chk, rank_, "broadcast(root=" + std::to_string(root) + ")");
      hub_->shm->broadcast(rank_, root, raw, chk);
    }
    if (!scope.outer()) {
      detail::record_collective_seconds(*hub_, "broadcast", timer);
    }
    if (chk != nullptr && !scope.outer()) {
      chk->on_op_complete(rank_, "broadcast(root=" + std::to_string(root) + ")");
    }
    return value;
  }
  Bytes raw;
  if (hub_->shm) {
    detail::BlockGuard guard(chk, rank_,
                             "broadcast: waiting for root " +
                                 std::to_string(root));
    raw = hub_->shm->broadcast(rank_, root, Bytes{}, chk);
  } else {
    raw = take_blocking(root, detail::kTagBroadcast,
                        "broadcast: waiting for root " +
                            std::to_string(root));
  }
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  if (!scope.outer()) {
    detail::record_collective_seconds(*hub_, "broadcast", timer);
  }
  if (chk != nullptr && !scope.outer()) {
    chk->on_op_complete(rank_, "broadcast(root=" + std::to_string(root) + ")");
  }
  return out;
}

std::int64_t Comm::broadcast(std::int64_t value, int root) {
  auto v = broadcast(std::vector<double>{static_cast<double>(value)}, root);
  return static_cast<std::int64_t>(v[0]);
}

namespace {

/// EPI_MPILITE_BACKEND: unset/empty/"thread" -> thread backend,
/// "shm" -> forked processes over shared memory; anything else throws so
/// a typo cannot silently run the wrong transport.
bool shm_backend_selected() {
  const char* backend = env_raw("EPI_MPILITE_BACKEND");
  if (backend == nullptr || backend[0] == '\0') return false;
  const std::string_view value(backend);
  if (value == "thread") return false;
  if (value == "shm") return true;
  EPI_REQUIRE(false, "EPI_MPILITE_BACKEND='"
                         << backend
                         << "' is not a known transport; use 'thread' "
                            "(default) or 'shm'");
  return false;
}

}  // namespace

/// Shared SPMD driver. With `check_options` set, the group runs under the
/// CommChecker and the collected reports are returned; without it the
/// behaviour (and cost) is exactly the unchecked seed path.
std::vector<CheckReport> Runtime::run_impl(
    int num_ranks, const std::function<void(Comm&)>& body,
    const CheckOptions* check_options, const ObsHooks& obs) {
  EPI_REQUIRE(num_ranks > 0, "mpilite needs at least one rank");
  if (shm_backend_selected()) {
    return run_shm_impl(num_ranks, body, check_options, obs);
  }
  auto hub = std::make_shared<detail::Hub>(num_ranks);
  hub->obs = obs;
  for (auto& mailbox : hub->mailboxes) mailbox->set_abort_flag(&hub->aborted);
  hub->barrier.set_abort_flag(&hub->aborted);
  detail::CommChecker* chk = nullptr;
  if (check_options != nullptr) {
    hub->checker =
        std::make_unique<detail::CommChecker>(num_ranks, *check_options);
    chk = hub->checker.get();
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  if (chk != nullptr) {
    // The watchdog only observes checker state and aborts through the hub,
    // which outlives it (stop_watchdog precedes finalize below).
    detail::Hub* hub_raw = hub.get();
    chk->start_watchdog([hub_raw] { hub_raw->abort(); });
  }
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(hub, r);
      try {
        body(comm);
        if (chk != nullptr) chk->on_rank_done(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        hub->abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return detail::finish_run(*hub, chk, errors);
}

void Runtime::run(int num_ranks, const std::function<void(Comm&)>& body) {
  run(num_ranks, body, ObsHooks{});
}

void Runtime::run(int num_ranks, const std::function<void(Comm&)>& body,
                  const ObsHooks& obs) {
  if (!env_flag("EPI_MPILITE_CHECK")) {
    run_impl(num_ranks, body, nullptr, obs);
    return;
  }
  CheckOptions options;
  options.deadlock_timeout_s = env_positive_real("EPI_MPILITE_CHECK_TIMEOUT_S",
                                                 options.deadlock_timeout_s);
  const std::vector<CheckReport> reports =
      run_impl(num_ranks, body, &options, obs);
  if (!reports.empty()) {
    throw Error("mpilite CommChecker found " +
                std::to_string(reports.size()) + " problem(s):\n" +
                format_reports(reports));
  }
}

std::vector<CheckReport> Runtime::run_checked(
    int num_ranks, const std::function<void(Comm&)>& body,
    CheckOptions options) {
  return run_impl(num_ranks, body, &options);
}

}  // namespace epi::mpilite
