// mpilite — a thread-backed message-passing runtime.
//
// The paper's EpiHiper is "a parallel codeset in C++/MPI" (§III): the
// contact network is partitioned across MPI processes and infection events
// crossing partition boundaries are exchanged each tick. This environment
// has no MPI implementation installed, so mpilite provides the same
// programming model — SPMD ranks, matched point-to-point sends/receives,
// and the collectives EpiHiper needs (barrier, broadcast, allreduce,
// allgatherv, alltoallv) — with ranks running as threads of one process.
//
// The abstraction boundary is faithful: simulator code addresses peers only
// by rank and moves data only through Comm, so swapping in real MPI would
// be a reimplementation of this header, not of the simulator. All
// operations are collective-or-matched exactly as in MPI; there is no
// shared-memory back door.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "mpilite/check.hpp"
#include "util/error.hpp"

namespace epi::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace epi::mpilite {

using Bytes = std::vector<std::byte>;

/// Optional observability sinks for a communicator group. With `metrics`
/// set, every message records per-rank-pair "mpilite.msgs.SSS->DDD" /
/// "mpilite.bytes.SSS->DDD" counters and every top-level collective
/// records its wall time into an "mpilite.<collective>_s" histogram
/// (exactly 0.0 under deterministic_timing, keeping metrics files
/// byte-reproducible). MetricsRegistry is thread-safe; ranks report
/// concurrently. Null metrics = the exact unobserved seed path.
///
/// With `trace` set, every matched point-to-point send->recv pair is
/// emitted as a causal flow edge ('s'/'f' sharing an id keyed by
/// src/dst/tag/sequence — the per-(source, tag) FIFO mailbox guarantees
/// the nth send matches the nth recv). The TraceRecorder is not
/// thread-safe, so ranks buffer flow records inside the Hub under a mutex
/// and Runtime::run flushes them — deterministically ordered — from the
/// orchestration thread after the join.
struct ObsHooks {
  obs::MetricsRegistry* metrics = nullptr;
  bool deterministic_timing = false;
  obs::TraceRecorder* trace = nullptr;
};

/// Which transport carries a communicator group. The thread backend is the
/// default and the byte-identity reference; the shm backend runs ranks as
/// forked processes over a POSIX shared-memory segment (select it with
/// EPI_MPILITE_BACKEND=shm). Simulator code only needs this to decide
/// whether rank-local results must be gathered to rank 0 explicitly —
/// under threads they share an address space, under processes they do not.
enum class BackendKind { kThread, kShm };

/// Thrown on ranks woken by a group abort: another rank failed, or the
/// CommChecker's deadlock watchdog fired. Secondary by construction — the
/// primary cause is the first rank's exception or the checker report.
class AbortedError : public Error {
 public:
  explicit AbortedError(const std::string& what) : Error(what) {}
};

namespace detail {

class CommChecker;

/// One rank's inbound mailbox: messages keyed by (source, tag), delivered
/// in FIFO order per key (MPI's non-overtaking guarantee).
class Mailbox {
 public:
  void put(int source, int tag, Bytes payload);
  Bytes take(int source, int tag);

  /// Installs the group abort flag; a set flag turns blocked takes into
  /// exceptions so one failing rank cannot deadlock the others.
  void set_abort_flag(const std::atomic<bool>* flag);
  void wake_all();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Bytes>> queues_;
  const std::atomic<bool>* aborted_ = nullptr;
};

/// Reusable generation-counting barrier.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}
  void arrive_and_wait();

  void set_abort_flag(const std::atomic<bool>* flag);
  void wake_all();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  const std::atomic<bool>* aborted_ = nullptr;
};

struct Hub;  // shared state for one communicator group

}  // namespace detail

/// Reduction operators for allreduce.
enum class ReduceOp { kSum, kMin, kMax, kLogicalOr };

/// A communicator handle owned by one rank. All methods are safe to call
/// concurrently from the owning rank's thread only (as with MPI).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// The transport carrying this group (see BackendKind).
  BackendKind backend() const;

  /// This group's metrics sink, or null when none is attached. Under the
  /// shm backend each forked rank swaps in a process-local registry whose
  /// state is merged into the real one after the run, so rank bodies must
  /// reach the registry through here rather than capture a pointer from
  /// the launching process.
  obs::MetricsRegistry* metrics() const;

  // --- Point-to-point (blocking, buffered) ------------------------------

  void send_bytes(int dest, int tag, std::span<const std::byte> data);
  Bytes recv_bytes(int source, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(data.data()),
                   data.size() * sizeof(T)));
  }

  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send<T>(dest, tag, std::span<const T>(data));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes raw = recv_bytes(source, tag);
    EPI_REQUIRE(raw.size() % sizeof(T) == 0,
                "received payload not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  // --- Collectives (must be called by all ranks) ------------------------

  void barrier();

  /// Element-wise reduction of a double vector across ranks; every rank
  /// receives the result.
  std::vector<double> allreduce(std::span<const double> values, ReduceOp op);
  double allreduce(double value, ReduceOp op);
  std::int64_t allreduce(std::int64_t value, ReduceOp op);

  /// Exact integer reduction — no round-trip through double, so sums are
  /// correct beyond 2^53 (population-scale counters need this).
  std::vector<std::int64_t> allreduce(std::span<const std::int64_t> values,
                                      ReduceOp op);

  /// Concatenation of every rank's (variable-length) contribution, in rank
  /// order; every rank receives the full concatenation.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes raw = allgatherv_bytes(
        Bytes(reinterpret_cast<const std::byte*>(mine.data()),
              reinterpret_cast<const std::byte*>(mine.data()) + mine.size() * sizeof(T)));
    std::vector<T> out(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Personalized all-to-all: outbox[d] goes to rank d; returns inbox where
  /// inbox[s] came from rank s. Outbox must have exactly size() entries.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outbox) {
    static_assert(std::is_trivially_copyable_v<T>);
    EPI_REQUIRE(static_cast<int>(outbox.size()) == size(),
                "alltoallv outbox must have one entry per rank");
    std::vector<Bytes> raw_out(outbox.size());
    for (std::size_t d = 0; d < outbox.size(); ++d) {
      const auto* begin = reinterpret_cast<const std::byte*>(outbox[d].data());
      raw_out[d].assign(begin, begin + outbox[d].size() * sizeof(T));
    }
    std::vector<Bytes> raw_in = alltoallv_bytes(raw_out);
    std::vector<std::vector<T>> inbox(raw_in.size());
    for (std::size_t s = 0; s < raw_in.size(); ++s) {
      EPI_REQUIRE(raw_in[s].size() % sizeof(T) == 0,
                  "alltoallv payload not a multiple of element size");
      inbox[s].resize(raw_in[s].size() / sizeof(T));
      if (!raw_in[s].empty()) {
        std::memcpy(inbox[s].data(), raw_in[s].data(), raw_in[s].size());
      }
    }
    return inbox;
  }

  /// Broadcast from `root`: root's `value` is returned on every rank.
  std::vector<double> broadcast(std::vector<double> value, int root);
  std::int64_t broadcast(std::int64_t value, int root);

  /// Total bytes this rank has sent through point-to-point and alltoallv
  /// (communication-volume accounting for the strong-scaling model).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Runtime;
  Comm(std::shared_ptr<detail::Hub> hub, int rank)
      : hub_(std::move(hub)), rank_(rank) {}

  detail::CommChecker* checker() const;
  Bytes take_blocking(int source, int tag, const std::string& what);
  Bytes allgatherv_bytes(Bytes mine);
  std::vector<Bytes> alltoallv_bytes(const std::vector<Bytes>& outbox);
  Bytes shm_take(int source, int tag);

  std::shared_ptr<detail::Hub> hub_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
  // shm backend only: messages popped off a ring while waiting for a
  // different tag, parked here keyed by (source, tag). Per-key FIFO order
  // is preserved because the ring itself is FIFO per route and this rank
  // is the route's only consumer.
  std::map<std::pair<int, int>, std::deque<Bytes>> shm_stash_;
  // True while inside a top-level collective, so collectives implemented
  // in terms of other collectives (allreduce over allgatherv) record one
  // history entry, not two. Per-rank state; never shared across threads.
  bool in_collective_ = false;
};

/// SPMD launcher: runs `body` on `num_ranks` threads, each with its own
/// Comm. Exceptions thrown by any rank are captured; the first one (by
/// rank order) is rethrown after all threads join.
///
/// Setting EPI_MPILITE_CHECK=1 in the environment makes run() execute
/// under the CommChecker (see check.hpp) and throw epi::Error at finalize
/// if any report was produced — a zero-code-change correctness lane for
/// existing binaries. EPI_MPILITE_CHECK_TIMEOUT_S overrides the deadlock
/// watchdog patience.
class Runtime {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& body);

  /// As run(), with observability sinks attached to the group.
  static void run(int num_ranks, const std::function<void(Comm&)>& body,
                  const ObsHooks& obs);

  /// Runs `body` with the CommChecker enabled and returns the collected
  /// reports (empty for a correct program). Seeded-violation tests use
  /// this form; deadlocks terminate with a report instead of hanging.
  /// Exceptions thrown by rank bodies are rethrown as with run(), except
  /// CheckError and abort-induced AbortedError, which are represented by
  /// the reports themselves.
  static std::vector<CheckReport> run_checked(
      int num_ranks, const std::function<void(Comm&)>& body,
      CheckOptions options = {});

 private:
  static std::vector<CheckReport> run_impl(int num_ranks,
                                           const std::function<void(Comm&)>& body,
                                           const CheckOptions* check_options,
                                           const ObsHooks& obs = {});

  /// The shm-backend launcher (shm.cpp): forks one process per rank over
  /// a shared segment, runs rank 0 on the calling thread, and merges each
  /// child's shipped state (checker, flow records, metrics) before the
  /// shared finalize path.
  static std::vector<CheckReport> run_shm_impl(
      int num_ranks, const std::function<void(Comm&)>& body,
      const CheckOptions* check_options, const ObsHooks& obs);
};

}  // namespace epi::mpilite
