// Internal shared state of one mpilite communicator group ("the Hub"),
// split out of comm.cpp so both transport backends can see it:
//
//   * the thread backend (comm.cpp) — ranks as threads, Mailbox + Barrier;
//   * the shm backend (shm.cpp) — ranks as forked processes over a POSIX
//     shared-memory segment, with the Hub per process (fork gives every
//     child a copy-on-write snapshot; cross-process state lives in the
//     ShmBackend's mapped segment, and per-process state — flow-record
//     buffers, the child's local metrics registry — is shipped back to the
//     parent through each child's exit pipe and merged after the run).
//
// Nothing here is public API; simulator code includes only comm.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "mpilite/comm.hpp"
#include "util/timer.hpp"

namespace epi::mpilite::detail {

class ShmBackend;

/// One side of a point-to-point message, buffered for the post-join flow
/// flush. `seq` is the per-(source, dest, tag) FIFO ordinal, which is
/// exactly the mailbox matching rule, so the nth send pairs with the nth
/// recv. Both counters are 64-bit: multi-process runs are sized for
/// message volumes past 2^32.
struct FlowRecord {
  int source = 0;
  int dest = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t bytes = 0;
};

struct Hub {
  explicit Hub(int n);
  ~Hub();  // out of line: ShmBackend is incomplete here

  int size;
  std::atomic<bool> aborted{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  Barrier barrier;
  std::unique_ptr<CommChecker> checker;  // null unless checking enabled
  ObsHooks obs;                          // metrics null unless attached

  /// Non-null when this group runs over the process-spanning shared-memory
  /// backend; every Comm then routes point-to-point traffic through the
  /// segment's rings and collectives through its arena instead of the
  /// Mailbox/Barrier pair above.
  std::unique_ptr<ShmBackend> shm;

  // Flow-record buffer (see ObsHooks): ranks append under flow_mutex, the
  // orchestration thread drains after the join (thread backend) or after
  // merging every child's shipped records (shm backend).
  std::mutex flow_mutex;
  std::vector<FlowRecord> flow_sends;
  std::vector<FlowRecord> flow_recvs;
  std::map<std::tuple<int, int, int>, std::uint64_t> flow_send_seq;
  std::map<std::tuple<int, int, int>, std::uint64_t> flow_recv_seq;

  /// Sets the abort flag (and the segment-wide flag under shm) and wakes
  /// every blocked rank of this process.
  void abort();
};

/// Per-rank-pair traffic counters ("mpilite.msgs.SSS->DDD" and
/// "mpilite.bytes.SSS->DDD"); called at every message-submission site.
void count_message(const Hub& hub, int source, int dest, std::size_t bytes);

/// Records one top-level collective's wall time (0.0 under deterministic
/// timing) into "mpilite.<name>_s".
void record_collective_seconds(const Hub& hub, const char* name,
                               const Timer& timer);

/// Buffers one side of a user point-to-point message for the post-join
/// flow flush.
void record_flow(Hub& hub, bool is_send, int source, int dest, int tag,
                 std::size_t bytes);

/// Drains the flow buffer into the TraceRecorder (matched pairs only, in
/// (source, dest, tag, seq) order). Must run on the orchestration thread
/// after every rank finished — and, under shm, after child flow records
/// were merged into the parent's buffers.
void flush_flows(Hub& hub);

/// The backend-independent tail of a run: flushes flows, stops the
/// watchdog, classifies the shutdown (clean / deadlock / aborted — under
/// shm the abort flag may live only in the segment), collects the
/// checker's finalize reports, and rethrows the first rank error in rank
/// order (with CheckError and AbortedError swallowed when the checker ran,
/// since the reports carry the diagnosis). `errors` has one slot per rank;
/// child-process errors arrive reconstructed as exception_ptrs.
std::vector<CheckReport> finish_run(Hub& hub, CommChecker* chk,
                                    const std::vector<std::exception_ptr>& errors);

}  // namespace epi::mpilite::detail
