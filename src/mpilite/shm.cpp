// ShmBackend implementation + the shm-backend SPMD launcher
// (Runtime::run_shm_impl). See shm.hpp for the segment layout and
// DESIGN.md §15 for the protocol rationale.

#include "mpilite/shm.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <sstream>

#include "mpilite/hub.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace epi::mpilite {

namespace detail {

namespace {

// Ring and cell capacities. 256 KiB rings absorb a tick's worth of ghost
// exchanges without backpressure; larger messages stream through in
// chunks. Cells are one collective round's per-pair slice.
constexpr std::size_t kRingCap = std::size_t{1} << 18;
constexpr std::size_t kCellCap = std::size_t{1} << 18;

constexpr std::uint64_t kSegmentMagic = 0x45504953484d3031ull;  // "EPISHM01"

/// Timed cross-process futex wait: returns when *word != seen, on wake, or
/// after ~50 ms — whichever is first. The timeout is the abort backstop:
/// every wait loop re-checks the segment abort flag once per tick, so no
/// wake-per-waiter bookkeeping is needed for teardown. Deliberately NOT
/// FUTEX_PRIVATE_FLAG: waiters and wakers are different processes.
void futex_wait_tick(std::atomic<std::uint32_t>* word, std::uint32_t seen) {
  timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = 50 * 1000 * 1000;
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT, seen,
          &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
}

struct alignas(64) SegmentHeader {
  std::uint64_t magic = 0;
  std::uint32_t num_ranks = 0;
  std::atomic<std::uint32_t> aborted{0};
  // Central sense-reversing barrier: `waiting` counts arrivals, the last
  // arriver resets it and bumps `seq` (the futex word waiters sleep on).
  std::atomic<std::uint32_t> barrier_seq{0};
  std::atomic<std::uint32_t> barrier_waiting{0};
};

/// One rank's published (kind, root) for the collective it is entering.
/// Verified by every rank right after the entry barrier when the checker
/// is on. Deliberately NOT op/count: those mismatches must complete and be
/// reported from the recorded history at finalize, exactly as the thread
/// backend does.
struct alignas(64) ArenaStamp {
  std::atomic<std::uint32_t> kind{0};
  std::atomic<std::int32_t> root{0};
};

/// One SPSC byte ring per (source -> dest) route. `head`/`tail` are free-
/// running byte cursors (never wrapped, u64: volumes past 2^32 are in
/// scope); `seq` is the eventcount word bumped by every push and pop;
/// `waiters` gates the wake syscall on the fast path.
struct alignas(64) Ring {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiters{0};
  std::byte data[kRingCap];
};

std::atomic<unsigned> g_segment_counter{0};

std::string describe_stamp(CollectiveKind kind, int root) {
  std::string s = to_string(kind);
  if (kind == CollectiveKind::kBroadcast) {
    s += "(root=" + std::to_string(root) + ")";
  }
  return s;
}

}  // namespace

struct ShmBackend::Layout {
  SegmentHeader* header = nullptr;
  ShmCheckSlot* slots = nullptr;                // [n]
  std::atomic<std::uint64_t>* lens = nullptr;   // [n*n]
  ArenaStamp* stamps = nullptr;                 // [n]
  Ring* rings = nullptr;                        // [n*n]
  std::byte* cells = nullptr;                   // [n*n * kCellCap]

  Ring& ring(int src, int dst, int n) {
    return rings[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)];
  }
  std::byte* cell(int src, int dst, int n) {
    return cells + (static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(dst)) *
                       kCellCap;
  }
  std::atomic<std::uint64_t>& len(int src, int dst, int n) {
    return lens[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)];
  }
};

ShmBackend::ShmBackend(int num_ranks)
    : num_ranks_(num_ranks), layout_(std::make_unique<Layout>()) {
  EPI_REQUIRE(num_ranks >= 1, "mpilite shm backend needs at least one rank");
  const auto n = static_cast<std::size_t>(num_ranks);

  std::size_t off = 0;
  const auto take = [&off](std::size_t bytes) {
    const std::size_t at = off;
    off += (bytes + 63) & ~std::size_t{63};
    return at;
  };
  const std::size_t header_off = take(sizeof(SegmentHeader));
  const std::size_t slots_off = take(n * sizeof(ShmCheckSlot));
  const std::size_t lens_off = take(n * n * sizeof(std::atomic<std::uint64_t>));
  const std::size_t stamps_off = take(n * sizeof(ArenaStamp));
  const std::size_t rings_off = take(n * n * sizeof(Ring));
  const std::size_t cells_off = take(n * n * kCellCap);
  segment_bytes_ = off;

  // Created exclusively and unlinked before use: the segment lives on
  // through the mapping alone, so even a SIGKILL leaves no /dev/shm
  // residue. Children inherit the MAP_SHARED mapping at the same address
  // across fork, which is what lets Layout's raw pointers stay valid in
  // every process.
  char name[64];
  std::snprintf(name, sizeof(name), "/epi-mpilite-%ld-%u",
                static_cast<long>(getpid()), g_segment_counter.fetch_add(1));
  const int fd = shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
  EPI_REQUIRE(fd >= 0, "mpilite shm backend: shm_open("
                           << name << ") failed: " << std::strerror(errno));
  shm_unlink(name);
  if (ftruncate(fd, static_cast<off_t>(segment_bytes_)) != 0) {
    const int err = errno;
    close(fd);
    EPI_REQUIRE(false, "mpilite shm backend: ftruncate to "
                           << segment_bytes_
                           << " bytes failed: " << std::strerror(err));
  }
  base_ = mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
               fd, 0);
  const int map_err = errno;
  close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    EPI_REQUIRE(false, "mpilite shm backend: mmap of "
                           << segment_bytes_
                           << " bytes failed: " << std::strerror(map_err));
  }

  auto* bytes = static_cast<std::byte*>(base_);
  layout_->header = new (bytes + header_off) SegmentHeader();
  layout_->slots = reinterpret_cast<ShmCheckSlot*>(bytes + slots_off);
  layout_->lens =
      reinterpret_cast<std::atomic<std::uint64_t>*>(bytes + lens_off);
  layout_->stamps = reinterpret_cast<ArenaStamp*>(bytes + stamps_off);
  layout_->rings = reinterpret_cast<Ring*>(bytes + rings_off);
  layout_->cells = bytes + cells_off;
  for (std::size_t i = 0; i < n; ++i) new (layout_->slots + i) ShmCheckSlot();
  for (std::size_t i = 0; i < n * n; ++i) {
    new (layout_->lens + i) std::atomic<std::uint64_t>(0);
  }
  for (std::size_t i = 0; i < n; ++i) new (layout_->stamps + i) ArenaStamp();
  for (std::size_t i = 0; i < n * n; ++i) new (layout_->rings + i) Ring();
  layout_->header->magic = kSegmentMagic;
  layout_->header->num_ranks = static_cast<std::uint32_t>(num_ranks);
}

ShmBackend::~ShmBackend() {
  if (base_ != nullptr) munmap(base_, segment_bytes_);
}

void ShmBackend::abort() {
  layout_->header->aborted.store(1, std::memory_order_seq_cst);
  // No wakes needed: every blocked wait re-checks the flag within one
  // futex timeout tick.
}

bool ShmBackend::aborted() const {
  return layout_->header->aborted.load(std::memory_order_relaxed) != 0;
}

ShmCheckSlot* ShmBackend::check_slots() { return layout_->slots; }

void ShmBackend::wait_tick(std::atomic<std::uint32_t>& word,
                           std::uint32_t seen) const {
  futex_wait_tick(&word, seen);
}

// --- Frame header --------------------------------------------------------

void ShmBackend::encode_frame_header(std::uint64_t length, std::uint64_t tag,
                                     std::byte out[kFrameHeaderSize]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::byte>((length >> (8 * i)) & 0xff);
    out[8 + i] = static_cast<std::byte>((tag >> (8 * i)) & 0xff);
  }
}

void ShmBackend::decode_frame_header(const std::byte in[kFrameHeaderSize],
                                     std::uint64_t& length,
                                     std::uint64_t& tag) {
  length = 0;
  tag = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    tag |= static_cast<std::uint64_t>(in[8 + i]) << (8 * i);
  }
}

// --- Point-to-point rings -------------------------------------------------

namespace {

/// Copies `n` bytes into the ring at byte-cursor `pos` (mod capacity),
/// splitting at the wrap point.
void ring_store(Ring& ring, std::uint64_t pos, const std::byte* src,
                std::size_t n) {
  const std::size_t at = static_cast<std::size_t>(pos % kRingCap);
  const std::size_t first = std::min(n, kRingCap - at);
  std::memcpy(ring.data + at, src, first);
  std::memcpy(ring.data, src + first, n - first);
}

void ring_load(const Ring& ring, std::uint64_t pos, std::byte* dst,
               std::size_t n) {
  const std::size_t at = static_cast<std::size_t>(pos % kRingCap);
  const std::size_t first = std::min(n, kRingCap - at);
  std::memcpy(dst, ring.data + at, first);
  std::memcpy(dst + first, ring.data, n - first);
}

/// Bumps the eventcount and wakes the peer only if it announced a wait —
/// the common case (peer keeping up) costs no syscall.
void ring_signal(Ring& ring) {
  ring.seq.fetch_add(1, std::memory_order_seq_cst);
  if (ring.waiters.load(std::memory_order_seq_cst) > 0) {
    futex_wake_all(&ring.seq);
  }
}

}  // namespace

/// Streams `n` bytes onto the ring, blocking under backpressure. Each
/// transferred chunk ticks the checker so a long-but-moving send is never
/// diagnosed as a deadlock; a genuinely stuck send stops ticking and the
/// watchdog fires.
void ShmBackend::ring_write(void* ring_ptr, const std::byte* src,
                            std::size_t n, CommChecker* chk,
                            int progress_rank) const {
  Ring& ring = *static_cast<Ring*>(ring_ptr);
  std::size_t done = 0;
  while (done < n) {
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    for (;;) {
      if (aborted()) {
        throw AbortedError(
            "mpilite: communicator aborted while sending over shm");
      }
      const std::uint32_t seen = ring.seq.load(std::memory_order_seq_cst);
      head = ring.head.load(std::memory_order_acquire);
      tail = ring.tail.load(std::memory_order_relaxed);  // producer-owned
      if (tail - head < kRingCap) break;
      ring.waiters.fetch_add(1, std::memory_order_seq_cst);
      futex_wait_tick(&ring.seq, seen);
      ring.waiters.fetch_sub(1, std::memory_order_relaxed);
    }
    const std::size_t space = kRingCap - static_cast<std::size_t>(tail - head);
    const std::size_t chunk = std::min(n - done, space);
    ring_store(ring, tail, src + done, chunk);
    ring.tail.store(tail + chunk, std::memory_order_release);
    ring_signal(ring);
    if (chk != nullptr) chk->touch(progress_rank);
    done += chunk;
  }
}

void ShmBackend::ring_read(void* ring_ptr, std::byte* dst, std::size_t n,
                           CommChecker* chk, int progress_rank) const {
  Ring& ring = *static_cast<Ring*>(ring_ptr);
  std::size_t done = 0;
  while (done < n) {
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    for (;;) {
      if (aborted()) {
        throw AbortedError(
            "mpilite: communicator aborted while waiting for a message "
            "over shm");
      }
      const std::uint32_t seen = ring.seq.load(std::memory_order_seq_cst);
      tail = ring.tail.load(std::memory_order_acquire);
      head = ring.head.load(std::memory_order_relaxed);  // consumer-owned
      if (tail != head) break;
      ring.waiters.fetch_add(1, std::memory_order_seq_cst);
      futex_wait_tick(&ring.seq, seen);
      ring.waiters.fetch_sub(1, std::memory_order_relaxed);
    }
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    const std::size_t chunk = std::min(n - done, avail);
    ring_load(ring, head, dst + done, chunk);
    ring.head.store(head + chunk, std::memory_order_release);
    ring_signal(ring);
    if (chk != nullptr) chk->touch(progress_rank);
    done += chunk;
  }
}

void ShmBackend::push_message(int src, int dst, int tag,
                              std::span<const std::byte> data,
                              CommChecker* chk, int progress_rank) {
  EPI_ASSERT(src != dst, "shm self-sends are stashed in Comm, not ringed");
  Ring& ring = layout_->ring(src, dst, num_ranks_);
  std::byte header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint64_t>(data.size()),
                      static_cast<std::uint64_t>(tag), header);
  ring_write(&ring, header, kFrameHeaderSize, chk, progress_rank);
  ring_write(&ring, data.data(), data.size(), chk, progress_rank);
}

std::pair<int, Bytes> ShmBackend::pop_message(int src, int dst,
                                              CommChecker* chk,
                                              int progress_rank) {
  Ring& ring = layout_->ring(src, dst, num_ranks_);
  std::byte header[kFrameHeaderSize];
  ring_read(&ring, header, kFrameHeaderSize, chk, progress_rank);
  std::uint64_t length = 0;
  std::uint64_t tag = 0;
  decode_frame_header(header, length, tag);
  Bytes payload(static_cast<std::size_t>(length));
  ring_read(&ring, payload.data(), payload.size(), chk, progress_rank);
  return {static_cast<int>(tag), std::move(payload)};
}

// --- Arena collectives ----------------------------------------------------

void ShmBackend::arena_barrier(int rank, CommChecker* chk, const char* what) {
  (void)rank;
  (void)chk;
  SegmentHeader& header = *layout_->header;
  const std::uint32_t seq =
      header.barrier_seq.load(std::memory_order_acquire);
  const std::uint32_t arrived =
      header.barrier_waiting.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (arrived == static_cast<std::uint32_t>(num_ranks_)) {
    // Reset before the release bump: a rank entering the *next* barrier
    // only sees the new seq, so its increment lands on the fresh count.
    header.barrier_waiting.store(0, std::memory_order_relaxed);
    header.barrier_seq.fetch_add(1, std::memory_order_seq_cst);
    futex_wake_all(&header.barrier_seq);
    return;
  }
  while (header.barrier_seq.load(std::memory_order_acquire) == seq) {
    if (aborted()) {
      throw AbortedError(std::string("mpilite: communicator aborted at ") +
                         what);
    }
    futex_wait_tick(&header.barrier_seq, seq);
  }
}

void ShmBackend::stamp_and_sync(int rank, CollectiveKind kind, int root,
                                CommChecker* chk, const char* what) {
  ArenaStamp& mine = layout_->stamps[rank];
  mine.kind.store(static_cast<std::uint32_t>(kind), std::memory_order_relaxed);
  mine.root.store(root, std::memory_order_relaxed);
  arena_barrier(rank, chk, what);
  if (chk == nullptr) return;

  // Stamp verification: the entry barrier just proved every rank reached
  // *a* collective; the stamps prove it was the same one. Rank 0 scans its
  // peers, everyone else compares against rank 0, so a mismatch is
  // reported from both perspectives. (kind, root) only — op/count
  // disagreements complete and surface from the recorded history at
  // finalize, keeping thread-backend semantics.
  const auto check_against = [&](int other) {
    const ArenaStamp& theirs = layout_->stamps[other];
    const auto their_kind = static_cast<CollectiveKind>(
        theirs.kind.load(std::memory_order_relaxed));
    const int their_root = theirs.root.load(std::memory_order_relaxed);
    if (their_kind == kind && their_root == root) return;
    std::ostringstream oss;
    oss << "collective entry mismatch: this rank entered "
        << describe_stamp(kind, root) << " but rank " << other << " entered "
        << describe_stamp(their_kind, their_root)
        << "; every rank of a communicator must enter the same collective "
        << "in the same order";
    chk->report_violation(CheckKind::kCollectiveMismatch, rank, oss.str());
    throw CheckError("mpilite check: " + oss.str());
  };
  if (rank == 0) {
    for (int r = 1; r < num_ranks_; ++r) check_against(r);
  } else {
    check_against(0);
  }
}

void ShmBackend::barrier_collective(int rank, CommChecker* chk) {
  stamp_and_sync(rank, CollectiveKind::kBarrier, -1, chk, "barrier()");
  // Exit barrier: keeps the stamps stable until every rank verified them.
  arena_barrier(rank, chk, "barrier()");
}

namespace {

std::size_t rounds_for(std::uint64_t max_len) {
  if (max_len == 0) return 1;
  return static_cast<std::size_t>((max_len + kCellCap - 1) / kCellCap);
}

}  // namespace

Bytes ShmBackend::allgatherv(int rank, const Bytes& mine, CommChecker* chk,
                             CollectiveKind stamp_kind) {
  const int n = num_ranks_;
  layout_->len(rank, rank, n).store(mine.size(), std::memory_order_relaxed);
  stamp_and_sync(rank, stamp_kind, -1, chk, "allgatherv");

  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(n));
  std::uint64_t max_len = 0;
  std::uint64_t total = 0;
  for (int r = 0; r < n; ++r) {
    sizes[static_cast<std::size_t>(r)] =
        layout_->len(r, r, n).load(std::memory_order_relaxed);
    max_len = std::max(max_len, sizes[static_cast<std::size_t>(r)]);
    total += sizes[static_cast<std::size_t>(r)];
  }
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n), 0);
  for (int r = 1; r < n; ++r) {
    prefix[static_cast<std::size_t>(r)] =
        prefix[static_cast<std::size_t>(r - 1)] +
        sizes[static_cast<std::size_t>(r - 1)];
  }

  Bytes result(static_cast<std::size_t>(total));
  const std::size_t rounds = rounds_for(max_len);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t off = static_cast<std::uint64_t>(round) * kCellCap;
    if (off < mine.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(kCellCap, mine.size() - off);
      std::memcpy(layout_->cell(rank, rank, n), mine.data() + off, chunk);
    }
    arena_barrier(rank, chk, "allgatherv");
    for (int r = 0; r < n; ++r) {
      const std::uint64_t len = sizes[static_cast<std::size_t>(r)];
      if (off >= len) continue;
      const std::size_t chunk = std::min<std::size_t>(kCellCap, len - off);
      const std::byte* src = (r == rank)
                                 ? mine.data() + off
                                 : layout_->cell(r, r, n);
      std::memcpy(result.data() + prefix[static_cast<std::size_t>(r)] + off,
                  src, chunk);
    }
    arena_barrier(rank, chk, "allgatherv");
    if (chk != nullptr) chk->touch(rank);
  }
  return result;
}

std::vector<Bytes> ShmBackend::alltoallv(int rank,
                                         const std::vector<Bytes>& outbox,
                                         CommChecker* chk) {
  const int n = num_ranks_;
  for (int d = 0; d < n; ++d) {
    layout_->len(rank, d, n).store(outbox[static_cast<std::size_t>(d)].size(),
                                   std::memory_order_relaxed);
  }
  stamp_and_sync(rank, CollectiveKind::kAlltoallv, -1, chk, "alltoallv");

  std::vector<std::uint64_t> in_sizes(static_cast<std::size_t>(n));
  std::uint64_t max_len = 0;
  for (int s = 0; s < n; ++s) {
    in_sizes[static_cast<std::size_t>(s)] =
        layout_->len(s, rank, n).load(std::memory_order_relaxed);
    for (int d = 0; d < n; ++d) {
      max_len = std::max(max_len,
                         layout_->len(s, d, n).load(std::memory_order_relaxed));
    }
  }

  std::vector<Bytes> inbox(static_cast<std::size_t>(n));
  inbox[static_cast<std::size_t>(rank)] = outbox[static_cast<std::size_t>(rank)];
  for (int s = 0; s < n; ++s) {
    if (s == rank) continue;
    inbox[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(in_sizes[static_cast<std::size_t>(s)]));
  }

  const std::size_t rounds = rounds_for(max_len);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t off = static_cast<std::uint64_t>(round) * kCellCap;
    for (int d = 0; d < n; ++d) {
      if (d == rank) continue;
      const Bytes& out = outbox[static_cast<std::size_t>(d)];
      if (off >= out.size()) continue;
      const std::size_t chunk =
          std::min<std::size_t>(kCellCap, out.size() - off);
      std::memcpy(layout_->cell(rank, d, n), out.data() + off, chunk);
    }
    arena_barrier(rank, chk, "alltoallv");
    for (int s = 0; s < n; ++s) {
      if (s == rank) continue;
      Bytes& in = inbox[static_cast<std::size_t>(s)];
      if (off >= in.size()) continue;
      const std::size_t chunk = std::min<std::size_t>(kCellCap, in.size() - off);
      std::memcpy(in.data() + off, layout_->cell(s, rank, n), chunk);
    }
    arena_barrier(rank, chk, "alltoallv");
    if (chk != nullptr) chk->touch(rank);
  }
  return inbox;
}

Bytes ShmBackend::broadcast(int rank, int root, const Bytes& mine,
                            CommChecker* chk) {
  const int n = num_ranks_;
  if (rank == root) {
    layout_->len(root, root, n).store(mine.size(), std::memory_order_relaxed);
  }
  stamp_and_sync(rank, CollectiveKind::kBroadcast, root, chk, "broadcast");

  const std::uint64_t len =
      layout_->len(root, root, n).load(std::memory_order_relaxed);
  Bytes out;
  if (rank != root) out.resize(static_cast<std::size_t>(len));

  const std::size_t rounds = rounds_for(len);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t off = static_cast<std::uint64_t>(round) * kCellCap;
    if (rank == root && off < len) {
      const std::size_t chunk = std::min<std::size_t>(kCellCap, len - off);
      std::memcpy(layout_->cell(root, root, n), mine.data() + off, chunk);
    }
    arena_barrier(rank, chk, "broadcast");
    if (rank != root && off < len) {
      const std::size_t chunk = std::min<std::size_t>(kCellCap, len - off);
      std::memcpy(out.data() + off, layout_->cell(root, root, n), chunk);
    }
    arena_barrier(rank, chk, "broadcast");
    if (chk != nullptr) chk->touch(rank);
  }
  return rank == root ? mine : out;
}

}  // namespace detail

// --- The shm-backend SPMD launcher ---------------------------------------

namespace {

using detail::CommChecker;
using detail::FlowRecord;
using detail::Hub;

// Child exit blob helpers. The blob travels over a parent<->child pipe on
// the same machine, so plain little-endian scalar dumps suffice.

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_str(std::vector<std::byte>& out, const std::string& s) {
  put_u64(out, s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
}

void put_blob(std::vector<std::byte>& out, const std::vector<std::byte>& b) {
  put_u64(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

void put_flows(std::vector<std::byte>& out,
               const std::vector<FlowRecord>& flows) {
  put_u64(out, flows.size());
  for (const FlowRecord& f : flows) {
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.source)));
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.dest)));
    put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.tag)));
    put_u64(out, f.seq);
    put_u64(out, f.bytes);
  }
}

class ExitBlobReader {
 public:
  explicit ExitBlobReader(const std::vector<std::byte>& blob) : blob_(blob) {}

  std::uint8_t u8() {
    EPI_REQUIRE(pos_ + 1 <= blob_.size(),
                "mpilite: truncated exit blob from rank process");
    return static_cast<std::uint8_t>(blob_[pos_++]);
  }

  std::uint64_t u64() {
    EPI_REQUIRE(pos_ + 8 <= blob_.size(),
                "mpilite: truncated exit blob from rank process");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint64_t len = u64();
    EPI_REQUIRE(pos_ + len <= blob_.size(),
                "mpilite: truncated exit blob from rank process");
    std::string s(len, '\0');
    for (std::uint64_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>(blob_[pos_ + i]);
    }
    pos_ += len;
    return s;
  }

  std::vector<std::byte> blob() {
    const std::uint64_t len = u64();
    EPI_REQUIRE(pos_ + len <= blob_.size(),
                "mpilite: truncated exit blob from rank process");
    std::vector<std::byte> b(blob_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             blob_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }

  std::vector<FlowRecord> flows() {
    const std::uint64_t count = u64();
    std::vector<FlowRecord> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      FlowRecord f;
      f.source = static_cast<int>(static_cast<std::uint32_t>(u64()));
      f.dest = static_cast<int>(static_cast<std::uint32_t>(u64()));
      f.tag = static_cast<int>(static_cast<std::uint32_t>(u64()));
      f.seq = u64();
      f.bytes = u64();
      out.push_back(f);
    }
    return out;
  }

  bool done() const { return pos_ == blob_.size(); }

 private:
  const std::vector<std::byte>& blob_;
  std::size_t pos_ = 0;
};

void write_all(int fd, const std::vector<std::byte>& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful left to do
    }
    done += static_cast<std::size_t>(n);
  }
}

std::vector<std::byte> read_to_eof(int fd) {
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

// Child exit statuses, shipped as the blob's first byte and reconstructed
// into the same exception taxonomy the thread backend's rethrow loop sees.
constexpr std::uint8_t kChildOk = 0;
constexpr std::uint8_t kChildError = 1;
constexpr std::uint8_t kChildAborted = 2;
constexpr std::uint8_t kChildCheckError = 3;

/// The forked rank's whole life: swap in a process-local metrics registry,
/// run the body, then ship status + checker state + flow records + metrics
/// through the exit pipe and _exit (no destructors: the parent owns the
/// segment, and gtest/atexit state inherited from the parent must not
/// fire twice). `comm` is built by the caller (Runtime is Comm's friend;
/// this free function is not).
[[noreturn]] void child_rank_main(const std::shared_ptr<Hub>& hub, int rank,
                                  Comm& comm,
                                  const std::function<void(Comm&)>& body,
                                  int write_fd) {
  obs::MetricsRegistry local_metrics;
  const bool ship_metrics = hub->obs.metrics != nullptr;
  if (ship_metrics) hub->obs.metrics = &local_metrics;

  CommChecker* chk = hub->checker.get();
  std::uint8_t status = kChildOk;
  std::string what;
  try {
    body(comm);
    if (chk != nullptr) chk->on_rank_done(rank);
  } catch (const CheckError& e) {
    status = kChildCheckError;
    what = e.what();
    hub->abort();
  } catch (const AbortedError& e) {
    status = kChildAborted;
    what = e.what();
    hub->abort();
  } catch (const std::exception& e) {
    status = kChildError;
    what = e.what();
    hub->abort();
  } catch (...) {
    status = kChildError;
    what = "mpilite: rank body threw a non-standard exception";
    hub->abort();
  }

  std::vector<std::byte> blob;
  put_u8(blob, status);
  put_str(blob, what);
  put_u8(blob, chk != nullptr ? 1 : 0);
  if (chk != nullptr) put_blob(blob, chk->serialize_child_state(rank));
  put_flows(blob, hub->flow_sends);
  put_flows(blob, hub->flow_recvs);
  put_u8(blob, ship_metrics ? 1 : 0);
  if (ship_metrics) put_blob(blob, local_metrics.serialize_state());
  write_all(write_fd, blob);
  ::close(write_fd);
  ::_exit(0);
}

}  // namespace

std::vector<CheckReport> Runtime::run_shm_impl(
    int num_ranks, const std::function<void(Comm&)>& body,
    const CheckOptions* check_options, const ObsHooks& obs) {
  auto hub = std::make_shared<Hub>(num_ranks);
  hub->obs = obs;
  hub->shm = std::make_unique<detail::ShmBackend>(num_ranks);
  // Mailboxes and the thread barrier are unused under shm, but keep their
  // abort wiring so Hub::abort stays backend-agnostic.
  for (auto& mailbox : hub->mailboxes) mailbox->set_abort_flag(&hub->aborted);
  hub->barrier.set_abort_flag(&hub->aborted);
  CommChecker* chk = nullptr;
  if (check_options != nullptr) {
    hub->checker =
        std::make_unique<CommChecker>(num_ranks, *check_options);
    chk = hub->checker.get();
    // Attach before forking so every process inherits a checker whose
    // phase/progress mirrors live in the shared segment.
    chk->attach_shm(hub->shm->check_slots());
  }

  // Fork ranks 1..n-1 first — before the watchdog thread exists, so
  // children inherit a single-threaded process image with no locked
  // mutexes. Rank 0 stays on the calling thread, as the thread backend's
  // orchestration rank would.
  std::vector<int> read_fds(static_cast<std::size_t>(num_ranks), -1);
  std::vector<pid_t> pids(static_cast<std::size_t>(num_ranks), 0);
  for (int r = 1; r < num_ranks; ++r) {
    int fds[2];
    if (::pipe(fds) != 0) {
      const int err = errno;
      hub->abort();  // release any already-forked children
      EPI_REQUIRE(false, "mpilite shm backend: pipe() failed: "
                             << std::strerror(err));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      ::close(fds[0]);
      ::close(fds[1]);
      hub->abort();  // release any already-forked children
      EPI_REQUIRE(false, "mpilite shm backend: fork() for rank "
                             << r << " failed: " << std::strerror(err));
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (int prev = 1; prev < r; ++prev) {
        if (read_fds[static_cast<std::size_t>(prev)] >= 0) {
          ::close(read_fds[static_cast<std::size_t>(prev)]);
        }
      }
      Comm comm(hub, r);
      child_rank_main(hub, r, comm, body, fds[1]);  // never returns
    }
    ::close(fds[1]);
    read_fds[static_cast<std::size_t>(r)] = fds[0];
    pids[static_cast<std::size_t>(r)] = pid;
  }

  if (chk != nullptr) {
    Hub* hub_raw = hub.get();
    chk->start_watchdog([hub_raw] { hub_raw->abort(); });
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));
  try {
    Comm comm(hub, 0);
    body(comm);
    if (chk != nullptr) chk->on_rank_done(0);
  } catch (...) {
    errors[0] = std::current_exception();
    hub->abort();
  }

  // Drain children in rank order: read each exit blob to EOF *before*
  // waitpid (a child blocked writing a large blob unblocks as we read; its
  // _exit closes the pipe and ends the read), then absorb its state so the
  // parent's finalize sees the same global view the thread backend builds
  // in one address space.
  for (int r = 1; r < num_ranks; ++r) {
    const std::vector<std::byte> raw =
        read_to_eof(read_fds[static_cast<std::size_t>(r)]);
    ::close(read_fds[static_cast<std::size_t>(r)]);
    int wstatus = 0;
    ::waitpid(pids[static_cast<std::size_t>(r)], &wstatus, 0);

    try {
      EPI_REQUIRE(!raw.empty(), "rank process exited without an exit blob");
      ExitBlobReader in(raw);
      const std::uint8_t status = in.u8();
      const std::string what = in.str();
      if (in.u8() != 0) {
        const std::vector<std::byte> checker_blob = in.blob();
        if (chk != nullptr) chk->absorb_child_state(r, checker_blob);
      }
      {
        const std::vector<FlowRecord> sends = in.flows();
        const std::vector<FlowRecord> recvs = in.flows();
        std::lock_guard<std::mutex> lock(hub->flow_mutex);
        hub->flow_sends.insert(hub->flow_sends.end(), sends.begin(),
                               sends.end());
        hub->flow_recvs.insert(hub->flow_recvs.end(), recvs.begin(),
                               recvs.end());
      }
      if (in.u8() != 0) {
        const std::vector<std::byte> metrics_blob = in.blob();
        if (obs.metrics != nullptr) obs.metrics->merge_state(metrics_blob);
      }
      EPI_REQUIRE(in.done(), "trailing bytes in rank exit blob");

      switch (status) {
        case kChildOk:
          break;
        case kChildAborted:
          errors[static_cast<std::size_t>(r)] =
              std::make_exception_ptr(AbortedError(what));
          break;
        case kChildCheckError:
          errors[static_cast<std::size_t>(r)] =
              std::make_exception_ptr(CheckError(what));
          break;
        default:
          errors[static_cast<std::size_t>(r)] =
              std::make_exception_ptr(Error(what));
          break;
      }
    } catch (const Error& e) {
      // Truncated or missing blob: the child died before shipping state
      // (hard crash, _exit from library code). Surface a per-rank error;
      // its checker state and flows are lost but the run terminates with
      // a diagnosis instead of corrupting the merge.
      std::ostringstream oss;
      oss << "mpilite: rank " << r << " process ("
          << pids[static_cast<std::size_t>(r)] << ") ";
      if (WIFSIGNALED(wstatus)) {
        oss << "was killed by signal " << WTERMSIG(wstatus);
      } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
        oss << "exited with status " << WEXITSTATUS(wstatus);
      } else {
        oss << "shipped an unusable exit blob";
      }
      oss << " (" << e.what() << ")";
      errors[static_cast<std::size_t>(r)] =
          std::make_exception_ptr(Error(oss.str()));
    }
  }

  return detail::finish_run(*hub, chk, errors);
}

}  // namespace epi::mpilite
