// ShmBackend — the process-spanning transport behind mpilite's Runtime/
// Comm API (DESIGN.md §15). Ranks are forked processes sharing one POSIX
// shared-memory segment created with shm_open + mmap(MAP_SHARED) and
// unlinked immediately (no /dev/shm residue even on crash). The segment
// holds, in order:
//
//   header     magic, rank count, the segment-wide abort flag, and the
//              central sense-reversing futex barrier;
//   checker    one ShmCheckSlot per rank — the cross-process mirror of
//              each rank's phase / blocked-site / last-op / progress that
//              the parent's deadlock watchdog reads (check.hpp);
//   arena      collective metadata: a u64 lens[n*n] matrix (64-bit size
//              headers end to end) and one (kind, root) stamp per rank
//              that the CommChecker verifies after the entry barrier;
//   rings      n*n single-producer single-consumer byte rings, one per
//              (source -> dest) route, carrying framed point-to-point
//              messages ({u64 length, u64 tag} header + payload) in FIFO
//              send order — chunked, so messages larger than a ring
//              stream through it under backpressure;
//   cells      n*n fixed data slots the collectives copy through in
//              barrier-separated rounds (cell (s, d) carries s's
//              contribution toward d; diagonal cells carry the
//              one-to-all payloads of broadcast/allgatherv).
//
// Every blocking wait is a futex wait with a short timeout that re-checks
// the abort flag, so one failing rank (or the watchdog) unwedges the whole
// group without a wake-per-waiter protocol. All collective results are
// assembled in rank order from the same bytes the thread backend would
// produce, which is what makes the two backends byte-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpilite/check.hpp"
#include "mpilite/comm.hpp"

namespace epi::mpilite::detail {

class ShmBackend {
 public:
  /// Creates, maps, and formats the segment for `num_ranks`. Must run in
  /// the parent before any fork so children inherit the mapping.
  explicit ShmBackend(int num_ranks);
  ~ShmBackend();
  ShmBackend(const ShmBackend&) = delete;
  ShmBackend& operator=(const ShmBackend&) = delete;

  int size() const { return num_ranks_; }

  /// Raises the segment-wide abort flag; every blocked rank (in any
  /// process) observes it within one futex-timeout tick and throws
  /// AbortedError.
  void abort();
  bool aborted() const;

  /// The checker's cross-process mirror slots (one per rank), for
  /// CommChecker::attach_shm.
  ShmCheckSlot* check_slots();

  // --- Point-to-point (framed SPSC rings) -------------------------------

  /// Streams one framed message onto the (src -> dst) ring, blocking under
  /// backpressure. `chk` (may be null) gets a progress tick per chunk so
  /// a long transfer is never mistaken for a deadlock.
  void push_message(int src, int dst, int tag, std::span<const std::byte> data,
                    CommChecker* chk, int progress_rank);

  /// Pops the next framed message from the (src -> dst) ring in FIFO send
  /// order, blocking until one arrives. Returns {tag, payload}; the caller
  /// (Comm) demultiplexes tags it is not currently waiting for.
  std::pair<int, Bytes> pop_message(int src, int dst, CommChecker* chk,
                                    int progress_rank);

  // --- Collectives (arena, barrier-separated rounds) --------------------

  /// The plain barrier collective: stamp, entry barrier, stamp
  /// verification, exit barrier.
  void barrier_collective(int rank, CommChecker* chk);

  /// Concatenation of every rank's contribution in rank order (the exact
  /// bytes the thread backend's mailbox implementation returns).
  /// `stamp_kind` is the USER-level collective being verified — allreduce
  /// runs over this transport, and a mismatch report must name what the
  /// caller wrote, not the transport detail.
  Bytes allgatherv(int rank, const Bytes& mine, CommChecker* chk,
                   CollectiveKind stamp_kind = CollectiveKind::kAllgatherv);

  /// Personalized all-to-all; outbox[d] goes to rank d, inbox[s] came
  /// from rank s.
  std::vector<Bytes> alltoallv(int rank, const std::vector<Bytes>& outbox,
                               CommChecker* chk);

  /// Broadcast of root's raw bytes to every rank.
  Bytes broadcast(int rank, int root, const Bytes& mine, CommChecker* chk);

  // --- Frame header encoding (exposed for the 64-bit regression test) ---

  /// 16-byte ring frame header: little-endian u64 payload length (sizes
  /// past 2^32 must survive the wire) and u64 tag.
  static constexpr std::size_t kFrameHeaderSize = 16;
  static void encode_frame_header(std::uint64_t length, std::uint64_t tag,
                                  std::byte out[kFrameHeaderSize]);
  static void decode_frame_header(const std::byte in[kFrameHeaderSize],
                                  std::uint64_t& length, std::uint64_t& tag);

 private:
  struct Layout;

  // Arena phase 1: publish this rank's (kind, root) stamp, cross the entry
  // barrier, and (checker only) verify every rank entered the same
  // collective — recording + throwing CheckError on mismatch.
  void stamp_and_sync(int rank, CollectiveKind kind, int root,
                      CommChecker* chk, const char* what);
  void arena_barrier(int rank, CommChecker* chk, const char* what);
  void wait_tick(std::atomic<std::uint32_t>& word, std::uint32_t seen) const;

  // Chunked blocking byte streams over one ring (`ring` is a Ring*, typed
  // void here because Ring is private to shm.cpp).
  void ring_write(void* ring, const std::byte* src, std::size_t n,
                  CommChecker* chk, int progress_rank) const;
  void ring_read(void* ring, std::byte* dst, std::size_t n, CommChecker* chk,
                 int progress_rank) const;

  int num_ranks_;
  std::size_t segment_bytes_ = 0;
  void* base_ = nullptr;
  std::unique_ptr<Layout> layout_;
};

}  // namespace epi::mpilite::detail
