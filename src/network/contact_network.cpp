#include "network/contact_network.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace epi {

namespace {
const char* const kActivityNames[kActivityTypeCount] = {
    "home", "work", "shopping", "other", "school", "college", "religion"};
}

const char* activity_name(ActivityType a) {
  const auto i = static_cast<std::size_t>(a);
  EPI_REQUIRE(i < kActivityTypeCount, "invalid ActivityType " << i);
  return kActivityNames[i];
}

ActivityType activity_from_name(const std::string& name) {
  for (int i = 0; i < kActivityTypeCount; ++i) {
    if (name == kActivityNames[i]) return static_cast<ActivityType>(i);
  }
  throw ConfigError("unknown activity type: " + name);
}

void ContactNetwork::build_out_edges() {
  // Counting sort of edge indices by source; visiting e in ascending order
  // leaves every bucket ascending, which the frontier kernel relies on to
  // reproduce the in-CSR scan's edge order exactly.
  out_offsets_.assign(static_cast<std::size_t>(node_count_) + 1, 0);
  for (const Contact& c : contacts_) {
    ++out_offsets_[static_cast<std::size_t>(c.source) + 1];
  }
  for (std::size_t u = 0; u < node_count_; ++u) {
    out_offsets_[u + 1] += out_offsets_[u];
  }
  out_edges_.resize(contacts_.size());
  std::vector<EdgeIndex> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  for (EdgeIndex e = 0; e < contacts_.size(); ++e) {
    out_edges_[cursor[contacts_[e].source]++] = e;
  }
}

PersonId ContactNetwork::target_of(EdgeIndex e) const {
  EPI_REQUIRE(e < edge_count(), "edge index out of range");
  // Binary search the CSR offsets for the bucket containing e.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), e);
  return static_cast<PersonId>(it - offsets_.begin() - 1);
}

double ContactNetwork::contact_minutes(PersonId v) const {
  double total = 0.0;
  for (EdgeIndex e = in_begin(v); e < in_end(v); ++e) {
    total += contacts_[e].duration_minutes;
  }
  return total;
}

std::uint64_t ContactNetwork::content_hash() const {
  // FNV-1a over the raw edge array plus the node count; stable across
  // runs because finalize() orders edges deterministically.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  mix(&node_count_, sizeof(node_count_));
  if (!contacts_.empty()) {
    mix(contacts_.data(), contacts_.size() * sizeof(Contact));
  }
  return h;
}

void ContactNetwork::write_csv(std::ostream& out) const {
  out << "targetPID,sourcePID,targetActivity,sourceActivity,start,duration,weight\n";
  for (PersonId v = 0; v < node_count_; ++v) {
    for (EdgeIndex e = in_begin(v); e < in_end(v); ++e) {
      const Contact& c = contacts_[e];
      out << v << ',' << c.source << ','
          << kActivityNames[c.target_activity] << ','
          << kActivityNames[c.source_activity] << ',' << c.start_minute << ','
          << c.duration_minutes << ',' << c.weight << '\n';
    }
  }
}

ContactNetwork ContactNetwork::read_csv(std::istream& in, PersonId node_count) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const CsvTable table = parse_csv(buffer.str());
  // The CSV carries each directed edge explicitly; rebuild CSR directly
  // instead of via the builder (which would double them).
  std::vector<std::pair<PersonId, Contact>> edges;
  edges.reserve(table.row_count());
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    const auto target = static_cast<PersonId>(table.cell_int(row, "targetPID"));
    EPI_REQUIRE(target < node_count, "targetPID out of range: " << target);
    Contact c;
    c.source = static_cast<PersonId>(table.cell_int(row, "sourcePID"));
    EPI_REQUIRE(c.source < node_count, "sourcePID out of range: " << c.source);
    c.target_activity = static_cast<std::uint8_t>(
        activity_from_name(table.cell(row, table.column("targetActivity"))));
    c.source_activity = static_cast<std::uint8_t>(
        activity_from_name(table.cell(row, table.column("sourceActivity"))));
    c.start_minute = static_cast<std::uint16_t>(table.cell_int(row, "start"));
    c.duration_minutes =
        static_cast<std::uint16_t>(table.cell_int(row, "duration"));
    c.weight = static_cast<float>(table.cell_double(row, "weight"));
    edges.emplace_back(target, c);
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ContactNetwork net;
  net.node_count_ = node_count;
  net.offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  net.contacts_.reserve(edges.size());
  for (const auto& [target, contact] : edges) {
    ++net.offsets_[static_cast<std::size_t>(target) + 1];
    net.contacts_.push_back(contact);
  }
  for (std::size_t v = 0; v < node_count; ++v) {
    net.offsets_[v + 1] += net.offsets_[v];
  }
  net.build_out_edges();
  return net;
}

namespace {
constexpr std::uint64_t kBinaryMagic = 0x45504948495052ULL;  // "EPIHIPR"
}

void ContactNetwork::write_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot write network binary: " + path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t nodes = node_count_;
  const std::uint64_t edges = contacts_.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&nodes), sizeof(nodes));
  out.write(reinterpret_cast<const char*>(&edges), sizeof(edges));
  out.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(contacts_.data()),
            static_cast<std::streamsize>(contacts_.size() * sizeof(Contact)));
  EPI_REQUIRE(out.good(), "short write to " << path);
}

ContactNetwork ContactNetwork::read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read network binary: " + path);
  std::uint64_t magic = 0, nodes = 0, edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&nodes), sizeof(nodes));
  in.read(reinterpret_cast<char*>(&edges), sizeof(edges));
  EPI_REQUIRE(in.good() && magic == kBinaryMagic,
              "not an EpiScale network binary: " << path);
  ContactNetwork net;
  net.node_count_ = static_cast<PersonId>(nodes);
  net.offsets_.resize(nodes + 1);
  net.contacts_.resize(edges);
  in.read(reinterpret_cast<char*>(net.offsets_.data()),
          static_cast<std::streamsize>(net.offsets_.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(net.contacts_.data()),
          static_cast<std::streamsize>(net.contacts_.size() * sizeof(Contact)));
  EPI_REQUIRE(in.good(), "truncated network binary: " << path);
  net.build_out_edges();
  return net;
}

ContactNetworkBuilder::ContactNetworkBuilder(PersonId node_count)
    : node_count_(node_count) {}

void ContactNetworkBuilder::add_contact(PersonId u, PersonId v,
                                        std::uint16_t start_minute,
                                        std::uint16_t duration_minutes,
                                        ActivityType u_activity,
                                        ActivityType v_activity, float weight) {
  EPI_REQUIRE(u < node_count_ && v < node_count_,
              "contact endpoint out of range: " << u << ", " << v);
  EPI_REQUIRE(u != v, "self-contact not allowed: " << u);
  Contact to_v;
  to_v.source = u;
  to_v.start_minute = start_minute;
  to_v.duration_minutes = duration_minutes;
  to_v.source_activity = static_cast<std::uint8_t>(u_activity);
  to_v.target_activity = static_cast<std::uint8_t>(v_activity);
  to_v.weight = weight;
  pending_.push_back({v, to_v});

  Contact to_u = to_v;
  to_u.source = v;
  to_u.source_activity = static_cast<std::uint8_t>(v_activity);
  to_u.target_activity = static_cast<std::uint8_t>(u_activity);
  pending_.push_back({u, to_u});
  ++undirected_count_;
}

ContactNetwork ContactNetworkBuilder::finalize() && {
  std::stable_sort(
      pending_.begin(), pending_.end(),
      [](const PendingEdge& a, const PendingEdge& b) { return a.target < b.target; });
  ContactNetwork net;
  net.node_count_ = node_count_;
  net.offsets_.assign(static_cast<std::size_t>(node_count_) + 1, 0);
  net.contacts_.reserve(pending_.size());
  for (const auto& edge : pending_) {
    ++net.offsets_[static_cast<std::size_t>(edge.target) + 1];
    net.contacts_.push_back(edge.contact);
  }
  for (std::size_t v = 0; v < node_count_; ++v) {
    net.offsets_[v + 1] += net.offsets_[v];
  }
  pending_.clear();
  net.build_out_edges();
  return net;
}

NetworkStats compute_stats(const ContactNetwork& network) {
  NetworkStats stats;
  stats.nodes = network.node_count();
  stats.directed_edges = network.edge_count();
  stats.undirected_contacts = network.contact_count();
  std::uint64_t degree_sum = 0;
  for (PersonId v = 0; v < network.node_count(); ++v) {
    const std::uint64_t d = network.in_degree(v);
    degree_sum += d;
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_nodes;
  }
  stats.mean_degree = stats.nodes == 0
                          ? 0.0
                          : static_cast<double>(degree_sum) /
                                static_cast<double>(stats.nodes);
  for (EdgeIndex e = 0; e < network.edge_count(); ++e) {
    ++stats.edges_by_context[network.contact(e).target_activity];
  }
  return stats;
}

}  // namespace epi
