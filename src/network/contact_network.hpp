// Contact network representation.
//
// The paper (§III) supplies each region's contact network as one CSV file;
// every edge carries the two person identifiers, the start time and
// duration of the interaction, and the (possibly asymmetric) activity
// context of each endpoint (home, work, shopping, other, school, college,
// religion). Because the partitioner must keep "all incoming edges of any
// given node in the same partition", the in-memory layout is a CSR over
// *incoming* edges: for each node v we store the contiguous list of
// contacts (u -> v). An undirected contact contributes one directed edge in
// each direction.
//
// The static network is immutable after finalize(); dynamic state (the
// per-edge active flag toggled by interventions) lives in the simulator,
// keyed by edge index, exactly as the paper describes ("each edge in the
// contact network can be turned on and off dynamically").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace epi {

using PersonId = std::uint32_t;
using EdgeIndex = std::uint64_t;

/// Activity context of an endpoint at contact time (paper §III).
enum class ActivityType : std::uint8_t {
  kHome = 0,
  kWork = 1,
  kShopping = 2,
  kOther = 3,
  kSchool = 4,
  kCollege = 5,
  kReligion = 6,
};

inline constexpr int kActivityTypeCount = 7;

const char* activity_name(ActivityType a);
ActivityType activity_from_name(const std::string& name);

/// One directed contact (source -> target); target is implied by the CSR
/// bucket the edge lives in. 16 bytes, trivially copyable for binary I/O.
struct Contact {
  PersonId source = 0;
  std::uint16_t start_minute = 0;    // minute of day the interaction begins
  std::uint16_t duration_minutes = 0;
  std::uint8_t source_activity = 0;  // ActivityType of the source person
  std::uint8_t target_activity = 0;  // ActivityType of the target person
  std::uint16_t reserved = 0;        // keeps the struct 4-byte aligned
  float weight = 1.0f;               // edge weight w_e in the propensity law
};
static_assert(sizeof(Contact) == 16, "Contact must stay 16 bytes");

/// Immutable contact network in incoming-edge CSR form.
class ContactNetwork {
 public:
  ContactNetwork() = default;

  PersonId node_count() const { return node_count_; }
  /// Number of directed edges (= 2x undirected contacts).
  EdgeIndex edge_count() const { return static_cast<EdgeIndex>(contacts_.size()); }
  /// Number of undirected contacts.
  EdgeIndex contact_count() const { return edge_count() / 2; }

  /// [begin, end) range of incoming-edge indices for node v.
  EdgeIndex in_begin(PersonId v) const { return offsets_[v]; }
  EdgeIndex in_end(PersonId v) const { return offsets_[v + 1]; }
  std::uint64_t in_degree(PersonId v) const { return in_end(v) - in_begin(v); }

  const Contact& contact(EdgeIndex e) const { return contacts_[e]; }

  /// The node that edge e points at (owner of the CSR bucket).
  PersonId target_of(EdgeIndex e) const;

  // --- Out-edge transpose -----------------------------------------------
  // The CSR above is over *incoming* edges (grouped by target, the
  // partitioning invariant). The transpose answers the push direction the
  // frontier transmission kernel needs: "which edges does person u appear
  // on as Contact::source?". Built once at finalize/load; the entries of
  // each bucket are ascending EdgeIndex values into contact(), so walking
  // a bucket enumerates a source's out-edges in global edge order.

  std::uint64_t out_degree(PersonId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  /// Ascending edge indices on which u is the source.
  std::span<const EdgeIndex> out_edges_of(PersonId u) const {
    return std::span<const EdgeIndex>(out_edges_.data() + out_offsets_[u],
                                      out_offsets_[u + 1] - out_offsets_[u]);
  }

  /// Total duration-weighted contact minutes incident to v (incoming).
  double contact_minutes(PersonId v) const;

  /// A stable 64-bit content hash (used as the partition-cache key).
  std::uint64_t content_hash() const;

  // --- I/O --------------------------------------------------------------

  /// Writes the paper's CSV edge format:
  /// targetPID,sourcePID,targetActivity,sourceActivity,start,duration,weight
  void write_csv(std::ostream& out) const;
  static ContactNetwork read_csv(std::istream& in, PersonId node_count);

  /// Compact binary format ("due to its large size, [the network] is in
  /// csv or binary format"). Round-trips exactly.
  void write_binary(const std::string& path) const;
  static ContactNetwork read_binary(const std::string& path);

  friend class ContactNetworkBuilder;

 private:
  void build_out_edges();

  PersonId node_count_ = 0;
  std::vector<EdgeIndex> offsets_;  // node_count_ + 1 entries
  std::vector<Contact> contacts_;  // grouped by target node
  // Transpose: out_edges_[out_offsets_[u] .. out_offsets_[u+1]) are the
  // ascending indices of the edges sourced at u.
  std::vector<EdgeIndex> out_offsets_;  // node_count_ + 1 entries
  std::vector<EdgeIndex> out_edges_;    // edge_count() entries
};

/// Accumulates undirected contacts, then finalizes into CSR form.
class ContactNetworkBuilder {
 public:
  explicit ContactNetworkBuilder(PersonId node_count);

  /// Records an undirected contact between u and v. `u_activity` is what u
  /// was doing, `v_activity` what v was doing (they may differ: the grocer
  /// is working while the customer is shopping).
  void add_contact(PersonId u, PersonId v, std::uint16_t start_minute,
                   std::uint16_t duration_minutes, ActivityType u_activity,
                   ActivityType v_activity, float weight = 1.0f);

  std::uint64_t contact_count() const { return undirected_count_; }

  /// Builds the CSR network. The builder is consumed.
  ContactNetwork finalize() &&;

 private:
  struct PendingEdge {
    PersonId target;
    Contact contact;
  };
  PersonId node_count_;
  std::vector<PendingEdge> pending_;
  std::uint64_t undirected_count_ = 0;
};

/// Per-context directed-edge counts plus degree summary — the numbers
/// behind Fig 6 and the synthetic-population validation tests.
struct NetworkStats {
  std::uint64_t nodes = 0;
  std::uint64_t directed_edges = 0;
  std::uint64_t undirected_contacts = 0;
  double mean_degree = 0.0;
  std::uint64_t max_degree = 0;
  std::uint64_t isolated_nodes = 0;
  std::uint64_t edges_by_context[kActivityTypeCount] = {};  // by target activity
};

NetworkStats compute_stats(const ContactNetwork& network);

}  // namespace epi
