#include "network/partition.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace epi {

Partitioning::Partitioning(std::vector<Partition> parts)
    : parts_(std::move(parts)) {
  EPI_REQUIRE(!parts_.empty(), "partitioning needs at least one part");
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    EPI_REQUIRE(parts_[i].node_begin == parts_[i - 1].node_end,
                "partitions must tile the node range");
    EPI_REQUIRE(parts_[i].edge_begin == parts_[i - 1].edge_end,
                "partitions must tile the edge range");
  }
}

std::size_t Partitioning::partition_of(PersonId v) const {
  const auto it = std::upper_bound(
      parts_.begin(), parts_.end(), v,
      [](PersonId node, const Partition& p) { return node < p.node_end; });
  EPI_REQUIRE(it != parts_.end() && v >= it->node_begin,
              "node " << v << " not covered by partitioning");
  return static_cast<std::size_t>(it - parts_.begin());
}

double Partitioning::edge_imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (const auto& p : parts_) {
    total += p.edge_count();
    worst = std::max(worst, p.edge_count());
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(parts_.size());
  return static_cast<double>(worst) / mean;
}

namespace {
constexpr std::uint64_t kPartitionMagic = 0x455049504152ULL;  // "EPIPAR"
}

void Partitioning::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot write partition cache: " + path);
  const std::uint64_t magic = kPartitionMagic;
  const std::uint64_t count = parts_.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(parts_.data()),
            static_cast<std::streamsize>(parts_.size() * sizeof(Partition)));
  EPI_REQUIRE(out.good(), "short write to partition cache " << path);
}

Partitioning Partitioning::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read partition cache: " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  EPI_REQUIRE(in.good() && magic == kPartitionMagic,
              "not a partition cache file: " << path);
  std::vector<Partition> parts(count);
  in.read(reinterpret_cast<char*>(parts.data()),
          static_cast<std::streamsize>(count * sizeof(Partition)));
  EPI_REQUIRE(in.good(), "truncated partition cache: " << path);
  return Partitioning(std::move(parts));
}

Partitioning partition_network(const ContactNetwork& network,
                               std::size_t num_partitions,
                               std::uint64_t epsilon) {
  EPI_REQUIRE(num_partitions > 0, "need at least one partition");
  EPI_REQUIRE(network.node_count() > 0, "cannot partition an empty network");
  num_partitions =
      std::min<std::size_t>(num_partitions, network.node_count());

  const std::uint64_t total_edges = network.edge_count();
  // The paper's threshold: E/P + eps. ceil so P parts always suffice.
  const std::uint64_t threshold =
      (total_edges + num_partitions - 1) / num_partitions + epsilon;

  std::vector<Partition> parts;
  Partition current;
  current.node_begin = 0;
  current.edge_begin = 0;
  std::uint64_t edges_in_current = 0;
  for (PersonId v = 0; v < network.node_count(); ++v) {
    const std::uint64_t d = network.in_degree(v);
    // Close the current partition when adding v would exceed the threshold
    // (but never emit an empty partition, and never exceed P-1 closes).
    if (edges_in_current > 0 && edges_in_current + d > threshold &&
        parts.size() + 1 < num_partitions) {
      current.node_end = v;
      current.edge_end = network.in_begin(v);
      parts.push_back(current);
      current.node_begin = v;
      current.edge_begin = network.in_begin(v);
      edges_in_current = 0;
    }
    edges_in_current += d;
  }
  current.node_end = network.node_count();
  current.edge_end = total_edges;
  parts.push_back(current);
  return Partitioning(std::move(parts));
}

std::string partition_cache_filename(const ContactNetwork& network,
                                     std::size_t num_partitions,
                                     std::uint64_t epsilon) {
  std::ostringstream oss;
  oss << "partition_" << std::hex << network.content_hash() << std::dec << "_p"
      << num_partitions << "_e" << epsilon << ".bin";
  return oss.str();
}

namespace {

constexpr std::uint64_t kChunkMagic = 0x455049434855ULL;  // "EPICHU"

std::string chunk_filename(std::uint64_t network_hash, std::size_t index) {
  std::ostringstream oss;
  oss << "chunk_" << std::hex << network_hash << std::dec << "_" << index
      << ".bin";
  return oss.str();
}

}  // namespace

std::vector<std::string> write_partition_chunks(const ContactNetwork& network,
                                                const Partitioning& partitioning,
                                                const std::string& directory) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  std::vector<std::string> paths;
  paths.reserve(partitioning.size());
  const std::uint64_t network_hash = network.content_hash();
  for (std::size_t i = 0; i < partitioning.size(); ++i) {
    const Partition& part = partitioning.part(i);
    const fs::path path = fs::path(directory) / chunk_filename(network_hash, i);
    std::ofstream out(path, std::ios::binary);
    if (!out) throw ConfigError("cannot write chunk: " + path.string());
    const std::uint64_t magic = kChunkMagic;
    const std::uint64_t count = part.edge_count();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (EdgeIndex e = part.edge_begin; e < part.edge_end; ++e) {
      const Contact& c = network.contact(e);
      out.write(reinterpret_cast<const char*>(&c), sizeof(Contact));
    }
    EPI_REQUIRE(out.good(), "short write to chunk " << path.string());
    paths.push_back(path.string());
  }
  return paths;
}

std::vector<Contact> read_partition_chunk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read chunk: " + path);
  std::uint64_t magic = 0, count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  EPI_REQUIRE(in.good() && magic == kChunkMagic, "not a chunk file: " << path);
  std::vector<Contact> contacts(count);
  in.read(reinterpret_cast<char*>(contacts.data()),
          static_cast<std::streamsize>(count * sizeof(Contact)));
  EPI_REQUIRE(in.good(), "truncated chunk: " << path);
  return contacts;
}

bool partition_chunks_cached(const ContactNetwork& network,
                             const Partitioning& partitioning,
                             const std::string& directory) {
  namespace fs = std::filesystem;
  const std::uint64_t network_hash = network.content_hash();
  for (std::size_t i = 0; i < partitioning.size(); ++i) {
    if (!fs::exists(fs::path(directory) / chunk_filename(network_hash, i))) {
      return false;
    }
  }
  return true;
}

std::vector<PersonId> compute_ghost_sources(const ContactNetwork& network,
                                            const Partitioning& partitioning,
                                            std::size_t part_index) {
  EPI_REQUIRE(part_index < partitioning.size(),
              "partition index " << part_index << " out of range");
  const Partition& part = partitioning.part(part_index);
  std::vector<PersonId> ghosts;
  for (EdgeIndex e = part.edge_begin; e < part.edge_end; ++e) {
    const PersonId source = network.contact(e).source;
    if (source < part.node_begin || source >= part.node_end) {
      ghosts.push_back(source);
    }
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  return ghosts;
}

Partitioning partition_with_cache(const ContactNetwork& network,
                                  std::size_t num_partitions,
                                  std::uint64_t epsilon,
                                  const std::string& cache_dir,
                                  bool* cache_hit) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  const fs::path path =
      fs::path(cache_dir) /
      partition_cache_filename(network, num_partitions, epsilon);
  if (fs::exists(path)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return Partitioning::load(path.string());
  }
  if (cache_hit != nullptr) *cache_hit = false;
  Partitioning result = partition_network(network, num_partitions, epsilon);
  result.save(path.string());
  return result;
}

}  // namespace epi
