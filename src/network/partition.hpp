// Contact-network partitioning (paper §III, "Input Data ... contact
// networks").
//
// The objective: split the contact network so each partition holds
// approximately the same number of edges while ALL incoming edges of any
// node land in the same partition. The paper deliberately uses a simple
// threshold algorithm — "given a partition, continue to allocate nodes to
// that partition until the number of incoming edges is greater than a
// threshold (E/P + eps)" — because even that takes significant compute
// time at national scale (partitioning California alone exceeds an hour),
// and caches the result on disk for future runs. Both the algorithm and
// the cache are implemented here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "network/contact_network.hpp"

namespace epi {

/// One partition: a contiguous node range [node_begin, node_end) and the
/// corresponding incoming-edge range (contiguity follows from the CSR
/// layout and the node-order sweep).
struct Partition {
  PersonId node_begin = 0;
  PersonId node_end = 0;
  EdgeIndex edge_begin = 0;
  EdgeIndex edge_end = 0;

  std::uint64_t node_count() const { return node_end - node_begin; }
  std::uint64_t edge_count() const { return edge_end - edge_begin; }
};

/// A full partitioning of a network.
class Partitioning {
 public:
  Partitioning() = default;
  explicit Partitioning(std::vector<Partition> parts);

  const std::vector<Partition>& parts() const { return parts_; }
  std::size_t size() const { return parts_.size(); }
  const Partition& part(std::size_t i) const { return parts_[i]; }

  /// Partition index owning node v (binary search over ranges).
  std::size_t partition_of(PersonId v) const;

  /// Load imbalance: max partition edge count / mean partition edge count.
  double edge_imbalance() const;

  /// Binary round-trip for the on-disk partition cache.
  void save(const std::string& path) const;
  static Partitioning load(const std::string& path);

 private:
  std::vector<Partition> parts_;
};

/// The paper's threshold sweep. `epsilon` is the tolerance factor eps in
/// the threshold E/P + eps, expressed in edges. Every node's in-edges stay
/// together by construction. Produces at most `num_partitions` parts (the
/// final part absorbs the tail) and never an empty prefix part.
Partitioning partition_network(const ContactNetwork& network,
                               std::size_t num_partitions,
                               std::uint64_t epsilon = 0);

/// Cache key incorporating network content hash, P and eps, so a change to
/// any of them invalidates the cached partitioning.
std::string partition_cache_filename(const ContactNetwork& network,
                                     std::size_t num_partitions,
                                     std::uint64_t epsilon);

/// Loads the cached partitioning from `cache_dir` if present, otherwise
/// computes and saves it. `cache_hit` (optional) reports which happened.
Partitioning partition_with_cache(const ContactNetwork& network,
                                  std::size_t num_partitions,
                                  std::uint64_t epsilon,
                                  const std::string& cache_dir,
                                  bool* cache_hit = nullptr);

/// Materializes the per-rank binary chunk files each MPI process loads at
/// startup — the expensive step of the production pipeline ("partitioning
/// the network to binary chunks for California alone would take over one
/// hour"), which is why partitions are computed once and cached. Returns
/// the paths written, one per partition.
std::vector<std::string> write_partition_chunks(const ContactNetwork& network,
                                                const Partitioning& partitioning,
                                                const std::string& directory);

/// Loads one chunk file back: the contacts of partition `index`.
std::vector<Contact> read_partition_chunk(const std::string& path);

/// True if every chunk file for this (network, partitioning) already
/// exists in `directory` (the nightly fast path).
bool partition_chunks_cached(const ContactNetwork& network,
                             const Partitioning& partitioning,
                             const std::string& directory);

/// Ghost list of partition `part_index`: the sorted, deduplicated set of
/// *remote* persons appearing as Contact::source on the partition's
/// in-edges. These are exactly the persons whose infectious status the
/// owning rank must learn from its neighbors each tick — the halo of the
/// partition. Cost is one scan of the partition's own edge range, so each
/// rank can compute its own list independently.
std::vector<PersonId> compute_ghost_sources(const ContactNetwork& network,
                                            const Partitioning& partitioning,
                                            std::size_t part_index);

}  // namespace epi
