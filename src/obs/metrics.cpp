#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace epi::obs {

namespace {

// Blob helpers for serialize_state/merge_state: a private same-machine
// parent<->child payload, so plain little-endian scalar dumps with
// bit-exact doubles (memcpy through u64) are all that is needed.

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::byte>& out, const std::string& s) {
  put_u64(out, s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
}

class StateReader {
 public:
  explicit StateReader(const std::vector<std::byte>& blob) : blob_(blob) {}

  std::uint64_t u64() {
    EPI_REQUIRE(pos_ + 8 <= blob_.size(), "truncated metrics state blob");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(blob_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t len = u64();
    EPI_REQUIRE(pos_ + len <= blob_.size(), "truncated metrics state blob");
    std::string s(len, '\0');
    for (std::uint64_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>(blob_[pos_ + i]);
    }
    pos_ += len;
    return s;
  }

  bool done() const { return pos_ == blob_.size(); }

 private:
  const std::vector<std::byte>& blob_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::vector<double>& MetricsRegistry::default_bounds() {
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                             1e-1, 1.0,  1e1,  1e2,  1e3};
  return bounds;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::set_max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(name, value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void MetricsRegistry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  observe_locked(name, value, default_bounds());
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  observe_locked(name, value, bounds);
}

void MetricsRegistry::observe_locked(const std::string& name, double value,
                                     const std::vector<double>& bounds) {
  EPI_REQUIRE(!bounds.empty() &&
                  std::is_sorted(bounds.begin(), bounds.end()) &&
                  std::adjacent_find(bounds.begin(), bounds.end()) ==
                      bounds.end(),
              "histogram '" << name << "' needs strictly increasing bounds");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram histogram;
    histogram.bounds = bounds;
    histogram.counts.assign(bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(histogram)).first;
  } else {
    EPI_REQUIRE(it->second.bounds == bounds,
                "histogram '" << name
                              << "' re-observed with different bounds");
  }
  Histogram& histogram = it->second;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(histogram.bounds.begin(), histogram.bounds.end(),
                       value) -
      histogram.bounds.begin());
  ++histogram.counts[bucket];
  ++histogram.count;
  histogram.sum += value;
  if (value < histogram.bounds.front()) ++histogram.underflow;
  if (histogram.count == 1) {
    histogram.min = value;
    histogram.max = value;
  } else {
    histogram.min = std::min(histogram.min, value);
    histogram.max = std::max(histogram.max, value);
  }
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::uint64_t MetricsRegistry::histogram_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second.count;
}

std::vector<std::byte> MetricsRegistry::serialize_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::byte> out;
  put_u64(out, counters_.size());
  for (const auto& [name, value] : counters_) {
    put_str(out, name);
    put_u64(out, value);
  }
  put_u64(out, gauges_.size());
  for (const auto& [name, value] : gauges_) {
    put_str(out, name);
    put_f64(out, value);
  }
  put_u64(out, histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    put_str(out, name);
    put_u64(out, histogram.bounds.size());
    for (const double bound : histogram.bounds) put_f64(out, bound);
    put_u64(out, histogram.counts.size());
    for (const std::uint64_t count : histogram.counts) put_u64(out, count);
    put_u64(out, histogram.count);
    put_u64(out, histogram.underflow);
    put_f64(out, histogram.sum);
    put_f64(out, histogram.min);
    put_f64(out, histogram.max);
  }
  return out;
}

void MetricsRegistry::merge_state(const std::vector<std::byte>& blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  StateReader in(blob);

  const std::uint64_t n_counters = in.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = in.str();
    counters_[name] += in.u64();
  }

  const std::uint64_t n_gauges = in.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = in.str();
    const double value = in.f64();
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }

  const std::uint64_t n_histograms = in.u64();
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    const std::string name = in.str();
    Histogram incoming;
    const std::uint64_t n_bounds = in.u64();
    incoming.bounds.resize(n_bounds);
    for (auto& bound : incoming.bounds) bound = in.f64();
    const std::uint64_t n_counts = in.u64();
    incoming.counts.resize(n_counts);
    for (auto& count : incoming.counts) count = in.u64();
    incoming.count = in.u64();
    incoming.underflow = in.u64();
    incoming.sum = in.f64();
    incoming.min = in.f64();
    incoming.max = in.f64();

    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, std::move(incoming));
      continue;
    }
    Histogram& mine = it->second;
    EPI_REQUIRE(mine.bounds == incoming.bounds,
                "histogram '" << name
                              << "' merged with different bucket bounds");
    for (std::size_t b = 0; b < mine.counts.size(); ++b) {
      mine.counts[b] += incoming.counts[b];
    }
    if (incoming.count > 0) {
      mine.min = mine.count > 0 ? std::min(mine.min, incoming.min)
                                : incoming.min;
      mine.max = mine.count > 0 ? std::max(mine.max, incoming.max)
                                : incoming.max;
    }
    mine.count += incoming.count;
    mine.underflow += incoming.underflow;
    mine.sum += incoming.sum;
  }
  EPI_REQUIRE(in.done(), "trailing bytes in metrics state blob");
}

Json MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, value] : counters_) counters[name] = value;
  JsonObject gauges;
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  JsonObject histograms;
  for (const auto& [name, histogram] : histograms_) {
    JsonArray buckets;
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      JsonObject bucket;
      bucket["le"] = i < histogram.bounds.size()
                         ? Json(histogram.bounds[i])
                         : Json(std::string("+Inf"));
      bucket["count"] = histogram.counts[i];
      buckets.push_back(Json(std::move(bucket)));
    }
    // Quantile estimate: upper bound of the bucket holding the quantile
    // rank, clamped to the observed max (keeps the +Inf bucket finite and
    // makes single-observation histograms report the exact value).
    auto quantile = [&histogram](double q) {
      const auto rank = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::ceil(q * static_cast<double>(histogram.count))));
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
        cumulative += histogram.counts[i];
        if (cumulative >= rank) {
          return i < histogram.bounds.size()
                     ? std::min(histogram.bounds[i], histogram.max)
                     : histogram.max;
        }
      }
      return histogram.max;
    };
    JsonObject out;
    out["buckets"] = Json(std::move(buckets));
    out["count"] = histogram.count;
    out["max"] = histogram.max;
    out["min"] = histogram.min;
    out["overflow"] = histogram.counts.back();
    out["p50"] = quantile(0.50);
    out["p95"] = quantile(0.95);
    out["p99"] = quantile(0.99);
    out["sum"] = histogram.sum;
    out["underflow"] = histogram.underflow;
    histograms[name] = Json(std::move(out));
  }
  JsonObject doc;
  doc["counters"] = Json(std::move(counters));
  doc["gauges"] = Json(std::move(gauges));
  doc["histograms"] = Json(std::move(histograms));
  return Json(std::move(doc));
}

void MetricsRegistry::write(const std::string& path) const {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot write metrics file: " + path);
  out << snapshot().dump(2) << "\n";
  EPI_REQUIRE(out.good(), "short write to metrics file " << path);
}

}  // namespace epi::obs
