// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with a sorted-key JSON snapshot.
//
// Counters accumulate (queries served, bytes moved, jobs requeued); gauges
// hold last-written or high-water values (active connections, utilization);
// histograms bucket observations against bounds fixed at creation
// (collective latencies, per-job runtimes). Keys are dotted paths
// ("persondb.VA.queries", "mpilite.bytes.000->001"); the snapshot is a
// std::map walk, so metrics JSON is byte-stable for a given set of values.
//
// Thread-safe: mpilite ranks run as threads and report concurrently. The
// disabled path is a null pointer at every call site — no registry, no
// locks, no allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace epi::obs {

class MetricsRegistry {
 public:
  /// Bucket upper bounds used when a histogram is first observed without
  /// explicit bounds: decade steps 1e-6 .. 1e3 (seconds-flavored), plus
  /// the implicit +Inf overflow bucket.
  static const std::vector<double>& default_bounds();

  // --- Writers -----------------------------------------------------------

  void add(const std::string& name, std::uint64_t delta = 1);
  void set(const std::string& name, double value);
  /// High-water gauge: keeps the maximum of all values written.
  void set_max(const std::string& name, double value);
  /// Records `value` into the named histogram, creating it with
  /// default_bounds() on first use.
  void observe(const std::string& name, double value);
  /// Creates the histogram with explicit bucket upper bounds on first use
  /// (strictly increasing); later calls must pass the same bounds.
  void observe(const std::string& name, double value,
               const std::vector<double>& bounds);

  // --- Readers (tests and report plumbing) -------------------------------

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  std::uint64_t histogram_count(const std::string& name) const;

  // --- Cross-process state shipping (mpilite shm backend) ----------------

  /// Serializes the full registry state into a private binary blob. Doubles
  /// are shipped bit-exact (memcpy, not text), so merging a child process's
  /// registry reproduces the values the thread backend would have
  /// accumulated in-process — a precondition for byte-identical metrics
  /// files across backends under deterministic timing.
  std::vector<std::byte> serialize_state() const;

  /// Merges a serialize_state() blob into this registry: counters add,
  /// gauges keep the maximum (the only cross-rank gauge semantics mpilite
  /// uses is high-water), histograms with identical bounds add bucket-wise.
  /// Call once per child, in rank order, for deterministic results.
  void merge_state(const std::vector<std::byte>& blob);

  // --- Export ------------------------------------------------------------

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with all
  /// keys in sorted order. Histograms serialize cumulative-style buckets
  /// ({"le": bound, "count": n}) plus "count", "sum", explicit tail
  /// accounting ("underflow" = observations strictly below the lowest
  /// bound, "overflow" = observations above the highest bound, "min",
  /// "max"), and bucket-estimated quantiles "p50"/"p95"/"p99" (upper bound
  /// of the bucket holding the quantile rank, clamped to the observed max
  /// so tail quantiles stay finite even in the +Inf bucket).
  Json snapshot() const;
  void write(const std::string& path) const;

 private:
  struct Histogram {
    std::vector<double> bounds;   // upper bounds, strictly increasing
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    std::uint64_t underflow = 0;  // observations < bounds.front()
    double sum = 0.0;
    double min = 0.0;  // valid when count > 0
    double max = 0.0;
  };

  void observe_locked(const std::string& name, double value,
                      const std::vector<double>& bounds);

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace epi::obs
