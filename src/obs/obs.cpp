#include "obs/obs.hpp"

#include "util/env.hpp"

namespace epi::obs {

std::unique_ptr<Session> Session::from_env(bool deterministic_timing) {
  const char* dir = env_raw("EPI_TRACE");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  SessionOptions options;
  options.dir = dir;
  options.deterministic_timing = deterministic_timing;
  return std::make_unique<Session>(std::move(options));
}

}  // namespace epi::obs
