#include "obs/obs.hpp"

#include <filesystem>
#include <string_view>
#include <system_error>

#include "util/env.hpp"
#include "util/error.hpp"

namespace epi::obs {

Session::Session(SessionOptions options)
    : options_(std::move(options)), trace_(options_.deterministic_timing) {
  // Create the output directory eagerly: a mistyped EPI_TRACE path should
  // fail at session construction with the path in the message, not at the
  // end of the run with an opaque stream error.
  if (!options_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    EPI_REQUIRE(!ec && std::filesystem::is_directory(options_.dir),
                "cannot create EPI_TRACE output directory '"
                    << options_.dir << "': " << ec.message());
  }
}

std::unique_ptr<Session> Session::from_env(bool deterministic_timing) {
  const char* dir = env_raw("EPI_TRACE");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  SessionOptions options;
  options.dir = dir;
  options.deterministic_timing = deterministic_timing;
  // Default-on knob: unset means enabled, so env_flag (false when unset)
  // does not fit; only the literal "0" disables flow edges.
  const char* flow = env_raw("EPI_TRACE_FLOW");
  options.flow = flow == nullptr || std::string_view(flow) != "0";
  return std::make_unique<Session>(std::move(options));
}

}  // namespace epi::obs
