// Observability session: one TraceRecorder + one MetricsRegistry bound to
// an output directory.
//
// The nightly engine (and anything else that wants a trace) takes a
// non-owning `obs::Session*`; null means disabled and costs nothing. The
// environment hook `EPI_TRACE=<dir>` lets existing binaries record a run
// without code changes: from_env() returns a session writing
// <dir>/trace.json (Chrome trace_event format, Perfetto loadable) and
// <dir>/metrics.json (sorted-key snapshot). `EPI_TRACE_FLOW=0` disables
// causal flow edges (send→recv, submit→start→finish) while keeping spans
// and counters; any other value — or unset — leaves them on.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace epi::obs {

struct SessionOptions {
  /// Directory trace.json / metrics.json are written into. Created at
  /// session construction when non-empty, so a bad path fails up front
  /// with a clear message instead of a late stream error.
  std::string dir;
  /// Zeroes the wall half of the dual clock so emitted files are
  /// byte-reproducible; pair with NightlyConfig::deterministic_timing.
  bool deterministic_timing = false;
  /// Emit causal flow edges ('s'/'t'/'f'); EPI_TRACE_FLOW=0 turns this off.
  bool flow = true;
};

class Session {
 public:
  explicit Session(SessionOptions options);

  TraceRecorder& trace() { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  const std::string& dir() const { return options_.dir; }
  bool flow() const { return options_.flow; }

  std::string trace_path() const { return options_.dir + "/trace.json"; }
  std::string metrics_path() const { return options_.dir + "/metrics.json"; }

  /// Writes trace.json and metrics.json into dir().
  void write() const {
    trace_.write(trace_path());
    metrics_.write(metrics_path());
  }

  /// Session for EPI_TRACE=<dir>, or nullptr when the variable is unset
  /// or empty. Honors EPI_TRACE_FLOW (default on).
  static std::unique_ptr<Session> from_env(bool deterministic_timing = false);

 private:
  SessionOptions options_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

}  // namespace epi::obs
