#include "obs/trace.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace epi::obs {

namespace {
constexpr double kHoursToMicros = 3600.0 * 1e6;
}

std::uint32_t TraceRecorder::process(const std::string& name) {
  const auto it = pids_.find(name);
  if (it != pids_.end()) return it->second;
  const auto pid = static_cast<std::uint32_t>(pids_.size());
  pids_.emplace(name, pid);
  Event meta;
  meta.ph = 'M';
  meta.pid = pid;
  meta.name = "process_name";
  meta.args["name"] = name;
  metadata_.push_back(std::move(meta));
  return pid;
}

void TraceRecorder::thread_name(std::uint32_t pid, std::uint32_t tid,
                                const std::string& name) {
  for (const Event& meta : metadata_) {
    if (meta.ph == 'M' && meta.name == "thread_name" && meta.pid == pid &&
        meta.tid == tid) {
      return;
    }
  }
  Event meta;
  meta.ph = 'M';
  meta.pid = pid;
  meta.tid = tid;
  meta.name = "thread_name";
  meta.args["name"] = name;
  metadata_.push_back(std::move(meta));
}

void TraceRecorder::push(char ph, std::uint32_t pid, std::uint32_t tid,
                         std::string name, std::string category,
                         double ts_hours, double dur_hours, TraceArgs args) {
  Event event;
  event.ph = ph;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_hours * kHoursToMicros;
  event.dur_us = dur_hours * kHoursToMicros;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  // The wall half of the dual clock rides on every event.
  event.args["wall_s"] = wall_seconds();
  events_.push_back(std::move(event));
}

void TraceRecorder::begin(std::uint32_t pid, std::uint32_t tid,
                          const std::string& name, const std::string& category,
                          double ts_hours, TraceArgs args) {
  push('B', pid, tid, name, category, ts_hours, 0.0, std::move(args));
}

void TraceRecorder::end(std::uint32_t pid, std::uint32_t tid, double ts_hours,
                        TraceArgs args) {
  push('E', pid, tid, {}, {}, ts_hours, 0.0, std::move(args));
}

void TraceRecorder::complete(std::uint32_t pid, std::uint32_t tid,
                             const std::string& name,
                             const std::string& category, double start_hours,
                             double duration_hours, TraceArgs args) {
  EPI_REQUIRE(duration_hours >= 0.0,
              "trace span '" << name << "' has negative duration");
  push('X', pid, tid, name, category, start_hours, duration_hours,
       std::move(args));
}

void TraceRecorder::instant(std::uint32_t pid, std::uint32_t tid,
                            const std::string& name,
                            const std::string& category, double ts_hours,
                            TraceArgs args) {
  push('i', pid, tid, name, category, ts_hours, 0.0, std::move(args));
}

void TraceRecorder::counter(std::uint32_t pid, const std::string& name,
                            double ts_hours, TraceArgs values) {
  push('C', pid, 0, name, "counter", ts_hours, 0.0, std::move(values));
}

void TraceRecorder::flow_start(std::uint32_t pid, std::uint32_t tid,
                               const std::string& name,
                               const std::string& category, double ts_hours,
                               const std::string& id, TraceArgs args) {
  EPI_REQUIRE(!id.empty(), "flow event needs a non-empty id");
  push('s', pid, tid, name, category, ts_hours, 0.0, std::move(args));
  events_.back().flow_id = id;
}

void TraceRecorder::flow_step(std::uint32_t pid, std::uint32_t tid,
                              const std::string& name,
                              const std::string& category, double ts_hours,
                              const std::string& id, TraceArgs args) {
  EPI_REQUIRE(!id.empty(), "flow event needs a non-empty id");
  push('t', pid, tid, name, category, ts_hours, 0.0, std::move(args));
  events_.back().flow_id = id;
}

void TraceRecorder::flow_end(std::uint32_t pid, std::uint32_t tid,
                             const std::string& name,
                             const std::string& category, double ts_hours,
                             const std::string& id, TraceArgs args) {
  EPI_REQUIRE(!id.empty(), "flow event needs a non-empty id");
  push('f', pid, tid, name, category, ts_hours, 0.0, std::move(args));
  events_.back().flow_id = id;
}

Json TraceRecorder::to_json() const {
  JsonArray trace_events;
  trace_events.reserve(metadata_.size() + events_.size());

  auto render = [&](const Event& event) {
    JsonObject out;
    out["ph"] = std::string(1, event.ph);
    out["pid"] = static_cast<std::uint64_t>(event.pid);
    out["tid"] = static_cast<std::uint64_t>(event.tid);
    if (event.ph != 'M') out["ts"] = event.ts_us;
    if (event.ph == 'X') out["dur"] = event.dur_us;
    if (!event.name.empty()) out["name"] = event.name;
    if (!event.category.empty()) out["cat"] = event.category;
    if (event.ph == 'i') out["s"] = "t";  // instant scope: thread
    if (!event.flow_id.empty()) out["id"] = event.flow_id;
    if (event.ph == 'f') out["bp"] = "e";  // bind to enclosing slice
    if (!event.args.empty()) out["args"] = event.args;
    trace_events.push_back(Json(std::move(out)));
  };

  for (const Event& meta : metadata_) render(meta);
  // Stable sort by timestamp: emission order breaks ties, which preserves
  // B-before-E causality and keeps `ts` monotone within every lane.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& event : events_) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_us < b->ts_us;
                   });
  for (const Event* event : ordered) render(*event);

  JsonObject doc;
  doc["traceEvents"] = Json(std::move(trace_events));
  doc["displayTimeUnit"] = "ms";
  return Json(std::move(doc));
}

void TraceRecorder::write(const std::string& path) const {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot write trace file: " + path);
  out << to_json().dump() << "\n";
  EPI_REQUIRE(out.good(), "short write to trace file " << path);
}

}  // namespace epi::obs
