// Deterministic tracing for the nightly two-cluster workflow.
//
// The production system ran unattended every night; blown 8am deadlines
// could only be diagnosed from aggregate numbers after the fact. This
// recorder gives every layer — nightly engine, Slurm DES, WAN transfers,
// person databases, mpilite — a common event stream that exports as
// Chrome trace_event JSON (loadable in chrome://tracing or Perfetto).
//
// Every event carries a dual clock:
//   - ts: the simulated/workflow clock in hours (the DES clock, the phase
//     timeline) — this is the Chrome `ts` axis, so traces of modeled runs
//     are exact regardless of host speed;
//   - wall_s (an arg on every event): wall seconds since the recorder was
//     created, measured with util/timer.hpp. Under deterministic timing
//     the wall clock reads 0, so two runs of the same design produce
//     byte-identical trace files and pass the determinism lint.
//
// The recorder allocates nothing until the first event; components hold a
// `TraceRecorder*` that is null when tracing is disabled, so the disabled
// path costs one branch and stays byte-identical to the untraced build.
//
// Not thread-safe: one recorder belongs to one orchestration thread (the
// nightly engine and the DES are single-threaded; mpilite ranks report
// through the thread-safe MetricsRegistry instead).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace epi::obs {

/// Extra key/value payload attached to an event ("args" in Chrome format).
using TraceArgs = JsonObject;

class TraceRecorder {
 public:
  /// With `deterministic_timing` the wall half of the dual clock always
  /// reads zero, making emitted traces byte-reproducible.
  explicit TraceRecorder(bool deterministic_timing = false)
      : deterministic_(deterministic_timing) {}

  // --- Process / thread registry (Chrome metadata events) ---------------

  /// Registers (or looks up) a trace "process" — one per site: "home",
  /// "remote", "wan", "mpilite". Returns its pid.
  std::uint32_t process(const std::string& name);

  /// Names a thread lane within a process (node id, rank, WAN direction).
  /// Idempotent per (pid, tid).
  void thread_name(std::uint32_t pid, std::uint32_t tid,
                   const std::string& name);

  // --- The simulated half of the dual clock ------------------------------

  /// Sets the current simulated/workflow time used by scoped spans.
  void set_sim_hours(double hours) { sim_hours_ = hours; }
  double sim_hours() const { return sim_hours_; }

  /// Wall seconds since construction; exactly 0.0 under deterministic
  /// timing (the only wall-clock read, via util/timer.hpp).
  double wall_seconds() const {
    return deterministic_ ? 0.0 : wall_.elapsed_seconds();
  }
  bool deterministic_timing() const { return deterministic_; }

  // --- Events (ts arguments are simulated hours) -------------------------

  /// Opens a span ('B'); close with end() on the same (pid, tid).
  void begin(std::uint32_t pid, std::uint32_t tid, const std::string& name,
             const std::string& category, double ts_hours,
             TraceArgs args = {});
  /// Closes the most recent open span on (pid, tid) ('E').
  void end(std::uint32_t pid, std::uint32_t tid, double ts_hours,
           TraceArgs args = {});
  /// A whole span with a known duration ('X') — per-job, per-transfer.
  void complete(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                const std::string& category, double start_hours,
                double duration_hours, TraceArgs args = {});
  /// A point event ('i') — faults, recoveries, per-region milestones.
  void instant(std::uint32_t pid, std::uint32_t tid, const std::string& name,
               const std::string& category, double ts_hours,
               TraceArgs args = {});
  /// A counter sample ('C') — queue depth, busy nodes, utilization.
  void counter(std::uint32_t pid, const std::string& name, double ts_hours,
               TraceArgs values);

  // --- Causal flow edges ('s'/'t'/'f') ------------------------------------
  //
  // Flow events stitch spans on different lanes into a causal chain: a
  // mpilite send→recv pair, an exec submit→start→finish, a service
  // request→campaign-unit hand-off. All events of one chain share an `id`
  // string; Chrome/Perfetto draw the arrows, trace_check validates the
  // well-formedness (every 'f' terminates a previously started chain).

  /// Opens a causal chain ('s') — e.g. the send or submit side.
  void flow_start(std::uint32_t pid, std::uint32_t tid,
                  const std::string& name, const std::string& category,
                  double ts_hours, const std::string& id, TraceArgs args = {});
  /// An intermediate hop ('t') on an already-started chain.
  void flow_step(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                 const std::string& category, double ts_hours,
                 const std::string& id, TraceArgs args = {});
  /// Terminates a chain ('f', binding point "e") — the recv or finish side.
  void flow_end(std::uint32_t pid, std::uint32_t tid, const std::string& name,
                const std::string& category, double ts_hours,
                const std::string& id, TraceArgs args = {});

  std::size_t event_count() const { return events_.size(); }

  // --- Export ------------------------------------------------------------

  /// {"traceEvents": [...]} with metadata first and events stably sorted
  /// by timestamp, so `ts` is monotone within every (pid, tid) lane.
  Json to_json() const;
  /// Writes to_json() to `path` (compact, one parseable document).
  void write(const std::string& path) const;

 private:
  struct Event {
    char ph;  // 'B', 'E', 'X', 'i', 'C', 's', 't', 'f'
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;     // 'X' only
    std::string flow_id;     // 's'/'t'/'f' only
    std::string name;
    std::string category;
    TraceArgs args;
  };

  void push(char ph, std::uint32_t pid, std::uint32_t tid, std::string name,
            std::string category, double ts_hours, double dur_hours,
            TraceArgs args);

  bool deterministic_;
  Timer wall_;
  double sim_hours_ = 0.0;
  std::vector<Event> events_;
  // Insertion-ordered metadata; the map gives process-name -> pid lookup.
  std::map<std::string, std::uint32_t> pids_;
  std::vector<Event> metadata_;
};

/// RAII span on the recorder's current simulated clock: 'B' at
/// construction, 'E' at destruction. Null recorder = no-op, so callers can
/// open spans unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::uint32_t pid, std::uint32_t tid,
             const std::string& name, const std::string& category,
             TraceArgs args = {})
      : recorder_(recorder), pid_(pid), tid_(tid) {
    if (recorder_ != nullptr) {
      recorder_->begin(pid_, tid_, name, category, recorder_->sim_hours(),
                       std::move(args));
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->end(pid_, tid_, recorder_->sim_hours());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::uint32_t pid_;
  std::uint32_t tid_;
};

}  // namespace epi::obs
