#include "obs/trace_check.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace epi::obs {

namespace {

std::string read_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

TraceCheckResult check_trace_json(const Json& doc) {
  TraceCheckResult result;
  auto fail = [&](const std::string& message) {
    result.errors.push_back(message);
  };

  if (!doc.is_object() || !doc.contains("traceEvents")) {
    fail("document is not an object with a traceEvents member");
    return result;
  }
  const Json& events = doc.at("traceEvents");
  if (!events.is_array()) {
    fail("traceEvents is not an array");
    return result;
  }

  struct Lane {
    double last_ts = 0.0;
    bool seen = false;
    std::size_t open_spans = 0;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, Lane> lanes;

  struct Flow {
    bool open = false;
    double last_ts = 0.0;
  };
  std::map<std::string, Flow> flow_chains;

  std::size_t index = 0;
  for (const Json& event : events.as_array()) {
    const std::string at = "event " + std::to_string(index);
    ++index;
    if (!event.is_object()) {
      fail(at + ": not an object");
      continue;
    }
    if (!event.contains("ph") || !event.at("ph").is_string() ||
        event.at("ph").as_string().size() != 1) {
      fail(at + ": missing one-character ph");
      continue;
    }
    const char ph = event.at("ph").as_string()[0];
    if (!event.contains("pid") || !event.contains("tid")) {
      fail(at + ": missing pid/tid");
      continue;
    }
    const std::int64_t pid = event.at("pid").as_int();
    const std::int64_t tid = event.at("tid").as_int();

    if (ph == 'M') {
      if (event.get_string("name", "") == "process_name") ++result.processes;
      continue;
    }
    ++result.events;

    if (!event.contains("ts") || !event.at("ts").is_number()) {
      fail(at + ": missing numeric ts");
      continue;
    }
    const double ts = event.at("ts").as_double();
    Lane& lane = lanes[{pid, tid}];
    if (lane.seen && ts < lane.last_ts) {
      fail(at + ": ts " + std::to_string(ts) + " goes backwards on lane (" +
           std::to_string(pid) + ", " + std::to_string(tid) + ")");
    }
    lane.seen = true;
    lane.last_ts = ts;

    switch (ph) {
      case 'B':
        if (!event.contains("name")) fail(at + ": B event without a name");
        ++lane.open_spans;
        break;
      case 'E':
        if (lane.open_spans == 0) {
          fail(at + ": E event with no open B on lane (" +
               std::to_string(pid) + ", " + std::to_string(tid) + ")");
        } else {
          --lane.open_spans;
          ++result.spans;
        }
        break;
      case 'X':
        if (!event.contains("name")) fail(at + ": X event without a name");
        if (!event.contains("dur") || !event.at("dur").is_number() ||
            event.at("dur").as_double() < 0.0) {
          fail(at + ": X event without a non-negative dur");
        }
        ++result.spans;
        break;
      case 'i':
        if (!event.contains("name")) fail(at + ": i event without a name");
        ++result.instants;
        break;
      case 'C':
        if (!event.contains("name")) fail(at + ": C event without a name");
        ++result.counters;
        break;
      case 's':
      case 't':
      case 'f': {
        if (!event.contains("name")) {
          fail(at + ": flow event without a name");
        }
        if (!event.contains("id") || !event.at("id").is_string() ||
            event.at("id").as_string().empty()) {
          fail(at + ": flow event without a string id");
          break;
        }
        const std::string& id = event.at("id").as_string();
        Flow& flow = flow_chains[id];
        if (ph == 's') {
          if (flow.open) {
            fail(at + ": flow '" + id + "' started twice without an end");
          }
          flow.open = true;
          flow.last_ts = ts;
        } else {  // 't' or 'f' must continue an open chain, forward in time
          if (!flow.open) {
            fail(at + ": flow '" + std::string(1, ph) + "' event on '" + id +
                 "' with no open start");
            break;
          }
          if (ts < flow.last_ts) {
            fail(at + ": flow '" + id + "' goes backwards in time");
          }
          flow.last_ts = ts;
          if (ph == 'f') {
            flow.open = false;  // the id may be reused by a later chain
            ++result.flows;
          }
        }
        break;
      }
      default:
        fail(at + ": unknown phase '" + std::string(1, ph) + "'");
        break;
    }
  }

  for (const auto& [key, lane] : lanes) {
    if (lane.open_spans != 0) {
      fail("lane (" + std::to_string(key.first) + ", " +
           std::to_string(key.second) + ") ends with " +
           std::to_string(lane.open_spans) + " unclosed B span(s)");
    }
  }
  for (const auto& [id, flow] : flow_chains) {
    if (flow.open) {
      fail("flow '" + id + "' is started but never terminated with 'f'");
    }
  }
  if (result.events == 0) fail("trace contains no events");

  result.ok = result.errors.empty();
  return result;
}

TraceCheckResult check_trace_file(const std::string& path) {
  TraceCheckResult result;
  std::string error;
  const std::string text = read_file(path, &error);
  if (!error.empty()) {
    result.errors.push_back(error);
    return result;
  }
  try {
    return check_trace_json(parse_json(text));
  } catch (const Error& parse_error) {
    result.errors.push_back(path + ": " + parse_error.what());
    return result;
  }
}

MetricsCheckResult check_metrics_json(const Json& doc) {
  MetricsCheckResult result;
  auto fail = [&](const std::string& message) {
    result.errors.push_back(message);
  };

  if (!doc.is_object()) {
    fail("metrics document is not an object");
    return result;
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!doc.contains(section) || !doc.at(section).is_object()) {
      fail(std::string("missing object member '") + section + "'");
    }
  }
  if (!result.errors.empty()) return result;

  for (const auto& [name, value] : doc.at("counters").as_object()) {
    if (!value.is_number() || value.as_double() < 0.0) {
      fail("counter '" + name + "' is not a non-negative number");
    }
    ++result.counters;
  }
  for (const auto& [name, value] : doc.at("gauges").as_object()) {
    if (!value.is_number()) fail("gauge '" + name + "' is not a number");
    ++result.gauges;
  }
  for (const auto& [name, value] : doc.at("histograms").as_object()) {
    ++result.histograms;
    if (!value.is_object() || !value.contains("buckets") ||
        !value.at("buckets").is_array() || !value.contains("count") ||
        !value.contains("sum")) {
      fail("histogram '" + name + "' lacks buckets/count/sum");
      continue;
    }
    std::uint64_t bucket_total = 0;
    double last_bound = 0.0;
    bool first = true;
    for (const Json& bucket : value.at("buckets").as_array()) {
      if (!bucket.is_object() || !bucket.contains("le") ||
          !bucket.contains("count")) {
        fail("histogram '" + name + "' has a malformed bucket");
        continue;
      }
      bucket_total += static_cast<std::uint64_t>(bucket.at("count").as_int());
      const Json& le = bucket.at("le");
      if (le.is_number()) {
        if (!first && le.as_double() <= last_bound) {
          fail("histogram '" + name + "' bounds are not increasing");
        }
        last_bound = le.as_double();
        first = false;
      } else if (!le.is_string() || le.as_string() != "+Inf") {
        fail("histogram '" + name + "' has a non-numeric bound that is not "
             "+Inf");
      }
    }
    if (bucket_total != static_cast<std::uint64_t>(
                            value.at("count").as_int())) {
      fail("histogram '" + name + "' bucket counts do not sum to count");
    }
    // Tail-accounting and quantile summary fields (optional for
    // hand-built documents; MetricsRegistry always emits them).
    const JsonArray& bucket_array = value.at("buckets").as_array();
    if (value.contains("overflow") && !bucket_array.empty() &&
        bucket_array.back().is_object() &&
        bucket_array.back().contains("count")) {
      if (value.at("overflow").as_int() !=
          bucket_array.back().at("count").as_int()) {
        fail("histogram '" + name +
             "' overflow does not match the +Inf bucket count");
      }
    }
    if (value.contains("underflow") && value.at("underflow").as_int() >
                                           value.at("count").as_int()) {
      fail("histogram '" + name + "' underflow exceeds count");
    }
    if (value.contains("p50") && value.contains("p95") &&
        value.contains("p99")) {
      const double p50 = value.at("p50").as_double();
      const double p95 = value.at("p95").as_double();
      const double p99 = value.at("p99").as_double();
      if (p50 > p95 || p95 > p99) {
        fail("histogram '" + name + "' quantiles are not monotone");
      }
    }
  }

  result.ok = result.errors.empty();
  return result;
}

MetricsCheckResult check_metrics_file(const std::string& path) {
  MetricsCheckResult result;
  std::string error;
  const std::string text = read_file(path, &error);
  if (!error.empty()) {
    result.errors.push_back(error);
    return result;
  }
  try {
    return check_metrics_json(parse_json(text));
  } catch (const Error& parse_error) {
    result.errors.push_back(path + ": " + parse_error.what());
    return result;
  }
}

}  // namespace epi::obs
