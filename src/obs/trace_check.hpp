// Structural validation of emitted trace/metrics JSON — the golden-file
// checks shared by tests/test_obs.cpp and the tools/trace_check CI helper.
//
// A trace passes when it is a Chrome trace_event document: an object with
// a "traceEvents" array whose events carry ph/pid/tid/ts, whose
// timestamps are monotone non-decreasing within every (pid, tid) lane,
// and whose 'B'/'E' spans pair up (every 'E' closes an open 'B', nothing
// left open at the end). Flow chains ('s'/'t'/'f' sharing an id) must be
// well-formed: every step/end follows a start, timestamps never run
// backwards along a chain, and no chain is left dangling. Metrics pass
// when they are the registry snapshot shape with internally consistent
// histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace epi::obs {

struct TraceCheckResult {
  bool ok = false;
  std::vector<std::string> errors;
  std::size_t events = 0;     // non-metadata events
  std::size_t spans = 0;      // matched B/E pairs plus X events
  std::size_t instants = 0;   // 'i'
  std::size_t counters = 0;   // 'C'
  std::size_t flows = 0;      // completed flow chains ('f' matching an 's')
  std::size_t processes = 0;  // named via process_name metadata
};

/// Validates a parsed trace document.
TraceCheckResult check_trace_json(const Json& doc);
/// Reads, parses, and validates a trace file; parse failures are reported
/// as errors, not exceptions.
TraceCheckResult check_trace_file(const std::string& path);

struct MetricsCheckResult {
  bool ok = false;
  std::vector<std::string> errors;
  std::size_t counters = 0;
  std::size_t gauges = 0;
  std::size_t histograms = 0;
};

MetricsCheckResult check_metrics_json(const Json& doc);
MetricsCheckResult check_metrics_file(const std::string& path);

}  // namespace epi::obs
