#include "persondb/person_db.hpp"

#include <fstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace epi {

DbConnection::DbConnection(DbConnection&& other) noexcept
    : server_(other.server_), queries_(other.queries_) {
  other.server_ = nullptr;
}

DbConnection::~DbConnection() {
  if (server_ != nullptr) server_->release(queries_);
}

const PersonTraits& DbConnection::traits(PersonId p) const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  EPI_REQUIRE(p < server_->persons_.size(), "person id out of range: " << p);
  ++queries_;
  return server_->persons_[p];
}

std::vector<PersonId> DbConnection::persons_in_county(
    std::uint16_t county) const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  EPI_REQUIRE(county < server_->county_index_.size(),
              "county index out of range: " << county);
  const auto& result = server_->county_index_[county];
  queries_ += result.size();
  return result;
}

std::vector<PersonId> DbConnection::household_members(
    std::uint32_t household) const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  EPI_REQUIRE(household < server_->households_.size(),
              "household out of range: " << household);
  const Household& hh = server_->households_[household];
  std::vector<PersonId> members;
  members.reserve(hh.size);
  for (PersonId p = hh.first_person; p < hh.first_person + hh.size; ++p) {
    members.push_back(p);
  }
  queries_ += members.size();
  return members;
}

std::vector<PersonId> DbConnection::persons_in_age_group(AgeGroup group) const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  std::vector<PersonId> result;
  for (PersonId p = 0; p < server_->persons_.size(); ++p) {
    if (server_->persons_[p].age_group == static_cast<std::uint8_t>(group)) {
      result.push_back(p);
    }
  }
  queries_ += result.size();
  return result;
}

PersonId DbConnection::person_count() const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  return server_->person_count();
}

std::size_t DbConnection::county_count() const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  return server_->county_fips_.size();
}

std::uint32_t DbConnection::county_fips(std::size_t county) const {
  EPI_REQUIRE(server_ != nullptr, "use of moved-from DbConnection");
  EPI_REQUIRE(county < server_->county_fips_.size(), "county out of range");
  return server_->county_fips_[county];
}

PersonDbServer::PersonDbServer(const Population& population,
                               std::size_t max_connections)
    : region_(population.region()),
      persons_(population.persons()),
      households_(population.households()),
      county_fips_(population.county_fips_codes()),
      max_connections_(max_connections) {
  EPI_REQUIRE(max_connections_ > 0, "database needs at least one connection");
  county_index_.resize(county_fips_.size());
  for (PersonId p = 0; p < persons_.size(); ++p) {
    county_index_[persons_[p].county].push_back(p);
  }
}

namespace {
constexpr std::uint64_t kSnapshotMagic = 0x4550534e4150ULL;  // "EPSNAP"
}

void PersonDbServer::save_snapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot write snapshot: " + path);
  const std::uint64_t magic = kSnapshotMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::uint64_t region_len = region_.size();
  out.write(reinterpret_cast<const char*>(&region_len), sizeof(region_len));
  out.write(region_.data(), static_cast<std::streamsize>(region_len));
  const std::uint64_t person_count = persons_.size();
  const std::uint64_t household_count = households_.size();
  const std::uint64_t county_count = county_fips_.size();
  out.write(reinterpret_cast<const char*>(&person_count), sizeof(person_count));
  out.write(reinterpret_cast<const char*>(&household_count),
            sizeof(household_count));
  out.write(reinterpret_cast<const char*>(&county_count), sizeof(county_count));
  out.write(reinterpret_cast<const char*>(persons_.data()),
            static_cast<std::streamsize>(persons_.size() * sizeof(PersonTraits)));
  out.write(reinterpret_cast<const char*>(households_.data()),
            static_cast<std::streamsize>(households_.size() * sizeof(Household)));
  out.write(reinterpret_cast<const char*>(county_fips_.data()),
            static_cast<std::streamsize>(county_fips_.size() * sizeof(std::uint32_t)));
  EPI_REQUIRE(out.good(), "short write to snapshot " << path);
}

std::unique_ptr<PersonDbServer> PersonDbServer::from_snapshot(
    const std::string& path, std::size_t max_connections) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot read snapshot: " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  EPI_REQUIRE(in.good() && magic == kSnapshotMagic,
              "not a person-db snapshot: " << path);
  std::uint64_t region_len = 0;
  in.read(reinterpret_cast<char*>(&region_len), sizeof(region_len));
  std::string region(region_len, '\0');
  in.read(region.data(), static_cast<std::streamsize>(region_len));
  std::uint64_t person_count = 0, household_count = 0, county_count = 0;
  in.read(reinterpret_cast<char*>(&person_count), sizeof(person_count));
  in.read(reinterpret_cast<char*>(&household_count), sizeof(household_count));
  in.read(reinterpret_cast<char*>(&county_count), sizeof(county_count));
  EPI_REQUIRE(in.good(), "truncated snapshot header: " << path);

  std::vector<PersonTraits> persons(person_count);
  std::vector<Household> households(household_count);
  std::vector<std::uint32_t> county_fips(county_count);
  in.read(reinterpret_cast<char*>(persons.data()),
          static_cast<std::streamsize>(person_count * sizeof(PersonTraits)));
  in.read(reinterpret_cast<char*>(households.data()),
          static_cast<std::streamsize>(household_count * sizeof(Household)));
  in.read(reinterpret_cast<char*>(county_fips.data()),
          static_cast<std::streamsize>(county_count * sizeof(std::uint32_t)));
  EPI_REQUIRE(in.good(), "truncated snapshot body: " << path);

  // Reconstitute via Population to re-validate invariants, then steal the
  // columns. Snapshots come from disk; trust nothing.
  Population population(std::move(region), std::move(county_fips),
                        std::move(persons), std::move(households));
  return std::make_unique<PersonDbServer>(population, max_connections);
}

std::optional<DbConnection> PersonDbServer::connect() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_ >= max_connections_) {
    if (metrics_ != nullptr) {
      metrics_->add("persondb." + region_ + ".rejected");
    }
    return std::nullopt;
  }
  ++active_;
  peak_ = std::max(peak_, active_);
  if (metrics_ != nullptr) {
    metrics_->add("persondb." + region_ + ".connections_opened");
    metrics_->set("persondb." + region_ + ".active",
                  static_cast<double>(active_));
    metrics_->set_max("persondb." + region_ + ".peak",
                      static_cast<double>(active_));
  }
  return DbConnection(this);
}

ResilientConnectResult PersonDbServer::connect_resilient(
    const FaultInjector& faults, const RetryPolicy& policy,
    ResilienceLedger* ledger) {
  if (!faults.enabled()) {
    return ResilientConnectResult{connect(), 1, 0.0};
  }
  std::uint32_t attempt = 1;
  double wait_s = 0.0;
  while (true) {
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seq = connect_attempts_++;
    }
    if (!faults.db_drop(region_, seq)) {
      if (attempt > 1 && ledger != nullptr) {
        ledger->record(FaultKind::kDbReconnect, 0.0, region_);
        ledger->add_retry_wait_seconds(wait_s);
      }
      return ResilientConnectResult{connect(), attempt, wait_s};
    }
    if (ledger != nullptr) {
      ledger->record(FaultKind::kDbDrop, 0.0, region_);
    }
    if (metrics_ != nullptr) {
      metrics_->add("persondb." + region_ + ".dropped");
    }
    if (policy.give_up(attempt, wait_s)) {
      return ResilientConnectResult{std::nullopt, attempt, wait_s};
    }
    wait_s += policy.delay_s(
        attempt, faults.jitter(stable_label_hash(region_), attempt));
    ++attempt;
  }
}

std::size_t PersonDbServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::size_t PersonDbServer::peak_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

void PersonDbServer::release(std::uint64_t queries) {
  std::lock_guard<std::mutex> lock(mutex_);
  EPI_ASSERT(active_ > 0, "connection release underflow");
  --active_;
  if (metrics_ != nullptr) {
    metrics_->add("persondb." + region_ + ".connections_closed");
    if (queries > 0) metrics_->add("persondb." + region_ + ".queries", queries);
    metrics_->set("persondb." + region_ + ".active",
                  static_cast<double>(active_));
  }
}

void PersonDbServer::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
}

PersonDbServer& PersonDbRegistry::start(const Population& population,
                                        std::size_t max_connections) {
  auto server = std::make_unique<PersonDbServer>(population, max_connections);
  PersonDbServer& ref = *server;
  servers_[population.region()] = std::move(server);
  if (metrics_ != nullptr) {
    ref.set_metrics(metrics_);
    metrics_->add("persondb.servers_started");
  }
  return ref;
}

PersonDbServer& PersonDbRegistry::get(const std::string& region) {
  const auto it = servers_.find(region);
  EPI_REQUIRE(it != servers_.end(), "no database running for region " << region);
  return *it->second;
}

bool PersonDbRegistry::is_running(const std::string& region) const {
  return servers_.count(region) != 0;
}

void PersonDbRegistry::stop(const std::string& region) {
  servers_.erase(region);
}

void PersonDbRegistry::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [region, server] : servers_) server->set_metrics(metrics);
}

}  // namespace epi
