// Person-trait database (the PostgreSQL substitute).
//
// In production (paper §III-IV) each region's synthetic-person table lives
// in a PostgreSQL server started per population on a dedicated compute
// node; simulations query traits at run-time, the server is instantiated
// from a pre-built snapshot to speed startup, and the number of
// simultaneous client connections is bounded — that bound is what turns
// job mapping into the DB-constrained WMP of §V.
//
// This module reproduces those semantics: a columnar in-memory trait store
// per region, explicit client Connection handles drawn from a bounded
// pool (acquiring beyond max_connections fails, as Postgres would), binary
// snapshot save/instantiate, and a registry ("one database per region",
// §V Step 1) the workflow layer starts servers in.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "resilience/fault_injector.hpp"
#include "resilience/ledger.hpp"
#include "resilience/retry_policy.hpp"
#include "synthpop/population.hpp"

namespace epi::obs {
class MetricsRegistry;
}

namespace epi {

class PersonDbServer;

/// RAII client connection. Releases its server slot on destruction.
class DbConnection {
 public:
  DbConnection(DbConnection&& other) noexcept;
  DbConnection& operator=(DbConnection&&) = delete;
  DbConnection(const DbConnection&) = delete;
  ~DbConnection();

  /// Single-person trait lookup.
  const PersonTraits& traits(PersonId p) const;

  /// All persons in a county (by county index).
  std::vector<PersonId> persons_in_county(std::uint16_t county) const;

  /// Members of a household.
  std::vector<PersonId> household_members(std::uint32_t household) const;

  /// Persons matching an age-group predicate (full scan).
  std::vector<PersonId> persons_in_age_group(AgeGroup group) const;

  PersonId person_count() const;
  std::size_t county_count() const;
  std::uint32_t county_fips(std::size_t county) const;

  /// Cumulative rows served on this connection (load accounting).
  std::uint64_t queries_served() const { return queries_; }

 private:
  friend class PersonDbServer;
  explicit DbConnection(PersonDbServer* server) : server_(server) {}
  PersonDbServer* server_;
  mutable std::uint64_t queries_ = 0;
};

/// Result of a fault-aware connection attempt: the connection (nullopt
/// when the pool is exhausted or retries ran out), how many attempts it
/// took, and the modeled backoff wait.
struct ResilientConnectResult {
  std::optional<DbConnection> connection;
  std::uint32_t attempts = 1;
  double wait_s = 0.0;
};

/// One region's person database server.
class PersonDbServer {
 public:
  /// Loads the population into columnar storage. `max_connections`
  /// mirrors the Postgres connection cap that drives DB-WMP.
  PersonDbServer(const Population& population, std::size_t max_connections);

  /// Instantiates a server from a snapshot file (the production fast-start
  /// path: "snapshots of the databases are generated when the populations
  /// are initially created, and these snapshots are instantiated at
  /// run-time").
  static std::unique_ptr<PersonDbServer> from_snapshot(
      const std::string& path, std::size_t max_connections);

  /// Writes a snapshot of this database.
  void save_snapshot(const std::string& path) const;

  /// Opens a connection; nullopt when the pool is exhausted.
  std::optional<DbConnection> connect();

  /// Opens a connection under fault injection: attempts may drop
  /// (FaultSpec::db_drop_prob) and are retried with backoff per
  /// `policy`. Every attempt — dropped or not — consumes one slot of
  /// this server's deterministic attempt sequence, so the outcome
  /// depends only on (fault seed, region, attempt index). With the
  /// injector disabled this is exactly connect().
  ResilientConnectResult connect_resilient(const FaultInjector& faults,
                                           const RetryPolicy& policy,
                                           ResilienceLedger* ledger = nullptr);

  std::size_t max_connections() const { return max_connections_; }
  std::size_t active_connections() const;
  /// High-water mark of simultaneously open connections.
  std::size_t peak_connections() const;

  /// Attaches a metrics sink (nullptr detaches): per-region session
  /// open/close and query counters plus active/peak connection gauges
  /// under "persondb.<region>.*".
  void set_metrics(obs::MetricsRegistry* metrics);

  const std::string& region() const { return region_; }
  PersonId person_count() const {
    return static_cast<PersonId>(persons_.size());
  }

 private:
  friend class DbConnection;
  void release(std::uint64_t queries);

  std::string region_;
  std::vector<PersonTraits> persons_;
  std::vector<Household> households_;
  std::vector<std::uint32_t> county_fips_;
  // county index -> persons (prebuilt index, like a DB btree on county).
  std::vector<std::vector<PersonId>> county_index_;

  std::size_t max_connections_;
  mutable std::mutex mutex_;
  std::size_t active_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t connect_attempts_ = 0;  // fault-keying sequence
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Region-name -> running server registry; the workflow layer's "start the
/// population databases, one per population" step.
class PersonDbRegistry {
 public:
  /// Starts a server for `population` (replacing any previous one).
  PersonDbServer& start(const Population& population,
                        std::size_t max_connections);

  /// Running server for a region; throws if not started.
  PersonDbServer& get(const std::string& region);

  bool is_running(const std::string& region) const;
  void stop(const std::string& region);
  std::size_t running_count() const { return servers_.size(); }

  /// Attaches a metrics sink to every running server and every server
  /// started afterwards; counts server starts under
  /// "persondb.servers_started".
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  std::map<std::string, std::unique_ptr<PersonDbServer>> servers_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace epi
