#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <cmath>

namespace epi {

std::uint32_t CheckpointSpec::checkpoints_per_run() const {
  if (!active()) return 0;
  // A checkpoint after every full interval, except one landing exactly on
  // the final tick (the run is over, nothing left to protect).
  const std::uint32_t intervals = (job_ticks - 1) / interval_ticks;
  return intervals;
}

double CheckpointSpec::overhead_hours() const {
  return checkpoints_per_run() * write_cost_s / 3600.0;
}

double CheckpointSpec::period_hours(double base_runtime_hours) const {
  if (!active()) return 0.0;
  return base_runtime_hours * static_cast<double>(interval_ticks) /
         static_cast<double>(job_ticks);
}

double CheckpointSpec::saved_hours(double base_runtime_hours,
                                   double elapsed_hours) const {
  if (!active() || base_runtime_hours <= 0.0 || elapsed_hours <= 0.0) {
    return 0.0;
  }
  // Execution alternates period_hours of useful work with one checkpoint
  // write; progress is durable only at completed writes.
  const double period = period_hours(base_runtime_hours);
  if (period <= 0.0) return 0.0;
  const double slot = period + write_cost_s / 3600.0;
  const auto completed = std::floor(elapsed_hours / slot);
  const double saved =
      std::min(completed * period,
               static_cast<double>(checkpoints_per_run()) * period);
  return std::max(0.0, saved);
}

}  // namespace epi
