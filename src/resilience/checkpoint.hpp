// Checkpoint/requeue cost model for EpiHiper jobs in the Slurm DES.
//
// A job simulating `job_ticks` days writes a checkpoint every
// `interval_ticks` simulated ticks at a fixed I/O cost. When the DES
// kills the job (its node crashed), it requeues and resumes from the
// last completed checkpoint instead of from scratch; the work since that
// checkpoint is wasted. With `interval_ticks == 0` there are no
// checkpoints and a killed job restarts from tick 0 — the seed
// behaviour, and also what the model degrades to when crashes are rare
// enough that checkpoint I/O costs more than it saves (the trade-off
// bench_resilience_sweep sweeps).
//
// All quantities are mapped into schedule time: a job whose sampled
// runtime is R hours progresses through its ticks uniformly, so a
// checkpoint every K of T ticks is a checkpoint every R*K/T hours of
// execution.
#pragma once

#include <cstdint>

namespace epi {

struct CheckpointSpec {
  /// Simulated ticks between checkpoints. 0 disables checkpointing.
  std::uint32_t interval_ticks = 0;
  /// Ticks one job simulates (the design horizon); set by the workflow
  /// from WorkflowDesign::num_days.
  std::uint32_t job_ticks = 365;
  /// Wall cost of writing one checkpoint (scales with state size in
  /// production; a scalar here).
  double write_cost_s = 30.0;
  /// Wall cost of restoring from a checkpoint on requeue.
  double restore_cost_s = 60.0;

  bool active() const { return interval_ticks > 0 && job_ticks > 0; }

  /// Number of checkpoints a full run writes (none at the final tick —
  /// the job is done).
  std::uint32_t checkpoints_per_run() const;

  /// Total checkpoint-write overhead added to one full run, in hours.
  double overhead_hours() const;

  /// Execution-time spacing between checkpoints for a job whose useful
  /// runtime is `base_runtime_hours` (excluding checkpoint overhead).
  double period_hours(double base_runtime_hours) const;

  /// Progress (in useful-runtime hours, multiple of the checkpoint
  /// period) durably saved after `elapsed_hours` of execution of a job
  /// with useful runtime `base_runtime_hours`. Accounts for checkpoint
  /// writes interleaved with execution; 0 without checkpointing.
  double saved_hours(double base_runtime_hours, double elapsed_hours) const;

  /// Restore cost in hours.
  double restore_hours() const { return restore_cost_s / 3600.0; }
};

}  // namespace epi
