#include "resilience/fault_injector.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace epi {

namespace {
// Stream labels: keep each fault family in its own derived stream so
// adding a family never perturbs the others.
constexpr std::uint64_t kNodeStream = 0x4E4F4445ULL;    // "NODE"
constexpr std::uint64_t kWanStream = 0x57414EULL;       // "WAN"
constexpr std::uint64_t kDbStream = 0x4442ULL;          // "DB"
constexpr std::uint64_t kSimStream = 0x53494DULL;       // "SIM"
constexpr std::uint64_t kJitterStream = 0x4A495454ULL;  // "JITT"
}  // namespace

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  EPI_REQUIRE(spec_.node_mtbf_hours >= 0.0, "negative node MTBF");
  EPI_REQUIRE(spec_.node_repair_hours >= 0.0, "negative node repair time");
  EPI_REQUIRE(spec_.wan_failure_prob >= 0.0 && spec_.wan_failure_prob <= 1.0,
              "WAN failure probability out of [0, 1]");
  EPI_REQUIRE(spec_.wan_degraded_prob >= 0.0 && spec_.wan_degraded_prob <= 1.0,
              "WAN degradation probability out of [0, 1]");
  EPI_REQUIRE(
      spec_.wan_degraded_factor > 0.0 && spec_.wan_degraded_factor <= 1.0,
      "WAN degradation factor out of (0, 1]");
  EPI_REQUIRE(spec_.db_drop_prob >= 0.0 && spec_.db_drop_prob <= 1.0,
              "DB drop probability out of [0, 1]");
  EPI_REQUIRE(spec_.sim_failure_prob >= 0.0 && spec_.sim_failure_prob <= 1.0,
              "simulation failure probability out of [0, 1]");
}

std::vector<NodeOutage> FaultInjector::node_outages(
    std::uint32_t nodes, double horizon_hours) const {
  std::vector<NodeOutage> outages;
  if (!spec_.enabled || spec_.node_mtbf_hours <= 0.0 || horizon_hours <= 0.0) {
    return outages;
  }
  const Rng root(spec_.seed);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    Rng node_rng = root.derive({kNodeStream, n});
    double t = node_rng.exponential(1.0 / spec_.node_mtbf_hours);
    while (t < horizon_hours) {
      const double up = t + spec_.node_repair_hours;
      outages.push_back(NodeOutage{n, t, up});
      t = up + node_rng.exponential(1.0 / spec_.node_mtbf_hours);
    }
  }
  std::sort(outages.begin(), outages.end(),
            [](const NodeOutage& a, const NodeOutage& b) {
              if (a.down_hours != b.down_hours)
                return a.down_hours < b.down_hours;
              return a.node < b.node;
            });
  return outages;
}

WanAttemptFault FaultInjector::wan_attempt(std::uint64_t transfer_seq,
                                           std::uint32_t attempt) const {
  WanAttemptFault fault;
  if (!spec_.enabled) return fault;
  Rng rng = Rng(spec_.seed).derive({kWanStream, transfer_seq, attempt});
  const double u = rng.uniform();
  if (u < spec_.wan_failure_prob) {
    fault.fail = true;
  } else if (u < spec_.wan_failure_prob + spec_.wan_degraded_prob) {
    fault.throughput_factor = spec_.wan_degraded_factor;
  }
  return fault;
}

bool FaultInjector::db_drop(const std::string& region,
                            std::uint64_t attempt_seq) const {
  if (!spec_.enabled || spec_.db_drop_prob <= 0.0) return false;
  Rng rng = Rng(spec_.seed)
                .derive({kDbStream, stable_label_hash(region), attempt_seq});
  return rng.uniform() < spec_.db_drop_prob;
}

bool FaultInjector::sim_failure(std::uint64_t job_seq,
                                std::uint32_t attempt) const {
  if (!spec_.enabled || spec_.sim_failure_prob <= 0.0) return false;
  Rng rng = Rng(spec_.seed).derive({kSimStream, job_seq, attempt});
  return rng.uniform() < spec_.sim_failure_prob;
}

double FaultInjector::jitter(std::uint64_t stream,
                             std::uint32_t attempt) const {
  Rng rng = Rng(spec_.seed).derive({kJitterStream, stream, attempt});
  return rng.uniform();
}

std::uint64_t stable_label_hash(const std::string& text) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace epi
