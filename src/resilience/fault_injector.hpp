// Deterministic fault injection for the two-cluster workflow model.
//
// The production system (paper §IV) ran every night under a hard 8am
// deadline on infrastructure that does fail: compute nodes crash, Globus
// WAN flows stall or degrade, and PostgreSQL sessions drop. This module
// generates a *seeded, deterministic* fault schedule so those failure
// modes can be injected into the Slurm DES, the transfer model, and the
// person-database layer, and so any faulty run is exactly reproducible
// from (workflow seed, fault seed).
//
// Determinism contract: every draw is keyed by stable labels (node id,
// transfer sequence number, region hash, attempt number) through the
// splittable RNG, never by call order. Querying faults in a different
// order — or not at all — cannot change any other component's stream.
// With `FaultSpec::enabled == false` (the default) the injector reports
// no faults and consumes no randomness anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace epi {

/// Knobs for the injected fault environment. Defaults model a perfect
/// world; paper-plausible production rates are node MTBF >= 30 days,
/// WAN failure <= 2%, and rare DB session drops.
struct FaultSpec {
  /// Master switch. When false the injector is inert and all other knobs
  /// are ignored; every consumer must behave byte-identically to a build
  /// without fault injection.
  bool enabled = false;
  /// Fault-schedule seed, independent of the workflow seed so the same
  /// night can be replayed under different weather.
  std::uint64_t seed = 0xFA171ULL;

  /// Mean time between failures of one compute node, in hours
  /// (exponential inter-failure times). 0 disables node crashes.
  /// 30 days = 720 h is the pessimistic end of production hardware.
  double node_mtbf_hours = 0.0;
  /// Time a crashed node stays down before rejoining the pool.
  double node_repair_hours = 2.0;

  /// Probability that one WAN transfer attempt fails outright
  /// (checksum mismatch, endpoint fault) and must be retried.
  double wan_failure_prob = 0.0;
  /// Probability that an attempt succeeds but at degraded throughput
  /// (congested Internet2 path).
  double wan_degraded_prob = 0.0;
  /// Throughput multiplier applied to degraded attempts (0 < f <= 1).
  double wan_degraded_factor = 0.25;

  /// Probability that opening a person-DB session fails transiently and
  /// must be retried (connection drop / server hiccup).
  double db_drop_prob = 0.0;

  /// Probability that one simulation job attempt dies for reasons below
  /// the scheduler's radar (OOM, filesystem hiccup); used by the
  /// calibration cycle's retry wrapper on the home cluster.
  double sim_failure_prob = 0.0;
};

/// One scheduled outage of one node: down at `down_hours`, back in the
/// pool at `up_hours`.
struct NodeOutage {
  std::uint32_t node = 0;
  double down_hours = 0.0;
  double up_hours = 0.0;
};

/// Outcome of one WAN transfer attempt.
struct WanAttemptFault {
  bool fail = false;
  double throughput_factor = 1.0;  // < 1 when degraded
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec = {});

  bool enabled() const { return spec_.enabled; }
  const FaultSpec& spec() const { return spec_; }

  /// Deterministic per-node outage schedule over [0, horizon_hours),
  /// sorted by down time. Node n's failures depend only on (seed, n).
  std::vector<NodeOutage> node_outages(std::uint32_t nodes,
                                       double horizon_hours) const;

  /// Fault state of attempt `attempt` (1-based) of the `transfer_seq`-th
  /// transfer issued by one GlobusTransfer instance.
  WanAttemptFault wan_attempt(std::uint64_t transfer_seq,
                              std::uint32_t attempt) const;

  /// Whether the `attempt_seq`-th connection attempt against `region`'s
  /// person database drops.
  bool db_drop(const std::string& region, std::uint64_t attempt_seq) const;

  /// Whether attempt `attempt` (1-based) of simulation job `job_seq`
  /// dies transiently.
  bool sim_failure(std::uint64_t job_seq, std::uint32_t attempt) const;

  /// Seeded uniform [0, 1) for retry-backoff jitter, keyed by
  /// (stream, attempt) so independent retry loops do not correlate.
  double jitter(std::uint64_t stream, std::uint32_t attempt) const;

 private:
  FaultSpec spec_;
};

/// Stable 64-bit FNV-1a (labels must not depend on std::hash, whose
/// value is implementation-defined).
std::uint64_t stable_label_hash(const std::string& text);

}  // namespace epi
