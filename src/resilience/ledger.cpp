#include "resilience/ledger.hpp"

#include "obs/trace.hpp"

namespace epi {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeRepair: return "node-repair";
    case FaultKind::kJobKilled: return "job-killed";
    case FaultKind::kJobRequeued: return "job-requeued";
    case FaultKind::kWanFailure: return "wan-failure";
    case FaultKind::kWanDegraded: return "wan-degraded";
    case FaultKind::kWanRetry: return "wan-retry";
    case FaultKind::kDbDrop: return "db-drop";
    case FaultKind::kDbReconnect: return "db-reconnect";
    case FaultKind::kSimRetry: return "sim-retry";
  }
  return "unknown";
}

void ResilienceLedger::record(FaultKind kind, double time_hours,
                              std::string detail) {
  if (trace_ != nullptr) {
    obs::TraceArgs args;
    if (!detail.empty()) args["detail"] = detail;
    trace_->instant(trace_pid_, trace_tid_, fault_kind_name(kind), "fault",
                    trace_base_hours_ + time_hours, std::move(args));
  }
  events_.push_back(FaultEvent{kind, time_hours, std::move(detail)});
}

void ResilienceLedger::merge(const ResilienceLedger& other) {
  for (const FaultEvent& event : other.events_) {
    record(event.kind, event.time_hours, event.detail);
  }
  wasted_node_hours_ += other.wasted_node_hours_;
  checkpoint_overhead_node_hours_ += other.checkpoint_overhead_node_hours_;
  retry_wait_hours_ += other.retry_wait_hours_;
}

void ResilienceLedger::set_trace(obs::TraceRecorder* trace, std::uint32_t pid,
                                 std::uint32_t tid) {
  trace_ = trace;
  trace_pid_ = pid;
  trace_tid_ = tid;
}

std::uint64_t ResilienceLedger::count(FaultKind kind) const {
  std::uint64_t n = 0;
  for (const FaultEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

ResilienceSummary ResilienceLedger::summary() const {
  ResilienceSummary s;
  s.node_crashes = count(FaultKind::kNodeCrash);
  s.jobs_killed = count(FaultKind::kJobKilled);
  s.jobs_requeued = count(FaultKind::kJobRequeued);
  s.wan_failures = count(FaultKind::kWanFailure);
  s.wan_degraded = count(FaultKind::kWanDegraded);
  s.wan_retries = count(FaultKind::kWanRetry);
  s.db_drops = count(FaultKind::kDbDrop);
  s.db_reconnects = count(FaultKind::kDbReconnect);
  s.sim_retries = count(FaultKind::kSimRetry);
  s.wasted_node_hours = wasted_node_hours_;
  s.checkpoint_overhead_node_hours = checkpoint_overhead_node_hours_;
  s.retry_wait_hours = retry_wait_hours_;
  return s;
}

}  // namespace epi
