// Resilience ledger: the audit trail of every injected fault and every
// recovery action taken during one workflow run.
//
// The Slurm DES, the WAN transfer model, the person-DB layer and the
// calibration cycle all write into one ledger; WorkflowReport carries
// the roll-up (ResilienceSummary) so benches can report deadline slack,
// wasted core-hours and recovery counts next to the paper's utilization
// metric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace epi::obs {
class TraceRecorder;
}

namespace epi {

enum class FaultKind : std::uint8_t {
  kNodeCrash,     // a compute node went down
  kNodeRepair,    // a node rejoined the pool
  kJobKilled,     // a running job died with its node
  kJobRequeued,   // a killed job re-entered the queue
  kWanFailure,    // a WAN transfer attempt failed outright
  kWanDegraded,   // a WAN attempt ran at degraded throughput
  kWanRetry,      // a WAN transfer attempt was retried
  kDbDrop,        // a person-DB connection attempt dropped
  kDbReconnect,   // a dropped session was re-established
  kSimRetry,      // a home-cluster simulation attempt was re-run
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  FaultKind kind{};
  /// Workflow-clock time of the event, in hours (0 when the component
  /// has no clock, e.g. connection-level events).
  double time_hours = 0.0;
  std::string detail;

  bool operator==(const FaultEvent&) const = default;
};

/// Roll-up of one run's ledger; all-zero when the injector is disabled.
struct ResilienceSummary {
  std::uint64_t node_crashes = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_requeued = 0;
  std::uint64_t wan_failures = 0;
  std::uint64_t wan_degraded = 0;
  std::uint64_t wan_retries = 0;
  std::uint64_t db_drops = 0;
  std::uint64_t db_reconnects = 0;
  std::uint64_t sim_retries = 0;
  /// Node-hours of execution lost to kills (work past the last
  /// checkpoint, weighted by job width).
  double wasted_node_hours = 0.0;
  /// Node-hours spent writing/restoring checkpoints.
  double checkpoint_overhead_node_hours = 0.0;
  /// Wall time spent in retry backoff across all components.
  double retry_wait_hours = 0.0;

  bool operator==(const ResilienceSummary&) const = default;
};

class ResilienceLedger {
 public:
  void record(FaultKind kind, double time_hours, std::string detail = {});

  /// Mirrors every recorded fault/recovery as an instant event on
  /// (pid, tid) of `trace` (nullptr detaches). Event time is
  /// trace_base_hours + time_hours; components whose events carry a
  /// relative or zero clock (WAN attempts, DB sessions) set the base to
  /// the workflow clock before running, so instants land on the timeline
  /// where the fault actually struck.
  void set_trace(obs::TraceRecorder* trace, std::uint32_t pid,
                 std::uint32_t tid = 0);
  void set_trace_base_hours(double hours) { trace_base_hours_ = hours; }

  void add_wasted_node_hours(double hours) { wasted_node_hours_ += hours; }
  void add_checkpoint_overhead_node_hours(double hours) {
    checkpoint_overhead_node_hours_ += hours;
  }
  void add_retry_wait_seconds(double seconds) {
    retry_wait_hours_ += seconds / 3600.0;
  }

  /// Appends another ledger's events (through record(), so an attached
  /// trace mirrors them) and folds in its scalar accumulators. The
  /// parallel simulation farm gives each task a private ledger and merges
  /// them in task-index order, so the merged event stream is identical to
  /// the serial loop's regardless of completion order.
  void merge(const ResilienceLedger& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t count(FaultKind kind) const;
  double wasted_node_hours() const { return wasted_node_hours_; }

  ResilienceSummary summary() const;

 private:
  std::vector<FaultEvent> events_;
  double wasted_node_hours_ = 0.0;
  double checkpoint_overhead_node_hours_ = 0.0;
  double retry_wait_hours_ = 0.0;
  obs::TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  std::uint32_t trace_tid_ = 0;
  double trace_base_hours_ = 0.0;
};

}  // namespace epi
