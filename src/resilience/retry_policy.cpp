#include "resilience/retry_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace epi {

double RetryPolicy::delay_s(std::uint32_t attempt, double jitter_u) const {
  EPI_REQUIRE(attempt >= 1, "retry attempt numbers are 1-based");
  EPI_REQUIRE(jitter_u >= 0.0 && jitter_u < 1.0, "jitter draw out of [0, 1)");
  const double raw =
      base_delay_s * std::pow(multiplier, static_cast<double>(attempt - 1));
  const double capped = std::min(raw, max_delay_s);
  const double jittered =
      capped * (1.0 + jitter_fraction * (2.0 * jitter_u - 1.0));
  return std::max(0.0, jittered);
}

bool RetryPolicy::give_up(std::uint32_t attempts_done,
                          double elapsed_s) const {
  if (attempts_done >= max_attempts) return true;
  if (deadline_s > 0.0 && elapsed_s >= deadline_s) return true;
  return false;
}

}  // namespace epi
