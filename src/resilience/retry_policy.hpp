// Generic retry policy: exponential backoff with seeded jitter, bounded
// attempts, and deadline-aware give-up.
//
// Used by the WAN transfer model and the person-database session layer;
// the DES uses checkpoint/requeue instead (a killed 6-node job is not
// "retried", it is rescheduled — see checkpoint.hpp).
//
// The jitter input is an externally supplied uniform [0, 1) draw (from
// FaultInjector::jitter, keyed by stream + attempt) so the policy itself
// holds no RNG state and identical inputs always produce identical
// delays.
#pragma once

#include <cstdint>

namespace epi {

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  std::uint32_t max_attempts = 5;
  /// Delay before the first retry.
  double base_delay_s = 15.0;
  /// Backoff multiplier per retry.
  double multiplier = 2.0;
  /// Backoff ceiling.
  double max_delay_s = 600.0;
  /// Symmetric jitter amplitude: delay *= 1 + jitter_fraction*(2u - 1).
  double jitter_fraction = 0.25;
  /// Give up retrying when the accumulated wait would cross this budget
  /// (seconds). 0 = no deadline; the nightly workflow sets it from the
  /// slack to the 8am deadline.
  double deadline_s = 0.0;

  /// Backoff delay before retry number `attempt` (1-based: the delay
  /// taken after attempt `attempt` failed). `jitter_u` is uniform [0,1).
  double delay_s(std::uint32_t attempt, double jitter_u) const;

  /// True when no further attempt should be made after `attempts_done`
  /// attempts with `elapsed_s` already spent waiting.
  bool give_up(std::uint32_t attempts_done, double elapsed_s) const;
};

}  // namespace epi
