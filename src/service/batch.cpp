#include "service/batch.hpp"

#include <algorithm>
#include <map>

namespace epi::service {

namespace {

// The virtual cost model: one simulated replicate-day costs a fixed
// slice of an hour, matching the shape (not the wall time) of the real
// farms — the prior stage is prior_configs + 6 covariance replicates of
// calibration_days each, the tail is prediction_runs forecast runs over
// the full window plus the MCMC chain, and a nightly run is its sampled
// executions plus the scheduled (simulated-only) job array.
constexpr double kHoursPerSimDay = 0.01;
constexpr double kHoursPerMcmcStep = 0.001;
constexpr double kHoursPerScheduledSim = 0.0001;
constexpr std::size_t kCovarianceReplicates = 6;

}  // namespace

double stage_cost_hours(const ScenarioRequest& request) {
  if (request.kind != RequestKind::kCalibration) return 0.0;
  const double sims =
      static_cast<double>(request.prior_configs + kCovarianceReplicates);
  return sims * static_cast<double>(request.calibration_days) *
         kHoursPerSimDay;
}

double tail_cost_hours(const ScenarioRequest& request) {
  if (request.kind == RequestKind::kCalibration) {
    const double forecast_days =
        static_cast<double>(request.calibration_days + request.horizon_days);
    return static_cast<double>(request.prediction_runs) * forecast_days *
               kHoursPerSimDay +
           static_cast<double>(request.mcmc_samples + request.mcmc_burn_in) *
               kHoursPerMcmcStep;
  }
  const WorkflowDesign design = to_nightly_design(request);
  return static_cast<double>(request.sample_executions) *
             static_cast<double>(request.executed_days) * kHoursPerSimDay +
         static_cast<double>(design.simulations()) * kHoursPerScheduledSim;
}

ServicePlan plan_requests(const std::vector<ScenarioRequest>& requests) {
  ServicePlan plan;
  plan.order.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) plan.order[i] = i;
  // stable_sort keeps arrival order within a priority class — the tie
  // rule analysts see ("equal priority is first come, first served").
  std::stable_sort(plan.order.begin(), plan.order.end(),
                   [&requests](std::size_t a, std::size_t b) {
                     return requests[a].priority > requests[b].priority;
                   });

  plan.unit_of.assign(requests.size(), 0);
  std::map<Hash128, std::size_t> unit_by_key;
  for (std::size_t request_index : plan.order) {
    const ScenarioRequest& request = requests[request_index];
    const Hash128 key = hash128(result_key_text(request));
    auto [it, inserted] = unit_by_key.try_emplace(key, plan.units.size());
    if (inserted) {
      UnitPlan unit;
      unit.owner = request_index;
      unit.kind = request.kind;
      unit.result_key = key;
      if (request.kind == RequestKind::kCalibration) {
        unit.stage_key = hash128(prior_stage_key_text(request));
        unit.has_stage = true;
        unit.stage_cost_hours = stage_cost_hours(request);
      }
      unit.tail_cost_hours = tail_cost_hours(request);
      plan.units.push_back(std::move(unit));
    }
    plan.units[it->second].members.push_back(request_index);
    plan.unit_of[request_index] = it->second;
  }

  // Campaigns: calibration units sharing a prior stage, in plan order.
  // The first unit of each campaign pays the stage cost for everyone.
  std::map<Hash128, std::size_t> campaign_by_stage;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    UnitPlan& unit = plan.units[u];
    if (!unit.has_stage) continue;
    auto [it, inserted] =
        campaign_by_stage.try_emplace(unit.stage_key, plan.campaigns.size());
    if (inserted) {
      plan.campaigns.push_back(Campaign{unit.stage_key, {}});
      unit.pays_stage = true;
    }
    plan.campaigns[it->second].units.push_back(u);
  }
  return plan;
}

}  // namespace epi::service
