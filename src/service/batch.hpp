// Request planning for the scenario service: ordering, dedup, campaign
// batching, and the deterministic cost model.
//
// The planner is pure — a function of the request list and nothing else.
// It decides everything schedule-shaped before any engine runs:
//
//   order      requests sorted by (priority desc, arrival asc);
//   units      one per distinct result artifact — requests whose configs
//              hash identically collapse onto the first arrival (dedup);
//   campaigns  calibration units grouped by shared prior-stage key — the
//              batcher's output, one expensive prior stage amortized
//              across every tail in the campaign.
//
// Costs are modeled, not measured: each unit carries deterministic
// virtual hours derived from its knobs (simulated days x farm sizes),
// so the replay driver's latency figures are identical at any worker
// count and on any machine.
#pragma once

#include <cstddef>
#include <vector>

#include "service/request.hpp"
#include "util/hash.hpp"

namespace epi::service {

/// One distinct result artifact to produce (or fetch).
struct UnitPlan {
  /// Index (into the original request list) of the first arrival — the
  /// request whose config defines the unit.
  std::size_t owner = 0;
  /// All request indices served by this unit, in service order.
  std::vector<std::size_t> members;
  RequestKind kind = RequestKind::kCalibration;
  Hash128 result_key;
  /// Calibration only: the shareable prior-stage artifact key.
  Hash128 stage_key;
  bool has_stage = false;
  /// This unit is the first in its campaign to run, so it pays the
  /// prior-stage cost (unless the stage artifact is already cached).
  bool pays_stage = false;
  /// Virtual-hour costs from the deterministic cost model.
  double stage_cost_hours = 0.0;
  double tail_cost_hours = 0.0;
};

/// Calibration units sharing one prior stage (a batched campaign).
struct Campaign {
  Hash128 stage_key;
  /// Unit indices (into ServicePlan::units), in plan order.
  std::vector<std::size_t> units;
};

struct ServicePlan {
  /// Request indices in service order: priority desc, then arrival.
  std::vector<std::size_t> order;
  /// Units in plan order (owner's position in `order`).
  std::vector<UnitPlan> units;
  /// unit_of[request_index] -> index into `units`.
  std::vector<std::size_t> unit_of;
  std::vector<Campaign> campaigns;
};

/// Builds the full plan for one serve() wave. Pure; deterministic.
ServicePlan plan_requests(const std::vector<ScenarioRequest>& requests);

/// Deterministic virtual-hour cost of a request's prior stage (0 for
/// nightly requests) and of its tail given a ready stage. The model
/// charges per simulated replicate-day; see batch.cpp for the constants.
double stage_cost_hours(const ScenarioRequest& request);
double tail_cost_hours(const ScenarioRequest& request);

}  // namespace epi::service
