#include "service/cache.hpp"

#include <algorithm>
#include <vector>

namespace epi::service {

std::uint64_t CacheStats::total_lookups() const {
  std::uint64_t total = 0;
  for (const auto& [cls, stats] : classes) total += stats.lookups;
  return total;
}

std::uint64_t CacheStats::total_computes() const {
  std::uint64_t total = 0;
  for (const auto& [cls, stats] : classes) total += stats.computes;
  return total;
}

std::shared_ptr<const void> ArtifactCache::get_or_compute_erased(
    const std::string& cls, const Hash128& key, const ComputeErased& compute) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.classes[cls].lookups;
  for (;;) {
    auto [it, inserted] = entries_.try_emplace(key);
    Entry& entry = it->second;
    if (!inserted && entry.ready) return entry.value;
    if (!inserted && entry.computing) {
      // Single-flight: somebody else is computing this key. Wait for the
      // slot to resolve, then re-check — the compute may have failed and
      // erased the slot, in which case we take over.
      ready_cv_.wait(lock, [&] {
        auto found = entries_.find(key);
        return found == entries_.end() || found->second.ready;
      });
      continue;
    }
    // We own the compute (fresh slot, or a failed one we are retrying).
    entry.computing = true;
    ++stats_.classes[cls].computes;
    lock.unlock();
    std::shared_ptr<const void> value;
    try {
      value = compute();
      EPI_REQUIRE(value != nullptr,
                  "artifact compute for class '" << cls
                                                 << "' returned null");
    } catch (...) {
      lock.lock();
      entries_.erase(key);
      ready_cv_.notify_all();
      throw;
    }
    lock.lock();
    Entry& landed = entries_[key];
    landed.value = std::move(value);
    landed.ready = true;
    landed.computing = false;
    ready_cv_.notify_all();
    return landed.value;
  }
}

bool ArtifactCache::contains(const Hash128& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.ready;
}

void ArtifactCache::commit_use(const Hash128& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return;
  it->second.last_use = ++use_clock_;
}

std::size_t ArtifactCache::evict_excess() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0 || entries_.size() <= capacity_) return 0;
  // Rank by (last_use, key): never-committed entries (last_use == 0) go
  // first, and the key tiebreak makes the order total — eviction is a
  // pure function of the commit_use() history.
  std::vector<std::pair<std::uint64_t, Hash128>> order;
  order.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    order.emplace_back(entry.last_use, key);
  }
  std::sort(order.begin(), order.end());
  std::size_t to_evict = entries_.size() - capacity_;
  for (std::size_t i = 0; i < to_evict; ++i) {
    entries_.erase(order[i].second);
  }
  stats_.evictions += to_evict;
  return to_evict;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace epi::service
