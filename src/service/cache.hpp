// Content-addressed artifact cache for the scenario service.
//
// Artifacts (synthetic-population builds, calibration prior stages, whole
// cycle results, nightly reports) are keyed by a stable 128-bit hash of
// their canonical config text (util/hash.hpp), never by std::hash — the
// same request hashes the same on every run, platform, and worker count.
//
// Concurrency model:
//   - get_or_compute() is single-flight: the first caller for a key
//     computes while concurrent callers for the same key block on a
//     condition variable and share the result (dedup, not duplicate
//     work). A failed compute erases the slot and rethrows; one waiter
//     is promoted to retry.
//   - Eviction is NEVER triggered by lookups. The service orchestrator
//     calls commit_use() in plan order and evict_excess() between
//     execution waves, from a single thread — so which artifacts survive
//     a bounded cache is a pure function of the request log, independent
//     of EPI_JOBS. That is what keeps replay byte-identical.
//
// Statistics are schedule-independent by construction: lookups and
// computes are both determined by the request plan (single-flight makes
// "who computed" irrelevant — exactly one compute happens per distinct
// key per lifetime in cache), so hits = lookups - computes replays
// identically at any worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace epi::service {

/// Per-artifact-class counters (class = "region", "cycle-prior", ...).
struct CacheClassStats {
  std::uint64_t lookups = 0;
  std::uint64_t computes = 0;

  std::uint64_t hits() const { return lookups - computes; }
};

struct CacheStats {
  /// Per-class counters, keyed by class name (sorted — deterministic).
  std::map<std::string, CacheClassStats> classes;
  std::uint64_t evictions = 0;

  std::uint64_t total_lookups() const;
  std::uint64_t total_computes() const;
  std::uint64_t total_hits() const { return total_lookups() - total_computes(); }
};

/// Single-flight, content-addressed artifact store. Thread-safe for
/// get_or_compute(); commit_use()/evict_excess() are orchestrator-only
/// (call them from one thread, between parallel waves).
class ArtifactCache {
 public:
  /// capacity = maximum resident artifacts after evict_excess();
  /// 0 = unbounded (nothing is ever evicted).
  explicit ArtifactCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the artifact for `key`, computing it at most once per
  /// residency. `compute` runs outside the cache lock. Concurrent calls
  /// with the same key block until the in-flight compute lands and then
  /// share its artifact. Throws whatever `compute` throws (the slot is
  /// released so a later call can retry).
  template <typename T, typename Compute>
  std::shared_ptr<const T> get_or_compute(const std::string& cls,
                                          const Hash128& key,
                                          Compute&& compute) {
    std::shared_ptr<const void> erased = get_or_compute_erased(
        cls, key, [&compute]() -> std::shared_ptr<const void> {
          return std::static_pointer_cast<const void>(
              std::shared_ptr<const T>(compute()));
        });
    return std::static_pointer_cast<const T>(std::move(erased));
  }

  /// True if `key` is resident and ready (no lookup recorded, no
  /// single-flight wait). Orchestrator planning helper.
  bool contains(const Hash128& key) const;

  /// Records one deterministic "use" of `key` (for LRU age). Called by
  /// the orchestrator in plan order after a wave completes — never from
  /// worker threads — so eviction order replays exactly.
  void commit_use(const Hash128& key);

  /// Evicts least-recently-committed entries until at most `capacity_`
  /// remain. Entries never committed rank oldest (ties broken by key so
  /// the choice is total). No-op when capacity_ == 0. Returns the number
  /// evicted. Orchestrator-only; must not race get_or_compute().
  std::size_t evict_excess();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    bool ready = false;
    bool computing = false;
    /// 0 = never committed; otherwise the use-clock stamp of the most
    /// recent commit_use().
    std::uint64_t last_use = 0;
  };

  using ComputeErased = std::function<std::shared_ptr<const void>()>;
  std::shared_ptr<const void> get_or_compute_erased(const std::string& cls,
                                                    const Hash128& key,
                                                    const ComputeErased& compute);

  std::size_t capacity_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::map<Hash128, Entry> entries_;
  std::uint64_t use_clock_ = 0;
  CacheStats stats_;
};

}  // namespace epi::service
