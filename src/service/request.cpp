#include "service/request.hpp"

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "workflow/report_text.hpp"

namespace epi::service {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCalibration:
      return "calibration";
    case RequestKind::kNightly:
      return "nightly";
  }
  return "unknown";
}

namespace {

RequestKind kind_from_string(const std::string& text) {
  if (text == "calibration") return RequestKind::kCalibration;
  if (text == "nightly") return RequestKind::kNightly;
  EPI_REQUIRE(false, "unknown request kind '"
                         << text << "' (expected calibration|nightly)");
  return RequestKind::kCalibration;
}

std::size_t as_size(const Json& value, const char* key) {
  const std::int64_t parsed = value.as_int();
  EPI_REQUIRE(parsed >= 0, "request field '" << key << "' must be >= 0, got "
                                             << parsed);
  return static_cast<std::size_t>(parsed);
}

}  // namespace

std::string dump_request(const ScenarioRequest& request) {
  JsonObject obj;
  obj["id"] = request.id;
  obj["requester"] = request.requester;
  obj["priority"] = request.priority;
  obj["kind"] = to_string(request.kind);
  if (request.kind == RequestKind::kCalibration) {
    obj["region"] = request.region;
    obj["scale_denominator"] = request.scale_denominator;
    obj["seed"] = request.seed;
    obj["prior_configs"] = static_cast<std::uint64_t>(request.prior_configs);
    obj["posterior_configs"] =
        static_cast<std::uint64_t>(request.posterior_configs);
    obj["calibration_days"] =
        static_cast<std::int64_t>(request.calibration_days);
    obj["horizon_days"] = static_cast<std::int64_t>(request.horizon_days);
    obj["prediction_runs"] =
        static_cast<std::uint64_t>(request.prediction_runs);
    obj["mcmc_samples"] = static_cast<std::uint64_t>(request.mcmc_samples);
    obj["mcmc_burn_in"] = static_cast<std::uint64_t>(request.mcmc_burn_in);
  } else {
    obj["design"] = request.design;
    obj["scale_denominator"] = request.scale_denominator;
    obj["seed"] = request.seed;
    obj["sample_executions"] =
        static_cast<std::uint64_t>(request.sample_executions);
    obj["executed_days"] = static_cast<std::int64_t>(request.executed_days);
    JsonArray regions;
    for (const std::string& region : request.regions) {
      regions.emplace_back(region);
    }
    obj["regions"] = std::move(regions);
  }
  return Json(std::move(obj)).dump();
}

ScenarioRequest parse_request(const std::string& line) {
  const Json json = parse_json(line);
  EPI_REQUIRE(json.is_object(), "request line is not a JSON object: " << line);
  ScenarioRequest request;
  request.id = json.at("id").as_string();
  request.kind = kind_from_string(json.get_string("kind", "calibration"));

  static const std::set<std::string> kCommonKeys = {"id", "requester",
                                                   "priority", "kind"};
  static const std::set<std::string> kCalibrationKeys = {
      "region",          "scale_denominator", "seed",
      "prior_configs",   "posterior_configs", "calibration_days",
      "horizon_days",    "prediction_runs",   "mcmc_samples",
      "mcmc_burn_in"};
  static const std::set<std::string> kNightlyKeys = {
      "design", "scale_denominator", "seed",
      "sample_executions", "executed_days", "regions"};
  const std::set<std::string>& kind_keys =
      request.kind == RequestKind::kCalibration ? kCalibrationKeys
                                                : kNightlyKeys;
  for (const auto& [key, value] : json.as_object()) {
    EPI_REQUIRE(kCommonKeys.count(key) || kind_keys.count(key),
                "request '" << request.id << "' has unknown field '" << key
                            << "' for kind " << to_string(request.kind));
  }

  request.requester = json.get_string("requester", request.requester);
  request.priority = json.get_int("priority", request.priority);
  request.scale_denominator =
      json.get_double("scale_denominator", request.scale_denominator);
  EPI_REQUIRE(request.scale_denominator > 0.0,
              "request '" << request.id << "': scale_denominator must be > 0");
  if (json.contains("seed")) {
    request.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  }
  if (request.kind == RequestKind::kCalibration) {
    request.region = json.get_string("region", request.region);
    if (json.contains("prior_configs")) {
      request.prior_configs = as_size(json.at("prior_configs"), "prior_configs");
    }
    if (json.contains("posterior_configs")) {
      request.posterior_configs =
          as_size(json.at("posterior_configs"), "posterior_configs");
    }
    request.calibration_days = static_cast<Tick>(
        json.get_int("calibration_days", request.calibration_days));
    request.horizon_days =
        static_cast<Tick>(json.get_int("horizon_days", request.horizon_days));
    if (json.contains("prediction_runs")) {
      request.prediction_runs =
          as_size(json.at("prediction_runs"), "prediction_runs");
    }
    if (json.contains("mcmc_samples")) {
      request.mcmc_samples = as_size(json.at("mcmc_samples"), "mcmc_samples");
    }
    if (json.contains("mcmc_burn_in")) {
      request.mcmc_burn_in = as_size(json.at("mcmc_burn_in"), "mcmc_burn_in");
    }
  } else {
    request.design = json.get_string("design", request.design);
    if (json.contains("sample_executions")) {
      request.sample_executions =
          as_size(json.at("sample_executions"), "sample_executions");
    }
    request.executed_days =
        static_cast<Tick>(json.get_int("executed_days", request.executed_days));
    if (json.contains("regions")) {
      request.regions.clear();
      for (const Json& region : json.at("regions").as_array()) {
        request.regions.push_back(region.as_string());
      }
    }
  }
  return request;
}

std::vector<ScenarioRequest> parse_request_log(const std::string& text) {
  std::vector<ScenarioRequest> requests;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    requests.push_back(parse_request(line));
  }
  return requests;
}

namespace {

void put_knob(std::string& out, const char* key, double value) {
  out += '|';
  out += key;
  out += '=';
  report_text::put(out, value);
}

void put_knob(std::string& out, const char* key, std::uint64_t value) {
  out += '|';
  out += key;
  out += '=';
  out += std::to_string(value);
}

void put_knob(std::string& out, const char* key, const std::string& value) {
  out += '|';
  out += key;
  out += '=';
  out += value;
}

/// The knobs run_cycle_prior_stage() reads — shared by the prior-stage
/// key and (as a prefix) the full-result key.
void put_prior_stage_knobs(std::string& out, const ScenarioRequest& request) {
  const CalibrationCycleConfig defaults;
  put_knob(out, "region", request.region);
  put_knob(out, "scale_denominator", request.scale_denominator);
  put_knob(out, "seed", static_cast<std::uint64_t>(request.seed));
  put_knob(out, "prior_configs",
           static_cast<std::uint64_t>(request.prior_configs));
  put_knob(out, "calibration_days",
           static_cast<std::uint64_t>(request.calibration_days));
  // horizon_days shapes the surveillance-truth window, so it is a
  // prior-stage knob even though it reads like a tail knob.
  put_knob(out, "horizon_days",
           static_cast<std::uint64_t>(request.horizon_days));
  put_knob(out, "truth_beta", defaults.truth_beta);
  put_knob(out, "truth_distancing_effect", defaults.truth_distancing_effect);
  put_knob(out, "truth_reporting_rate", defaults.truth_reporting_rate);
  put_knob(out, "takeoff_search_days",
           static_cast<std::uint64_t>(defaults.takeoff_search_days));
}

}  // namespace

std::string region_key_text(const SynthPopConfig& config) {
  std::string out = "artifact=region";
  put_knob(out, "region", config.region);
  put_knob(out, "scale", config.scale);
  put_knob(out, "seed", static_cast<std::uint64_t>(config.seed));
  put_knob(out, "projection_day",
           static_cast<std::uint64_t>(config.projection_day));
  put_knob(out, "week_long", static_cast<std::uint64_t>(config.week_long));
  return out;
}

std::string region_key_text(const std::string& region, double scale,
                            std::uint64_t seed) {
  SynthPopConfig config;
  config.region = region;
  config.scale = scale;
  config.seed = seed;
  return region_key_text(config);
}

std::string prior_stage_key_text(const ScenarioRequest& request) {
  EPI_REQUIRE(request.kind == RequestKind::kCalibration,
              "prior_stage_key_text: request '" << request.id
                                                << "' is not a calibration");
  std::string out = "artifact=cycle-prior";
  put_prior_stage_knobs(out, request);
  return out;
}

std::string result_key_text(const ScenarioRequest& request) {
  if (request.kind == RequestKind::kCalibration) {
    std::string out = "artifact=cycle-result";
    put_prior_stage_knobs(out, request);
    put_knob(out, "posterior_configs",
             static_cast<std::uint64_t>(request.posterior_configs));
    put_knob(out, "prediction_runs",
             static_cast<std::uint64_t>(request.prediction_runs));
    put_knob(out, "mcmc_samples",
             static_cast<std::uint64_t>(request.mcmc_samples));
    put_knob(out, "mcmc_burn_in",
             static_cast<std::uint64_t>(request.mcmc_burn_in));
    return out;
  }
  std::string out = "artifact=nightly-report";
  put_knob(out, "design", request.design);
  put_knob(out, "scale_denominator", request.scale_denominator);
  put_knob(out, "seed", static_cast<std::uint64_t>(request.seed));
  put_knob(out, "sample_executions",
           static_cast<std::uint64_t>(request.sample_executions));
  put_knob(out, "executed_days",
           static_cast<std::uint64_t>(request.executed_days));
  std::string regions;
  for (const std::string& region : request.regions) {
    regions += region;
    regions += ',';
  }
  put_knob(out, "regions", regions);
  return out;
}

CalibrationCycleConfig to_cycle_config(const ScenarioRequest& request) {
  EPI_REQUIRE(request.kind == RequestKind::kCalibration,
              "to_cycle_config: request '" << request.id
                                           << "' is not a calibration");
  CalibrationCycleConfig config;
  config.region = request.region;
  config.scale = 1.0 / request.scale_denominator;
  config.seed = request.seed;
  config.prior_configs = request.prior_configs;
  config.posterior_configs = request.posterior_configs;
  config.calibration_days = request.calibration_days;
  config.horizon_days = request.horizon_days;
  config.prediction_runs = request.prediction_runs;
  config.mcmc.samples = request.mcmc_samples;
  config.mcmc.burn_in = request.mcmc_burn_in;
  // The service parallelizes across requests; each engine runs serial so
  // the response bytes match the seed path exactly.
  config.jobs = 1;
  return config;
}

NightlyConfig to_nightly_config(const ScenarioRequest& request) {
  EPI_REQUIRE(request.kind == RequestKind::kNightly,
              "to_nightly_config: request '" << request.id
                                             << "' is not a nightly");
  NightlyConfig config;
  config.scale = 1.0 / request.scale_denominator;
  config.seed = request.seed;
  config.sample_executions = request.sample_executions;
  config.executed_days = request.executed_days;
  if (!request.regions.empty()) config.sample_regions = request.regions;
  config.jobs = 1;
  // Responses must replay byte for byte, so the report's timeline uses
  // the deterministic timing model, never measured wall time.
  config.deterministic_timing = true;
  return config;
}

WorkflowDesign to_nightly_design(const ScenarioRequest& request) {
  WorkflowDesign design;
  if (request.design == "economic") {
    design = economic_design();
  } else if (request.design == "prediction") {
    design = prediction_design();
  } else if (request.design == "calibration") {
    design = calibration_design();
  } else {
    EPI_REQUIRE(false, "request '" << request.id << "': unknown design '"
                                   << request.design
                                   << "' (economic|prediction|calibration)");
  }
  if (!request.regions.empty()) design.regions = request.regions;
  return design;
}

}  // namespace epi::service
