// The scenario-request model: what policy analysts submit to the service.
//
// A request is a thin, serializable view over the engine configs — the
// calibration-cycle knobs or the nightly-workflow knobs, plus service
// metadata (id, requester, priority). Requests round-trip through a
// line-oriented JSONL log (one request per line, keys emitted in fixed
// order) so a replay driver can re-serve an historical log byte for byte.
//
// Content addressing: each request derives canonical key strings — plain
// `field=value|...` text with doubles in hexfloat — hashed with the
// stable 128-bit FNV scheme in util/hash.hpp. Two keys per calibration
// request (the shareable prior stage vs the full result) let the service
// coalesce requests that differ only in tail knobs (posterior draws,
// MCMC settings, forecast runs) onto one expensive prior-stage artifact.
// Execution knobs (jobs, tracing) are deliberately excluded from every
// key: they must not change result bytes, so they must not change cache
// identity either.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/hash.hpp"
#include "workflow/calibration_cycle.hpp"
#include "workflow/nightly.hpp"

namespace epi::service {

enum class RequestKind { kCalibration, kNightly };

const char* to_string(RequestKind kind);

/// One scenario request. Knob defaults match the engines' own defaults
/// scaled down to service-test size; a JSONL line only needs to name the
/// knobs it overrides.
struct ScenarioRequest {
  std::string id;
  std::string requester = "anon";
  /// Higher runs earlier; ties served in arrival (log) order.
  std::int64_t priority = 0;
  RequestKind kind = RequestKind::kCalibration;

  // --- calibration-cycle knobs (kind == kCalibration) ---
  std::string region = "VA";
  double scale_denominator = 8000.0;
  std::uint64_t seed = 20200411;
  std::size_t prior_configs = 8;  // engine floor: >= 8 to fit the emulator
  std::size_t posterior_configs = 8;
  Tick calibration_days = 40;
  Tick horizon_days = 14;
  std::size_t prediction_runs = 3;
  std::size_t mcmc_samples = 60;
  std::size_t mcmc_burn_in = 30;

  // --- nightly-workflow knobs (kind == kNightly) ---
  /// "economic", "prediction", or "calibration" (Table I designs).
  std::string design = "economic";
  std::size_t sample_executions = 2;
  Tick executed_days = 30;
  /// Regions for the nightly run (overrides both the design's region
  /// list and the sampling filter); empty = engine defaults.
  std::vector<std::string> regions;

  bool operator==(const ScenarioRequest&) const = default;
};

/// One JSONL line (no trailing newline), keys sorted, doubles in
/// round-trip-exact form — dump(parse(line)) is byte-stable.
std::string dump_request(const ScenarioRequest& request);

/// Parses one JSONL line. Unknown keys are rejected (a mistyped knob
/// must not silently fall back to a default). Throws epi::Error on
/// malformed input.
ScenarioRequest parse_request(const std::string& line);

/// Parses a whole request log: one request per non-empty line; lines
/// starting with '#' are comments.
std::vector<ScenarioRequest> parse_request_log(const std::string& text);

/// Canonical key text for the whole-result artifact of `request`
/// (class "cycle-result" or "nightly-report"). Every result-affecting
/// knob, no execution knobs.
std::string result_key_text(const ScenarioRequest& request);

/// Canonical key text for the shareable calibration prior stage: the
/// knobs run_cycle_prior_stage() reads (region, scale, seed, prior
/// design size, windows, truth model), excluding the tail knobs.
/// Requires kind == kCalibration.
std::string prior_stage_key_text(const ScenarioRequest& request);

/// Canonical key text for a synthetic-population build (every
/// SynthPopConfig knob).
std::string region_key_text(const SynthPopConfig& config);
/// Shorthand for the engines' default projection (the knobs a request
/// can actually reach).
std::string region_key_text(const std::string& region, double scale,
                            std::uint64_t seed);

/// Engine config for a calibration request (jobs forced to 1: the
/// service parallelizes across requests, not inside them).
CalibrationCycleConfig to_cycle_config(const ScenarioRequest& request);

/// Engine config + design for a nightly request. deterministic_timing is
/// forced on so response bytes replay identically.
NightlyConfig to_nightly_config(const ScenarioRequest& request);
WorkflowDesign to_nightly_design(const ScenarioRequest& request);

}  // namespace epi::service
