#include "service/service.hpp"

#include <algorithm>
#include <map>

#include "exec/executor.hpp"
#include "obs/obs.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "workflow/report_text.hpp"

namespace epi::service {

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kComputed:
      return "computed";
    case ServeStatus::kDeduped:
      return "deduped";
    case ServeStatus::kCached:
      return "cached";
  }
  return "unknown";
}

namespace {

constexpr const char* kClassRegion = "region";
constexpr const char* kClassCyclePrior = "cycle-prior";
constexpr const char* kClassCycleResult = "cycle-result";
constexpr const char* kClassNightlyReport = "nightly-report";

/// Per-unit virtual schedule slot.
struct Slot {
  bool precached = false;
  bool paid_stage = false;
  double cost_hours = 0.0;
  double start_hours = 0.0;
  double finish_hours = 0.0;
  std::size_t worker = 0;
};

}  // namespace

ScenarioService::ScenarioService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity != 0
                 ? config_.cache_capacity
                 : env_positive_size("EPI_SERVICE_CACHE_CAP", 0)) {
  if (config_.logical_workers == 0) {
    config_.logical_workers = env_positive_size("EPI_SERVICE_WORKERS", 4);
  }
  config_.cache_capacity = cache_.capacity();
}

ServiceOutcome ScenarioService::serve(
    const std::vector<ScenarioRequest>& requests) {
  const ServicePlan plan = plan_requests(requests);
  const CacheStats stats_before = cache_.stats();

  // ---- Pre-wave cache probe (deterministic: pre-wave state is a pure
  // function of the serve history). A unit whose whole response is
  // resident is served at latency 0; a campaign whose stage is resident
  // skips the stage cost.
  std::vector<Slot> slots(plan.units.size());
  std::map<Hash128, bool> stage_resident;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const UnitPlan& unit = plan.units[u];
    slots[u].precached = cache_.contains(unit.result_key);
    if (unit.has_stage && !stage_resident.count(unit.stage_key)) {
      stage_resident[unit.stage_key] = cache_.contains(unit.stage_key);
    }
  }

  // ---- Execute every unit on the engine farm. All units go through
  // get_or_compute (precached ones resolve instantly), so the cache
  // counters are a pure function of the plan: one result lookup per
  // unit, one compute per non-resident key, regardless of EPI_JOBS.
  const RegionSource cached_regions =
      [this](const SynthPopConfig& pop_config) {
        return cache_.get_or_compute<SyntheticRegion>(
            kClassRegion, hash128(region_key_text(pop_config)), [&] {
              return std::make_shared<const SyntheticRegion>(
                  generate_region(pop_config));
            });
      };
  const auto run_unit =
      [&](std::size_t u) -> std::shared_ptr<const std::string> {
    const UnitPlan& unit = plan.units[u];
    const ScenarioRequest& request = requests[unit.owner];
    if (unit.kind == RequestKind::kCalibration) {
      return cache_.get_or_compute<std::string>(
          kClassCycleResult, unit.result_key, [&] {
            CalibrationCycleConfig config = to_cycle_config(request);
            config.region_source = cached_regions;
            const std::shared_ptr<const CyclePriorStage> stage =
                cache_.get_or_compute<CyclePriorStage>(
                    kClassCyclePrior, unit.stage_key, [&] {
                      return std::make_shared<const CyclePriorStage>(
                          run_cycle_prior_stage(config));
                    });
            return std::make_shared<const std::string>(
                serialize(finish_calibration_cycle(config, *stage)));
          });
    }
    return cache_.get_or_compute<std::string>(
        kClassNightlyReport, unit.result_key, [&] {
          NightlyConfig config = to_nightly_config(request);
          config.region_source = cached_regions;
          NightlyWorkflow workflow(config);
          return std::make_shared<const std::string>(
              serialize(workflow.run(to_nightly_design(request))));
        });
  };
  // The farm flushes its observability from this (orchestrator) thread
  // after the join, so the session's single-threaded TraceRecorder is safe
  // to share with it.
  exec::ExecObs farm_obs;
  if (config_.trace != nullptr) {
    farm_obs.trace = &config_.trace->trace();
    farm_obs.metrics = &config_.trace->metrics();
    farm_obs.deterministic_timing =
        config_.trace->trace().deterministic_timing();
    farm_obs.flow = config_.trace->flow();
  }
  const std::vector<std::shared_ptr<const std::string>> unit_responses =
      exec::parallel_index_map(plan.units.size(), run_unit,
                               exec::ExecConfig{config_.jobs, 1, "service",
                                                farm_obs});

  // ---- Virtual-latency schedule: list-schedule the executed units onto
  // logical_workers abstract workers in plan order (earliest-free worker,
  // ties to the lowest id; every request arrives at 0). A campaign's
  // stage finishes on its payer before any sibling tail may start.
  std::vector<double> worker_free(config_.logical_workers, 0.0);
  std::map<Hash128, double> stage_ready;
  double makespan = 0.0;
  double actual_cost = 0.0;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const UnitPlan& unit = plan.units[u];
    Slot& slot = slots[u];
    if (slot.precached) continue;
    slot.paid_stage = unit.has_stage && unit.pays_stage &&
                      !stage_resident[unit.stage_key];
    slot.cost_hours =
        unit.tail_cost_hours + (slot.paid_stage ? unit.stage_cost_hours : 0.0);
    const auto earliest =
        std::min_element(worker_free.begin(), worker_free.end());
    slot.worker = static_cast<std::size_t>(earliest - worker_free.begin());
    slot.start_hours = *earliest;
    if (unit.has_stage) {
      if (slot.paid_stage) {
        stage_ready[unit.stage_key] =
            slot.start_hours + unit.stage_cost_hours;
      } else if (!stage_resident[unit.stage_key]) {
        // Wait for the campaign payer's stage to land.
        slot.start_hours =
            std::max(slot.start_hours, stage_ready[unit.stage_key]);
      }
    }
    slot.finish_hours = slot.start_hours + slot.cost_hours;
    worker_free[slot.worker] = slot.finish_hours;
    makespan = std::max(makespan, slot.finish_hours);
    actual_cost += slot.cost_hours;
  }

  // ---- Deterministic cache aging: commit uses in plan order, then
  // evict down to capacity — from this thread only, so the surviving
  // artifact set replays exactly at any worker count.
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const UnitPlan& unit = plan.units[u];
    const ScenarioRequest& request = requests[unit.owner];
    if (unit.kind == RequestKind::kCalibration) {
      cache_.commit_use(hash128(region_key_text(
          request.region, 1.0 / request.scale_denominator, request.seed)));
      cache_.commit_use(unit.stage_key);
    }
    cache_.commit_use(unit.result_key);
  }
  cache_.evict_excess();

  // ---- Assemble the outcome in original log order.
  ServiceOutcome outcome;
  outcome.responses.resize(requests.size());
  ServiceReport& report = outcome.report;
  report.requests = requests.size();
  report.campaigns = plan.campaigns.size();
  for (const Campaign& campaign : plan.campaigns) {
    report.stage_shares += campaign.units.size() - 1;
  }
  report.logical_workers = config_.logical_workers;
  report.makespan_hours = makespan;
  report.actual_cost_hours = actual_cost;
  report.cache = cache_.stats();
  report.records.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t u = plan.unit_of[i];
    const UnitPlan& unit = plan.units[u];
    const Slot& slot = slots[u];
    EPI_REQUIRE(unit_responses[u] != nullptr,
                "service unit " << u << " produced no response");
    outcome.responses[i] = *unit_responses[u];
    RequestRecord& record = report.records[i];
    const ScenarioRequest& request = requests[i];
    record.id = request.id;
    record.requester = request.requester;
    record.priority = request.priority;
    record.kind = request.kind;
    if (slot.precached) {
      record.status = ServeStatus::kCached;
      ++report.cached_requests;
    } else if (i == unit.owner) {
      record.status = ServeStatus::kComputed;
    } else {
      record.status = ServeStatus::kDeduped;
      ++report.deduped_requests;
    }
    record.latency_hours = slot.precached ? 0.0 : slot.finish_hours;
    record.response_bytes = outcome.responses[i].size();
    record.result_hash = to_hex(hash128(outcome.responses[i]));
    report.naive_cost_hours +=
        stage_cost_hours(request) + tail_cost_hours(request);
  }
  for (const Slot& slot : slots) {
    if (!slot.precached) ++report.computed_units;
  }

  // ---- Observability (orchestrator thread, after the wave; virtual
  // times keep traced replays byte-reproducible).
  if (config_.trace != nullptr) {
    obs::TraceRecorder& trace = config_.trace->trace();
    obs::MetricsRegistry& metrics = config_.trace->metrics();
    const std::uint32_t pid = trace.process("service");
    for (std::size_t w = 0; w < config_.logical_workers; ++w) {
      trace.thread_name(pid, static_cast<std::uint32_t>(w),
                        "logical-worker-" + std::to_string(w));
    }
    const auto orch = static_cast<std::uint32_t>(config_.logical_workers);
    trace.thread_name(pid, orch, "orchestrator");
    // Flow ids of different waves must not collide; the recorder's event
    // count at the top of this block is a deterministic discriminator.
    const std::uint64_t wave_seq = trace.event_count();
    const bool flow = config_.trace->flow();

    // Wave phases on the orchestrator lane, at the virtual times the unit
    // spans below inhabit (byte-reproducible by construction).
    {
      obs::TraceArgs args;
      args["requests"] = static_cast<std::uint64_t>(requests.size());
      args["units"] = static_cast<std::uint64_t>(plan.units.size());
      args["campaigns"] = static_cast<std::uint64_t>(plan.campaigns.size());
      trace.complete(pid, orch, "plan", "service-phase", 0.0, 0.0,
                     std::move(args));
    }
    {
      obs::TraceArgs args;
      args["units_computed"] = static_cast<std::uint64_t>(
          report.computed_units);
      trace.complete(pid, orch, "execute", "service-phase", 0.0, makespan,
                     std::move(args));
    }
    {
      obs::TraceArgs args;
      args["makespan_hours"] = report.makespan_hours;
      args["logical_workers"] = static_cast<std::uint64_t>(
          config_.logical_workers);
      trace.complete(pid, orch, "schedule", "service-phase", 0.0, 0.0,
                     std::move(args));
    }
    for (std::size_t u = 0; u < plan.units.size(); ++u) {
      const UnitPlan& unit = plan.units[u];
      const Slot& slot = slots[u];
      const std::string& owner_id = requests[unit.owner].id;
      if (slot.precached) {
        trace.instant(pid, 0, "cache-hit[" + owner_id + "]", "service", 0.0);
        continue;
      }
      trace.complete(pid, static_cast<std::uint32_t>(slot.worker),
                     "unit[" + owner_id + "]", "service", slot.start_hours,
                     slot.cost_hours);
    }
    // Per-request spans and request->campaign-unit flow edges: every
    // request gets a span covering its virtual latency on the
    // orchestrator lane, linked to the unit (or cache hit) that served it.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::size_t u = plan.unit_of[i];
      const Slot& slot = slots[u];
      const RequestRecord& record = report.records[i];
      obs::TraceArgs args;
      args["id"] = record.id;
      args["status"] = std::string(to_string(record.status));
      trace.complete(pid, orch, "request[" + record.id + "]",
                     "service-request", 0.0, record.latency_hours, args);
      if (flow) {
        const std::string chain =
            "svc:req" + std::to_string(i) + "#" + std::to_string(wave_seq);
        trace.flow_start(pid, orch, "request", "service", 0.0, chain, args);
        if (slot.precached) {
          trace.flow_end(pid, 0, "cache-hit", "service", 0.0, chain,
                         std::move(args));
        } else {
          trace.flow_end(pid, static_cast<std::uint32_t>(slot.worker),
                         "unit", "service", slot.start_hours, chain,
                         std::move(args));
        }
      }
    }
    metrics.add("service.requests", report.requests);
    metrics.add("service.units_computed", report.computed_units);
    metrics.add("service.requests_deduped", report.deduped_requests);
    metrics.add("service.requests_cached", report.cached_requests);
    metrics.add("service.campaigns", report.campaigns);
    const CacheStats wave = report.cache;
    const std::uint64_t lookups =
        wave.total_lookups() - stats_before.total_lookups();
    const std::uint64_t hits = wave.total_hits() - stats_before.total_hits();
    metrics.add("service.cache_lookups", lookups);
    metrics.add("service.cache_hits", hits);
    metrics.add("service.cache_misses", lookups - hits);
    metrics.add("service.cache_evictions",
                wave.evictions - stats_before.evictions);
    metrics.set_max("service.makespan_hours", report.makespan_hours);
  }
  return outcome;
}

ServiceOutcome ScenarioService::replay_log(const std::string& log_text) {
  std::vector<ScenarioRequest> requests = parse_request_log(log_text);
  if (config_.trace != nullptr) {
    obs::TraceRecorder& trace = config_.trace->trace();
    const std::uint32_t pid = trace.process("service");
    const auto orch = static_cast<std::uint32_t>(config_.logical_workers);
    trace.thread_name(pid, orch, "orchestrator");
    obs::TraceArgs args;
    args["requests"] = static_cast<std::uint64_t>(requests.size());
    args["log_bytes"] = static_cast<std::uint64_t>(log_text.size());
    trace.complete(pid, orch, "parse", "service-phase", 0.0, 0.0,
                   std::move(args));
  }
  return serve(requests);
}

std::string serialize(const ServiceReport& report) {
  using report_text::put_count;
  using report_text::put_line;
  std::string out = "service_report v1\n";
  put_count(out, "requests", report.requests);
  put_count(out, "computed_units", report.computed_units);
  put_count(out, "deduped_requests", report.deduped_requests);
  put_count(out, "cached_requests", report.cached_requests);
  put_count(out, "campaigns", report.campaigns);
  put_count(out, "stage_shares", report.stage_shares);
  put_count(out, "cache_evictions", report.cache.evictions);
  for (const auto& [cls, stats] : report.cache.classes) {
    out += "cache[";
    out += cls;
    out += "]=";
    out += std::to_string(stats.lookups);
    out += '/';
    out += std::to_string(stats.computes);
    out += '/';
    out += std::to_string(stats.hits());
    out += " lookups/computes/hits\n";
  }
  put_line(out, "naive_cost_hours", report.naive_cost_hours);
  put_line(out, "actual_cost_hours", report.actual_cost_hours);
  put_line(out, "makespan_hours", report.makespan_hours);
  put_count(out, "logical_workers", report.logical_workers);
  for (std::size_t i = 0; i < report.records.size(); ++i) {
    const RequestRecord& record = report.records[i];
    out += "request[";
    out += std::to_string(i);
    out += "]=";
    out += record.id;
    out += '|';
    out += record.requester;
    out += '|';
    out += std::to_string(record.priority);
    out += '|';
    out += to_string(record.kind);
    out += '|';
    out += to_string(record.status);
    out += "|latency=";
    report_text::put(out, record.latency_hours);
    out += "|bytes=";
    out += std::to_string(record.response_bytes);
    out += "|hash=";
    out += record.result_hash;
    out += '\n';
  }
  return out;
}

}  // namespace epi::service
