// The scenario-request service (DESIGN.md §11).
//
// Sits in front of the calibration-cycle and nightly engines the way the
// paper's request pipeline sits in front of the cluster workflows: policy
// analysts submit scenario requests (priority + engine knobs), the
// service plans them into deduplicated, campaign-batched units, executes
// the units on an exec::parallel_index_map farm, and serves every
// response out of a content-addressed artifact cache.
//
// Determinism contract (the same one as everywhere else in this repo):
// for a fixed request log and a fixed ServiceConfig, the responses AND
// the ServiceReport — cache hit counts, dedup savings, per-request
// latencies — are byte-identical at any EPI_JOBS, across repeated
// serves, and across process restarts. Latency is virtual: units are
// list-scheduled onto `logical_workers` abstract workers in plan order
// under the deterministic cost model (batch.hpp), so the numbers never
// depend on the machine. EPI_JOBS changes only wall time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/batch.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"

namespace epi::obs {
class Session;
}

namespace epi::service {

struct ServiceConfig {
  /// Engine-farm worker threads; 0 = the EPI_JOBS environment variable
  /// (default 1). Changes wall time only, never a single response or
  /// report byte.
  std::size_t jobs = 0;
  /// Abstract workers for the virtual-latency schedule; 0 = the
  /// EPI_SERVICE_WORKERS environment variable (default 4).
  std::size_t logical_workers = 0;
  /// Artifact-cache capacity (resident artifacts after each wave); 0 =
  /// the EPI_SERVICE_CACHE_CAP environment variable (unset = unbounded).
  std::size_t cache_capacity = 0;
  /// Optional observability session (non-owning; nullptr = disabled):
  /// unit spans land on per-logical-worker lanes of the "service" trace
  /// process at their virtual times, cache hits become instants, and
  /// service.* counters land in metrics.
  obs::Session* trace = nullptr;
};

/// How one request was served.
enum class ServeStatus {
  kComputed,  ///< this request's unit ran an engine this wave
  kDeduped,   ///< coalesced onto an identical in-flight request
  kCached,    ///< whole response already resident from an earlier wave
};

const char* to_string(ServeStatus status);

struct RequestRecord {
  std::string id;
  std::string requester;
  std::int64_t priority = 0;
  RequestKind kind = RequestKind::kCalibration;
  ServeStatus status = ServeStatus::kComputed;
  /// Virtual hours from submission (all requests arrive at 0) to unit
  /// completion; 0 for cache hits.
  double latency_hours = 0.0;
  std::size_t response_bytes = 0;
  /// Content hash of the response artifact (hex).
  std::string result_hash;
};

struct ServiceReport {
  std::uint64_t requests = 0;
  std::uint64_t computed_units = 0;
  std::uint64_t deduped_requests = 0;
  std::uint64_t cached_requests = 0;
  std::uint64_t campaigns = 0;
  /// Calibration tails that reused a campaign sibling's prior stage.
  std::uint64_t stage_shares = 0;

  CacheStats cache;

  /// Virtual cost if every request had run cold and alone, vs what the
  /// wave actually paid after dedup, caching, and stage sharing.
  double naive_cost_hours = 0.0;
  double actual_cost_hours = 0.0;
  /// Completion time of the last unit on the virtual schedule.
  double makespan_hours = 0.0;
  std::size_t logical_workers = 0;

  /// Per-request records in original log order.
  std::vector<RequestRecord> records;
};

/// Deterministic full-field dump (hexfloat doubles) — the equality
/// oracle for the replay tests and the CI byte-diff.
std::string serialize(const ServiceReport& report);

struct ServiceOutcome {
  /// Response text per request, in original log order. Calibration
  /// responses are serialize(CalibrationCycleResult); nightly responses
  /// are serialize(WorkflowReport).
  std::vector<std::string> responses;
  ServiceReport report;
};

/// The service: owns the artifact cache, serves request waves. The cache
/// persists across serve() calls, so replaying a log against a warm
/// service yields all-cached responses — byte-identical to the cold ones.
class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig config = {});

  /// Serves one wave of requests: plan -> execute units on the engine
  /// farm -> schedule virtual latencies -> commit cache uses and evict.
  ServiceOutcome serve(const std::vector<ScenarioRequest>& requests);

  /// Parses a JSONL request log and serves it as one wave.
  ServiceOutcome replay_log(const std::string& log_text);

  const ArtifactCache& cache() const { return cache_; }
  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
  ArtifactCache cache_;
};

}  // namespace epi::service
