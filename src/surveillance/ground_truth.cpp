#include "surveillance/ground_truth.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/error.hpp"

namespace epi {

std::vector<double> StateGroundTruth::cumulative_county(
    std::size_t county) const {
  EPI_REQUIRE(county < new_confirmed.size(), "county out of range");
  std::vector<double> out = new_confirmed[county];
  double running = 0.0;
  for (double& x : out) {
    running += x;
    x = running;
  }
  return out;
}

std::vector<double> StateGroundTruth::daily_state() const {
  EPI_REQUIRE(!new_confirmed.empty(), "empty ground truth");
  std::vector<double> out(new_confirmed[0].size(), 0.0);
  for (const auto& county : new_confirmed) {
    for (std::size_t d = 0; d < county.size(); ++d) out[d] += county[d];
  }
  return out;
}

std::vector<double> StateGroundTruth::cumulative_state() const {
  std::vector<double> out = daily_state();
  double running = 0.0;
  for (double& x : out) {
    running += x;
    x = running;
  }
  return out;
}

StateGroundTruth generate_state_ground_truth(const StateInfo& state,
                                             const CountyLayout& layout,
                                             const GroundTruthConfig& config) {
  EPI_REQUIRE(config.days > 0, "ground truth needs at least one day");
  Rng rng = Rng(config.seed).derive({0x4754ULL, state.fips});  // "GT"

  // Hidden epidemic: stochastic metapopulation SEIR over the county layout.
  std::vector<double> county_pops;
  county_pops.reserve(layout.fips.size());
  for (double share : layout.population_share) {
    county_pops.push_back(
        std::max(100.0, share * static_cast<double>(state.population)));
  }
  const MetapopModel model =
      MetapopModel::with_gravity_coupling(county_pops, 0.85);

  MetapopParams params;
  params.beta = config.beta;
  params.latent_days = 4.0;
  params.infectious_days = 6.0;
  params.reporting_rate = config.reporting_rate;
  params.reporting_delay_days = 5.0;
  params.intervention_start_day = config.distancing_start_day;
  params.intervention_end_day = config.distancing_end_day;
  params.intervention_effect = config.distancing_effect;

  // Seed the largest counties at staggered dates: big metros imported
  // cases first. Model by seeding at day 0 in the top counties with
  // population-scaled counts (the largest states saw the earliest spread).
  std::vector<MetapopSeed> seeds;
  const std::size_t metros = std::min<std::size_t>(3, county_pops.size());
  for (std::size_t c = 0; c < metros; ++c) {
    seeds.push_back(MetapopSeed{
        c, std::max(1.0, county_pops[c] / 2'000'000.0)});
  }

  const MetapopOutput out =
      model.run_stochastic(params, config.days, seeds, rng);

  StateGroundTruth truth;
  truth.region = state.abbrev;
  truth.county_fips.assign(layout.fips.begin(), layout.fips.end());
  truth.new_confirmed.assign(layout.fips.size(),
                             std::vector<double>(static_cast<std::size_t>(config.days), 0.0));
  // Reporting model on top of the epidemic: day-of-week dips plus
  // multiplicative noise — the "highly noisy and often time-delayed"
  // character of Fig 14.
  for (std::size_t c = 0; c < layout.fips.size(); ++c) {
    for (int d = 0; d < config.days; ++d) {
      double reported = out.new_confirmed[c][static_cast<std::size_t>(d)];
      const int weekday = (d + 2) % 7;  // Jan 21, 2020 was a Tuesday
      if (weekday >= 5) reported *= config.weekend_reporting_factor;
      reported *= std::exp(rng.normal(0.0, 0.15));
      truth.new_confirmed[c][static_cast<std::size_t>(d)] =
          std::floor(std::max(0.0, reported));
    }
  }
  return truth;
}

StateGroundTruth generate_state_ground_truth(const std::string& abbrev,
                                             const GroundTruthConfig& config) {
  const StateInfo& state = state_by_abbrev(abbrev);
  // Same layout construction (and same seed derivation) as the population
  // generator, so ground truth and synthetic population share geography.
  Rng layout_rng = Rng(config.seed).derive({0x5359'4e50ULL, state.fips});
  const CountyLayout layout = make_county_layout(state, layout_rng);
  return generate_state_ground_truth(state, layout, config);
}

std::vector<StateGroundTruth> generate_national_ground_truth(
    const GroundTruthConfig& config) {
  std::vector<StateGroundTruth> truths;
  truths.reserve(us_state_count());
  for (const StateInfo& state : us_states()) {
    truths.push_back(generate_state_ground_truth(state.abbrev, config));
  }
  return truths;
}

void write_ground_truth_csv(std::ostream& out, const StateGroundTruth& truth) {
  out << "day,fips,new_cases,cum_cases\n";
  for (std::size_t c = 0; c < truth.county_fips.size(); ++c) {
    double cumulative = 0.0;
    for (std::size_t d = 0; d < truth.new_confirmed[c].size(); ++d) {
      cumulative += truth.new_confirmed[c][d];
      out << d << ',' << truth.county_fips[c] << ','
          << truth.new_confirmed[c][d] << ',' << cumulative << '\n';
    }
  }
}

std::size_t counties_with_cases(const std::vector<StateGroundTruth>& truths) {
  std::size_t count = 0;
  for (const auto& truth : truths) {
    for (const auto& county : truth.new_confirmed) {
      for (double x : county) {
        if (x > 0.0) {
          ++count;
          break;
        }
      }
    }
  }
  return count;
}

}  // namespace epi
