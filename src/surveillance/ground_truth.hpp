// Synthetic surveillance ground truth (the NYT / JHU / UVA dashboard
// substitute).
//
// Calibration consumes "county-level daily confirmed case counts starting
// from January 21, 2020, for over 3000 counties" (paper §III). Those
// feeds cannot ship here, so this module generates statistically similar
// data: a hidden stochastic metapopulation epidemic per state (seeded in
// the largest counties at staggered dates, with an intense-social-
// distancing bend in the spring), pushed through a noisy reporting model
// (under-reporting, delay, day-of-week effects). Figures 13-14 plot
// exactly these curves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metapop/metapop.hpp"
#include "synthpop/locations.hpp"
#include "synthpop/us_states.hpp"

namespace epi {

struct GroundTruthConfig {
  std::uint64_t seed = 20200121;  // data starts January 21, 2020
  int days = 200;
  /// Transmission rate of the hidden epidemic (R0 ~ beta * infectious
  /// duration; 0.42 with 6 infectious days gives the pandemic's R0 ~ 2.5).
  double beta = 0.42;
  /// Day (from Jan 21) intense social distancing begins (Mar 15 = day 54).
  int distancing_start_day = 54;
  /// Day it ends (Jun 10 = day 141).
  int distancing_end_day = 141;
  double distancing_effect = 0.45;  // transmissibility multiplier while on
  double reporting_rate = 0.25;
  double weekend_reporting_factor = 0.6;  // day-of-week reporting dip
};

/// One state's observed county-level series.
struct StateGroundTruth {
  std::string region;
  std::vector<std::uint32_t> county_fips;
  /// new_confirmed[county][day]
  std::vector<std::vector<double>> new_confirmed;

  std::vector<double> cumulative_county(std::size_t county) const;
  std::vector<double> cumulative_state() const;
  std::vector<double> daily_state() const;
};

/// Generates one state's ground truth using its county layout.
StateGroundTruth generate_state_ground_truth(const StateInfo& state,
                                             const CountyLayout& layout,
                                             const GroundTruthConfig& config);

/// Convenience: generates the layout internally (same construction as the
/// population generator) and returns the truth.
StateGroundTruth generate_state_ground_truth(const std::string& abbrev,
                                             const GroundTruthConfig& config);

/// All 51 regions. Total county count matches the national county table.
std::vector<StateGroundTruth> generate_national_ground_truth(
    const GroundTruthConfig& config);

/// Writes the NYT-style CSV: date_index,fips,new_cases,cum_cases rows.
void write_ground_truth_csv(std::ostream& out, const StateGroundTruth& truth);

/// Counties (across a set of states) with at least one reported case —
/// the paper's "2772 counties with case counts greater than zero" check.
std::size_t counties_with_cases(const std::vector<StateGroundTruth>& truths);

}  // namespace epi
