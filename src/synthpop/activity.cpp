#include "synthpop/activity.hpp"

#include <algorithm>

namespace epi {

namespace {

// Appends an activity with uniform jitter on start and duration, clipped
// to fit the day. Skips zero-duration results.
void add_activity(DaySchedule& day, ActivityType type, int start, int duration,
                  int jitter, Rng& rng) {
  const int jittered_start =
      start + static_cast<int>(rng.uniform_int(-jitter, jitter));
  const int jittered_duration =
      duration + static_cast<int>(rng.uniform_int(-jitter, jitter));
  const int clipped_start = std::clamp(jittered_start, 0, 1439);
  const int clipped_duration =
      std::clamp(jittered_duration, 0, 1440 - clipped_start);
  if (clipped_duration <= 0) return;
  // Keep the schedule non-overlapping: push the start past the previous end.
  int actual_start = clipped_start;
  if (!day.empty() && actual_start < day.back().end_minute()) {
    actual_start = day.back().end_minute();
    if (actual_start + clipped_duration > 1440) return;
  }
  day.push_back(Activity{type, static_cast<std::uint16_t>(actual_start),
                         static_cast<std::uint16_t>(clipped_duration)});
}

DaySchedule worker_weekday(Rng& rng) {
  DaySchedule day;
  add_activity(day, ActivityType::kWork, 9 * 60, 8 * 60, 45, rng);
  if (rng.bernoulli(0.25)) {
    add_activity(day, ActivityType::kShopping, 17 * 60 + 30, 40, 15, rng);
  }
  if (rng.bernoulli(0.20)) {
    add_activity(day, ActivityType::kOther, 18 * 60 + 30, 75, 20, rng);
  }
  return day;
}

DaySchedule student_weekday(Rng& rng) {
  DaySchedule day;
  add_activity(day, ActivityType::kSchool, 8 * 60, 7 * 60, 20, rng);
  if (rng.bernoulli(0.45)) {
    add_activity(day, ActivityType::kOther, 15 * 60 + 30, 90, 25, rng);
  }
  return day;
}

DaySchedule college_weekday(Rng& rng) {
  DaySchedule day;
  add_activity(day, ActivityType::kCollege, 9 * 60, 6 * 60, 60, rng);
  if (rng.bernoulli(0.5)) {
    add_activity(day, ActivityType::kOther, 16 * 60, 100, 30, rng);
  }
  if (rng.bernoulli(0.2)) {
    add_activity(day, ActivityType::kShopping, 18 * 60, 40, 10, rng);
  }
  return day;
}

DaySchedule preschool_weekday(Rng& rng) {
  DaySchedule day;
  // ~35% of preschoolers attend daycare (a School-context location).
  if (rng.bernoulli(0.35)) {
    add_activity(day, ActivityType::kSchool, 8 * 60 + 30, 7 * 60, 30, rng);
  } else if (rng.bernoulli(0.3)) {
    add_activity(day, ActivityType::kOther, 10 * 60, 80, 20, rng);
  }
  return day;
}

DaySchedule home_adult_weekday(Rng& rng) {
  DaySchedule day;
  if (rng.bernoulli(0.45)) {
    add_activity(day, ActivityType::kShopping, 10 * 60 + 30, 50, 25, rng);
  }
  if (rng.bernoulli(0.35)) {
    add_activity(day, ActivityType::kOther, 14 * 60, 90, 30, rng);
  }
  if (rng.bernoulli(0.04)) {
    add_activity(day, ActivityType::kReligion, 18 * 60, 80, 15, rng);
  }
  return day;
}

DaySchedule weekend_day(Occupation occupation, bool sunday, Rng& rng) {
  DaySchedule day;
  // A fifth of workers also work weekend shifts.
  if (occupation == Occupation::kWorker && rng.bernoulli(0.2)) {
    add_activity(day, ActivityType::kWork, 10 * 60, 6 * 60, 60, rng);
    return day;
  }
  if (sunday && rng.bernoulli(0.3)) {
    add_activity(day, ActivityType::kReligion, 10 * 60, 100, 20, rng);
  }
  if (rng.bernoulli(0.5)) {
    add_activity(day, ActivityType::kShopping, 13 * 60, 60, 30, rng);
  }
  if (rng.bernoulli(0.45)) {
    add_activity(day, ActivityType::kOther, 15 * 60 + 30, 110, 40, rng);
  }
  return day;
}

}  // namespace

WeekSchedule assign_week_schedule(Occupation occupation, Rng& rng) {
  WeekSchedule week;
  for (int day = 0; day < 5; ++day) {
    switch (occupation) {
      case Occupation::kWorker: week.days[day] = worker_weekday(rng); break;
      case Occupation::kStudent: week.days[day] = student_weekday(rng); break;
      case Occupation::kCollegeStudent:
        week.days[day] = college_weekday(rng);
        break;
      case Occupation::kPreschooler:
        week.days[day] = preschool_weekday(rng);
        break;
      case Occupation::kHomeOrRetired:
        week.days[day] = home_adult_weekday(rng);
        break;
    }
  }
  week.days[5] = weekend_day(occupation, /*sunday=*/false, rng);
  week.days[6] = weekend_day(occupation, /*sunday=*/true, rng);
  return week;
}

bool schedule_is_valid(const DaySchedule& day) {
  int previous_end = 0;
  for (const Activity& a : day) {
    if (a.start_minute < previous_end) return false;
    if (a.end_minute() > 1440) return false;
    if (a.duration_minutes == 0) return false;
    previous_end = a.end_minute();
  }
  return true;
}

std::uint32_t away_minutes(const DaySchedule& day) {
  std::uint32_t total = 0;
  for (const Activity& a : day) {
    if (a.type != ActivityType::kHome) total += a.duration_minutes;
  }
  return total;
}

}  // namespace epi
