// Weekly activity sequences (paper Appendix C).
//
// Each synthetic person gets a week-long activity sequence alpha(p): a list
// of (activity type, start time, duration) entries per day. The paper fuses
// NHTS/ATUS/MTUS survey data with Fitted Values Matching for adults and
// CART for children; we replace that statistical machinery with
// occupation-conditioned stochastic templates that reproduce the same
// structure — workers commute to Work on weekdays, K-12 students attend
// School, errands and leisure fill evenings and weekends, Religion
// concentrates on day 6 (Sunday) — because the contact network's shape
// depends on this structure, not on the survey fitting method.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "network/contact_network.hpp"  // ActivityType
#include "synthpop/population.hpp"      // Occupation
#include "util/rng.hpp"

namespace epi {

/// One activity instance within a day.
struct Activity {
  ActivityType type = ActivityType::kHome;
  std::uint16_t start_minute = 0;
  std::uint16_t duration_minutes = 0;

  std::uint16_t end_minute() const {
    return static_cast<std::uint16_t>(start_minute + duration_minutes);
  }
};

/// Activities of one person for one day, ordered, non-overlapping; gaps
/// are implicitly at Home.
using DaySchedule = std::vector<Activity>;

/// A week of schedules. Day 0 = Monday ... day 6 = Sunday; Wednesday
/// (day 2) is the paper's "typical day" used for the network projection.
struct WeekSchedule {
  std::array<DaySchedule, 7> days;
};

inline constexpr int kWednesday = 2;

/// Samples a week-long activity sequence for one person. Deterministic
/// given the Rng state.
WeekSchedule assign_week_schedule(Occupation occupation, Rng& rng);

/// Validates a day schedule: ordered, non-overlapping, within 24h.
bool schedule_is_valid(const DaySchedule& day);

/// Total minutes of non-home activity in a day.
std::uint32_t away_minutes(const DaySchedule& day);

}  // namespace epi
