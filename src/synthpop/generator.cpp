#include "synthpop/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "synthpop/ipf.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace epi {

namespace {

// Target mean within-sub-location degree per context; together with the
// sub-location capacities these tune the network density. The production
// networks average ~26 contacts/person; these values land in the same
// regime while keeping generation fast.
double target_degree(ActivityType type) {
  switch (type) {
    case ActivityType::kHome: return 15.0;  // household clique (capped by size)
    case ActivityType::kWork: return 10.0;
    case ActivityType::kShopping: return 3.0;
    case ActivityType::kOther: return 3.0;
    case ActivityType::kSchool: return 14.0;
    case ActivityType::kCollege: return 8.0;
    case ActivityType::kReligion: return 10.0;
  }
  return 4.0;
}

// Occupation assignment by age (labor-force shares approximating BLS).
Occupation sample_occupation(int age, Rng& rng) {
  if (age <= 4) return Occupation::kPreschooler;
  if (age <= 17) return Occupation::kStudent;
  if (age <= 22) {
    if (rng.bernoulli(0.45)) return Occupation::kCollegeStudent;
    return rng.bernoulli(0.70) ? Occupation::kWorker
                               : Occupation::kHomeOrRetired;
  }
  if (age <= 64) {
    return rng.bernoulli(0.72) ? Occupation::kWorker
                               : Occupation::kHomeOrRetired;
  }
  return rng.bernoulli(0.12) ? Occupation::kWorker : Occupation::kHomeOrRetired;
}

int sample_age_in_group(AgeGroup group, Rng& rng) {
  switch (group) {
    case AgeGroup::kPreschool: return static_cast<int>(rng.uniform_int(0, 4));
    case AgeGroup::kSchool: return static_cast<int>(rng.uniform_int(5, 17));
    case AgeGroup::kAdult: return static_cast<int>(rng.uniform_int(18, 49));
    case AgeGroup::kOlderAdult: return static_cast<int>(rng.uniform_int(50, 64));
    case AgeGroup::kSenior: return static_cast<int>(rng.uniform_int(65, 95));
  }
  return 30;
}

// One person's presence at a location during the projection day.
struct Visit {
  LocationId location;
  PersonId person;
  std::uint16_t start;
  std::uint16_t end;
  ActivityType person_activity;  // what this person is doing there
};

}  // namespace

std::array<double, kAgeGroupCount> us_age_distribution() {
  // 2019 national shares: 0-4, 5-17, 18-49, 50-64, 65+.
  return {0.059, 0.163, 0.424, 0.191, 0.163};
}

std::array<double, 7> us_household_size_distribution() {
  // ACS household sizes 1..7+ (7 absorbs the tail); mean ~2.5.
  return {0.28, 0.34, 0.15, 0.13, 0.06, 0.025, 0.015};
}

SyntheticRegion generate_region(const SynthPopConfig& config) {
  const StateInfo& state = state_by_abbrev(config.region);
  EPI_REQUIRE(config.scale > 0.0 && config.scale <= 1.0,
              "scale must be in (0, 1], got " << config.scale);
  Rng master(config.seed);
  Rng rng = master.derive({0x5359'4e50ULL, state.fips});  // "SYNP"

  const auto target_persons = std::max<std::uint64_t>(
      80, static_cast<std::uint64_t>(
              std::llround(static_cast<double>(state.population) * config.scale)));

  CountyLayout layout = make_county_layout(state, rng);
  const std::size_t num_counties = layout.fips.size();

  // --- Per-county person budgets (largest-remainder apportionment) -------
  std::vector<std::uint64_t> county_target(num_counties, 0);
  {
    std::uint64_t assigned = 0;
    std::vector<std::pair<double, std::size_t>> remainders;
    for (std::size_t c = 0; c < num_counties; ++c) {
      const double exact =
          layout.population_share[c] * static_cast<double>(target_persons);
      county_target[c] = static_cast<std::uint64_t>(exact);
      assigned += county_target[c];
      remainders.emplace_back(exact - std::floor(exact), c);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < target_persons && i < remainders.size();
         ++i, ++assigned) {
      ++county_target[remainders[i].second];
    }
  }

  // --- IPF: joint (age group x household size) --------------------------
  // Seed encodes structure: children never live in single-person
  // households; seniors skew toward small households.
  const auto age_dist = us_age_distribution();
  auto hh_dist = us_household_size_distribution();
  {
    // Adjust the household-size distribution so its mean matches the
    // state's average household size (simple exponential tilt).
    double current_mean = 0.0;
    for (std::size_t s = 0; s < hh_dist.size(); ++s) {
      current_mean += hh_dist[s] * static_cast<double>(s + 1);
    }
    const double tilt = std::log(state.avg_household_size / current_mean);
    double normalizer = 0.0;
    for (std::size_t s = 0; s < hh_dist.size(); ++s) {
      hh_dist[s] *= std::exp(tilt * static_cast<double>(s + 1) / 3.0);
      normalizer += hh_dist[s];
    }
    for (auto& p : hh_dist) p /= normalizer;
  }

  Matrix2D seed_joint(kAgeGroupCount, hh_dist.size(), 1.0);
  // Structural zeros / penalties.
  seed_joint.at(0, 0) = 0.0;  // no preschooler alone
  seed_joint.at(1, 0) = 0.0;  // no school-age child alone
  seed_joint.at(4, 4) = 0.3;  // seniors rare in very large households
  seed_joint.at(4, 5) = 0.2;
  seed_joint.at(4, 6) = 0.1;

  std::vector<double> row_targets(kAgeGroupCount);
  std::vector<double> col_targets(hh_dist.size());
  // Person-weighted column targets: share of *persons* living in size-s
  // households is proportional to s * P(household size = s).
  double person_weight_total = 0.0;
  for (std::size_t s = 0; s < hh_dist.size(); ++s) {
    person_weight_total += hh_dist[s] * static_cast<double>(s + 1);
  }
  for (std::size_t s = 0; s < hh_dist.size(); ++s) {
    col_targets[s] =
        hh_dist[s] * static_cast<double>(s + 1) / person_weight_total;
  }
  for (int g = 0; g < kAgeGroupCount; ++g) {
    row_targets[static_cast<std::size_t>(g)] = age_dist[static_cast<std::size_t>(g)];
  }
  const IpfResult ipf =
      iterative_proportional_fit(seed_joint, row_targets, col_targets, 1e-10);
  EPI_ASSERT(ipf.converged, "population IPF failed to converge");

  // Conditional P(age group | household size) from the fitted joint.
  std::vector<std::vector<double>> age_given_size(hh_dist.size());
  for (std::size_t s = 0; s < hh_dist.size(); ++s) {
    age_given_size[s].resize(kAgeGroupCount);
    double column_total = 0.0;
    for (int g = 0; g < kAgeGroupCount; ++g) {
      column_total += ipf.fitted.at(static_cast<std::size_t>(g), s);
    }
    for (int g = 0; g < kAgeGroupCount; ++g) {
      age_given_size[s][static_cast<std::size_t>(g)] =
          column_total > 0.0
              ? ipf.fitted.at(static_cast<std::size_t>(g), s) / column_total
              : 0.0;
    }
  }

  // --- Synthesize households and persons ---------------------------------
  std::vector<PersonTraits> persons;
  std::vector<Household> households;
  persons.reserve(target_persons);
  const std::vector<double> hh_weights(hh_dist.begin(), hh_dist.end());
  for (std::size_t c = 0; c < num_counties; ++c) {
    std::uint64_t remaining = county_target[c];
    while (remaining > 0) {
      auto size = static_cast<std::uint16_t>(rng.discrete(hh_weights) + 1);
      size = static_cast<std::uint16_t>(
          std::min<std::uint64_t>(size, remaining));
      Household hh;
      hh.first_person = static_cast<PersonId>(persons.size());
      hh.size = size;
      hh.county = static_cast<std::uint16_t>(c);
      hh.lat = layout.lat[c] + static_cast<float>(rng.uniform(-0.15, 0.15));
      hh.lon = layout.lon[c] + static_cast<float>(rng.uniform(-0.15, 0.15));
      const auto hh_index = static_cast<std::uint32_t>(households.size());

      // Draw the household's age composition; redraw (rejection sampling)
      // until it contains a resident adult, so households with children are
      // never unsupervised and the marginal age distribution stays close
      // to the IPF targets (forcing a member to adult would skew it).
      std::vector<AgeGroup> groups(size);
      const auto& conditional = age_given_size[static_cast<std::size_t>(size - 1)];
      for (int attempt = 0; attempt < 50; ++attempt) {
        bool has_adult = false;
        bool has_child = false;
        for (std::uint16_t m = 0; m < size; ++m) {
          groups[m] = static_cast<AgeGroup>(rng.discrete(conditional));
          if (groups[m] == AgeGroup::kPreschool ||
              groups[m] == AgeGroup::kSchool) {
            has_child = true;
          } else {
            has_adult = true;
          }
        }
        if (has_adult || !has_child) break;
        if (attempt == 49) groups[0] = AgeGroup::kAdult;  // unreachable in practice
      }
      for (std::uint16_t m = 0; m < size; ++m) {
        const AgeGroup group = groups[m];
        PersonTraits t;
        t.household = hh_index;
        t.age = static_cast<std::uint8_t>(sample_age_in_group(group, rng));
        t.age_group = static_cast<std::uint8_t>(group);
        t.gender = rng.bernoulli(0.5) ? 1 : 0;
        t.occupation =
            static_cast<std::uint8_t>(sample_occupation(t.age, rng));
        t.county = static_cast<std::uint16_t>(c);
        t.home_lat = hh.lat;
        t.home_lon = hh.lon;
        persons.push_back(t);
      }
      households.push_back(hh);
      remaining -= size;
    }
  }

  // --- Work-county assignment (commute flows) ---------------------------
  // With prob (1 - commute_out_fraction) a worker stays in the home
  // county; otherwise the destination is drawn by population share
  // (gravity with distance folded into the shares — county geometry is
  // synthetic, so population mass is the dominant term).
  const std::vector<double> county_shares(layout.population_share.begin(),
                                          layout.population_share.end());
  std::vector<std::uint16_t> work_county(persons.size(), 0);
  for (PersonId p = 0; p < persons.size(); ++p) {
    if (static_cast<Occupation>(persons[p].occupation) != Occupation::kWorker) {
      work_county[p] = persons[p].county;
      continue;
    }
    if (num_counties == 1 || !rng.bernoulli(config.commute_out_fraction)) {
      work_county[p] = persons[p].county;
    } else {
      work_county[p] = static_cast<std::uint16_t>(rng.discrete(county_shares));
    }
  }

  // --- Location demand and pools -----------------------------------------
  std::vector<std::array<std::uint64_t, kActivityTypeCount>> demand(
      num_counties, std::array<std::uint64_t, kActivityTypeCount>{});
  for (PersonId p = 0; p < persons.size(); ++p) {
    const auto home = persons[p].county;
    switch (static_cast<Occupation>(persons[p].occupation)) {
      case Occupation::kWorker:
        ++demand[work_county[p]][static_cast<std::size_t>(ActivityType::kWork)];
        break;
      case Occupation::kStudent:
      case Occupation::kPreschooler:
        ++demand[home][static_cast<std::size_t>(ActivityType::kSchool)];
        break;
      case Occupation::kCollegeStudent:
        ++demand[home][static_cast<std::size_t>(ActivityType::kCollege)];
        break;
      case Occupation::kHomeOrRetired:
        break;
    }
    // Errand-type demand scales with total population.
    ++demand[home][static_cast<std::size_t>(ActivityType::kShopping)];
    ++demand[home][static_cast<std::size_t>(ActivityType::kOther)];
    ++demand[home][static_cast<std::size_t>(ActivityType::kReligion)];
  }
  const LocationModel locations(layout, demand, rng);

  // --- Anchor locations per person ---------------------------------------
  std::vector<LocationId> anchor(persons.size(), 0);
  std::vector<bool> has_anchor(persons.size(), false);
  for (PersonId p = 0; p < persons.size(); ++p) {
    switch (static_cast<Occupation>(persons[p].occupation)) {
      case Occupation::kWorker:
        anchor[p] = locations.assign(work_county[p], ActivityType::kWork, rng);
        has_anchor[p] = true;
        break;
      case Occupation::kStudent:
      case Occupation::kPreschooler:
        anchor[p] =
            locations.assign(persons[p].county, ActivityType::kSchool, rng);
        has_anchor[p] = true;
        break;
      case Occupation::kCollegeStudent:
        anchor[p] =
            locations.assign(persons[p].county, ActivityType::kCollege, rng);
        has_anchor[p] = true;
        break;
      case Occupation::kHomeOrRetired:
        break;
    }
  }

  // --- Visits: one day (the projection) or the full week ------------------
  ContactNetworkBuilder builder(static_cast<PersonId>(persons.size()));
  // Household cliques exist on every day; in the week-long network they
  // are still one (daily-recurring) contact record each, as in the
  // production data where the family edge carries the home context.
  for (const Household& hh : households) {
    for (std::uint16_t i = 0; i < hh.size; ++i) {
      for (std::uint16_t j = static_cast<std::uint16_t>(i + 1); j < hh.size; ++j) {
        builder.add_contact(hh.first_person + i, hh.first_person + j,
                            /*start=*/0, /*duration=*/600, ActivityType::kHome,
                            ActivityType::kHome, 1.0f);
      }
    }
  }

  std::vector<int> days;
  if (config.week_long) {
    for (int d = 0; d < 7; ++d) days.push_back(d);
  } else {
    days.push_back(config.projection_day);
  }
  std::vector<Visit> visits;
  for (const int day : days) {
    visits.clear();
    visits.reserve(persons.size());
    for (PersonId p = 0; p < persons.size(); ++p) {
      Rng person_rng = rng.derive({0x414354ULL, p});  // "ACT"
      const WeekSchedule week = assign_week_schedule(
          static_cast<Occupation>(persons[p].occupation), person_rng);
      for (const Activity& a : week.days[static_cast<std::size_t>(day)]) {
        if (a.type == ActivityType::kHome) continue;
        LocationId where;
        if ((a.type == ActivityType::kWork || a.type == ActivityType::kSchool ||
             a.type == ActivityType::kCollege) &&
            has_anchor[p]) {
          where = anchor[p];
        } else {
          where = locations.assign(persons[p].county, a.type, person_rng);
        }
        visits.push_back(
            Visit{where, p, a.start_minute, a.end_minute(), a.type});
      }
    }

    // --- Contact inference: sub-location co-occupancy for this day -------
    std::sort(visits.begin(), visits.end(), [](const Visit& a, const Visit& b) {
      return a.location < b.location ||
             (a.location == b.location && a.person < b.person);
    });
    std::size_t group_begin = 0;
    while (group_begin < visits.size()) {
      std::size_t group_end = group_begin;
      while (group_end < visits.size() &&
             visits[group_end].location == visits[group_begin].location) {
        ++group_end;
      }
      const Location& loc = locations.location(visits[group_begin].location);
      const std::size_t group_size = group_end - group_begin;
      // Shuffle visitors, then chunk into sub-locations of bounded capacity;
      // Erdos-Renyi within each chunk targets the context's mean degree.
      std::vector<std::size_t> order(group_size);
      std::iota(order.begin(), order.end(), group_begin);
      rng.shuffle(order.begin(), order.end());
      const std::size_t capacity = loc.sublocation_capacity;
      const double degree = target_degree(loc.type);
      for (std::size_t chunk = 0; chunk < group_size; chunk += capacity) {
        const std::size_t chunk_end = std::min(chunk + capacity, group_size);
        const std::size_t k = chunk_end - chunk;
        if (k < 2) continue;
        const double p_edge = std::min(1.0, degree / static_cast<double>(k - 1));
        for (std::size_t i = chunk; i < chunk_end; ++i) {
          for (std::size_t j = i + 1; j < chunk_end; ++j) {
            if (!rng.bernoulli(p_edge)) continue;
            const Visit& a = visits[order[i]];
            const Visit& b = visits[order[j]];
            const int overlap_start = std::max(a.start, b.start);
            const int overlap_end = std::min(a.end, b.end);
            if (overlap_end - overlap_start < 5) continue;  // <5 min: no contact
            builder.add_contact(
                a.person, b.person, static_cast<std::uint16_t>(overlap_start),
                static_cast<std::uint16_t>(overlap_end - overlap_start),
                a.person_activity, b.person_activity, 1.0f);
          }
        }
      }
      group_begin = group_end;
    }
  }

  SyntheticRegion region;
  region.population =
      Population(config.region,
                 std::vector<std::uint32_t>(layout.fips.begin(), layout.fips.end()),
                 std::move(persons), std::move(households));
  region.network = std::move(builder).finalize();
  region.counties = std::move(layout);
  EPI_INFO("generated region " << config.region << ": "
                               << region.population.person_count() << " persons, "
                               << region.network.contact_count() << " contacts");
  return region;
}

std::shared_ptr<const SyntheticRegion> make_region(
    const RegionSource& source, const SynthPopConfig& config) {
  if (source) return source(config);
  return std::make_shared<const SyntheticRegion>(generate_region(config));
}

std::vector<RegionSizeRow> national_network_sizes(double scale,
                                                  std::uint64_t seed,
                                                  bool week_long) {
  std::vector<RegionSizeRow> rows;
  rows.reserve(us_state_count());
  for (const StateInfo& state : us_states()) {
    SynthPopConfig config;
    config.region = state.abbrev;
    config.scale = scale;
    config.seed = seed;
    config.week_long = week_long;
    const SyntheticRegion region = generate_region(config);
    rows.push_back(RegionSizeRow{state.abbrev,
                                 region.population.person_count(),
                                 region.network.contact_count()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const RegionSizeRow& a, const RegionSizeRow& b) {
              return a.persons < b.persons;
            });
  return rows;
}

}  // namespace epi
