// End-to-end synthetic population + contact network generator (paper
// Appendix C pipeline).
//
// Steps, mirroring the paper: (i) construct people and places — households
// sampled from an IPF-fitted (age-group x household-size) joint
// distribution per county; (ii) assign week-long activity sequences;
// (iii) map every activity to a spatially embedded location (work via a
// commute-flow model, school/college in-county, errands anchored near
// home); (iv) derive the contact network from co-occupancy with a
// sub-location contact model, projected to the "typical day" (Wednesday).
//
// Everything is deterministic in (region, scale, seed).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "network/contact_network.hpp"
#include "synthpop/activity.hpp"
#include "synthpop/locations.hpp"
#include "synthpop/population.hpp"
#include "synthpop/us_states.hpp"

namespace epi {

struct SynthPopConfig {
  std::string region = "VA";  // state abbreviation
  /// Fraction of the real state population to generate. The nightly
  /// production runs used scale 1 (300M persons nationally); default here
  /// is laptop-scale.
  double scale = 1.0 / 2000.0;
  std::uint64_t seed = 20200325;  // first production run: March 25, 2020
  /// Day of week (0 = Monday) the network is projected to; the paper uses
  /// Wednesday. Ignored when week_long is set.
  int projection_day = kWednesday;
  /// Build the week-long network G instead of the one-day projection
  /// G_Wednesday: contacts of all seven days, each annotated with its
  /// interaction time. This is the network whose size Fig 6 reports
  /// (~26 contacts/person); simulations in the paper (and here) run on
  /// the Wednesday projection.
  bool week_long = false;
  /// Fraction of workers commuting outside their home county.
  double commute_out_fraction = 0.25;
};

/// A generated region: the population and its contact network, plus the
/// location model (retained for interventions that need venue structure).
struct SyntheticRegion {
  Population population;
  ContactNetwork network;
  CountyLayout counties;
};

/// National age distribution used for person synthesis (shares by
/// AgeGroup, summing to 1).
std::array<double, kAgeGroupCount> us_age_distribution();

/// Household-size distribution template (sizes 1..7), later IPF-adjusted
/// per county to hit the state's average household size.
std::array<double, 7> us_household_size_distribution();

/// Generates a region's population and Wednesday contact network.
SyntheticRegion generate_region(const SynthPopConfig& config);

/// Injectable region supplier for the workflow engines. generate_region is
/// a pure function of its config, so a source may serve a shared immutable
/// build (the scenario service's content-addressed artifact cache) instead
/// of regenerating — the engines' outputs are byte-identical either way. A
/// null source means "call generate_region directly".
using RegionSource =
    std::function<std::shared_ptr<const SyntheticRegion>(const SynthPopConfig&)>;

/// `source` when set, else a fresh generate_region() build.
std::shared_ptr<const SyntheticRegion> make_region(const RegionSource& source,
                                                   const SynthPopConfig& config);

/// Convenience: per-state network size row for Fig 6.
struct RegionSizeRow {
  std::string region;
  std::uint64_t persons = 0;
  std::uint64_t contacts = 0;  // undirected
};

/// Generates all 51 regions (at config.scale, config.seed) and returns
/// their node/contact counts ordered by ascending population — the Fig 6
/// series. Expensive at large scales. `week_long` selects the full
/// seven-day network (the Fig 6 convention) vs the Wednesday projection.
std::vector<RegionSizeRow> national_network_sizes(double scale,
                                                  std::uint64_t seed,
                                                  bool week_long = false);

}  // namespace epi
