#include "synthpop/ipf.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

double Matrix2D::row_sum(std::size_t r) const {
  double sum = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) sum += at(r, c);
  return sum;
}

double Matrix2D::col_sum(std::size_t c) const {
  double sum = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) sum += at(r, c);
  return sum;
}

double Matrix2D::total() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

IpfResult iterative_proportional_fit(const Matrix2D& seed,
                                     const std::vector<double>& row_targets,
                                     const std::vector<double>& col_targets,
                                     double tolerance,
                                     std::size_t max_iterations) {
  EPI_REQUIRE(seed.rows() == row_targets.size(),
              "IPF row target length mismatch");
  EPI_REQUIRE(seed.cols() == col_targets.size(),
              "IPF column target length mismatch");
  double row_total = 0.0, col_total = 0.0;
  for (double t : row_targets) {
    EPI_REQUIRE(t >= 0.0, "IPF row target must be >= 0");
    row_total += t;
  }
  for (double t : col_targets) {
    EPI_REQUIRE(t >= 0.0, "IPF column target must be >= 0");
    col_total += t;
  }
  EPI_REQUIRE(row_total > 0.0, "IPF targets sum to zero");
  EPI_REQUIRE(std::abs(row_total - col_total) <=
                  1e-6 * std::max(row_total, col_total),
              "IPF row and column totals disagree: " << row_total << " vs "
                                                     << col_total);
  for (std::size_t r = 0; r < seed.rows(); ++r) {
    for (std::size_t c = 0; c < seed.cols(); ++c) {
      EPI_REQUIRE(seed.at(r, c) >= 0.0, "IPF seed must be non-negative");
    }
    EPI_REQUIRE(!(row_targets[r] > 0.0 && seed.row_sum(r) == 0.0),
                "IPF seed row " << r << " is all-zero with nonzero target");
  }
  for (std::size_t c = 0; c < seed.cols(); ++c) {
    EPI_REQUIRE(!(col_targets[c] > 0.0 && seed.col_sum(c) == 0.0),
                "IPF seed column " << c << " is all-zero with nonzero target");
  }

  IpfResult result;
  result.fitted = seed;
  Matrix2D& m = result.fitted;
  for (std::size_t iteration = 0; iteration < max_iterations; ++iteration) {
    // Row scaling pass.
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double current = m.row_sum(r);
      const double factor = current > 0.0 ? row_targets[r] / current : 0.0;
      for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) *= factor;
    }
    // Column scaling pass.
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double current = m.col_sum(c);
      const double factor = current > 0.0 ? col_targets[c] / current : 0.0;
      for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, c) *= factor;
    }
    // Convergence: worst marginal deviation after the column pass.
    double error = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      error = std::max(error, std::abs(m.row_sum(r) - row_targets[r]));
    }
    for (std::size_t c = 0; c < m.cols(); ++c) {
      error = std::max(error, std::abs(m.col_sum(c) - col_targets[c]));
    }
    result.iterations = iteration + 1;
    result.max_marginal_error = error;
    if (error <= tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace epi
