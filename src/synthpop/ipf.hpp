// Iterative proportional fitting (Deming & Stephan 1940 — the paper's
// reference [13], used via Beckman, Baggerly & McKay [4] to build the base
// population).
//
// Given a seed contingency table and target row/column marginals, IPF
// rescales rows and columns alternately until the table matches both
// marginal vectors. The population generator uses it to fit the joint
// (age group x household size) distribution of each county to
// census-style marginals before sampling households.
#pragma once

#include <cstddef>
#include <vector>

namespace epi {

/// A dense row-major matrix just big enough for IPF work.
class Matrix2D {
 public:
  Matrix2D() = default;
  Matrix2D(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double row_sum(std::size_t r) const;
  double col_sum(std::size_t c) const;
  double total() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

struct IpfResult {
  Matrix2D fitted;
  std::size_t iterations = 0;
  double max_marginal_error = 0.0;  // worst absolute marginal deviation
  bool converged = false;
};

/// Runs IPF. `seed` must be non-negative with no all-zero row/column that
/// has a nonzero target. Row and column marginal totals must agree (within
/// a relative tolerance of 1e-6); the result table has those marginals up
/// to `tolerance`.
IpfResult iterative_proportional_fit(const Matrix2D& seed,
                                     const std::vector<double>& row_targets,
                                     const std::vector<double>& col_targets,
                                     double tolerance = 1e-9,
                                     std::size_t max_iterations = 1000);

}  // namespace epi
