#include "synthpop/locations.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"

namespace epi {

CountyLayout make_county_layout(const StateInfo& state, Rng& rng) {
  CountyLayout layout;
  const std::size_t n = state.counties;
  EPI_REQUIRE(n > 0, "state must have at least one county");
  layout.fips.reserve(n);
  layout.population_share.reserve(n);
  layout.lat.reserve(n);
  layout.lon.reserve(n);

  // Zipf(s = 0.9) shares: the largest county of a populous state holds a
  // metro-sized fraction, matching real county-size skew.
  double normalizer = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    normalizer += 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
  }
  // Spatial extent grows with county count; jitter keeps layouts distinct
  // across seeds while remaining centred on the state.
  const double extent = 0.5 + 0.08 * std::sqrt(static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    // County FIPS codes are odd multiples offset from the state code, as
    // in the real FIPS scheme (e.g. 51001, 51003, ...).
    layout.fips.push_back(state.fips * 1000 + static_cast<std::uint32_t>(i) * 2 + 1);
    layout.population_share.push_back(
        (1.0 / std::pow(static_cast<double>(i + 1), 0.9)) / normalizer);
    layout.lat.push_back(static_cast<float>(
        state.centroid_lat + rng.uniform(-extent, extent)));
    layout.lon.push_back(static_cast<float>(
        state.centroid_lon + rng.uniform(-extent, extent)));
  }
  return layout;
}

std::uint64_t persons_per_location(ActivityType type) {
  switch (type) {
    case ActivityType::kHome: return 1;        // households are locations
    case ActivityType::kWork: return 20;       // mean workplace size
    case ActivityType::kShopping: return 150;  // persons per store
    case ActivityType::kOther: return 120;     // persons per venue
    case ActivityType::kSchool: return 450;    // persons per school
    case ActivityType::kCollege: return 1200;  // persons per campus
    case ActivityType::kReligion: return 250;  // persons per congregation
  }
  return 100;
}

std::uint16_t sublocation_capacity(ActivityType type) {
  switch (type) {
    case ActivityType::kHome: return 16;
    case ActivityType::kWork: return 20;      // office suite / crew
    case ActivityType::kShopping: return 15;  // aisle / checkout area
    case ActivityType::kOther: return 18;
    case ActivityType::kSchool: return 25;    // classroom
    case ActivityType::kCollege: return 30;   // lecture section
    case ActivityType::kReligion: return 40;  // service seating block
  }
  return 20;
}

LocationModel::LocationModel(
    const CountyLayout& layout,
    const std::vector<std::array<std::uint64_t, kActivityTypeCount>>& demand,
    Rng& rng) {
  EPI_REQUIRE(demand.size() == layout.fips.size(),
              "demand table must have one row per county");
  pools_.resize(layout.fips.size());
  for (std::size_t county = 0; county < layout.fips.size(); ++county) {
    for (int t = 0; t < kActivityTypeCount; ++t) {
      const auto type = static_cast<ActivityType>(t);
      if (type == ActivityType::kHome) continue;  // homes are households
      const std::uint64_t persons = demand[county][static_cast<std::size_t>(t)];
      if (persons == 0) continue;
      const std::uint64_t count =
          std::max<std::uint64_t>(1, persons / persons_per_location(type));
      for (std::uint64_t i = 0; i < count; ++i) {
        Location loc;
        loc.type = type;
        loc.county = static_cast<std::uint16_t>(county);
        loc.lat = layout.lat[county] + static_cast<float>(rng.uniform(-0.2, 0.2));
        loc.lon = layout.lon[county] + static_cast<float>(rng.uniform(-0.2, 0.2));
        loc.sublocation_capacity = sublocation_capacity(type);
        const auto id = static_cast<LocationId>(locations_.size());
        locations_.push_back(loc);
        pools_[county][static_cast<std::size_t>(t)].push_back(id);
        global_pools_[static_cast<std::size_t>(t)].push_back(id);
      }
    }
  }
}

const std::vector<LocationId>& LocationModel::pool(std::size_t county,
                                                   ActivityType type) const {
  EPI_REQUIRE(county < pools_.size(), "county index out of range");
  return pools_[county][static_cast<std::size_t>(type)];
}

LocationId LocationModel::assign(std::size_t county, ActivityType type,
                                 Rng& rng) const {
  const auto& local = pool(county, type);
  if (!local.empty()) {
    return local[rng.uniform_index(local.size())];
  }
  const auto& global = global_pools_[static_cast<std::size_t>(type)];
  EPI_REQUIRE(!global.empty(),
              "no locations of type " << activity_name(type) << " anywhere");
  return global[rng.uniform_index(global.size())];
}

}  // namespace epi
