// Spatially embedded location model (paper Appendix C).
//
// The paper's location model builds residence and activity locations from
// MS Building footprints, HERE/NAVTEQ POIs, NCES school data, LandScan and
// OpenStreetMap. None of those datasets ship here; this model generates
// the same *structure* — a set of activity locations per county, sized by
// the population they serve, spatially scattered around county centroids —
// which is what the co-occupancy contact inference consumes.
//
// County geography itself is synthetic: counties of a region receive
// Zipf-distributed population shares (large metro counties exist, as in
// reality) and centroids jittered around the state centroid.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "network/contact_network.hpp"  // ActivityType
#include "synthpop/us_states.hpp"
#include "util/rng.hpp"

namespace epi {

using LocationId = std::uint32_t;

struct Location {
  ActivityType type = ActivityType::kOther;
  std::uint16_t county = 0;
  float lat = 0.0f;
  float lon = 0.0f;
  /// Maximum simultaneous occupants of one sub-location (classroom, shop
  /// floor section, office suite); drives the contact model.
  std::uint16_t sublocation_capacity = 0;
};

/// Synthetic county geography for one region.
struct CountyLayout {
  std::vector<std::uint32_t> fips;      // per-county FIPS (state*1000 + i*2+1)
  std::vector<double> population_share; // Zipf shares, sums to 1
  std::vector<float> lat;
  std::vector<float> lon;
};

/// Builds county layout for a state: Zipf(0.9) population shares over the
/// state's county count, centroids jittered around the state centroid.
CountyLayout make_county_layout(const StateInfo& state, Rng& rng);

/// All activity locations of one region, grouped by (county, type).
class LocationModel {
 public:
  /// Sizes location pools from per-county demand (person counts needing
  /// each activity type in that county).
  ///
  /// `demand[c][t]` = number of persons in county c whose schedules use
  /// activity type t. Pool sizes follow fixed persons-per-location ratios
  /// (workplace ~20, school ~450, college ~1200, store ~150, venue ~120,
  /// congregation ~250), always at least 1 where demand exists.
  LocationModel(const CountyLayout& layout,
                const std::vector<std::array<std::uint64_t, kActivityTypeCount>>& demand,
                Rng& rng);

  std::size_t location_count() const { return locations_.size(); }
  const Location& location(LocationId id) const { return locations_[id]; }

  /// Locations of `type` in county `c` (possibly empty for kHome).
  const std::vector<LocationId>& pool(std::size_t county,
                                      ActivityType type) const;

  /// Picks a location of `type` for a resident of `county`, uniformly from
  /// the county pool; falls back to any county's pool if local pool empty.
  LocationId assign(std::size_t county, ActivityType type, Rng& rng) const;

 private:
  std::vector<Location> locations_;
  // pools_[county][type] -> location ids
  std::vector<std::array<std::vector<LocationId>, kActivityTypeCount>> pools_;
  std::array<std::vector<LocationId>, kActivityTypeCount> global_pools_;
  std::vector<LocationId> empty_;
};

/// Persons served per location, by activity type (tuning constants shared
/// with tests).
std::uint64_t persons_per_location(ActivityType type);

/// Sub-location capacity by activity type (classroom 25, office 20, ...).
std::uint16_t sublocation_capacity(ActivityType type);

}  // namespace epi
