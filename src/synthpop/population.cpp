#include "synthpop/population.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace epi {

AgeGroup age_group_of(int age) {
  EPI_REQUIRE(age >= 0 && age <= 120, "implausible age " << age);
  if (age <= 4) return AgeGroup::kPreschool;
  if (age <= 17) return AgeGroup::kSchool;
  if (age <= 49) return AgeGroup::kAdult;
  if (age <= 64) return AgeGroup::kOlderAdult;
  return AgeGroup::kSenior;
}

const char* age_group_name(AgeGroup g) {
  switch (g) {
    case AgeGroup::kPreschool: return "0-4";
    case AgeGroup::kSchool: return "5-17";
    case AgeGroup::kAdult: return "18-49";
    case AgeGroup::kOlderAdult: return "50-64";
    case AgeGroup::kSenior: return "65+";
  }
  return "?";
}

Population::Population(std::string region,
                       std::vector<std::uint32_t> county_fips,
                       std::vector<PersonTraits> persons,
                       std::vector<Household> households)
    : region_(std::move(region)),
      county_fips_(std::move(county_fips)),
      persons_(std::move(persons)),
      households_(std::move(households)) {
  for (std::size_t h = 0; h < households_.size(); ++h) {
    const Household& hh = households_[h];
    EPI_REQUIRE(hh.first_person + hh.size <= persons_.size(),
                "household " << h << " members out of range");
    for (PersonId p = hh.first_person; p < hh.first_person + hh.size; ++p) {
      EPI_REQUIRE(persons_[p].household == h,
                  "person " << p << " household back-reference mismatch");
    }
  }
  for (const auto& person : persons_) {
    EPI_REQUIRE(person.county < county_fips_.size(),
                "person county index out of range");
  }
  recompute_county_population();
}

void Population::recompute_county_population() {
  county_population_.assign(county_fips_.size(), 0);
  for (const auto& person : persons_) {
    ++county_population_[person.county];
  }
}

std::uint64_t Population::county_population(std::size_t c) const {
  EPI_REQUIRE(c < county_population_.size(), "county index out of range");
  return county_population_[c];
}

void Population::write_csv(std::ostream& out) const {
  out << "pid,hid,age,age_group,gender,occupation,county_fips,home_lat,home_lon\n";
  for (PersonId p = 0; p < person_count(); ++p) {
    const PersonTraits& t = persons_[p];
    out << p << ',' << t.household << ',' << int(t.age) << ','
        << int(t.age_group) << ',' << int(t.gender) << ',' << int(t.occupation)
        << ',' << county_fips_[t.county] << ',' << t.home_lat << ','
        << t.home_lon << '\n';
  }
}

Population Population::read_csv(std::istream& in, std::string region) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const CsvTable table = parse_csv(buffer.str());

  // County FIPS values are remapped to dense indices in first-seen order.
  std::vector<std::uint32_t> county_fips;
  std::map<std::uint32_t, std::uint16_t> fips_to_index;
  std::vector<PersonTraits> persons;
  persons.reserve(table.row_count());
  for (std::size_t row = 0; row < table.row_count(); ++row) {
    PersonTraits t;
    t.household = static_cast<std::uint32_t>(table.cell_int(row, "hid"));
    t.age = static_cast<std::uint8_t>(table.cell_int(row, "age"));
    t.age_group = static_cast<std::uint8_t>(table.cell_int(row, "age_group"));
    t.gender = static_cast<std::uint8_t>(table.cell_int(row, "gender"));
    t.occupation =
        static_cast<std::uint8_t>(table.cell_int(row, "occupation"));
    const auto fips =
        static_cast<std::uint32_t>(table.cell_int(row, "county_fips"));
    auto [it, inserted] = fips_to_index.emplace(
        fips, static_cast<std::uint16_t>(county_fips.size()));
    if (inserted) county_fips.push_back(fips);
    t.county = it->second;
    t.home_lat = static_cast<float>(table.cell_double(row, "home_lat"));
    t.home_lon = static_cast<float>(table.cell_double(row, "home_lon"));
    persons.push_back(t);
  }

  // Rebuild the household table from person back-references.
  std::uint32_t household_count = 0;
  for (const auto& person : persons) {
    household_count = std::max(household_count, person.household + 1);
  }
  std::vector<Household> households(household_count);
  std::vector<bool> seen(household_count, false);
  for (PersonId p = 0; p < persons.size(); ++p) {
    const auto h = persons[p].household;
    if (!seen[h]) {
      households[h].first_person = p;
      households[h].county = persons[p].county;
      households[h].lat = persons[p].home_lat;
      households[h].lon = persons[p].home_lon;
      seen[h] = true;
    }
    EPI_REQUIRE(p == households[h].first_person + households[h].size,
                "household members must be contiguous in the person CSV");
    ++households[h].size;
  }
  return Population(std::move(region), std::move(county_fips),
                    std::move(persons), std::move(households));
}

}  // namespace epi
