// Synthetic population container.
//
// Mirrors the paper's person-trait CSV (§III): "household ID, age and age
// group, gender, county code, and the latitude and longitude of home
// locations". Persons are contiguous and identified by index (PersonId),
// grouped by household, which lets the contact-network builder emit
// household cliques cheaply and lets the person database snapshot the
// whole table as one block.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "network/contact_network.hpp"  // PersonId

namespace epi {

/// Coarse age bands used by the CDC disease-parameter tables (Table III).
enum class AgeGroup : std::uint8_t {
  kPreschool = 0,   // 0-4
  kSchool = 1,      // 5-17
  kAdult = 2,       // 18-49
  kOlderAdult = 3,  // 50-64
  kSenior = 4,      // 65+
};
inline constexpr int kAgeGroupCount = 5;

AgeGroup age_group_of(int age);
const char* age_group_name(AgeGroup g);

/// What a person does on weekdays; drives activity-sequence assignment.
enum class Occupation : std::uint8_t {
  kPreschooler = 0,
  kStudent = 1,        // K-12
  kCollegeStudent = 2,
  kWorker = 3,
  kHomeOrRetired = 4,  // not in labor force / retired / unemployed
};
inline constexpr int kOccupationCount = 5;

struct PersonTraits {
  std::uint32_t household = 0;   // index into Population::households()
  std::uint8_t age = 0;
  std::uint8_t age_group = 0;    // AgeGroup
  std::uint8_t gender = 0;       // 0 female, 1 male
  std::uint8_t occupation = 0;   // Occupation
  std::uint16_t county = 0;      // index into Population::county_fips()
  float home_lat = 0.0f;
  float home_lon = 0.0f;
};

struct Household {
  PersonId first_person = 0;  // members are [first_person, first_person+size)
  std::uint16_t size = 0;
  std::uint16_t county = 0;
  float lat = 0.0f;
  float lon = 0.0f;
};

/// The synthetic population of one region.
class Population {
 public:
  Population() = default;
  Population(std::string region, std::vector<std::uint32_t> county_fips,
             std::vector<PersonTraits> persons, std::vector<Household> households);

  const std::string& region() const { return region_; }
  PersonId person_count() const {
    return static_cast<PersonId>(persons_.size());
  }
  std::size_t household_count() const { return households_.size(); }
  std::size_t county_count() const { return county_fips_.size(); }

  const PersonTraits& person(PersonId p) const { return persons_[p]; }
  const Household& household(std::size_t h) const { return households_[h]; }
  const std::vector<PersonTraits>& persons() const { return persons_; }
  const std::vector<Household>& households() const { return households_; }

  /// FIPS code of county index c.
  std::uint32_t county_fips(std::size_t c) const { return county_fips_[c]; }
  const std::vector<std::uint32_t>& county_fips_codes() const {
    return county_fips_;
  }

  /// Number of persons living in county index c.
  std::uint64_t county_population(std::size_t c) const;

  AgeGroup age_group(PersonId p) const {
    return static_cast<AgeGroup>(persons_[p].age_group);
  }
  Occupation occupation(PersonId p) const {
    return static_cast<Occupation>(persons_[p].occupation);
  }

  /// Person-trait CSV as in the paper:
  /// pid,hid,age,age_group,gender,occupation,county_fips,home_lat,home_lon
  void write_csv(std::ostream& out) const;
  static Population read_csv(std::istream& in, std::string region);

 private:
  std::string region_;
  std::vector<std::uint32_t> county_fips_;
  std::vector<PersonTraits> persons_;
  std::vector<Household> households_;
  std::vector<std::uint64_t> county_population_;

  void recompute_county_population();
};

}  // namespace epi
