#include "synthpop/us_states.hpp"

#include <array>

#include "util/error.hpp"

namespace epi {

namespace {

// 2019 census population estimates, county-equivalent counts, ACS average
// household sizes, and rough geographic centroids. Ordered by FIPS.
constexpr std::array<StateInfo, 51> kStates = {{
    {"AL", "Alabama", 1, 4903185, 67, 2.55, 32.8, -86.8},
    {"AK", "Alaska", 2, 731545, 29, 2.80, 64.0, -152.0},
    {"AZ", "Arizona", 4, 7278717, 15, 2.67, 34.2, -111.6},
    {"AR", "Arkansas", 5, 3017804, 75, 2.52, 34.8, -92.4},
    {"CA", "California", 6, 39512223, 58, 2.95, 37.2, -119.3},
    {"CO", "Colorado", 8, 5758736, 64, 2.56, 39.0, -105.5},
    {"CT", "Connecticut", 9, 3565287, 8, 2.53, 41.6, -72.7},
    {"DE", "Delaware", 10, 973764, 3, 2.57, 39.0, -75.5},
    {"DC", "District of Columbia", 11, 705749, 1, 2.30, 38.9, -77.0},
    {"FL", "Florida", 12, 21477737, 67, 2.65, 28.6, -82.4},
    {"GA", "Georgia", 13, 10617423, 159, 2.70, 32.6, -83.4},
    {"HI", "Hawaii", 15, 1415872, 5, 3.01, 20.3, -156.4},
    {"ID", "Idaho", 16, 1787065, 44, 2.69, 44.4, -114.6},
    {"IL", "Illinois", 17, 12671821, 102, 2.59, 40.0, -89.2},
    {"IN", "Indiana", 18, 6732219, 92, 2.55, 39.9, -86.3},
    {"IA", "Iowa", 19, 3155070, 99, 2.41, 42.0, -93.5},
    {"KS", "Kansas", 20, 2913314, 105, 2.51, 38.5, -98.4},
    {"KY", "Kentucky", 21, 4467673, 120, 2.48, 37.5, -85.3},
    {"LA", "Louisiana", 22, 4648794, 64, 2.62, 31.1, -92.0},
    {"ME", "Maine", 23, 1344212, 16, 2.32, 45.4, -69.2},
    {"MD", "Maryland", 24, 6045680, 24, 2.67, 39.0, -76.8},
    {"MA", "Massachusetts", 25, 6892503, 14, 2.51, 42.3, -71.8},
    {"MI", "Michigan", 26, 9986857, 83, 2.47, 44.3, -85.4},
    {"MN", "Minnesota", 27, 5639632, 87, 2.48, 46.3, -94.3},
    {"MS", "Mississippi", 28, 2976149, 82, 2.60, 32.7, -89.7},
    {"MO", "Missouri", 29, 6137428, 115, 2.47, 38.4, -92.5},
    {"MT", "Montana", 30, 1068778, 56, 2.39, 47.0, -109.6},
    {"NE", "Nebraska", 31, 1934408, 93, 2.45, 41.5, -99.8},
    {"NV", "Nevada", 32, 3080156, 17, 2.67, 39.3, -116.6},
    {"NH", "New Hampshire", 33, 1359711, 10, 2.44, 43.7, -71.6},
    {"NJ", "New Jersey", 34, 8882190, 21, 2.71, 40.1, -74.7},
    {"NM", "New Mexico", 35, 2096829, 33, 2.61, 34.4, -106.1},
    {"NY", "New York", 36, 19453561, 62, 2.57, 42.9, -75.6},
    {"NC", "North Carolina", 37, 10488084, 100, 2.51, 35.5, -79.4},
    {"ND", "North Dakota", 38, 762062, 53, 2.33, 47.4, -100.5},
    {"OH", "Ohio", 39, 11689100, 88, 2.45, 40.3, -82.8},
    {"OK", "Oklahoma", 40, 3956971, 77, 2.55, 35.6, -97.5},
    {"OR", "Oregon", 41, 4217737, 36, 2.50, 44.0, -120.5},
    {"PA", "Pennsylvania", 42, 12801989, 67, 2.46, 40.9, -77.8},
    {"RI", "Rhode Island", 44, 1059361, 5, 2.45, 41.7, -71.6},
    {"SC", "South Carolina", 45, 5148714, 46, 2.53, 33.9, -80.9},
    {"SD", "South Dakota", 46, 884659, 66, 2.44, 44.4, -100.2},
    {"TN", "Tennessee", 47, 6829174, 95, 2.52, 35.8, -86.3},
    {"TX", "Texas", 48, 28995881, 254, 2.85, 31.5, -99.3},
    {"UT", "Utah", 49, 3205958, 29, 3.12, 39.3, -111.7},
    {"VT", "Vermont", 50, 623989, 14, 2.31, 44.1, -72.7},
    {"VA", "Virginia", 51, 8535519, 133, 2.61, 37.5, -78.9},
    {"WA", "Washington", 53, 7614893, 39, 2.55, 47.4, -120.4},
    {"WV", "West Virginia", 54, 1792147, 55, 2.42, 38.6, -80.6},
    {"WI", "Wisconsin", 55, 5822434, 72, 2.44, 44.6, -89.9},
    {"WY", "Wyoming", 56, 578759, 23, 2.44, 43.0, -107.5},
}};

}  // namespace

std::span<const StateInfo> us_states() {
  return std::span<const StateInfo>(kStates.data(), kStates.size());
}

std::size_t us_state_count() { return kStates.size(); }

const StateInfo& state_by_abbrev(const std::string& abbrev) {
  for (const auto& state : kStates) {
    if (abbrev == state.abbrev) return state;
  }
  throw ConfigError("unknown state abbreviation: " + abbrev);
}

std::size_t state_index(const std::string& abbrev) {
  for (std::size_t i = 0; i < kStates.size(); ++i) {
    if (abbrev == kStates[i].abbrev) return i;
  }
  throw ConfigError("unknown state abbreviation: " + abbrev);
}

std::uint64_t total_us_counties() {
  std::uint64_t total = 0;
  for (const auto& state : kStates) total += state.counties;
  return total;
}

std::uint64_t total_us_population() {
  std::uint64_t total = 0;
  for (const auto& state : kStates) total += state.population;
  return total;
}

}  // namespace epi
