// Embedded US state reference data.
//
// The paper's populations are built from proprietary/licensed inputs (ACS
// PUMS, HERE/NAVTEQ, NCES, NHTS/ATUS/MTUS). Those cannot ship here, so the
// generator is driven by this compact public-statistics table: 2019 census
// population estimates, county-equivalent counts, average household sizes
// and a coarse geographic centroid per region. Synthetic populations are
// generated at `scale` * population, so state-to-state ratios — the shape
// of Fig 6 — are preserved exactly.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace epi {

struct StateInfo {
  const char* abbrev;     // e.g. "VA"
  const char* name;       // e.g. "Virginia"
  std::uint32_t fips;     // state FIPS code
  std::uint64_t population;  // 2019 census estimate
  std::uint32_t counties;    // county equivalents
  double avg_household_size;
  double centroid_lat;
  double centroid_lon;
};

/// All 50 states plus DC (51 regions), ordered by FIPS code.
std::span<const StateInfo> us_states();

/// Number of regions (always 51).
std::size_t us_state_count();

/// Lookup by postal abbreviation; throws ConfigError if unknown.
const StateInfo& state_by_abbrev(const std::string& abbrev);

/// Index (into us_states()) by abbreviation.
std::size_t state_index(const std::string& abbrev);

/// Total county equivalents across all regions (the paper quotes 3140;
/// the canonical census count we embed sums to 3142).
std::uint64_t total_us_counties();

/// Total 2019 population across all regions (~328M; the paper's network
/// has "about 300 million nodes").
std::uint64_t total_us_population();

}  // namespace epi
