#include "util/csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace epi {

CsvTable::CsvTable(std::vector<std::string> header,
                   std::vector<std::vector<std::string>> rows)
    : header_(std::move(header)), rows_(std::move(rows)) {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    column_index_.emplace(header_[i], i);
  }
  for (const auto& row : rows_) {
    EPI_REQUIRE(row.size() == header_.size(),
                "ragged CSV row: expected " << header_.size() << " fields, got "
                                            << row.size());
  }
}

std::size_t CsvTable::column(std::string_view name) const {
  const auto it = column_index_.find(std::string(name));
  if (it == column_index_.end()) {
    throw ConfigError("CSV column not found: " + std::string(name));
  }
  return it->second;
}

bool CsvTable::has_column(std::string_view name) const {
  return column_index_.count(std::string(name)) != 0;
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  EPI_REQUIRE(row < rows_.size(), "CSV row out of range: " << row);
  EPI_REQUIRE(col < header_.size(), "CSV column out of range: " << col);
  return rows_[row][col];
}

const std::string& CsvTable::cell(std::size_t row, std::string_view col) const {
  return cell(row, column(col));
}

double CsvTable::cell_double(std::size_t row, std::string_view col) const {
  const std::string& text = cell(row, col);
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    throw ConfigError("CSV cell is not a number: '" + text + "' in column " +
                      std::string(col));
  }
}

std::int64_t CsvTable::cell_int(std::size_t row, std::string_view col) const {
  const std::string& text = cell(row, col);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("CSV cell is not an integer: '" + text + "' in column " +
                      std::string(col));
  }
  return value;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (in_quotes) {
    throw ConfigError("unterminated quote in CSV line");
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvTable parse_csv(std::string_view text) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  bool have_header = false;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) {
      if (start > text.size()) break;
      continue;
    }
    auto fields = parse_csv_line(line);
    if (!have_header) {
      header = std::move(fields);
      have_header = true;
    } else {
      rows.push_back(std::move(fields));
    }
    if (end == text.size()) break;
  }
  EPI_REQUIRE(have_header, "CSV text has no header row");
  return CsvTable(std::move(header), std::move(rows));
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

std::string csv_escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::format(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string CsvWriter::format(std::int64_t value) {
  return std::to_string(value);
}

std::string CsvWriter::format(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace epi
