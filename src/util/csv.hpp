// CSV reading and writing.
//
// The paper's data plane is CSV-heavy: synthetic person files, contact
// network files, county-level incidence feeds, and per-tick summary outputs
// all move as CSV between the home and remote clusters. This is a small,
// strict RFC-4180-ish implementation (quoted fields, embedded commas and
// quotes; no embedded newlines, which none of our formats use).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace epi {

/// A parsed CSV table: a header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  CsvTable(std::vector<std::string> header,
           std::vector<std::vector<std::string>> rows);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

  /// Index of a named column; throws ConfigError if absent.
  std::size_t column(std::string_view name) const;

  /// True if the header contains `name`.
  bool has_column(std::string_view name) const;

  const std::string& cell(std::size_t row, std::size_t col) const;
  const std::string& cell(std::size_t row, std::string_view col) const;

  double cell_double(std::size_t row, std::string_view col) const;
  std::int64_t cell_int(std::size_t row, std::string_view col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::unordered_map<std::string, std::size_t> column_index_;
};

/// Splits one CSV line into fields, honouring double-quote escaping.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Parses full CSV text (first line = header). Throws ConfigError on
/// ragged rows.
CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws ConfigError if unreadable.
CsvTable read_csv_file(const std::string& path);

/// Streaming CSV writer with minimal quoting (quotes only when needed).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough precision to round-trip.
  static std::string format(double value);
  static std::string format(std::int64_t value);
  static std::string format(std::uint64_t value);

 private:
  std::ostream& out_;
};

/// Escapes a single field per RFC 4180 if it contains a comma or quote.
std::string csv_escape(std::string_view field);

}  // namespace epi
