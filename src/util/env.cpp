#include "util/env.hpp"

#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace epi {

std::optional<std::size_t> parse_positive_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;  // rejects sign/space too
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::optional<std::size_t> parsed = parse_positive_size(env);
  EPI_REQUIRE(parsed.has_value(),
              name << "='" << env
                   << "' is not a positive integer; unset the variable for "
                      "the default ("
                   << fallback << ") or pass a plain decimal count");
  return *parsed;
}

}  // namespace epi
