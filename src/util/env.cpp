#include "util/env.hpp"

#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace epi {
namespace {

// The registry gate shared by every accessor: EPI_*-prefixed names must
// be registered; other prefixes (tests, third-party) pass through.
void require_registered(const char* name) {
  if (std::string_view(name).substr(0, 4) != "EPI_") return;
  EPI_REQUIRE(env_registered(name),
              name << " is not in kEnvRegistry (util/env.hpp); register it "
                      "there so epilint and the README env table know it");
}

}  // namespace

bool env_registered(std::string_view name) {
  for (const EnvVarInfo& var : kEnvRegistry) {
    if (name == var.name) return true;
  }
  return false;
}

const char* env_raw(const char* name) {
  require_registered(name);
  return std::getenv(name);
}

bool env_flag(const char* name) {
  const char* env = env_raw(name);
  return env != nullptr && env[0] != '\0' && std::string_view(env) != "0";
}

std::optional<std::size_t> parse_positive_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;  // rejects sign/space too
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_size(const char* name, std::size_t fallback) {
  const char* env = env_raw(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::optional<std::size_t> parsed = parse_positive_size(env);
  EPI_REQUIRE(parsed.has_value(),
              name << "='" << env
                   << "' is not a positive integer; unset the variable for "
                      "the default ("
                   << fallback << ") or pass a plain decimal count");
  return *parsed;
}

}  // namespace epi
