#include "util/env.hpp"

#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace epi {
namespace {

// The registry gate shared by every accessor: EPI_*-prefixed names must
// be registered; other prefixes (tests, third-party) pass through.
void require_registered(const char* name) {
  if (std::string_view(name).substr(0, 4) != "EPI_") return;
  EPI_REQUIRE(env_registered(name),
              name << " is not in kEnvRegistry (util/env.hpp); register it "
                      "there so epilint and the README env table know it");
}

}  // namespace

bool env_registered(std::string_view name) {
  for (const EnvVarInfo& var : kEnvRegistry) {
    if (name == var.name) return true;
  }
  return false;
}

const char* env_raw(const char* name) {
  require_registered(name);
  return std::getenv(name);
}

bool env_flag(const char* name) {
  const char* env = env_raw(name);
  return env != nullptr && env[0] != '\0' && std::string_view(env) != "0";
}

std::optional<std::size_t> parse_positive_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;  // rejects sign/space too
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_size(const char* name, std::size_t fallback) {
  const char* env = env_raw(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::optional<std::size_t> parsed = parse_positive_size(env);
  EPI_REQUIRE(parsed.has_value(),
              name << "='" << env
                   << "' is not a positive integer; unset the variable for "
                      "the default ("
                   << fallback << ") or pass a plain decimal count");
  return *parsed;
}

std::optional<double> parse_positive_real(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // Hand-rolled so the grammar stays as strict as parse_positive_size:
  // strtod would accept "1e3", " 2", "0x1p2", "inf" — all misconfiguration
  // more likely than intent for a seconds knob.
  double value = 0.0;
  std::size_t i = 0;
  bool any_int_digit = false;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    value = value * 10.0 + static_cast<double>(text[i] - '0');
    any_int_digit = true;
  }
  if (!any_int_digit) return std::nullopt;
  if (i < text.size()) {
    if (text[i] != '.') return std::nullopt;
    ++i;
    if (i == text.size()) return std::nullopt;  // trailing dot: "3."
    double scale = 0.1;
    for (; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') return std::nullopt;
      value += static_cast<double>(text[i] - '0') * scale;
      scale *= 0.1;
    }
  }
  if (!(value > 0.0) || value > std::numeric_limits<double>::max()) {
    return std::nullopt;
  }
  return value;
}

double env_positive_real(const char* name, double fallback) {
  const char* env = env_raw(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::optional<double> parsed = parse_positive_real(env);
  EPI_REQUIRE(parsed.has_value(),
              name << "='" << env
                   << "' is not a positive decimal number; unset the "
                      "variable for the default ("
                   << fallback << ") or pass e.g. '2' or '0.25'");
  return *parsed;
}

}  // namespace epi
