// Strict environment-variable parsing for the runtime knobs.
//
// EPI_JOBS, EPI_SERVICE_WORKERS and friends size worker pools and caches;
// a typo'd value silently falling back to a default is exactly the kind of
// misconfiguration that costs a night of compute (the paper's runs had one
// 10pm-8am window — a farm accidentally running serial misses 8am). Every
// knob therefore parses strictly: unset or empty means "use the default",
// anything else must be a plain positive decimal integer, and malformed,
// zero, negative, or overflowing values throw epi::Error with the variable
// name and offending text instead of limping on.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace epi {

/// Parses `text` as a strictly positive decimal integer (digits only: no
/// sign, no whitespace, no suffix). Returns nullopt when `text` is not a
/// positive integer or does not fit in std::size_t.
std::optional<std::size_t> parse_positive_size(std::string_view text);

/// Reads environment variable `name` as a positive integer. Unset or
/// empty returns `fallback`; anything else must satisfy
/// parse_positive_size() or an epi::Error is thrown naming the variable —
/// "EPI_JOBS='banana' ..." — so misconfigured runs die at startup rather
/// than silently running with a default.
std::size_t env_positive_size(const char* name, std::size_t fallback);

}  // namespace epi
