// Strict environment-variable parsing for the runtime knobs, plus the
// central registry of every EPI_* variable the codebase reads.
//
// EPI_JOBS, EPI_SERVICE_WORKERS and friends size worker pools and caches;
// a typo'd value silently falling back to a default is exactly the kind of
// misconfiguration that costs a night of compute (the paper's runs had one
// 10pm-8am window — a farm accidentally running serial misses 8am). Every
// knob therefore parses strictly: unset or empty means "use the default",
// anything else must be a plain positive decimal integer, and malformed,
// zero, negative, or overflowing values throw epi::Error with the variable
// name and offending text instead of limping on.
//
// The same argument applies to the variable *names*: a typo'd name is a
// knob that silently never engages. kEnvRegistry below is the single
// source of truth — the accessors here reject unregistered EPI_* names at
// runtime, the epilint env-registry rule rejects them statically (any
// "EPI_*" string literal in src/ must appear in this table), and README's
// environment-variable table is generated from it
// (`build/tools/epilint --env-table`).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace epi {

/// One registered environment variable. `summary` is the one-line
/// documentation rendered into README's table.
struct EnvVarInfo {
  const char* name;
  const char* summary;
};

/// Every EPI_* environment variable, alphabetical. Parsed by epilint
/// (tools/epilint, rule `env-registry`), enforced at runtime by the
/// accessors below, and rendered into README.md — update all consumers by
/// editing this one table.
inline constexpr EnvVarInfo kEnvRegistry[] = {
    {"EPI_BENCH_BASELINE_DIR",
     "directory of committed BENCH_<name>.json baselines that `epitrace "
     "bench-diff` compares candidate runs against (default bench/baselines)"},
    {"EPI_BENCH_JSON",
     "directory where benchmarks write their BENCH_<name>.json reports"},
    {"EPI_CYCLE_REPORT",
     "file path where calibrate_and_forecast dumps the hexfloat "
     "calibration-cycle report"},
    {"EPI_DETERMINISTIC_TIMING",
     "zero the wall-seconds half of the obs dual clock so traces and "
     "metrics are byte-reproducible"},
    {"EPI_EXCHANGE",
     "default exchange mode for simulations that do not set one "
     "explicitly: broadcast, ghost (default), event, or adaptive"},
    {"EPI_JOBS",
     "engine-farm worker threads (positive int; 1 = the exact serial seed "
     "path)"},
    {"EPI_LOG_LEVEL",
     "logger threshold: debug, info, warn (default), error, or off"},
    {"EPI_MPILITE_BACKEND",
     "mpilite rank transport: thread (default; ranks as threads in one "
     "process) or shm (forked processes over a POSIX shared-memory "
     "segment)"},
    {"EPI_MPILITE_CHECK",
     "any value but 0 runs mpilite under the communication checker; "
     "reports become errors at finalize"},
    {"EPI_MPILITE_CHECK_TIMEOUT_S",
     "deadlock-watchdog patience in seconds for the mpilite checker"},
    {"EPI_SERVICE_CACHE_CAP",
     "artifact-cache capacity in entries (unset = unbounded)"},
    {"EPI_SERVICE_OUT",
     "directory where the scenario-service example writes responses.txt "
     "and service_report.txt for diffing"},
    {"EPI_SERVICE_WORKERS",
     "logical workers of the scenario service's virtual-latency schedule "
     "(default 4)"},
    {"EPI_TRACE",
     "directory to write trace.json + metrics.json observability output "
     "(unset = observability fully off)"},
    {"EPI_TRACE_FLOW",
     "causal flow edges in traces: 0 disables send->recv / task-chain "
     "arrows, anything else (or unset) leaves them on"},
};

/// True when `name` appears in kEnvRegistry.
bool env_registered(std::string_view name);

/// std::getenv through the registry: the one sanctioned way to read an
/// environment variable. Throws epi::Error when an EPI_*-prefixed `name`
/// is not in kEnvRegistry — a typo'd variable name is a knob that
/// silently never engages. Returns nullptr when unset.
const char* env_raw(const char* name);

/// Boolean knob: true when `name` is set, non-empty, and not "0".
bool env_flag(const char* name);

/// Parses `text` as a strictly positive decimal integer (digits only: no
/// sign, no whitespace, no suffix). Returns nullopt when `text` is not a
/// positive integer or does not fit in std::size_t.
std::optional<std::size_t> parse_positive_size(std::string_view text);

/// Reads environment variable `name` as a positive integer. Unset or
/// empty returns `fallback`; anything else must satisfy
/// parse_positive_size() or an epi::Error is thrown naming the variable —
/// "EPI_JOBS='banana' ..." — so misconfigured runs die at startup rather
/// than silently running with a default.
std::size_t env_positive_size(const char* name, std::size_t fallback);

/// Parses `text` as a strictly positive decimal real: digits with an
/// optional single '.' fraction (no sign, no whitespace, no exponent, no
/// hex). Returns nullopt when malformed, zero, or not finite.
std::optional<double> parse_positive_real(std::string_view text);

/// Reads environment variable `name` as a positive real (seconds-style
/// knobs such as EPI_MPILITE_CHECK_TIMEOUT_S). Unset or empty returns
/// `fallback`; anything else must satisfy parse_positive_real() or an
/// epi::Error is thrown naming the variable and the offending text.
double env_positive_real(const char* name, double fallback);

}  // namespace epi
