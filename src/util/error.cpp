#include "util/error.hpp"

namespace epi::detail {

void throw_requirement_failed(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream oss;
  oss << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  throw Error(oss.str());
}

}  // namespace epi::detail
