// Error handling primitives for EpiScale.
//
// All precondition violations throw epi::Error with a formatted message;
// EPI_REQUIRE is used at public API boundaries, EPI_ASSERT for internal
// invariants (compiled in all build types: epidemic runs are long and a
// corrupted state is worse than an abort).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace epi {

/// Base exception for all EpiScale errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file or configuration is malformed.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a numeric routine fails (e.g. Cholesky of a non-PD matrix).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failed(const char* expr, const char* file,
                                           int line, const std::string& msg);
}  // namespace detail

}  // namespace epi

// Precondition check at a public API boundary. `msg` is streamed, so
// EPI_REQUIRE(n > 0, "n was " << n) works.
#define EPI_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream epi_require_oss_;                                 \
      epi_require_oss_ << msg;                                             \
      ::epi::detail::throw_requirement_failed(#expr, __FILE__, __LINE__,   \
                                              epi_require_oss_.str());     \
    }                                                                      \
  } while (false)

// Internal invariant; same behaviour, different spelling for readers.
#define EPI_ASSERT(expr, msg) EPI_REQUIRE(expr, msg)
