#include "util/hash.hpp"

namespace epi {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t basis) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t hash = basis;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  return hash;
}

Hash128 hash128(std::string_view bytes) {
  // Two FNV-1a streams from distinct offset bases; the second basis is the
  // standard one advanced by an arbitrary fixed odd constant so the
  // streams decorrelate from the first byte on.
  constexpr std::uint64_t kBasisLo = kFnv64Basis ^ 0x9E3779B97F4A7C15ULL;
  return Hash128{fnv1a64(bytes, kFnv64Basis), fnv1a64(bytes, kBasisLo)};
}

std::string to_hex(const Hash128& hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hash.hi >> (4 * i)) & 15];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(hash.lo >> (4 * i)) & 15];
  }
  return out;
}

}  // namespace epi
