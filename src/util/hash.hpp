// Stable content hashing for the artifact cache.
//
// The scenario service addresses artifacts (synthetic-region builds,
// calibration prior stages, whole scenario results) by the hash of their
// canonical configuration text. Those keys must be identical across runs,
// machines, and library versions — std::hash is explicitly unspecified —
// so we use FNV-1a with fixed 64-bit parameters, widened to 128 bits by
// running two independent streams with distinct offset bases. 128 bits
// makes accidental collisions astronomically unlikely at any realistic
// cache population, which is what lets a hash equality stand in for a
// full key comparison.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace epi {

/// Classic FNV-1a over bytes, seedable so independent streams can share
/// one implementation.
constexpr std::uint64_t kFnv64Basis = 0xCBF29CE484222325ULL;
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t basis = kFnv64Basis);

/// A 128-bit content hash (two independent FNV-1a streams). Value type:
/// ordered, hashable by its own bits, hex-printable.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const Hash128&) const = default;
};

/// Hashes a canonical byte string to 128 bits.
Hash128 hash128(std::string_view bytes);

/// Lowercase 32-hex-digit rendering, "hi" half first.
std::string to_hex(const Hash128& hash);

}  // namespace epi
