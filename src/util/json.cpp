#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace epi {

bool Json::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  throw ConfigError("JSON value is not a bool");
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  throw ConfigError("JSON value is not a number");
}

std::int64_t Json::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(std::llround(d));
  if (std::abs(d - static_cast<double>(i)) > 1e-9) {
    throw ConfigError("JSON number is not an integer");
  }
  return i;
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  throw ConfigError("JSON value is not a string");
}

const JsonArray& Json::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ConfigError("JSON value is not an array");
}

JsonArray& Json::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
  throw ConfigError("JSON value is not an array");
}

const JsonObject& Json::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ConfigError("JSON value is not an object");
}

JsonObject& Json::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
  throw ConfigError("JSON value is not an object");
}

const Json& Json::at(std::string_view key) const {
  const auto& obj = as_object();
  const auto it = obj.find(std::string(key));
  if (it == obj.end()) {
    throw ConfigError("JSON object missing key: " + std::string(key));
  }
  return it->second;
}

bool Json::contains(std::string_view key) const {
  const auto* o = std::get_if<JsonObject>(&value_);
  return o != nullptr && o->count(std::string(key)) != 0;
}

double Json::get_double(std::string_view key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    char buf[32];
    // epilint: allow(io-nonhex-float) — JSON is an interchange format, so
    // hexfloat is not an option; %.17g is the shortest decimal form that
    // still round-trips every double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, std::get<double>(value_));
  } else if (is_string()) {
    dump_string(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& arr = std::get<JsonArray>(value_);
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    if (!arr.empty()) newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = std::get<JsonObject>(value_);
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(out, key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      value.dump_to(out, indent, depth + 1);
    }
    if (!obj.empty()) newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream oss;
    oss << "JSON parse error at line " << line << ", column " << col << ": "
        << message;
    throw ConfigError(oss.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return Json(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_whitespace();
      const char sep = advance();
      if (sep == '}') break;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char sep = advance();
      if (sep == ']') break;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported — our
            // configs are ASCII).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') advance();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      return Json(std::stod(token));
    } catch (const std::exception&) {
      fail("invalid number: " + token);
    }
  }
};

}  // namespace

Json parse_json(std::string_view text) { return JsonParser(text).parse(); }

Json read_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ConfigError("cannot write JSON file: " + path);
  out << value.dump(2) << '\n';
}

}  // namespace epi
