// Minimal JSON document model, parser, and serializer.
//
// EpiHiper's disease models, intervention specifications, initializations
// and traits are all JSON documents (paper §III / Appendix D: "All inputs to
// EpiHiper are given in JSON format, with the exception of the contact
// network"). This module gives us exactly enough JSON to express those
// configuration files without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace epi {

class Json;

using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic, which keeps serialized configs
// byte-stable across runs — important for config-hash-based caching.
using JsonObject = std::map<std::string, Json>;

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw ConfigError on type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object member access; throws ConfigError if not an object or missing.
  const Json& at(std::string_view key) const;
  /// True if this is an object containing `key`.
  bool contains(std::string_view key) const;
  /// Returns member or `fallback` if absent (still throws on non-object).
  double get_double(std::string_view key, double fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::string get_string(std::string_view key, std::string fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Mutating object member access (creates the member).
  Json& operator[](const std::string& key);

  /// Serializes; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Parses JSON text; throws ConfigError with position info on failure.
Json parse_json(std::string_view text);

/// Reads and parses a JSON file.
Json read_json_file(const std::string& path);

/// Writes a JSON value to a file (pretty-printed).
void write_json_file(const std::string& path, const Json& value);

}  // namespace epi
