#include "util/lhs.hpp"

#include <numeric>

#include "util/error.hpp"

namespace epi {

std::vector<ParamPoint> latin_hypercube_unit(std::size_t n, std::size_t dims,
                                             Rng& rng) {
  EPI_REQUIRE(n > 0, "LHS needs at least one sample");
  EPI_REQUIRE(dims > 0, "LHS needs at least one dimension");
  std::vector<ParamPoint> points(n, ParamPoint(dims, 0.0));
  std::vector<std::size_t> perm(n);
  for (std::size_t d = 0; d < dims; ++d) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm.begin(), perm.end());
    for (std::size_t i = 0; i < n; ++i) {
      // One point per stratum, jittered uniformly within it.
      points[i][d] =
          (static_cast<double>(perm[i]) + rng.uniform()) / static_cast<double>(n);
    }
  }
  return points;
}

ParamPoint scale_to_ranges(const ParamPoint& unit,
                           const std::vector<ParamRange>& ranges) {
  EPI_REQUIRE(unit.size() == ranges.size(), "parameter dimension mismatch");
  ParamPoint out(unit.size());
  for (std::size_t d = 0; d < unit.size(); ++d) {
    out[d] = ranges[d].lo + unit[d] * (ranges[d].hi - ranges[d].lo);
  }
  return out;
}

ParamPoint scale_to_unit(const ParamPoint& point,
                         const std::vector<ParamRange>& ranges) {
  EPI_REQUIRE(point.size() == ranges.size(), "parameter dimension mismatch");
  ParamPoint out(point.size());
  for (std::size_t d = 0; d < point.size(); ++d) {
    const double span = ranges[d].hi - ranges[d].lo;
    EPI_REQUIRE(span > 0.0, "degenerate parameter range: " << ranges[d].name);
    out[d] = (point[d] - ranges[d].lo) / span;
  }
  return out;
}

std::vector<ParamPoint> latin_hypercube(std::size_t n,
                                        const std::vector<ParamRange>& ranges,
                                        Rng& rng) {
  auto unit = latin_hypercube_unit(n, ranges.size(), rng);
  std::vector<ParamPoint> out;
  out.reserve(n);
  for (const auto& point : unit) out.push_back(scale_to_ranges(point, ranges));
  return out;
}

}  // namespace epi
