// Latin hypercube sampling (McKay, Beckman & Conover 1979 — the paper's
// reference [35]). The calibration workflow seeds its 100-configuration
// prior design with LHS over the parameter box (case study 3).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace epi {

/// A named, bounded calibration parameter (e.g. TAU in [0.1, 0.5]).
struct ParamRange {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
};

/// A point in parameter space, aligned with a ParamRange vector.
using ParamPoint = std::vector<double>;

/// Generates `n` Latin-hypercube points over the unit cube [0,1)^d:
/// each dimension's n strata each contain exactly one point.
std::vector<ParamPoint> latin_hypercube_unit(std::size_t n, std::size_t dims,
                                             Rng& rng);

/// Generates `n` LHS points scaled into the given ranges.
std::vector<ParamPoint> latin_hypercube(std::size_t n,
                                        const std::vector<ParamRange>& ranges,
                                        Rng& rng);

/// Maps a unit-cube point into the ranges (affine per dimension).
ParamPoint scale_to_ranges(const ParamPoint& unit,
                           const std::vector<ParamRange>& ranges);

/// Maps a point in the ranges back to the unit cube.
ParamPoint scale_to_unit(const ParamPoint& point,
                         const std::vector<ParamRange>& ranges);

}  // namespace epi
