#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "util/env.hpp"

namespace epi {

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return fallback;
}

namespace {

LogLevel initial_level() {
  const char* env = env_raw("EPI_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  return parse_log_level(env, LogLevel::kWarn);
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_log_mutex;
LogSink g_sink;  // null = default stderr writer; guarded by g_log_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = std::move(sink);
}

bool detail::log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void log_message(LogLevel level, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  // epilint: allow(io-raw-stream) — this is the logger's default sink,
  // the one sanctioned stderr writer in the codebase.
  std::fprintf(stderr, "[%9.3f] %-5s %s\n", elapsed, level_name(level),
               message.c_str());
}

}  // namespace epi
