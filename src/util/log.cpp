#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace epi {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool detail::log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load());
}

void log_message(LogLevel level, const std::string& message) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%9.3f] %-5s %s\n", elapsed, level_name(level),
               message.c_str());
}

}  // namespace epi
