// Leveled logging. The nightly workflow runs unattended for hours; the
// orchestration layer logs phase transitions at Info, per-job events at
// Debug. Output is a single stream (stderr by default) with a monotonic
// timestamp so interleaved module logs stay ordered.
#pragma once

#include <sstream>
#include <string>

namespace epi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
bool log_enabled(LogLevel level);
}

}  // namespace epi

#define EPI_LOG(level, msg)                                   \
  do {                                                        \
    if (::epi::detail::log_enabled(level)) {                  \
      std::ostringstream epi_log_oss_;                        \
      epi_log_oss_ << msg;                                    \
      ::epi::log_message(level, epi_log_oss_.str());          \
    }                                                         \
  } while (false)

#define EPI_DEBUG(msg) EPI_LOG(::epi::LogLevel::kDebug, msg)
#define EPI_INFO(msg) EPI_LOG(::epi::LogLevel::kInfo, msg)
#define EPI_WARN(msg) EPI_LOG(::epi::LogLevel::kWarn, msg)
#define EPI_ERROR(msg) EPI_LOG(::epi::LogLevel::kError, msg)
