// Leveled logging for the unattended nightly runs.
//
// One process-wide minimum level filters cheaply at the call site
// (messages below it never format), and one process-wide sink receives
// everything that passes. The default sink writes stderr lines with a
// monotonic elapsed-seconds stamp so interleaved module logs stay
// ordered; set_log_sink() redirects the stream (tests capture it, a
// harness can forward it). The minimum level starts at Warn, or at
// EPI_LOG_LEVEL (debug|info|warn|error|off) when that variable is set —
// so a hung production run can be re-run chatty with no rebuild.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace epi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive;
/// "warning" also accepted) into a level; anything else — including the
/// empty string — returns `fallback`. This is the EPI_LOG_LEVEL parser,
/// exposed so tests can cover it directly.
LogLevel parse_log_level(std::string_view text, LogLevel fallback);

/// Receives every emitted message at or above the minimum level.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink (thread-safe); a null sink restores the
/// default timestamped-stderr writer.
void set_log_sink(LogSink sink);

/// Emits one log line (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
bool log_enabled(LogLevel level);
}

}  // namespace epi

#define EPI_LOG(level, msg)                                   \
  do {                                                        \
    if (::epi::detail::log_enabled(level)) {                  \
      std::ostringstream epi_log_oss_;                        \
      epi_log_oss_ << msg;                                    \
      ::epi::log_message(level, epi_log_oss_.str());          \
    }                                                         \
  } while (false)

#define EPI_DEBUG(msg) EPI_LOG(::epi::LogLevel::kDebug, msg)
#define EPI_INFO(msg) EPI_LOG(::epi::LogLevel::kInfo, msg)
#define EPI_WARN(msg) EPI_LOG(::epi::LogLevel::kWarn, msg)
#define EPI_ERROR(msg) EPI_LOG(::epi::LogLevel::kError, msg)
