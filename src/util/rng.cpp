#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace epi {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_labels(std::uint64_t seed,
                         std::initializer_list<std::uint64_t> labels) {
  SplitMix64 sm(seed);
  std::uint64_t key = sm.next();
  for (std::uint64_t label : labels) {
    // Feed each label through the mixer; XOR keeps the chain sensitive to
    // label order without being commutative across positions.
    SplitMix64 step(key ^ (label + 0x9E3779B97F4A7C15ULL));
    key = step.next();
  }
  return key;
}

Rng::Rng(std::uint64_t seed) : seed_key_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
}

Rng Rng::derive(std::initializer_list<std::uint64_t> labels) const {
  return Rng(mix_labels(seed_key_, labels));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EPI_REQUIRE(lo <= hi, "uniform bounds inverted: [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  EPI_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Lemire's multiply-shift rejection method: unbiased, branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  EPI_REQUIRE(lo <= hi, "uniform_int bounds inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mu, double sigma) {
  EPI_REQUIRE(sigma >= 0.0, "normal sigma must be >= 0, got " << sigma);
  return mu + sigma * normal();
}

double Rng::truncated_normal(double mu, double sigma, double lo, double hi) {
  EPI_REQUIRE(lo <= hi, "truncated_normal bounds inverted");
  if (sigma == 0.0) {
    return std::min(std::max(mu, lo), hi);
  }
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = normal(mu, sigma);
    if (x >= lo && x <= hi) return x;
  }
  return std::min(std::max(mu, lo), hi);
}

double Rng::exponential(double lambda) {
  EPI_REQUIRE(lambda > 0.0, "exponential rate must be > 0, got " << lambda);
  // -log(1 - U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / lambda;
}

double Rng::gamma(double shape, double scale) {
  EPI_REQUIRE(shape > 0.0 && scale > 0.0,
              "gamma requires shape > 0 and scale > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and correct with U^{1/shape} (Marsaglia–Tsang).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::uint64_t Rng::poisson(double lambda) {
  EPI_REQUIRE(lambda >= 0.0, "poisson lambda must be >= 0");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction, rejected below 0;
  // adequate for workload modelling at lambda >= 30.
  for (;;) {
    const double x = normal(lambda, std::sqrt(lambda));
    if (x >= -0.5) return static_cast<std::uint64_t>(std::llround(x));
  }
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  EPI_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p out of [0,1]: " << p);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  // Symmetry to keep p <= 1/2 for the waiting-time method.
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  if (static_cast<double>(n) * p < 64.0) {
    // Geometric waiting-time method: expected O(np) draws.
    const double log_q = std::log1p(-p);
    std::uint64_t successes = 0;
    double trials = 0.0;
    for (;;) {
      // Geometric waiting time (trials to the next success), exact
      // discretization: floor(log(1-U)/log(1-p)) + 1.
      trials += std::floor(std::log1p(-uniform()) / log_q) + 1.0;
      if (trials > static_cast<double>(n)) return successes;
      ++successes;
    }
  }
  // Normal approximation for large np, clamped to valid range.
  const double mu = static_cast<double>(n) * p;
  const double sigma = std::sqrt(mu * (1.0 - p));
  for (;;) {
    const double x = normal(mu, sigma);
    if (x >= -0.5 && x <= static_cast<double>(n) + 0.5) {
      return static_cast<std::uint64_t>(std::llround(x));
    }
  }
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  EPI_REQUIRE(!weights.empty(), "discrete distribution needs weights");
  double total = 0.0;
  for (double w : weights) {
    EPI_REQUIRE(w >= 0.0, "discrete weight must be >= 0, got " << w);
    total += w;
  }
  EPI_REQUIRE(total > 0.0, "discrete weights sum to zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (target < weights[i]) return i;
    target -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  EPI_REQUIRE(k <= n, "cannot sample " << k << " distinct items from " << n);
  std::vector<std::uint64_t> reservoir;
  reservoir.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) reservoir.push_back(i);
  for (std::uint64_t i = k; i < n; ++i) {
    const std::uint64_t j = uniform_index(i + 1);
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace epi
