// Deterministic random number generation for EpiScale.
//
// Reproducibility is a hard requirement of the nightly workflow: a replicate
// is identified by (workflow seed, region, cell, replicate) and must produce
// identical output on any machine and any thread count. We therefore use a
// counter-free but splittable scheme: SplitMix64 to derive stream seeds and
// Xoshiro256** as the bulk generator, with an explicit `derive()` operation
// to fork statistically independent child streams (per rank, per tick, per
// node) without sharing state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace epi {

/// SplitMix64: tiny PRNG used for seeding / key derivation only.
/// Passes BigCrush when used as a 64-bit generator; its main role here is
/// turning an arbitrary (seed, label...) tuple into a well-mixed 64-bit key.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes a sequence of 64-bit labels into a single key. Used to derive
/// per-(region, cell, replicate, rank, ...) streams from a master seed.
std::uint64_t mix_labels(std::uint64_t seed,
                         std::initializer_list<std::uint64_t> labels);

/// Xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept so it can also feed
/// <random> distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so that any 64-bit seed,
  /// including 0, yields a valid (nonzero) state.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL);

  /// Derives a statistically independent child stream keyed by `labels`.
  /// Deriving with the same labels from the same parent always yields the
  /// same child; different labels yield unrelated streams.
  [[nodiscard]] Rng derive(std::initializer_list<std::uint64_t> labels) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0. Uses Lemire's unbiased method.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal();

  /// Normal with mean mu, standard deviation sigma (sigma >= 0).
  double normal(double mu, double sigma);

  /// Normal truncated to [lo, hi] by rejection; falls back to clamping
  /// after 1000 rejections (only reachable for pathological bounds).
  double truncated_normal(double mu, double sigma, double lo, double hi);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Gamma(shape k > 0, scale theta > 0), Marsaglia–Tsang method.
  double gamma(double shape, double scale);

  /// Poisson(lambda >= 0); inversion for small lambda, PTRS-like
  /// normal-approximation rejection for large.
  std::uint64_t poisson(double lambda);

  /// Binomial(n, p) by inversion / BTPE-free waiting-time method;
  /// exact for all n, O(np) expected time (fine for our sizes).
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = uniform_index(i);
      std::swap(*(first + static_cast<std::ptrdiff_t>(i - 1)),
                *(first + static_cast<std::ptrdiff_t>(j)));
    }
  }

  /// Reservoir-samples k distinct indices from [0, n).
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;

  std::uint64_t seed_key_;  // retained so derive() can re-key children
};

}  // namespace epi
